//! Quick start: optimize repeater insertion on a random 8-terminal bus.
//!
//! Builds a random multisource net on a 1 cm die (every terminal both
//! drives and receives, as in the paper's §VI experiments), adds
//! candidate insertion points every ≤800 µm, and prints the full
//! cost-vs-ARD trade-off curve together with the "min cost subject to a
//! timing spec" answer (paper Problem 2.1).
//!
//! Run with: `cargo run --release --example quickstart`

use msrnet::prelude::*;
use msrnet_rng::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = table1();
    let mut rng = msrnet_rng::rngs::StdRng::seed_from_u64(42);

    let exp = ExperimentNet::random(&mut rng, 8, &params)?;
    let net = exp.with_insertion_points(800.0);
    println!(
        "net: {} terminals, {:.1} µm of wire, {} candidate insertion points",
        net.topology.terminal_count(),
        net.topology.total_wirelength(),
        net.topology.insertion_point_count()
    );

    let library = [params.repeater(1.0)];
    let drivers = params.fixed_driver_menu(&net);
    let curve = optimize(
        &net,
        TerminalId(0),
        &library,
        &drivers,
        &MsriOptions::default(),
    )?;

    println!("\ncost-vs-ARD trade-off (cost in 1X-buffer equivalents):");
    println!("{curve}");

    // Problem 2.1: cheapest solution meeting a spec halfway between the
    // unbuffered diameter and the best achievable one.
    let spec = 0.5 * (curve.min_cost().ard + curve.best_ard().ard);
    match curve.min_cost_meeting(spec) {
        Some(p) => println!(
            "cheapest solution with ARD ≤ {spec:.0} ps: cost {:.0}, ARD {:.1} ps, {} repeaters",
            p.cost,
            p.ard,
            p.assignment.placed_count()
        ),
        None => println!("spec {spec:.0} ps is unachievable"),
    }

    // Verify the fastest solution independently with the linear-time ARD
    // algorithm (applying the chosen driver options to the net) and
    // report its critical source → sink pair.
    let best = curve.best_ard();
    let (scenario, _) = msrnet::core::exhaustive::apply_terminal_choices(
        &net,
        &drivers,
        &best.terminal_choices,
    );
    let rooted = net.rooted_at_terminal(TerminalId(0));
    let report = ard_linear(&scenario, &rooted, &library, &best.assignment);
    let (src, snk) = report.critical.expect("feasible net");
    println!(
        "\nfastest solution re-verified: ARD {:.1} ps (claimed {:.1}), critical pair {src} → {snk}",
        report.ard,
        best.ard
    );
    assert!((report.ard - best.ard).abs() < 1e-6);
    Ok(())
}
