//! A cross-die block-to-block bus: terminals cluster into two blocks a
//! centimeter apart, so almost all the wire is the inter-block trunk —
//! the regime where repeater insertion earns its keep (and the setting
//! the paper's §I motivates: "buses are so prevalent in modern
//! designs").
//!
//! Also demonstrates the per-terminal timing profile API: which agents
//! limit the bus before and after optimization.
//!
//! Run with: `cargo run --release --example clustered_bus`

use msrnet::core::ard::ard_profile;
use msrnet::core::exhaustive::apply_terminal_choices;
use msrnet::prelude::*;
use msrnet_rng::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = table1();
    let mut rng = msrnet_rng::rngs::StdRng::seed_from_u64(4);
    let exp = ExperimentNet::random_clustered(&mut rng, 3, 4, &params)?;
    let net = exp.with_insertion_points(800.0);
    println!(
        "block-to-block bus: 3 + 4 terminals, {:.1} mm wire, {} repeater sites",
        net.topology.total_wirelength() / 1000.0,
        net.topology.insertion_point_count()
    );

    let lib = [params.repeater(1.0), params.repeater(2.0)];
    let drivers = params.fixed_driver_menu(&net);
    let curve = optimize(&net, TerminalId(0), &lib, &drivers, &MsriOptions::default())?;

    let rooted = net.rooted_at_terminal(TerminalId(0));
    let show_profile = |label: &str, point: &TradeoffPoint| {
        let (scenario, _) = apply_terminal_choices(&net, &drivers, &point.terminal_choices);
        let profile = ard_profile(&scenario, &rooted, &lib, &point.assignment);
        println!("\n{label}: ARD {:.1} ps", profile.ard);
        println!("  terminal | worst as source | worst as sink");
        for t in net.terminal_ids() {
            println!(
                "  t{:<7} | {:>14.1}  | {:>12.1}",
                t.0,
                profile.worst_from(t),
                profile.worst_into(t)
            );
        }
        let (u, w) = profile.critical.expect("feasible");
        println!("  critical: t{} → t{}", u.0, w.0);
    };

    show_profile("unoptimized", curve.min_cost());
    let knee = curve.knee();
    show_profile(
        &format!(
            "knee solution (cost {:.0}, {} repeaters)",
            knee.cost,
            knee.assignment.placed_count()
        ),
        knee,
    );

    // On a trunk-dominated bus the knee should already cut the diameter
    // substantially.
    assert!(knee.ard < 0.75 * curve.min_cost().ard);
    println!(
        "\nknee cuts the cross-die diameter to {:.0}% at {:.0}% of the fastest\nsolution's cost ({} frontier points total)",
        100.0 * knee.ard / curve.min_cost().ard,
        100.0 * knee.cost / curve.best_ard().cost,
        curve.len()
    );
    Ok(())
}
