//! Driver sizing vs repeater insertion (paper §VI comparison).
//!
//! Runs the optimizer twice on the same random net: once in
//! driver-sizing mode (no repeaters; every terminal picks an
//! input/output buffer pair from sized variants) and once in repeater
//! mode (fixed 1X drivers, repeaters at the candidate insertion points),
//! then reports the paper's headline comparison: repeater insertion
//! achieves a far smaller RC-diameter, and matches the best sizing
//! diameter at lower cost.
//!
//! Run with: `cargo run --release --example driver_sizing`

use msrnet::prelude::*;
use msrnet_rng::SeedableRng;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = table1();
    let mut rng = msrnet_rng::rngs::StdRng::seed_from_u64(7);

    let exp = ExperimentNet::random(&mut rng, 10, &params)?;
    let net = exp.with_insertion_points(800.0);
    let root = TerminalId(0);
    println!(
        "net: {} terminals, {:.0} µm wire, {} insertion points",
        net.topology.terminal_count(),
        net.topology.total_wirelength(),
        net.topology.insertion_point_count()
    );

    // Mode 1: driver sizing only (1X..4X input/output pairs).
    let t0 = Instant::now();
    let sizing_menus = params.sizing_menu(&net, &[1.0, 2.0, 3.0, 4.0]);
    let sizing = optimize(&net, root, &[], &sizing_menus, &MsriOptions::default())?;
    println!(
        "\ndriver sizing       : {} frontier points in {:?}",
        sizing.len(),
        t0.elapsed()
    );
    println!(
        "  min-cost  : cost {:>5.0}, ARD {:>7.1} ps",
        sizing.min_cost().cost,
        sizing.min_cost().ard
    );
    println!(
        "  best-ARD  : cost {:>5.0}, ARD {:>7.1} ps",
        sizing.best_ard().cost,
        sizing.best_ard().ard
    );

    // Mode 2: repeater insertion with fixed 1X drivers.
    let t0 = Instant::now();
    let library = [params.repeater(1.0)];
    let fixed = params.fixed_driver_menu(&net);
    let repeaters = optimize(&net, root, &library, &fixed, &MsriOptions::default())?;
    println!(
        "repeater insertion  : {} frontier points in {:?}",
        repeaters.len(),
        t0.elapsed()
    );
    println!(
        "  min-cost  : cost {:>5.0}, ARD {:>7.1} ps",
        repeaters.min_cost().cost,
        repeaters.min_cost().ard
    );
    println!(
        "  best-ARD  : cost {:>5.0}, ARD {:>7.1} ps",
        repeaters.best_ard().cost,
        repeaters.best_ard().ard
    );

    // Paper Table II column 5: the cheapest repeater solution that
    // matches or beats the best diameter driver sizing can reach.
    let sizing_best = sizing.best_ard();
    if let Some(p) = repeaters.min_cost_meeting(sizing_best.ard) {
        println!(
            "\ncheapest repeater solution matching sizing's best ARD ({:.1} ps):",
            sizing_best.ard
        );
        println!(
            "  cost {:.0} (sizing paid {:.0}) with {} repeaters, ARD {:.1} ps",
            p.cost,
            sizing_best.cost,
            p.assignment.placed_count(),
            p.ard
        );
    }
    Ok(())
}
