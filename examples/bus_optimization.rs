//! Domain scenario: a shared data bus between a CPU, two cache banks and
//! a DMA engine — the kind of multisource net the paper's introduction
//! motivates ("buses are so prevalent in modern designs").
//!
//! Unlike the uniform experiments, the agents here have different
//! arrival times (the DMA's requests are ready late), different
//! downstream slack (the CPU's receive path feeds deep logic), and the
//! spec is a clock budget: we ask the optimizer for the *cheapest*
//! repeater assignment meeting it (paper Problem 2.1), not the fastest.
//!
//! Run with: `cargo run --release --example bus_optimization`

use msrnet::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = table1();
    let tech = params.tech;

    // Floorplan positions (µm) and per-agent timing roles.
    let agents: [(&str, Point, Terminal); 4] = [
        (
            "cpu",
            Point::new(0.0, 0.0),
            // Drives early, but its receive path feeds deep decode logic:
            // large downstream delay.
            Terminal::bidirectional(0.0, 350.0, params.buf_1x.in_cap, params.buf_1x.out_res),
        ),
        (
            "l2-bank0",
            Point::new(6500.0, 1500.0),
            Terminal::bidirectional(120.0, 80.0, params.buf_1x.in_cap, params.buf_1x.out_res),
        ),
        (
            "l2-bank1",
            Point::new(6500.0, -1500.0),
            Terminal::bidirectional(120.0, 80.0, params.buf_1x.in_cap, params.buf_1x.out_res),
        ),
        (
            "dma",
            Point::new(9500.0, 0.0),
            // Requests are ready late in the cycle.
            Terminal::bidirectional(400.0, 60.0, params.buf_1x.in_cap, params.buf_1x.out_res),
        ),
    ];

    let terms: Vec<(Point, Terminal)> = agents.iter().map(|(_, p, t)| (*p, *t)).collect();
    let net = build_net(tech, &terms)?.normalized().with_insertion_points(800.0);
    println!(
        "bus: {} agents, {:.1} mm of wire, {} candidate repeater sites",
        agents.len(),
        net.topology.total_wirelength() / 1000.0,
        net.topology.insertion_point_count()
    );

    let library = [params.repeater(1.0), params.repeater(2.0)];
    let drivers = params.fixed_driver_menu(&net);
    let curve = optimize(&net, TerminalId(0), &library, &drivers, &MsriOptions::default())?;

    println!("\nachievable trade-off (ARD = worst PI→PO delay through the bus):");
    for p in curve.points() {
        println!(
            "  cost {:>4.0} | ARD {:>7.1} ps | {} repeaters",
            p.cost,
            p.ard,
            p.assignment.placed_count()
        );
    }

    // A 3 ns clock budget for the bus segment of the path.
    let budget_ps = 3000.0;
    match curve.min_cost_meeting(budget_ps) {
        Some(p) => {
            println!("\ncheapest solution meeting the {budget_ps:.0} ps budget:");
            println!(
                "  cost {:.0}, ARD {:.1} ps, repeaters at:",
                p.cost, p.ard
            );
            for (v, placed) in p.assignment.placements() {
                let pos = net.topology.position(v);
                println!(
                    "    {} at ({:.0}, {:.0}) oriented {}",
                    library[placed.repeater].name, pos.x, pos.y, placed.orientation
                );
            }
            // Independent verification + critical path.
            let rooted = net.rooted_at_terminal(TerminalId(0));
            let (scenario, _) = msrnet::core::exhaustive::apply_terminal_choices(
                &net,
                &drivers,
                &p.terminal_choices,
            );
            let report = ard_linear(&scenario, &rooted, &library, &p.assignment);
            let (src, snk) = report.critical.expect("feasible");
            println!(
                "  verified ARD {:.1} ps; critical path {} → {}",
                report.ard,
                agents[src.0].0,
                agents[snk.0].0
            );
        }
        None => println!("\nno assignment meets {budget_ps:.0} ps — raise the budget or resize"),
    }
    Ok(())
}
