//! Inverting repeaters (paper §V: "An extension allowing the use of
//! inverters as repeaters is possible and straightforward").
//!
//! An inverter is roughly half a buffer — half the intrinsic delay, half
//! the input capacitance, half the area — but flips signal polarity, so
//! a legal solution must cross an even number of inverters on **every**
//! source-to-sink path. The optimizer tracks parity per subtree; this
//! example shows inverters displacing buffer pairs on the frontier and
//! verifies each solution's polarity feasibility independently.
//!
//! Run with: `cargo run --release --example inverting_repeaters`

use msrnet::core::exhaustive::polarity_feasible;
use msrnet::prelude::*;
use msrnet_rng::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = table1();
    let mut rng = msrnet_rng::rngs::StdRng::seed_from_u64(8);
    let exp = ExperimentNet::random(&mut rng, 6, &params)?;
    let net = exp.with_insertion_points(800.0);
    println!(
        "net: {} terminals, {:.1} mm wire, {} insertion points",
        net.topology.terminal_count(),
        net.topology.total_wirelength() / 1000.0,
        net.topology.insertion_point_count()
    );

    // Library: the 1X buffer pair plus a half-cost inverter pair.
    let inv = Buffer::new("inv1x", 25.0, 180.0, 0.025, 0.5);
    let library = [
        params.repeater(1.0),
        Repeater::from_buffer_pair("irep1x", &inv, &inv).inverting(),
    ];
    let drivers = params.fixed_driver_menu(&net);

    let buffers_only = optimize(
        &net,
        TerminalId(0),
        &library[..1],
        &drivers,
        &MsriOptions::default(),
    )?;
    let with_inverters = optimize(
        &net,
        TerminalId(0),
        &library,
        &drivers,
        &MsriOptions {
            allow_inverting: true,
            ..MsriOptions::default()
        },
    )?;

    println!("\nbuffers only        : {} frontier points, best ARD {:.1} ps (cost {:.1})",
        buffers_only.len(), buffers_only.best_ard().ard, buffers_only.best_ard().cost);
    println!("buffers + inverters : {} frontier points, best ARD {:.1} ps (cost {:.1})",
        with_inverters.len(), with_inverters.best_ard().ard, with_inverters.best_ard().cost);

    println!("\nfrontier with inverters (i = inverting, b = buffer pair):");
    for p in with_inverters.points() {
        let mut counts = [0usize; 2];
        for (_, placed) in p.assignment.placements() {
            counts[if library[placed.repeater].inverting { 1 } else { 0 }] += 1;
        }
        // Independent polarity check.
        assert!(polarity_feasible(&net, &library, &p.assignment));
        println!(
            "  cost {:>5.1} | ARD {:>7.1} ps | {}b + {}i",
            p.cost, p.ard, counts[0], counts[1]
        );
    }

    // Inverters always appear in polarity-even combinations, and the
    // richer library dominates the buffer-only frontier.
    for p in buffers_only.points() {
        let better = with_inverters.min_cost_meeting(p.ard).expect("achievable");
        assert!(better.cost <= p.cost + 1e-9);
    }
    println!("\nall solutions polarity-feasible ✓; inverter-extended frontier");
    println!("dominates the buffer-only frontier ✓");
    Ok(())
}
