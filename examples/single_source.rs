//! Single-source cross-check: on a net whose only source is the root,
//! multisource repeater insertion degenerates to classical buffer
//! insertion, and the `msrnet-core` frontier must coincide with the
//! van Ginneken / min-cost single-source baseline (`msrnet-buffering`).
//!
//! The repeater's upstream direction is never exercised, so a repeater
//! built from a pair of buffers behaves exactly like one forward buffer
//! at twice the cost.
//!
//! Run with: `cargo run --release --example single_source`

use msrnet::buffering::min_cost_buffering;
use msrnet::prelude::*;
use msrnet_rng::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = table1();
    let tech = params.tech;
    let mut rng = msrnet_rng::rngs::StdRng::seed_from_u64(13);

    // One driver (index 0), five sinks, random placement.
    let pts = msrnet::netgen::random_points(&mut rng, 6, params.grid);
    let terms: Vec<(Point, Terminal)> = pts
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            let t = if i == 0 {
                Terminal::source_only(0.0, params.buf_1x.in_cap, params.buf_1x.out_res)
            } else {
                Terminal::sink_only(0.0, params.buf_1x.in_cap)
            };
            (p, t)
        })
        .collect();
    let net = build_net(tech, &terms)?.normalized().with_insertion_points(800.0);
    println!(
        "single-source net: 1 driver, 5 sinks, {:.1} mm wire, {} insertion points",
        net.topology.total_wirelength() / 1000.0,
        net.topology.insertion_point_count()
    );

    // Baseline: classical min-cost buffer insertion with the 1X buffer.
    let vg = min_cost_buffering(&net, TerminalId(0), std::slice::from_ref(&params.buf_1x));
    println!("\nvan Ginneken (min-cost variant) frontier:");
    for s in &vg {
        println!("  {} buffers → max delay {:>8.1} ps", s.assignment.placed_count(), s.max_delay);
    }

    // Multisource optimizer on the same net with the 1X-pair repeater.
    let lib = [params.repeater(1.0)];
    let drivers = TerminalOptions::defaults(&net);
    let curve = optimize(&net, TerminalId(0), &lib, &drivers, &MsriOptions::default())?;
    println!("\nmultisource repeater insertion frontier:");
    for p in curve.points() {
        println!("  {} repeaters → ARD {:>8.1} ps", p.assignment.placed_count(), p.ard);
    }

    // The two frontiers must coincide (a k-buffer solution costs k for
    // van Ginneken and 2k in repeater pairs — same placements, same
    // delays).
    assert_eq!(vg.len(), curve.len(), "frontier sizes must match");
    for (v, m) in vg.iter().zip(curve.points()) {
        assert_eq!(
            v.assignment.placed_count(),
            m.assignment.placed_count(),
            "placement counts must match"
        );
        assert!(
            (v.max_delay - m.ard).abs() < 1e-6,
            "delays must match: {} vs {}",
            v.max_delay,
            m.ard
        );
    }
    println!("\nfrontiers coincide point-for-point — the multisource DP degenerates");
    println!("to classical single-source buffer insertion, as expected.");
    Ok(())
}
