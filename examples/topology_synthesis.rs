//! Multisource topology synthesis — the paper's §VII outlook made
//! concrete: "given the results in this paper, a multisource version of
//! the P-Tree timing-driven Steiner router is now possible".
//!
//! For one random terminal set, several candidate routing topologies are
//! generated (the MST + 1-Steiner heuristic, plus P-Tree interval DPs
//! over different terminal permutations); **each candidate is judged by
//! the ARD it achieves after optimal repeater insertion**, not by
//! wirelength — and the winner is frequently not the shortest tree.
//!
//! Run with: `cargo run --release --example topology_synthesis`

use msrnet::prelude::*;
use msrnet::steiner::{nn_tour, ptree_topology, two_opt};
use msrnet_rng::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = table1();
    let mut rng = msrnet_rng::rngs::StdRng::seed_from_u64(23);
    let pts = msrnet::netgen::random_points(&mut rng, 7, params.grid);
    let term = params.bidirectional_terminal();

    // Candidate topologies: the 1-Steiner heuristic plus P-Trees over a
    // few permutations.
    let mut candidates: Vec<(String, msrnet::steiner::SteinerTopology)> = Vec::new();
    candidates.push(("mst+1-steiner".into(), steiner_tree(&pts)));
    for start in 0..4 {
        let order = two_opt(&pts, nn_tour(&pts, start));
        candidates.push((format!("p-tree (tour from t{start})"), ptree_topology(&pts, &order)));
    }

    let lib = [params.repeater(1.0)];
    println!("judging {} candidate topologies by post-optimization ARD:\n", candidates.len());
    println!(
        "{:<24} {:>11} {:>12} {:>12} {:>10}",
        "topology", "wire (µm)", "bare ARD", "best ARD", "repeaters"
    );
    let mut results = Vec::new();
    for (name, topo) in candidates {
        // Lift into a net (terminals keep their index order).
        let terms: Vec<(Point, Terminal)> = (0..topo.terminal_count)
            .map(|i| (topo.points[i], term))
            .collect();
        let mut b = NetBuilder::new(params.tech);
        let mut vids = Vec::new();
        for (i, &p) in topo.points.iter().enumerate() {
            if i < topo.terminal_count {
                vids.push(b.terminal(p, terms[i].1));
            } else {
                vids.push(b.steiner(p));
            }
        }
        for &(x, y) in &topo.edges {
            b.wire(vids[x], vids[y]);
        }
        let net = b.build()?.normalized().with_insertion_points(800.0);
        let drivers = params.fixed_driver_menu(&net);
        let curve = optimize(&net, TerminalId(0), &lib, &drivers, &MsriOptions::default())?;
        println!(
            "{:<24} {:>11.0} {:>12.1} {:>12.1} {:>10}",
            name,
            net.topology.total_wirelength(),
            curve.min_cost().ard,
            curve.best_ard().ard,
            curve.best_ard().assignment.placed_count()
        );
        results.push((name, net.topology.total_wirelength(), curve.best_ard().ard));
    }

    let by_wire = results
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("nonempty");
    let by_ard = results
        .iter()
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("nonempty");
    println!("\nshortest topology     : {} ({:.0} µm)", by_wire.0, by_wire.1);
    println!("best optimized ARD    : {} ({:.1} ps)", by_ard.0, by_ard.2);
    if by_wire.0 != by_ard.0 {
        println!("→ the timing-best topology is NOT the shortest one: judging");
        println!("  candidates by optimized ARD changes the routing decision,");
        println!("  which is exactly the point of a multisource P-Tree.");
    } else {
        println!("→ on this instance the shortest tree also times best.");
    }
    Ok(())
}
