//! Simultaneous repeater insertion and discrete wire sizing — the
//! paper's §VII extension ("no fundamental reason why the basic
//! techniques ... cannot be utilized to solve other optimization
//! problems in multisource nets such as wire sizing").
//!
//! Two experiments on the same placement:
//!
//! 1. a **single-source** net, where widening near-driver segments is the
//!    classical win (resistance drops where the downstream capacitance is
//!    large) — the sizing-only frontier is rich;
//! 2. the same net as a **bidirectional bus**, where every segment
//!    carries traffic both ways: widening that helps one direction adds
//!    capacitive penalty to the reverse paths, so the max-over-pairs ARD
//!    barely improves and the optimizer prefers repeaters. This
//!    asymmetry is exactly the kind of effect the paper's conclusions
//!    flag for study ("the effects of asymmetric source/sink
//!    distributions").
//!
//! Run with: `cargo run --release --example wire_sizing`

use msrnet::core::{optimize_with_wires, WireOption};
use msrnet::prelude::*;
use msrnet_rng::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A resistive thin routing layer (3× the Table-I sheet resistance)
    // with strong 4X drivers: the regime where wire sizing matters.
    let mut params = table1();
    params.tech = Technology::new(0.09, 0.000_35);
    let drive_res = params.buf_1x.scaled(4.0).out_res;
    let mut rng = msrnet_rng::rngs::StdRng::seed_from_u64(17);
    let pts = msrnet::netgen::random_points(&mut rng, 6, params.grid);

    let widths = [
        WireOption::unit(),
        WireOption::width("2W", 2.0, 0.0005),
        WireOption::width("3W", 3.0, 0.0010),
    ];
    let lib = [params.repeater(1.0)];
    let options = MsriOptions::default();

    for (label, bidirectional) in [("single-source net", false), ("bidirectional bus", true)] {
        let terms: Vec<(Point, Terminal)> = pts
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                let t = if bidirectional {
                    Terminal::bidirectional(0.0, 0.0, 0.05, drive_res)
                } else if i == 0 {
                    Terminal::source_only(0.0, 0.05, drive_res)
                } else {
                    Terminal::sink_only(0.0, 0.05)
                };
                (p, t)
            })
            .collect();
        let net = build_net(params.tech, &terms)?
            .normalized()
            .with_insertion_points(1200.0);
        let drivers = TerminalOptions::defaults(&net);
        let root = TerminalId(0);

        let repeaters_only =
            optimize_with_wires(&net, root, &lib, &drivers, &[WireOption::unit()], &options)?;
        let wires_only = optimize_with_wires(&net, root, &[], &drivers, &widths, &options)?;
        let combined = optimize_with_wires(&net, root, &lib, &drivers, &widths, &options)?;

        println!("== {label} ({:.1} mm wire) ==", net.topology.total_wirelength() / 1000.0);
        for (name, curve) in [
            ("repeaters only", &repeaters_only),
            ("wire sizing only", &wires_only),
            ("combined", &combined),
        ] {
            println!(
                "  {name:<17}: {:>2} points | ARD {:>7.1} → {:>7.1} ps (best costs {:>6.1})",
                curve.len(),
                curve.min_cost().ard,
                curve.best_ard().ard,
                curve.best_ard().cost
            );
        }
        // The combined frontier dominates both single-knob frontiers.
        for single in [&repeaters_only, &wires_only] {
            for p in single.points() {
                let better = combined.min_cost_meeting(p.ard).expect("achievable");
                assert!(better.cost <= p.cost + 1e-9);
            }
        }
        // Width histogram of the fastest combined solution.
        let best = combined.best_ard();
        let mut counts = vec![0usize; widths.len()];
        for e in net.topology.edges() {
            counts[best.wire_choices[e.0]] += 1;
        }
        let hist: Vec<String> = widths
            .iter()
            .zip(&counts)
            .map(|(w, c)| format!("{}×{}", c, w.name))
            .collect();
        println!(
            "  fastest combined: {} repeaters + segments {}\n",
            best.assignment.placed_count(),
            hist.join(" ")
        );
    }
    println!("observation: sizing pays on the single-source tree; on the");
    println!("bidirectional bus the reverse-path capacitance penalty makes");
    println!("repeaters the better knob — wire widths stay at 1W.");
    Ok(())
}
