//! Randomized property tests of the single-source buffering frontier,
//! driven by a seeded in-tree generator so every run checks the same
//! cases (style of `crates/geom/tests/properties.rs`).
//!
//! The in-module unit tests pin exact values on hand-built lines; these
//! tests instead assert the *shape* invariants of
//! [`min_cost_buffering`] over random branching nets: frontier
//! monotonicity, assignment accounting, agreement with an independent
//! Elmore re-evaluation of every returned placement, and metamorphic
//! library relations (supersets never hurt, duplicates change nothing).

use msrnet_buffering::{max_slack_buffering, min_cost_buffering};
use msrnet_geom::Point;
use msrnet_rctree::{
    elmore::Elmore, Assignment, Buffer, Net, NetBuilder, Orientation, Repeater, Technology,
    Terminal, TerminalId, VertexId,
};
use msrnet_rng::{Rng, SeedableRng, SplitMix64};

const CASES: usize = 48;

/// A random branching net: source terminal `t0` at the origin, a random
/// tree of Steiner branch vertices hanging off it, 1–3 sink terminals
/// attached to random branch vertices, and 0–2 insertion points dropped
/// onto each wire (insertion points must keep degree 2). Zero-length
/// segments (coincident positions) are possible and deliberate.
fn arb_net(rng: &mut SplitMix64) -> Net {
    let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
    let pt = |rng: &mut SplitMix64| {
        Point::new(
            rng.gen_range(0..4000i32) as f64,
            rng.gen_range(0..4000i32) as f64,
        )
    };
    // Wires a–b directly or through a chain of insertion points.
    fn connect(b: &mut NetBuilder, rng: &mut SplitMix64, from: VertexId, to: VertexId, at: Point) {
        let mut prev = from;
        for _ in 0..rng.gen_range(0..3usize) {
            let ip = b.insertion_point(at);
            b.wire(prev, ip);
            prev = ip;
        }
        b.wire(prev, to);
    }
    let src = b.terminal(Point::new(0.0, 0.0), Terminal::source_only(0.0, 0.05, 180.0));
    let mut branches: Vec<VertexId> = Vec::new();
    for i in 0..rng.gen_range(1..4usize) {
        let attach = if i == 0 {
            src
        } else {
            branches[rng.gen_range(0..branches.len())]
        };
        let p = pt(rng);
        let s = b.steiner(p);
        connect(&mut b, rng, attach, s, p);
        branches.push(s);
    }
    for _ in 0..rng.gen_range(1..4usize) {
        let attach = branches[rng.gen_range(0..branches.len())];
        let q = rng.gen_range(0..50i32) as f64;
        let cap = 0.02 + rng.gen_range(0..80i32) as f64 / 1000.0;
        let p = pt(rng);
        let snk = b.terminal(p, Terminal::sink_only(q, cap));
        connect(&mut b, rng, attach, snk, p);
    }
    b.build().expect("generated net is well-formed")
}

/// A random 1–3 entry library; the base buffer always sits at index 0
/// so metamorphic tests can extend the menu without renumbering.
fn arb_library(rng: &mut SplitMix64) -> Vec<Buffer> {
    let base = Buffer::new("1X", 50.0, 180.0, 0.05, 1.0);
    let mut lib = vec![base.clone()];
    for k in 0..rng.gen_range(0..3usize) {
        let scale = (2 + rng.gen_range(0..3i32)) as f64;
        lib.push(base.scaled(scale + k as f64));
    }
    lib
}

fn sink_ids(net: &Net) -> Vec<TerminalId> {
    net.terminal_ids()
        .filter(|&t| net.terminal(t).is_sink())
        .collect()
}

/// Re-evaluates a frontier placement with the Elmore engine: worst
/// source-to-sink path delay over all sinks.
fn elmore_worst_delay(net: &Net, library: &[Buffer], asg_src: &msrnet_buffering::BufferAssignment) -> f64 {
    let reps: Vec<Repeater> = library
        .iter()
        .map(|b| Repeater::from_buffer_pair(&b.name, b, b))
        .collect();
    let mut asg = Assignment::empty(net.topology.vertex_count());
    for v in 0..net.topology.vertex_count() {
        if let Some(b) = asg_src.at(VertexId(v)) {
            asg.place(VertexId(v), b, Orientation::AFacesParent);
        }
    }
    let rooted = net.rooted_at_terminal(TerminalId(0));
    let elmore = Elmore::new(net, &rooted, &reps, &asg);
    // The frontier's delay axis includes each sink's own downstream
    // delay `q`; path_delay stops at the pin, so add it back.
    sink_ids(net)
        .iter()
        .map(|&w| elmore.path_delay(TerminalId(0), w) + net.terminal(w).downstream)
        .fold(f64::NEG_INFINITY, f64::max)
}

#[test]
fn frontier_shape_and_endpoints() {
    let mut rng = SplitMix64::seed_from_u64(101);
    for _ in 0..CASES {
        let net = arb_net(&mut rng);
        let lib = arb_library(&mut rng);
        let frontier = min_cost_buffering(&net, TerminalId(0), &lib);
        assert!(!frontier.is_empty());
        // The cheapest point is always the unbuffered net.
        assert_eq!(frontier[0].cost, 0.0);
        assert_eq!(frontier[0].assignment.placed_count(), 0);
        // Ascending cost, strictly decreasing delay: a true frontier.
        for w in frontier.windows(2) {
            assert!(w[0].cost <= w[1].cost, "{} > {}", w[0].cost, w[1].cost);
            assert!(
                w[1].max_delay < w[0].max_delay - 1e-12,
                "non-dominating point survived: {} vs {}",
                w[1].max_delay,
                w[0].max_delay
            );
        }
        // max_slack_buffering is exactly the expensive end.
        let best = max_slack_buffering(&net, TerminalId(0), &lib);
        let last = frontier.last().unwrap();
        assert_eq!(best.cost.to_bits(), last.cost.to_bits());
        assert_eq!(best.max_delay.to_bits(), last.max_delay.to_bits());
        assert_eq!(best.assignment.placed_count(), last.assignment.placed_count());
    }
}

#[test]
fn assignment_accounting_matches_reported_cost() {
    let mut rng = SplitMix64::seed_from_u64(102);
    for _ in 0..CASES {
        let net = arb_net(&mut rng);
        let lib = arb_library(&mut rng);
        let ips: Vec<VertexId> = net.topology.insertion_points().collect();
        for sol in min_cost_buffering(&net, TerminalId(0), &lib) {
            // The placement's own cost accounting reproduces the
            // frontier's cost axis.
            assert!(
                (sol.assignment.total_cost(&lib) - sol.cost).abs() < 1e-9,
                "assignment cost {} vs reported {}",
                sol.assignment.total_cost(&lib),
                sol.cost
            );
            let placed: Vec<VertexId> = (0..net.topology.vertex_count())
                .map(VertexId)
                .filter(|&v| sol.assignment.at(v).is_some())
                .collect();
            assert_eq!(placed.len(), sol.assignment.placed_count());
            // Buffers land on insertion points only, with in-range
            // library indices.
            for &v in &placed {
                assert!(ips.contains(&v), "buffer on non-insertion vertex {v:?}");
                assert!(sol.assignment.at(v).unwrap() < lib.len());
            }
        }
    }
}

#[test]
fn frontier_delays_match_elmore_oracle() {
    let mut rng = SplitMix64::seed_from_u64(103);
    for _ in 0..CASES {
        let net = arb_net(&mut rng);
        let lib = arb_library(&mut rng);
        for sol in min_cost_buffering(&net, TerminalId(0), &lib) {
            // Independent re-evaluation: materialize the placement and
            // let the Elmore engine time it from scratch.
            let oracle = elmore_worst_delay(&net, &lib, &sol.assignment);
            assert!(
                (sol.max_delay - oracle).abs() < 1e-6,
                "frontier delay {} vs Elmore {}",
                sol.max_delay,
                oracle
            );
        }
    }
}

#[test]
fn bigger_library_never_hurts() {
    let mut rng = SplitMix64::seed_from_u64(104);
    for _ in 0..CASES {
        let net = arb_net(&mut rng);
        let small = arb_library(&mut rng);
        let mut big = small.clone();
        big.push(small[0].scaled(6.0)); // appended: existing indices keep meaning
        let fs = min_cost_buffering(&net, TerminalId(0), &small);
        let fb = min_cost_buffering(&net, TerminalId(0), &big);
        // Every small-library point is weakly dominated by some
        // big-library point: a superset menu explores a superset of
        // placements.
        for s in &fs {
            assert!(
                fb.iter()
                    .any(|b| b.cost <= s.cost + 1e-9 && b.max_delay <= s.max_delay + 1e-6),
                "({}, {}) undominated under the larger library",
                s.cost,
                s.max_delay
            );
        }
        let best_s = fs.last().unwrap().max_delay;
        let best_b = fb.last().unwrap().max_delay;
        assert!(best_b <= best_s + 1e-6, "{best_b} vs {best_s}");
    }
}

#[test]
fn duplicate_buffers_change_nothing() {
    let mut rng = SplitMix64::seed_from_u64(105);
    for _ in 0..CASES {
        let net = arb_net(&mut rng);
        let lib = arb_library(&mut rng);
        let mut doubled = lib.clone();
        doubled.extend(lib.iter().cloned());
        let fa = min_cost_buffering(&net, TerminalId(0), &lib);
        let fb = min_cost_buffering(&net, TerminalId(0), &doubled);
        // Duplicating every menu entry offers no new trade-off: the
        // (cost, delay) frontier is unchanged.
        assert_eq!(fa.len(), fb.len(), "frontier length changed");
        for (a, b) in fa.iter().zip(&fb) {
            assert!((a.cost - b.cost).abs() < 1e-9);
            assert!((a.max_delay - b.max_delay).abs() < 1e-9);
        }
    }
}
