//! Single-source buffer insertion baselines.
//!
//! Two classical algorithms the paper builds on (§I related work):
//!
//! * [`max_slack_buffering`] — van Ginneken's dynamic program (ISCAS'90):
//!   for a single-source routing tree with prescribed insertion points,
//!   find the buffer assignment maximizing the worst-case slack
//!   (equivalently, minimizing the maximum source-to-sink Elmore delay
//!   when all required times are zero);
//! * [`min_cost_buffering`] — the "min cost subject to timing" variant
//!   (Lillis–Cheng–Lin, JSSC'96): the full cost-vs-delay trade-off.
//!
//! These serve as the **single-source cross-check** for the multisource
//! optimizer: on a net whose only source is the root, `msrnet-core`'s
//! repeater insertion must reproduce exactly this frontier (the upstream
//! direction of every repeater is never exercised).
//!
//! Buffers drive *away* from the source only; each insertion point may
//! hold at most one library buffer.

use msrnet_rctree::{Buffer, Net, Rooted, TerminalId, VertexId, VertexKind};

/// A buffer placement: library index per insertion-point vertex.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BufferAssignment {
    slots: Vec<Option<usize>>,
}

impl BufferAssignment {
    /// No buffers anywhere, for a topology of `vertex_count` vertices.
    pub fn empty(vertex_count: usize) -> Self {
        BufferAssignment {
            slots: vec![None; vertex_count],
        }
    }

    /// Places library buffer `b` at vertex `v`.
    pub fn place(&mut self, v: VertexId, b: usize) {
        self.slots[v.0] = Some(b);
    }

    /// The buffer at `v`, if any.
    pub fn at(&self, v: VertexId) -> Option<usize> {
        self.slots.get(v.0).copied().flatten()
    }

    /// Number of buffers placed.
    pub fn placed_count(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Total cost under `library`.
    ///
    /// # Panics
    ///
    /// Panics if a placement references a buffer outside `library`.
    pub fn total_cost(&self, library: &[Buffer]) -> f64 {
        self.slots
            .iter()
            .flatten()
            // msrnet-allow: panic documented contract: panics on out-of-library placements
            .map(|&b| library[b].cost)
            .sum()
    }
}

/// One point of the single-source cost/delay trade-off.
#[derive(Clone, Debug)]
pub struct BufferedSolution {
    /// Total buffer cost.
    pub cost: f64,
    /// Worst source-to-sink delay (driver and per-sink `q` included), ps.
    pub max_delay: f64,
    /// The placement achieving it.
    pub assignment: BufferAssignment,
}

#[derive(Clone, Debug)]
struct Cand {
    cost: f64,
    cap: f64,
    /// −(worst delay from this node to any downstream sink, including the
    /// sink's own `q`); higher is better. `+∞` when the subtree has no
    /// sinks.
    q: f64,
    trace: u32,
}

#[derive(Clone, Copy, Debug)]
enum TraceNode {
    Nil,
    Buffer { child: u32, vertex: VertexId, buffer: usize },
    Join { left: u32, right: u32 },
}

/// Computes the exact cost-vs-delay frontier for buffering the net from
/// `source` (which must be a terminal; every *other* terminal that
/// [`msrnet_rctree::Terminal::is_sink`] is a timing endpoint whose
/// `downstream` delay is added).
///
/// Returns solutions sorted by ascending cost with strictly decreasing
/// `max_delay`; the first entry is the unbuffered net and the last is
/// van Ginneken's delay-optimal solution.
///
/// # Panics
///
/// Panics if the net has no sink other than `source`.
pub fn min_cost_buffering(
    net: &Net,
    source: TerminalId,
    library: &[Buffer],
) -> Vec<BufferedSolution> {
    let rooted = net.rooted_at_terminal(source);
    let root = rooted.root();
    let mut trace: Vec<TraceNode> = vec![TraceNode::Nil];
    let n = net.topology.vertex_count();
    let mut sets: Vec<Option<Vec<Cand>>> = (0..n).map(|_| None).collect();

    for v in rooted.postorder() {
        if v == root {
            break;
        }
        let set = solutions_at(net, &rooted, library, v, &mut sets, &mut trace);
        sets[v.0] = Some(set);
    }

    let children = rooted.children(root);
    assert!(
        !children.is_empty(),
        "source terminal must connect to the net"
    );
    // The root is a leaf terminal after normalization, but accept a
    // non-leaf source by joining all its child branches.
    let mut acc: Option<Vec<Cand>> = None;
    for &u in children {
        // msrnet-allow: panic post-order traversal fills every child slot before its parent
        let su = sets[u.0].take().expect("child processed");
        let au = augment(net, &rooted, su, u);
        acc = Some(match acc {
            None => au,
            Some(prev) => prune(join(prev, au, &mut trace)),
        });
    }
    // msrnet-allow: panic validated nets give the source at least one child branch
    let set = acc.expect("nonempty");

    let term = net.terminal(source);
    let mut solutions: Vec<BufferedSolution> = Vec::new();
    for cand in set {
        if cand.q == f64::INFINITY {
            continue; // no sinks below: nothing to time
        }
        let driver = term.drive_intrinsic + term.drive_res * (term.cap + cand.cap);
        let max_delay = driver - cand.q;
        solutions.push(BufferedSolution {
            cost: cand.cost,
            max_delay,
            assignment: materialize(cand.trace, &trace, n),
        });
    }
    assert!(!solutions.is_empty(), "net must contain at least one sink");
    solutions.sort_by(|a, b| {
        a.cost
            .total_cmp(&b.cost)
            .then(a.max_delay.total_cmp(&b.max_delay))
    });
    let mut frontier: Vec<BufferedSolution> = Vec::new();
    for s in solutions {
        match frontier.last() {
            Some(last) if s.max_delay >= last.max_delay - 1e-12 => {}
            _ => frontier.push(s),
        }
    }
    frontier
}

/// Van Ginneken's classical answer: the delay-optimal buffering,
/// regardless of cost (the most expensive end of the
/// [`min_cost_buffering`] frontier).
pub fn max_slack_buffering(
    net: &Net,
    source: TerminalId,
    library: &[Buffer],
) -> BufferedSolution {
    min_cost_buffering(net, source, library)
        .pop()
        // msrnet-allow: panic the frontier always contains the zero-buffer candidate
        .expect("frontier is never empty")
}

fn solutions_at(
    net: &Net,
    rooted: &Rooted,
    library: &[Buffer],
    v: VertexId,
    sets: &mut [Option<Vec<Cand>>],
    trace: &mut Vec<TraceNode>,
) -> Vec<Cand> {
    let children: Vec<VertexId> = rooted.children(v).to_vec();
    match net.topology.kind(v) {
        VertexKind::Terminal(t) => {
            debug_assert!(children.is_empty(), "terminals are leaves");
            let term = net.terminal(t);
            let q = if term.is_sink() {
                -term.downstream
            } else {
                f64::INFINITY
            };
            vec![Cand {
                cost: 0.0,
                cap: term.cap,
                q,
                trace: 0,
            }]
        }
        VertexKind::Steiner | VertexKind::InsertionPoint if children.is_empty() => vec![Cand {
            cost: 0.0,
            cap: 0.0,
            q: f64::INFINITY,
            trace: 0,
        }],
        VertexKind::Steiner => {
            let mut acc: Option<Vec<Cand>> = None;
            for &u in &children {
                // msrnet-allow: panic post-order traversal fills every child slot before its parent
                let su = sets[u.0].take().expect("child processed");
                let au = augment(net, rooted, su, u);
                acc = Some(match acc {
                    None => au,
                    Some(prev) => prune(join(prev, au, trace)),
                });
            }
            // msrnet-allow: panic Steiner vertices have degree >= 2, so at least one child
            acc.expect("at least one child")
        }
        VertexKind::InsertionPoint => {
            // msrnet-allow: panic post-order traversal fills every child slot before its parent
            let su = sets[children[0].0].take().expect("child processed");
            let au = augment(net, rooted, su, children[0]);
            let mut out = Vec::with_capacity(au.len() * (1 + library.len()));
            for cand in &au {
                for (bi, buf) in library.iter().enumerate() {
                    let id = trace.len() as u32;
                    trace.push(TraceNode::Buffer {
                        child: cand.trace,
                        vertex: v,
                        buffer: bi,
                    });
                    out.push(Cand {
                        cost: cand.cost + buf.cost,
                        cap: buf.in_cap,
                        q: cand.q - buf.intrinsic - buf.out_res * cand.cap,
                        trace: id,
                    });
                }
            }
            out.extend(au);
            prune(out)
        }
    }
}

fn augment(net: &Net, rooted: &Rooted, set: Vec<Cand>, v: VertexId) -> Vec<Cand> {
    // msrnet-allow: panic augment is only called on children, which always have a parent edge
    let e = rooted.parent_edge(v).expect("non-root");
    let r = net.edge_res(e);
    let c = net.edge_cap(e);
    set.into_iter()
        .map(|mut cand| {
            cand.q -= r * (0.5 * c + cand.cap);
            cand.cap += c;
            cand
        })
        .collect()
}

fn join(left: Vec<Cand>, right: Vec<Cand>, trace: &mut Vec<TraceNode>) -> Vec<Cand> {
    let mut out = Vec::with_capacity(left.len() * right.len());
    for l in &left {
        for r in &right {
            let id = trace.len() as u32;
            trace.push(TraceNode::Join {
                left: l.trace,
                right: r.trace,
            });
            out.push(Cand {
                cost: l.cost + r.cost,
                cap: l.cap + r.cap,
                q: l.q.min(r.q),
                trace: id,
            });
        }
    }
    out
}

/// 3-dimensional Pareto pruning: minimize cost and cap, maximize q.
fn prune(mut set: Vec<Cand>) -> Vec<Cand> {
    set.sort_by(|a, b| {
        a.cost
            .total_cmp(&b.cost)
            .then(a.cap.total_cmp(&b.cap))
            .then(b.q.total_cmp(&a.q))
    });
    let mut kept: Vec<Cand> = Vec::with_capacity(set.len());
    for cand in set {
        let dominated = kept
            .iter()
            .any(|k| k.cost <= cand.cost && k.cap <= cand.cap && k.q >= cand.q);
        if !dominated {
            kept.push(cand);
        }
    }
    kept
}

fn materialize(id: u32, trace: &[TraceNode], vertex_count: usize) -> BufferAssignment {
    let mut assignment = BufferAssignment::empty(vertex_count);
    let mut stack = vec![id];
    while let Some(cur) = stack.pop() {
        // msrnet-allow: panic trace ids are arena handles minted by this DP run
        match trace[cur as usize] {
            TraceNode::Nil => {}
            TraceNode::Buffer { child, vertex, buffer } => {
                assignment.place(vertex, buffer);
                stack.push(child);
            }
            TraceNode::Join { left, right } => {
                stack.push(left);
                stack.push(right);
            }
        }
    }
    assignment
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrnet_geom::Point;
    use msrnet_rctree::{NetBuilder, Technology, Terminal};

    fn buf1x() -> Buffer {
        Buffer::new("1X", 50.0, 180.0, 0.05, 1.0)
    }

    /// Source at the west end, two sinks east, insertion points midway.
    fn line_net(len: f64, points: usize) -> Net {
        let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
        let src = b.terminal(Point::new(0.0, 0.0), Terminal::source_only(0.0, 0.05, 180.0));
        let mut prev = src;
        for i in 1..=points {
            let ip = b.insertion_point(Point::new(len * i as f64 / (points + 1) as f64, 0.0));
            b.wire(prev, ip);
            prev = ip;
        }
        let snk = b.terminal(Point::new(len, 0.0), Terminal::sink_only(0.0, 0.05));
        b.wire(prev, snk);
        b.build().unwrap()
    }

    #[test]
    fn unbuffered_delay_matches_elmore() {
        let net = line_net(8000.0, 3);
        let frontier = min_cost_buffering(&net, TerminalId(0), &[buf1x()]);
        let cheapest = &frontier[0];
        assert_eq!(cheapest.cost, 0.0);
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let asg = msrnet_rctree::Assignment::empty(net.topology.vertex_count());
        let elmore = msrnet_rctree::elmore::Elmore::new(&net, &rooted, &[], &asg);
        let expect = elmore.path_delay(TerminalId(0), TerminalId(1));
        assert!((cheapest.max_delay - expect).abs() < 1e-9);
    }

    #[test]
    fn buffering_helps_long_lines() {
        let net = line_net(10_000.0, 4);
        let frontier = min_cost_buffering(&net, TerminalId(0), &[buf1x()]);
        assert!(frontier.len() >= 2, "long line should want buffers");
        let best = frontier.last().unwrap();
        assert!(best.max_delay < frontier[0].max_delay);
        assert!(best.assignment.placed_count() >= 1);
    }

    #[test]
    fn frontier_matches_brute_force() {
        let net = line_net(9000.0, 4);
        let lib = [buf1x(), buf1x().scaled(3.0)];
        let frontier = min_cost_buffering(&net, TerminalId(0), &lib);
        // Brute force over 3^4 assignments.
        let ips: Vec<VertexId> = net.topology.insertion_points().collect();
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let mut all: Vec<(f64, f64)> = Vec::new();
        for mask in 0..3usize.pow(4) {
            let mut m = mask;
            let mut asg = msrnet_rctree::Assignment::empty(net.topology.vertex_count());
            let mut cost = 0.0;
            let reps: Vec<msrnet_rctree::Repeater> = lib
                .iter()
                .map(|b| msrnet_rctree::Repeater::from_buffer_pair(&b.name, b, b))
                .collect();
            for &ip in &ips {
                let c = m % 3;
                m /= 3;
                if c > 0 {
                    asg.place(ip, c - 1, msrnet_rctree::Orientation::AFacesParent);
                    cost += lib[c - 1].cost;
                }
            }
            // A symmetric repeater pair has double cost but identical
            // forward behaviour; evaluate delay with the Elmore engine.
            let elmore = msrnet_rctree::elmore::Elmore::new(&net, &rooted, &reps, &asg);
            all.push((cost, elmore.path_delay(TerminalId(0), TerminalId(1))));
        }
        all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut oracle: Vec<(f64, f64)> = Vec::new();
        for (c, d) in all {
            match oracle.last() {
                Some(&(_, last)) if d >= last - 1e-12 => {}
                _ => oracle.push((c, d)),
            }
        }
        assert_eq!(frontier.len(), oracle.len());
        for (f, o) in frontier.iter().zip(&oracle) {
            assert!((f.cost - o.0).abs() < 1e-9, "{} vs {}", f.cost, o.0);
            assert!((f.max_delay - o.1).abs() < 1e-6, "{} vs {}", f.max_delay, o.1);
        }
    }

    #[test]
    fn max_slack_is_frontier_extreme() {
        let net = line_net(10_000.0, 3);
        let lib = [buf1x()];
        let frontier = min_cost_buffering(&net, TerminalId(0), &lib);
        let best = max_slack_buffering(&net, TerminalId(0), &lib);
        assert!((best.max_delay - frontier.last().unwrap().max_delay).abs() < 1e-12);
    }

    #[test]
    fn branch_net_joins_children() {
        // Source feeding two sinks through a branch; verify frontier
        // exists and the unbuffered delay matches Elmore on the worse
        // branch.
        let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
        let src = b.terminal(Point::new(0.0, 0.0), Terminal::source_only(0.0, 0.05, 180.0));
        let s = b.steiner(Point::new(3000.0, 0.0));
        let ip1 = b.insertion_point(Point::new(3000.0, 2000.0));
        let snk1 = b.terminal(Point::new(3000.0, 4000.0), Terminal::sink_only(0.0, 0.05));
        let ip2 = b.insertion_point(Point::new(6000.0, 0.0));
        let snk2 = b.terminal(Point::new(9000.0, 0.0), Terminal::sink_only(100.0, 0.05));
        b.wire(src, s);
        b.wire(s, ip1);
        b.wire(ip1, snk1);
        b.wire(s, ip2);
        b.wire(ip2, snk2);
        let net = b.build().unwrap();
        let frontier = min_cost_buffering(&net, TerminalId(0), &[buf1x()]);
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let asg = msrnet_rctree::Assignment::empty(net.topology.vertex_count());
        let elmore = msrnet_rctree::elmore::Elmore::new(&net, &rooted, &[], &asg);
        let expect = (elmore.path_delay(TerminalId(0), TerminalId(1)))
            .max(elmore.path_delay(TerminalId(0), TerminalId(2)) + 100.0);
        assert!((frontier[0].max_delay - expect).abs() < 1e-9);
    }

    #[test]
    fn assignment_cost_accounting() {
        let lib = [buf1x()];
        let mut asg = BufferAssignment::empty(5);
        asg.place(VertexId(1), 0);
        asg.place(VertexId(3), 0);
        assert_eq!(asg.placed_count(), 2);
        assert_eq!(asg.total_cost(&lib), 2.0);
        assert_eq!(asg.at(VertexId(1)), Some(0));
        assert_eq!(asg.at(VertexId(2)), None);
    }
}
