//! Numerical transient simulation of a driven multisource net — a
//! SPICE-like oracle for the delay models.
//!
//! The Elmore delay (first moment) and D2M (second moment) are *metrics*;
//! this module computes actual 50 %-crossing delays by integrating the
//! RC network's ODE with backward Euler, exploiting the tree structure to
//! solve each timestep in `O(n)` (one post-order elimination, one
//! pre-order back-substitution).
//!
//! Repeaters are modeled behaviorally, the way staged buffering is
//! normally analyzed: the net decomposes at repeaters into *stages*; each
//! stage is an RC tree driven through a Thevenin resistance by an ideal
//! step; a repeater fires its downstream stage when its input crosses the
//! threshold, after its intrinsic delay. That matches the additive stage
//! composition assumed by the Elmore engine, so the comparison isolates
//! the *within-stage* model error.
//!
//! Used by the `elmore_vs_spice` bench binary to validate that
//! Elmore-optimized solutions keep their ordering under the numerical
//! model.

use crate::elmore::Elmore;
use crate::{Assignment, Net, Repeater, Rooted, TerminalId, VertexId, VertexKind};

/// Simulation controls.
#[derive(Clone, Copy, Debug)]
pub struct TransientOptions {
    /// Switching threshold as a fraction of the supply (0.5 = 50 %).
    pub threshold: f64,
    /// Timesteps per stage time-constant estimate; larger is more
    /// accurate and slower.
    pub steps_per_tau: usize,
}

impl Default for TransientOptions {
    fn default() -> Self {
        TransientOptions {
            threshold: 0.5,
            steps_per_tau: 200,
        }
    }
}

/// Result of simulating one driving terminal: per-vertex absolute
/// threshold-crossing times (ps), `NaN` where the signal never arrives
/// (decoupled by a repeater facing away — cannot happen in valid
/// assignments — or simulation horizon exceeded).
#[derive(Clone, Debug)]
pub struct TransientResult {
    /// Crossing time per vertex, ps (driver intrinsic included; the
    /// terminal's `AT` is *not* included, mirroring
    /// [`Elmore::delays_from`]).
    pub crossing: Vec<f64>,
}

/// Simulates a step launched by `source`'s driver and returns the
/// threshold-crossing time at every vertex.
///
/// # Panics
///
/// Panics if the assignment references repeaters outside `library`.
pub fn simulate_from(
    net: &Net,
    rooted: &Rooted,
    library: &[Repeater],
    assignment: &Assignment,
    source: TerminalId,
    opts: &TransientOptions,
) -> TransientResult {
    let n = net.topology.vertex_count();
    let elmore = Elmore::new(net, rooted, library, assignment);
    let mut crossing = vec![f64::NAN; n];
    let src_v = net.topology.terminal_vertex(source);
    let term = net.terminal(source);
    // Stage queue: (entry vertex, drive resistance, intrinsic delay,
    // absolute start time, vertex we entered from — the far side of the
    // repeater — or None for the source stage).
    let mut stages = vec![(src_v, term.drive_res, term.drive_intrinsic, 0.0, None::<VertexId>)];
    while let Some((entry, r_drv, intrinsic, t0, from)) = stages.pop() {
        let stage = collect_stage(net, assignment, entry, from);
        let sim = simulate_stage(net, rooted, &elmore, assignment, library, &stage, entry, r_drv, opts);
        for (k, &v) in stage.nodes.iter().enumerate() {
            let t = t0 + intrinsic + sim[k];
            if crossing[v.0].is_nan() || t < crossing[v.0] {
                crossing[v.0] = t;
            }
        }
        // Fire downstream stages at frontier repeaters.
        for &(rep_v, next_v) in &stage.frontier {
            // msrnet-allow: panic frontier entries are built from placed repeaters only
            let placed = assignment.at(rep_v).expect("frontier has repeater");
            // msrnet-allow: panic placements index the library they were solved against
            let rep = &library[placed.repeater];
            let upward = rooted.parent(rep_v) == Some(next_v);
            let drive = if upward {
                rep.upstream_drive(placed.orientation)
            } else {
                rep.downstream_drive(placed.orientation)
            };
            let t_input = crossing[rep_v.0];
            stages.push((rep_v, drive.out_res, drive.intrinsic, t_input, Some(next_v)));
            // Mark where the new stage continues so collect_stage knows
            // which side of the repeater to expand.
        }
    }
    TransientResult { crossing }
}

/// One stage: the RC tree between repeaters, reachable from `entry`
/// without crossing a repeater (except leaving through the one we
/// entered at, when `from` names the next vertex).
struct Stage {
    /// Stage vertices; `nodes[0] == entry`.
    nodes: Vec<VertexId>,
    /// Stage-internal undirected edges as (node index, node index, R, C).
    edges: Vec<(usize, usize, f64, f64)>,
    /// Grounded capacitance per node (terminal loads, repeater input
    /// caps at the frontier).
    caps: Vec<f64>,
    /// Frontier repeaters: (repeater vertex, the vertex beyond it) —
    /// each fires a downstream stage.
    frontier: Vec<(VertexId, VertexId)>,
}

fn collect_stage(
    net: &Net,
    assignment: &Assignment,
    entry: VertexId,
    from: Option<VertexId>,
) -> Stage {
    let n = net.topology.vertex_count();
    let mut index = vec![usize::MAX; n];
    let mut nodes = vec![entry];
    index[entry.0] = 0;
    let mut edges = Vec::new();
    let mut caps = vec![0.0f64];
    let mut frontier = Vec::new();
    // Entry vertex own load: for a repeater entry we charge the *output*
    // side; its own input cap belongs to the previous stage, so the
    // entry contributes no grounded cap of its own. For a terminal entry
    // the terminal's cap hangs on the bus.
    if assignment.at(entry).is_none() {
        if let VertexKind::Terminal(t) = net.topology.kind(entry) {
            caps[0] = net.terminal(t).cap;
        }
    }
    // BFS; at a repeater entry only expand toward `from`.
    let mut queue = vec![entry];
    while let Some(v) = queue.pop() {
        let vi = index[v.0];
        for &(u, e) in net.topology.neighbors(v) {
            if v == entry && assignment.at(entry).is_some() && Some(u) != from {
                continue; // the other side of the entry repeater
            }
            if index[u.0] != usize::MAX {
                continue;
            }
            let r = net.edge_res(e);
            let c = net.edge_cap(e);
            if assignment.at(u).is_some() {
                // Frontier repeater: its input cap loads this stage at
                // node u; the stage does not continue past it.
                let ui = nodes.len();
                index[u.0] = ui;
                nodes.push(u);
                // The repeater's near-side input cap is added in
                // simulate_stage, where the rooted orientation is known.
                caps.push(0.0);
                edges.push((vi, ui, r, c));
                // Determine the onward vertex (degree-2 insertion point).
                let onward = net
                    .topology
                    .neighbors(u)
                    .iter()
                    .map(|&(w, _)| w)
                    .find(|&w| w != v)
                    // msrnet-allow: panic insertion points have degree 2, so a second neighbor exists
                    .expect("insertion points have degree 2");
                frontier.push((u, onward));
                continue;
            }
            let ui = nodes.len();
            index[u.0] = ui;
            nodes.push(u);
            let own = match net.topology.kind(u) {
                VertexKind::Terminal(t) => net.terminal(t).cap,
                _ => 0.0,
            };
            caps.push(own);
            edges.push((vi, ui, r, c));
            queue.push(u);
        }
    }
    Stage {
        nodes,
        edges,
        caps,
        frontier,
    }
}

#[allow(clippy::too_many_arguments)]
fn simulate_stage(
    net: &Net,
    rooted: &Rooted,
    elmore: &Elmore<'_>,
    assignment: &Assignment,
    library: &[Repeater],
    stage: &Stage,
    entry: VertexId,
    r_drv: f64,
    opts: &TransientOptions,
) -> Vec<f64> {
    let m = stage.nodes.len();
    // Node caps: grounded cap + half of each incident wire cap +
    // frontier repeater input caps.
    let mut cap = stage.caps.clone();
    for &(a, b, _r, c) in &stage.edges {
        cap[a] += 0.5 * c;
        cap[b] += 0.5 * c;
    }
    for &(rep_v, next_v) in &stage.frontier {
        // msrnet-allow: panic frontier entries are built from placed repeaters only
        let placed = assignment.at(rep_v).expect("repeater");
        // msrnet-allow: panic placements index the library they were solved against
        let rep = &library[placed.repeater];
        // The cap facing *us*: if the onward vertex is the repeater's
        // child (we came from above) the parent side faces us.
        let upward_onward = rooted.parent(rep_v) == Some(next_v);
        let c_in = if upward_onward {
            // Onward is the parent ⇒ we approached from the child side.
            rep.cap_facing_child(placed.orientation)
        } else {
            rep.cap_facing_parent(placed.orientation)
        };
        let idx = stage
            .nodes
            .iter()
            .position(|&v| v == rep_v)
            // msrnet-allow: panic stage.nodes includes every frontier repeater by construction
            .expect("frontier node indexed");
        cap[idx] += c_in;
    }
    let _ = (net, elmore, entry);

    // Build a spanning-tree parent structure over the stage graph (it is
    // a tree by construction, rooted at node 0 = entry).
    let mut children: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
    for &(a, b, r, _c) in &stage.edges {
        // Edges were discovered parent-first in BFS order (a existing,
        // b new), so a is the stage-parent of b.
        // Zero-length wires get a tiny resistance to stay solvable.
        children[a].push((b, r.max(1e-9)));
    }

    // Timestep from the stage's dominant time constant estimate.
    let total_r: f64 = stage.edges.iter().map(|&(_, _, r, _)| r).sum::<f64>() + r_drv;
    let total_c: f64 = cap.iter().sum();
    let tau = (total_r * total_c).max(1e-3);
    let dt = tau / opts.steps_per_tau as f64;
    let t_max = 50.0 * tau;

    // Backward Euler: (G + C/dt) v_new = C/dt v_old + b, with the driver
    // contributing conductance 1/r_drv and source current V/r_drv at the
    // entry node. Solve by tree elimination each step.
    let g_drv = 1.0 / r_drv.max(1e-9);
    let mut v = vec![0.0f64; m];
    let mut crossing = vec![f64::NAN; m];
    let threshold = opts.threshold;
    let mut t = 0.0;
    // Pre/post orders for the elimination (node 0 is the root).
    let order = {
        let mut order = Vec::with_capacity(m);
        let mut stack = vec![0usize];
        while let Some(x) = stack.pop() {
            order.push(x);
            for &(c, _) in &children[x] {
                stack.push(c);
            }
        }
        order
    };
    let mut remaining = m;
    while remaining > 0 && t < t_max {
        t += dt;
        // Assemble per-node diagonal and rhs.
        let mut diag: Vec<f64> = cap.iter().map(|c| c / dt).collect();
        let mut rhs: Vec<f64> = v.iter().zip(&cap).map(|(vv, c)| c / dt * vv).collect();
        diag[0] += g_drv;
        rhs[0] += g_drv; // unit step source
        for x in &order {
            for &(c, r) in &children[*x] {
                let g = 1.0 / r;
                diag[*x] += g;
                diag[c] += g;
            }
        }
        // Eliminate children into parents (post-order = reverse preorder).
        let mut coeff = vec![0.0f64; m]; // g/diag[c] per child, reused
        for x in order.iter().rev() {
            for &(c, r) in &children[*x] {
                let g = 1.0 / r;
                let k = g / diag[c];
                coeff[c] = k;
                diag[*x] -= g * k;
                rhs[*x] += k * rhs[c];
            }
        }
        // Back-substitute root downward.
        let mut v_new = vec![0.0f64; m];
        v_new[0] = rhs[0] / diag[0];
        for x in &order {
            for &(c, r) in &children[*x] {
                let g = 1.0 / r;
                v_new[c] = (rhs[c] + g * v_new[*x]) / diag[c];
            }
        }
        // Record threshold crossings with linear interpolation.
        for k in 0..m {
            if crossing[k].is_nan() && v_new[k] >= threshold {
                let frac = if v_new[k] > v[k] {
                    (threshold - v[k]) / (v_new[k] - v[k])
                } else {
                    1.0
                };
                crossing[k] = t - dt + frac * dt;
                remaining -= 1;
            }
        }
        v = v_new;
    }
    crossing
}

/// Simulated augmented delay `AT(u) + T50(u→w) + q(w)` between two
/// terminals, or `-∞` for infeasible pairs.
pub fn simulated_delay(
    net: &Net,
    rooted: &Rooted,
    library: &[Repeater],
    assignment: &Assignment,
    u: TerminalId,
    w: TerminalId,
    opts: &TransientOptions,
) -> f64 {
    let tu = net.terminal(u);
    let tw = net.terminal(w);
    if u == w || !tu.is_source() || !tw.is_sink() {
        return f64::NEG_INFINITY;
    }
    let res = simulate_from(net, rooted, library, assignment, u, opts);
    let wv = net.topology.terminal_vertex(w);
    tu.arrival + res.crossing[wv.0] + tw.downstream
}

/// The ARD under the numerical transient model: max simulated augmented
/// delay over all distinct source/sink pairs.
pub fn simulated_ard(
    net: &Net,
    rooted: &Rooted,
    library: &[Repeater],
    assignment: &Assignment,
    opts: &TransientOptions,
) -> f64 {
    let mut worst = f64::NEG_INFINITY;
    for u in net.terminal_ids() {
        if !net.terminal(u).is_source() {
            continue;
        }
        let res = simulate_from(net, rooted, library, assignment, u, opts);
        for w in net.terminal_ids() {
            if w == u || !net.terminal(w).is_sink() {
                continue;
            }
            let wv = net.topology.terminal_vertex(w);
            let d = net.terminal(u).arrival + res.crossing[wv.0] + net.terminal(w).downstream;
            worst = worst.max(d);
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Buffer, NetBuilder, Orientation, Technology, Terminal};
    use msrnet_geom::Point;

    fn opts() -> TransientOptions {
        TransientOptions {
            threshold: 0.5,
            steps_per_tau: 400,
        }
    }

    /// Single-pole RC: the 50 % crossing of 1−e^{−t/RC} is RC·ln2.
    #[test]
    fn single_pole_matches_analytic() {
        let mut b = NetBuilder::new(Technology::new(0.0, 0.0));
        let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::source_only(0.0, 0.0, 4.0));
        let t1 = b.terminal(Point::new(1.0, 0.0), Terminal::sink_only(0.0, 2.0));
        b.wire(t0, t1);
        let net = b.build().unwrap();
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let asg = Assignment::empty(net.topology.vertex_count());
        let res = simulate_from(&net, &rooted, &[], &asg, TerminalId(0), &opts());
        let v1 = net.topology.terminal_vertex(TerminalId(1));
        let expect = 4.0 * 2.0 * std::f64::consts::LN_2;
        let got = res.crossing[v1.0];
        assert!(
            (got - expect).abs() / expect < 0.02,
            "simulated {got} vs analytic {expect}"
        );
    }

    /// On a distributed line the simulated 50 % delay must undershoot
    /// Elmore (Elmore is an upper bound for RC trees) but stay within
    /// the classical ~2× band.
    #[test]
    fn distributed_line_between_d2m_and_elmore() {
        let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
        let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::source_only(0.0, 0.05, 180.0));
        let t1 = b.terminal(Point::new(8000.0, 0.0), Terminal::sink_only(0.0, 0.05));
        b.wire(t0, t1);
        let net = b.build().unwrap().with_insertion_points(800.0);
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let asg = Assignment::empty(net.topology.vertex_count());
        let elmore = Elmore::new(&net, &rooted, &[], &asg);
        let elm = elmore.path_delay(TerminalId(0), TerminalId(1));
        let res = simulate_from(&net, &rooted, &[], &asg, TerminalId(0), &opts());
        let v1 = net.topology.terminal_vertex(TerminalId(1));
        let sim = res.crossing[v1.0];
        assert!(sim < elm, "Elmore must upper-bound the simulation");
        assert!(sim > 0.35 * elm, "simulation implausibly fast: {sim} vs {elm}");
    }

    /// Repeater stages compose: simulated delay through a buffered line
    /// equals the sum of simulated stage delays plus the intrinsic.
    #[test]
    fn repeater_stages_compose() {
        let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
        let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::source_only(0.0, 0.05, 180.0));
        let ip = b.insertion_point(Point::new(4000.0, 0.0));
        let t1 = b.terminal(Point::new(8000.0, 0.0), Terminal::sink_only(0.0, 0.05));
        b.wire(t0, ip);
        b.wire(ip, t1);
        let net = b.build().unwrap();
        let buf = Buffer::new("1X", 50.0, 180.0, 0.05, 1.0);
        let lib = [Repeater::from_buffer_pair("r", &buf, &buf)];
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let mut asg = Assignment::empty(net.topology.vertex_count());
        asg.place(ip, 0, Orientation::AFacesParent);
        let res = simulate_from(&net, &rooted, &lib, &asg, TerminalId(0), &opts());
        let v_ip = ip;
        let v1 = net.topology.terminal_vertex(TerminalId(1));
        // The sink fires after the repeater input, by at least the
        // intrinsic delay.
        assert!(res.crossing[v1.0] > res.crossing[v_ip.0] + 50.0 * 0.99);
        // And the whole thing is finite and ordered along the line.
        let v0 = net.topology.terminal_vertex(TerminalId(0));
        assert!(res.crossing[v0.0] < res.crossing[v_ip.0]);
    }

    /// The simulated ARD of a buffered solution beats the unbuffered one
    /// whenever the Elmore-optimized choice says so (sanity on a case
    /// where the improvement is large).
    #[test]
    fn simulated_ard_agrees_on_clear_improvements() {
        let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
        let term = || Terminal::bidirectional(0.0, 0.0, 0.05, 180.0);
        let t0 = b.terminal(Point::new(0.0, 0.0), term());
        let ip = b.insertion_point(Point::new(5000.0, 0.0));
        let t1 = b.terminal(Point::new(10_000.0, 0.0), term());
        b.wire(t0, ip);
        b.wire(ip, t1);
        let net = b.build().unwrap();
        let buf = Buffer::new("1X", 50.0, 180.0, 0.05, 1.0);
        let lib = [Repeater::from_buffer_pair("r", &buf, &buf)];
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let empty = Assignment::empty(net.topology.vertex_count());
        let mut buffered = empty.clone();
        buffered.place(ip, 0, Orientation::AFacesParent);
        let o = opts();
        let bare = simulated_ard(&net, &rooted, &lib, &empty, &o);
        let with = simulated_ard(&net, &rooted, &lib, &buffered, &o);
        assert!(with < bare, "buffering must help: {with} vs {bare}");
    }
}
