use std::fmt;

/// Index of a terminal within a [`crate::Net`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TerminalId(pub usize);

impl fmt::Display for TerminalId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Timing and electrical parameters of a bus terminal (paper Fig. 1).
///
/// A terminal may act as a source (it has an input driver with arrival
/// time `AT` and output resistance `r`), as a sink (its output buffer adds
/// downstream delay `q` toward a primary output), or both. Following
/// paper §II, a non-source has `AT = −∞` and a non-sink has `q = −∞`; no
/// generality is lost by always carrying all four parameters.
///
/// # Examples
///
/// ```
/// use msrnet_rctree::Terminal;
///
/// let bidir = Terminal::bidirectional(120.0, 80.0, 0.05, 180.0);
/// assert!(bidir.is_source() && bidir.is_sink());
///
/// let src = Terminal::source_only(0.0, 0.05, 180.0);
/// assert!(src.is_source() && !src.is_sink());
///
/// let snk = Terminal::sink_only(55.0, 0.05);
/// assert!(!snk.is_source() && snk.is_sink());
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Terminal {
    /// Maximum delay from a primary input to the terminal's input driver,
    /// ps (`AT(v)`); `−∞` if the terminal never drives.
    pub arrival: f64,
    /// Maximum delay from the terminal's output buffer to a primary
    /// output, ps (`q(v)`); `−∞` if the terminal never receives.
    pub downstream: f64,
    /// Capacitance the terminal presents to the bus, pF (`c(v)`).
    pub cap: f64,
    /// Output resistance of the input driver when sourcing, Ω (`r(v)`).
    pub drive_res: f64,
    /// Intrinsic delay of the input driver when sourcing, ps. The paper
    /// folds this into `AT`; keeping it separate lets driver sizing swap
    /// drivers without touching `AT`.
    pub drive_intrinsic: f64,
}

impl Terminal {
    /// A terminal that can both drive and receive.
    pub fn bidirectional(arrival: f64, downstream: f64, cap: f64, drive_res: f64) -> Self {
        Terminal {
            arrival,
            downstream,
            cap,
            drive_res,
            drive_intrinsic: 0.0,
        }
    }

    /// A pure source: it drives the bus but is never a sink (`q = −∞`).
    pub fn source_only(arrival: f64, cap: f64, drive_res: f64) -> Self {
        Terminal {
            arrival,
            downstream: f64::NEG_INFINITY,
            cap,
            drive_res,
            drive_intrinsic: 0.0,
        }
    }

    /// A pure sink: it receives but never drives (`AT = −∞`).
    pub fn sink_only(downstream: f64, cap: f64) -> Self {
        Terminal {
            arrival: f64::NEG_INFINITY,
            downstream,
            cap,
            drive_res: 0.0,
            drive_intrinsic: 0.0,
        }
    }

    /// Sets the driver's intrinsic delay (ps) and returns the terminal.
    #[must_use]
    pub fn with_drive_intrinsic(mut self, intrinsic: f64) -> Self {
        self.drive_intrinsic = intrinsic;
        self
    }

    /// Whether the terminal can drive the bus.
    pub fn is_source(&self) -> bool {
        self.arrival > f64::NEG_INFINITY
    }

    /// Whether the terminal can receive from the bus.
    pub fn is_sink(&self) -> bool {
        self.downstream > f64::NEG_INFINITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_follow_infinities() {
        let t = Terminal::bidirectional(1.0, 2.0, 0.1, 100.0);
        assert!(t.is_source());
        assert!(t.is_sink());
        let s = Terminal::source_only(1.0, 0.1, 100.0);
        assert!(s.is_source());
        assert!(!s.is_sink());
        let k = Terminal::sink_only(2.0, 0.1);
        assert!(!k.is_source());
        assert!(k.is_sink());
    }

    #[test]
    fn zero_arrival_is_still_a_source() {
        // AT = 0 is a valid arrival time, not "no source".
        let t = Terminal::bidirectional(0.0, 0.0, 0.1, 100.0);
        assert!(t.is_source() && t.is_sink());
    }

    #[test]
    fn with_drive_intrinsic_sets_field() {
        let t = Terminal::source_only(0.0, 0.1, 100.0).with_drive_intrinsic(42.0);
        assert_eq!(t.drive_intrinsic, 42.0);
    }

    #[test]
    fn terminal_id_displays() {
        assert_eq!(format!("{}", TerminalId(3)), "t3");
    }
}
