//! Elmore delay evaluation for a multisource net under a **fixed**
//! repeater assignment.
//!
//! The engine implements the bidirectional capacitance recurrences of
//! paper §III (Eq. 1 bottom-up, Eq. 2 top-down): because a signal may
//! traverse any wire in either direction, every edge needs *two* load
//! values — the capacitance hanging below it and the capacitance hanging
//! above it — with repeaters decoupling whatever lies beyond them.
//! On top of the capacitance views it provides directed wire delays,
//! repeater crossing delays, terminal driver delays, and single-source
//! delay traversals (the classical linear-time RC-tree walk of
//! Rubinstein–Penfield–Horowitz, extended with repeater crossings).
//!
//! The linear-time ARD algorithm (paper Fig. 2) and its naive O(n²)
//! baseline are built on this engine in `msrnet-core`.

use crate::{Assignment, EdgeId, Net, Repeater, Rooted, TerminalId, VertexId, VertexKind};

/// Elmore delay evaluator for one `(net, rooting, library, assignment)`
/// quadruple.
///
/// Construction runs the two capacitance passes in `O(n)`; all
/// per-element queries are `O(1)` and traversals are `O(n)`.
///
/// # Examples
///
/// ```
/// use msrnet_geom::Point;
/// use msrnet_rctree::elmore::Elmore;
/// use msrnet_rctree::{Assignment, NetBuilder, Technology, Terminal, TerminalId};
///
/// let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
/// let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(0.0, 0.0, 1.0, 3.0));
/// let t1 = b.terminal(Point::new(2.0, 0.0), Terminal::bidirectional(0.0, 0.0, 1.0, 3.0));
/// b.wire(t0, t1);
/// let net = b.build()?;
/// let rooted = net.rooted_at_terminal(TerminalId(0));
/// let asg = Assignment::empty(net.topology.vertex_count());
/// let elmore = Elmore::new(&net, &rooted, &[], &asg);
/// // Driver sees its own load (1) plus wire (2) plus far load (1).
/// let d = elmore.delays_from(TerminalId(0));
/// assert_eq!(d[t1.0], 3.0 * 4.0 + 2.0 * (1.0 + 1.0));
/// # Ok::<(), msrnet_rctree::BuildNetError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Elmore<'a> {
    net: &'a Net,
    rooted: &'a Rooted,
    library: &'a [Repeater],
    assignment: &'a Assignment,
    /// Capacitance looking *into* the subtree of `v` from its parent edge
    /// (paper Eq. 1); for the root, the total decoupled tree capacitance.
    down: Vec<f64>,
    /// Capacitance looking *out of* the subtree of `v`, seen at the
    /// parent of `v` from `v`'s perspective (paper Eq. 2); unused at the
    /// root.
    up: Vec<f64>,
    /// Parent-edge wire resistance per vertex (0 at the root).
    pe_res: Vec<f64>,
    /// Parent-edge wire capacitance per vertex (0 at the root).
    pe_cap: Vec<f64>,
}

impl<'a> Elmore<'a> {
    /// Builds the evaluator, running both capacitance passes.
    ///
    /// # Panics
    ///
    /// Panics if the assignment references a repeater outside `library`
    /// or places a repeater on a non-insertion-point vertex.
    pub fn new(
        net: &'a Net,
        rooted: &'a Rooted,
        library: &'a [Repeater],
        assignment: &'a Assignment,
    ) -> Self {
        let n = net.topology.vertex_count();
        let mut pe_res = vec![0.0; n];
        let mut pe_cap = vec![0.0; n];
        for v in net.topology.vertices() {
            if let Some(e) = rooted.parent_edge(v) {
                pe_res[v.0] = net.edge_res(e);
                pe_cap[v.0] = net.edge_cap(e);
            }
        }
        let mut engine = Elmore {
            net,
            rooted,
            library,
            assignment,
            down: vec![0.0; n],
            up: vec![0.0; n],
            pe_res,
            pe_cap,
        };
        engine.compute_down();
        engine.compute_up();
        engine
    }

    /// Builds the evaluator from caller-maintained bottom-up subtree
    /// capacitances, running only the top-down pass (paper Eq. 2).
    ///
    /// `down[v]` must equal what [`Elmore::new`] would compute for the
    /// same `(net, rooted, library, assignment)` — incremental sessions
    /// keep that vector alive across edits (updating only root-path
    /// entries, see [`Elmore::into_down_caps`]) and rebuild the
    /// evaluator here without repeating the `O(n)` bottom-up pass.
    ///
    /// # Panics
    ///
    /// Panics if `down.len()` differs from the vertex count. Debug
    /// builds additionally spot-check `down` at the root against a fresh
    /// bottom-up pass.
    pub fn with_down_caps(
        net: &'a Net,
        rooted: &'a Rooted,
        library: &'a [Repeater],
        assignment: &'a Assignment,
        down: Vec<f64>,
    ) -> Self {
        let n = net.topology.vertex_count();
        assert_eq!(down.len(), n, "down-cap vector length mismatch");
        let mut pe_res = vec![0.0; n];
        let mut pe_cap = vec![0.0; n];
        for v in net.topology.vertices() {
            if let Some(e) = rooted.parent_edge(v) {
                pe_res[v.0] = net.edge_res(e);
                pe_cap[v.0] = net.edge_cap(e);
            }
        }
        let mut engine = Elmore {
            net,
            rooted,
            library,
            assignment,
            down,
            up: vec![0.0; n],
            pe_res,
            pe_cap,
        };
        #[cfg(debug_assertions)]
        {
            let fresh = Elmore::new(net, rooted, library, assignment);
            let r = rooted.root();
            debug_assert!(
                engine.down[r.0].to_bits() == fresh.down[r.0].to_bits(),
                "caller-maintained down caps diverge from Eq. 1 at the root"
            );
        }
        engine.compute_up();
        engine
    }

    /// The caller-maintainable bottom-up capacitance vector (paper
    /// Eq. 1), indexed by vertex.
    pub fn down_caps(&self) -> &[f64] {
        &self.down
    }

    /// Consumes the evaluator, returning the bottom-up capacitance
    /// vector for reuse with [`Elmore::with_down_caps`].
    pub fn into_down_caps(self) -> Vec<f64> {
        self.down
    }

    fn own_cap(&self, v: VertexId) -> f64 {
        match self.net.topology.kind(v) {
            VertexKind::Terminal(t) => self.net.terminal(t).cap,
            _ => 0.0,
        }
    }

    fn placed(&self, v: VertexId) -> Option<&Repeater> {
        self.assignment.at(v).map(|p| {
            assert!(
                self.net.topology.kind(v) == VertexKind::InsertionPoint,
                "repeater placed on non-insertion-point {v}"
            );
            &self.library[p.repeater]
        })
    }

    /// Paper Eq. 1: bottom-up accumulation with repeater decoupling.
    fn compute_down(&mut self) {
        for v in self.rooted.postorder() {
            self.down[v.0] = match self.placed(v) {
                Some(rep) => {
                    // msrnet-allow: panic placed(v) returned Some, so the assignment has an entry
                    let orient = self.assignment.at(v).expect("placed").orientation;
                    rep.cap_facing_parent(orient)
                }
                None => {
                    let mut c = self.own_cap(v);
                    for &u in self.rooted.children(v) {
                        c += self.pe_cap[u.0] + self.down[u.0];
                    }
                    c
                }
            };
        }
    }

    /// Paper Eq. 2: top-down accumulation of the capacitance outside each
    /// subtree.
    fn compute_up(&mut self) {
        for &v in self.rooted.preorder() {
            let Some(p) = self.rooted.parent(v) else {
                continue;
            };
            self.up[v.0] = match self.placed(p) {
                Some(rep) => {
                    // msrnet-allow: panic placed(p) returned Some, so the assignment has an entry
                    let orient = self.assignment.at(p).expect("placed").orientation;
                    rep.cap_facing_child(orient)
                }
                None => {
                    let mut c = self.own_cap(p);
                    for &s in self.rooted.children(p) {
                        if s != v {
                            c += self.pe_cap[s.0] + self.down[s.0];
                        }
                    }
                    if self.rooted.parent(p).is_some() {
                        c += self.pe_cap[p.0] + self.up[p.0];
                    }
                    c
                }
            };
        }
    }

    /// Capacitance looking into the subtree of `v` from its parent edge.
    pub fn down_cap(&self, v: VertexId) -> f64 {
        self.down[v.0]
    }

    /// Capacitance looking out of the subtree of `v`, seen at its parent.
    ///
    /// Unspecified (zero) at the root.
    pub fn up_cap(&self, v: VertexId) -> f64 {
        self.up[v.0]
    }

    /// Total capacitance a driver sitting at vertex `v` must charge:
    /// the vertex's own load plus every branch, with repeater decoupling.
    pub fn total_cap_at(&self, v: VertexId) -> f64 {
        debug_assert!(self.placed(v).is_none(), "drivers do not sit on repeaters");
        let mut c = self.own_cap(v);
        for &u in self.rooted.children(v) {
            c += self.pe_cap[u.0] + self.down[u.0];
        }
        if self.rooted.parent(v).is_some() {
            c += self.pe_cap[v.0] + self.up[v.0];
        }
        c
    }

    /// Elmore delay of `v`'s parent wire traversed downward
    /// (parent → `v`): `R_w · (C_w/2 + down(v))`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `v` is the root.
    pub fn edge_delay_down(&self, v: VertexId) -> f64 {
        debug_assert!(self.rooted.parent(v).is_some());
        self.pe_res[v.0] * (0.5 * self.pe_cap[v.0] + self.down[v.0])
    }

    /// Elmore delay of `v`'s parent wire traversed upward
    /// (`v` → parent): `R_w · (C_w/2 + up(v))`.
    pub fn edge_delay_up(&self, v: VertexId) -> f64 {
        debug_assert!(self.rooted.parent(v).is_some());
        self.pe_res[v.0] * (0.5 * self.pe_cap[v.0] + self.up[v.0])
    }

    /// Delay across the repeater at `v` for a root-ward (upstream)
    /// signal: intrinsic plus output resistance times the load above `v`.
    ///
    /// Returns 0 when no repeater is placed at `v`.
    pub fn crossing_up(&self, v: VertexId) -> f64 {
        match self.placed(v) {
            None => 0.0,
            Some(rep) => {
                // msrnet-allow: panic placed(v) returned Some, so the assignment has an entry
                let orient = self.assignment.at(v).expect("placed").orientation;
                let drive = rep.upstream_drive(orient);
                drive.intrinsic + drive.out_res * (self.pe_cap[v.0] + self.up[v.0])
            }
        }
    }

    /// Delay across the repeater at `v` for a leaf-ward (downstream)
    /// signal: intrinsic plus output resistance times the load below `v`.
    ///
    /// Returns 0 when no repeater is placed at `v`.
    ///
    /// # Panics
    ///
    /// Panics if a repeater is placed at a vertex without exactly one
    /// child (insertion points are degree 2).
    pub fn crossing_down(&self, v: VertexId) -> f64 {
        match self.placed(v) {
            None => 0.0,
            Some(rep) => {
                let children = self.rooted.children(v);
                assert_eq!(children.len(), 1, "repeater vertex must have one child");
                let u = children[0];
                // msrnet-allow: panic placed(v) returned Some, so the assignment has an entry
                let orient = self.assignment.at(v).expect("placed").orientation;
                let drive = rep.downstream_drive(orient);
                drive.intrinsic + drive.out_res * (self.pe_cap[u.0] + self.down[u.0])
            }
        }
    }

    /// Delay of terminal `t`'s input driver when it sources the net:
    /// driver intrinsic plus `r(t)` times the total decoupled load.
    pub fn driver_delay(&self, t: TerminalId) -> f64 {
        let term = self.net.terminal(t);
        let v = self.net.topology.terminal_vertex(t);
        term.drive_intrinsic + term.drive_res * self.total_cap_at(v)
    }

    /// Elmore arrival (driver delay included, `AT` excluded) at **every
    /// vertex** when terminal `t` drives the net — one `O(n)` traversal.
    ///
    /// Entry `v` is the delay from the driver input at `t` to vertex `v`;
    /// entry for `t`'s own vertex is the bare driver delay.
    pub fn delays_from(&self, t: TerminalId) -> Vec<f64> {
        let n = self.net.topology.vertex_count();
        let src = self.net.topology.terminal_vertex(t);
        let mut delay = vec![f64::NAN; n];
        delay[src.0] = self.driver_delay(t);
        let mut stack = vec![(src, src)];
        while let Some((v, pred)) = stack.pop() {
            for &(u, _e) in self.net.topology.neighbors(v) {
                if u == pred && u != v {
                    continue;
                }
                if u == v {
                    continue;
                }
                let mut d = delay[v.0];
                let upward = self.rooted.parent(v) == Some(u);
                if v != src {
                    // Passing through a repeater at v (degree 2: the
                    // crossing direction matches the direction of travel).
                    d += if upward {
                        self.crossing_up(v)
                    } else {
                        self.crossing_down(v)
                    };
                }
                d += if upward {
                    self.edge_delay_up(v)
                } else {
                    self.edge_delay_down(u)
                };
                delay[u.0] = d;
                stack.push((u, v));
            }
        }
        delay
    }

    /// Raw Elmore path delay `PD(u → w)` from source terminal `u` to sink
    /// terminal `w`, including `u`'s driver but **excluding** `AT(u)` and
    /// `q(w)`.
    ///
    /// `O(n)`; use [`Elmore::delays_from`] when many sinks are queried.
    pub fn path_delay(&self, u: TerminalId, w: TerminalId) -> f64 {
        let wv = self.net.topology.terminal_vertex(w);
        self.delays_from(u)[wv.0]
    }

    /// Augmented source-to-sink delay
    /// `AT(u) + PD(u → w) + q(w)` (the quantity the ARD maximizes).
    ///
    /// Returns `-∞` if `u` is not a source or `w` is not a sink.
    pub fn augmented_delay(&self, u: TerminalId, w: TerminalId) -> f64 {
        let tu = self.net.terminal(u);
        let tw = self.net.terminal(w);
        if !tu.is_source() || !tw.is_sink() {
            return f64::NEG_INFINITY;
        }
        tu.arrival + self.path_delay(u, w) + tw.downstream
    }

    /// The RC-radius from source `t`: the maximum raw path delay to any
    /// sink terminal (the classical single-source performance measure).
    ///
    /// Returns `-∞` if the net has no sink other than `t` itself.
    pub fn rc_radius(&self, t: TerminalId) -> f64 {
        let delays = self.delays_from(t);
        let mut worst = f64::NEG_INFINITY;
        for w in self.net.terminal_ids() {
            if w != t && self.net.terminal(w).is_sink() {
                let wv = self.net.topology.terminal_vertex(w);
                worst = worst.max(delays[wv.0]);
            }
        }
        worst
    }

    /// The parent-edge wire resistance of `v` (0 at the root), Ω.
    pub fn parent_edge_res(&self, v: VertexId) -> f64 {
        self.pe_res[v.0]
    }

    /// The parent-edge wire capacitance of `v` (0 at the root), pF.
    pub fn parent_edge_cap(&self, v: VertexId) -> f64 {
        self.pe_cap[v.0]
    }

    /// The edge id of `v`'s parent wire, if any.
    pub fn parent_edge(&self, v: VertexId) -> Option<EdgeId> {
        self.rooted.parent_edge(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Buffer, NetBuilder, Orientation, Technology, Terminal};
    use msrnet_geom::Point;

    fn term(cap: f64, res: f64) -> Terminal {
        Terminal::bidirectional(0.0, 0.0, cap, res)
    }

    /// t0 --(2)-- t1, unit parasitics, caps 1, drive 3 Ω.
    fn two_pin() -> Net {
        let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
        let t0 = b.terminal(Point::new(0.0, 0.0), term(1.0, 3.0));
        let t1 = b.terminal(Point::new(2.0, 0.0), term(1.0, 3.0));
        b.wire(t0, t1);
        b.build().unwrap()
    }

    #[test]
    fn two_pin_caps_and_delays_by_hand() {
        let net = two_pin();
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let asg = Assignment::empty(net.topology.vertex_count());
        let e = Elmore::new(&net, &rooted, &[], &asg);
        let v1 = net.topology.terminal_vertex(TerminalId(1));
        let v0 = net.topology.terminal_vertex(TerminalId(0));
        assert_eq!(e.down_cap(v1), 1.0);
        assert_eq!(e.up_cap(v1), 1.0);
        assert_eq!(e.total_cap_at(v0), 4.0);
        assert_eq!(e.total_cap_at(v1), 4.0);
        assert_eq!(e.driver_delay(TerminalId(0)), 12.0);
        // Wire traversed either way: R (C/2 + far load) = 2(1+1) = 4.
        assert_eq!(e.edge_delay_down(v1), 4.0);
        assert_eq!(e.edge_delay_up(v1), 4.0);
        assert_eq!(e.path_delay(TerminalId(0), TerminalId(1)), 16.0);
        assert_eq!(e.path_delay(TerminalId(1), TerminalId(0)), 16.0);
        assert_eq!(e.rc_radius(TerminalId(0)), 16.0);
        assert_eq!(e.augmented_delay(TerminalId(0), TerminalId(1)), 16.0);
    }

    /// t0 --(1)-- ip --(1)-- t1 with an asymmetric repeater at ip.
    fn repeater_net() -> (Net, Repeater) {
        let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
        let t0 = b.terminal(Point::new(0.0, 0.0), term(1.0, 3.0));
        let ip = b.insertion_point(Point::new(1.0, 0.0));
        let t1 = b.terminal(Point::new(2.0, 0.0), term(1.0, 3.0));
        b.wire(t0, ip);
        b.wire(ip, t1);
        let net = b.build().unwrap();
        let fwd = Buffer::new("fwd", 10.0, 2.0, 0.5, 1.0);
        let bwd = Buffer::new("bwd", 20.0, 4.0, 0.25, 1.0);
        let rep = Repeater::from_buffer_pair("asym", &fwd, &bwd);
        (net, rep)
    }

    #[test]
    fn repeater_decouples_capacitance_both_ways() {
        let (net, rep) = repeater_net();
        let lib = [rep];
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let mut asg = Assignment::empty(net.topology.vertex_count());
        let ip = net
            .topology
            .insertion_points()
            .next()
            .expect("one insertion point");
        asg.place(ip, 0, Orientation::AFacesParent);
        let e = Elmore::new(&net, &rooted, &lib, &asg);
        let v1 = net.topology.terminal_vertex(TerminalId(1));
        // From above, the subtree at ip is just the A-side input cap.
        assert_eq!(e.down_cap(ip), 0.5);
        // From below, everything above t1 is the B-side input cap.
        assert_eq!(e.up_cap(v1), 0.25);
        // Loads on each side of the repeater.
        let v0 = net.topology.terminal_vertex(TerminalId(0));
        assert_eq!(e.total_cap_at(v0), 1.0 + 1.0 + 0.5);
        assert_eq!(e.total_cap_at(v1), 1.0 + 1.0 + 0.25);
    }

    #[test]
    fn repeater_crossing_delays_by_hand() {
        let (net, rep) = repeater_net();
        let lib = [rep];
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let mut asg = Assignment::empty(net.topology.vertex_count());
        let ip = net.topology.insertion_points().next().unwrap();
        asg.place(ip, 0, Orientation::AFacesParent);
        let e = Elmore::new(&net, &rooted, &lib, &asg);
        // Downward crossing drives wire (1) + far terminal (1) with the
        // A→B buffer: 10 + 2·2 = 14.
        assert_eq!(e.crossing_down(ip), 14.0);
        // Upward crossing drives wire (1) + root terminal (1) with the
        // B→A buffer: 20 + 4·2 = 28.
        assert_eq!(e.crossing_up(ip), 28.0);
        // Full forward path: driver 3·2.5 + wire 1·(0.5+0.5) + crossing 14
        //   + wire 1·(0.5+1) = 7.5 + 1 + 14 + 1.5 = 24.
        assert!((e.path_delay(TerminalId(0), TerminalId(1)) - 24.0).abs() < 1e-12);
        // Full reverse path: 3·2.25 + 1·(0.5+0.25) + 28 + 1·(0.5+1) = 37.
        assert!((e.path_delay(TerminalId(1), TerminalId(0)) - 37.0).abs() < 1e-12);
    }

    #[test]
    fn flipping_an_asymmetric_repeater_swaps_directions() {
        let (net, rep) = repeater_net();
        let lib = [rep];
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let ip = net.topology.insertion_points().next().unwrap();
        let mut asg = Assignment::empty(net.topology.vertex_count());
        asg.place(ip, 0, Orientation::BFacesParent);
        let e = Elmore::new(&net, &rooted, &lib, &asg);
        // Now the B side faces t0: forward traffic uses the B→A buffer.
        assert_eq!(e.down_cap(ip), 0.25);
        assert_eq!(e.crossing_down(ip), 20.0 + 4.0 * 2.0);
        assert_eq!(e.crossing_up(ip), 10.0 + 2.0 * 2.0);
    }

    #[test]
    fn delays_are_rooting_invariant() {
        // Physical delays cannot depend on which terminal we root at.
        let (net, rep) = repeater_net();
        let lib = [rep];
        let ip = net.topology.insertion_points().next().unwrap();
        let mut results = Vec::new();
        for (root, orient) in [
            (TerminalId(0), Orientation::AFacesParent),
            (TerminalId(1), Orientation::BFacesParent),
        ] {
            // Rooting at t1 flips which side faces the parent, so the
            // physical orientation (A toward t0) needs the flipped enum.
            let rooted = net.rooted_at_terminal(root);
            let mut asg = Assignment::empty(net.topology.vertex_count());
            asg.place(ip, 0, orient);
            let e = Elmore::new(&net, &rooted, &lib, &asg);
            results.push((
                e.path_delay(TerminalId(0), TerminalId(1)),
                e.path_delay(TerminalId(1), TerminalId(0)),
            ));
        }
        assert!((results[0].0 - results[1].0).abs() < 1e-12);
        assert!((results[0].1 - results[1].1).abs() < 1e-12);
    }

    #[test]
    fn star_net_branch_loads() {
        // t0 at root, branch s with two leaves t1 (len 1) and t2 (len 3).
        let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
        let t0 = b.terminal(Point::new(0.0, 0.0), term(1.0, 2.0));
        let s = b.steiner(Point::new(1.0, 0.0));
        let t1 = b.terminal(Point::new(2.0, 0.0), term(1.0, 2.0));
        let t2 = b.terminal(Point::new(1.0, 3.0), term(1.0, 2.0));
        b.wire(t0, s);
        b.wire(s, t1);
        b.wire(s, t2);
        let net = b.build().unwrap();
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let asg = Assignment::empty(net.topology.vertex_count());
        let e = Elmore::new(&net, &rooted, &[], &asg);
        // down(s) = (1 + 1) + (3 + 1) = 6; up(t1) = everything minus its
        // own branch = t0 side (1 + 1·wire) + t2 branch (3+1) = 6.
        assert_eq!(e.down_cap(s), 6.0);
        let v1 = net.topology.terminal_vertex(TerminalId(1));
        let v2 = net.topology.terminal_vertex(TerminalId(2));
        assert_eq!(e.up_cap(v1), 1.0 + 1.0 + 4.0);
        assert_eq!(e.up_cap(v2), 1.0 + 1.0 + 2.0);
        // Total cap is the same seen from any terminal (no repeaters).
        let total = net.total_cap();
        for t in net.terminal_ids() {
            let v = net.topology.terminal_vertex(t);
            assert!((e.total_cap_at(v) - total).abs() < 1e-12);
        }
    }

    #[test]
    fn delays_from_covers_all_vertices() {
        let (net, rep) = repeater_net();
        let lib = [rep];
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let mut asg = Assignment::empty(net.topology.vertex_count());
        let ip = net.topology.insertion_points().next().unwrap();
        asg.place(ip, 0, Orientation::AFacesParent);
        let e = Elmore::new(&net, &rooted, &lib, &asg);
        for t in net.terminal_ids() {
            let d = e.delays_from(t);
            assert!(d.iter().all(|x| x.is_finite()), "all vertices reached");
        }
    }

    #[test]
    fn with_down_caps_matches_full_construction() {
        let (net, rep) = repeater_net();
        let lib = [rep];
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let mut asg = Assignment::empty(net.topology.vertex_count());
        let ip = net.topology.insertion_points().next().unwrap();
        asg.place(ip, 0, Orientation::AFacesParent);
        let full = Elmore::new(&net, &rooted, &lib, &asg);
        let down = full.down_caps().to_vec();
        let rebuilt = Elmore::with_down_caps(&net, &rooted, &lib, &asg, down);
        for v in net.topology.vertices() {
            assert_eq!(full.down_cap(v).to_bits(), rebuilt.down_cap(v).to_bits());
            assert_eq!(full.up_cap(v).to_bits(), rebuilt.up_cap(v).to_bits());
        }
        assert_eq!(
            full.path_delay(TerminalId(0), TerminalId(1)).to_bits(),
            rebuilt.path_delay(TerminalId(0), TerminalId(1)).to_bits()
        );
        // The vector survives a round-trip for the next rebuild.
        let down = rebuilt.into_down_caps();
        assert_eq!(down.len(), net.topology.vertex_count());
    }

    #[test]
    fn augmented_delay_respects_roles() {
        let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
        let t0 = b.terminal(
            Point::new(0.0, 0.0),
            Terminal::source_only(100.0, 1.0, 3.0),
        );
        let t1 = b.terminal(Point::new(2.0, 0.0), Terminal::sink_only(50.0, 1.0));
        b.wire(t0, t1);
        let net = b.build().unwrap();
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let asg = Assignment::empty(net.topology.vertex_count());
        let e = Elmore::new(&net, &rooted, &[], &asg);
        let fwd = e.augmented_delay(TerminalId(0), TerminalId(1));
        assert_eq!(fwd, 100.0 + 16.0 + 50.0);
        // The reverse direction is infeasible: t1 is not a source.
        assert_eq!(
            e.augmented_delay(TerminalId(1), TerminalId(0)),
            f64::NEG_INFINITY
        );
    }
}
