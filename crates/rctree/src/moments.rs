//! Higher-order moment analysis of RC trees.
//!
//! The Elmore delay is the first moment of the impulse response; the
//! paper (§II footnote 7) notes the ARD "does not rely on the Elmore
//! delay model; indeed the ARD is well defined regardless of how
//! `PD(u,v)` is calculated". This module provides the classical
//! second-order refinement: per-node first and second moments of the
//! transfer function under a fixed repeater assignment, and the **D2M**
//! delay metric `ln 2 · m1² / √m2` (Alpert–Devgan–Kashyap), which tracks
//! 50 %-crossing delays far better than Elmore on far-from-source nodes.
//!
//! Moments propagate source-ward exactly like Elmore delays: with the
//! downstream capacitance views in hand,
//!
//! * `m1(v) = Σ_k R_{path∩k} C_k` (the Elmore delay), and
//! * `m2(v) = Σ_k R_{path∩k} C_k · m1(k)`,
//!
//! computed here by a two-pass traversal per source: one pass
//! accumulating `C·m1` products into "moment-weighted capacitance" views
//! mirroring the plain capacitance recurrences, one pass walking delays
//! outward. Repeaters decouple and re-drive exactly as in the Elmore
//! engine; each stage's moments compose additively along the path (a
//! first-order approximation consistent with how buffered stages are
//! summed in the Elmore model).

use crate::elmore::Elmore;
use crate::{Assignment, Net, Repeater, Rooted, TerminalId, VertexId, VertexKind};

/// Per-vertex first and second moments of the response when one terminal
/// drives the net, plus the D2M delay estimate.
#[derive(Clone, Debug)]
pub struct MomentAnalysis {
    /// First moment (Elmore delay), ps, per vertex.
    pub m1: Vec<f64>,
    /// Second moment, ps², per vertex.
    pub m2: Vec<f64>,
}

impl MomentAnalysis {
    /// The D2M delay estimate at `v`: `ln 2 · m1² / √m2`, falling back
    /// to the Elmore value scaled by `ln 2` where `m2` vanishes (e.g. at
    /// the driver pin).
    ///
    /// D2M is a provably stable 50 %-delay metric; it approaches
    /// `ln 2 · m1` (the single-pole answer) on far-downstream nodes and
    /// undershoots Elmore everywhere, mirroring the known pessimism of
    /// the Elmore bound.
    pub fn d2m(&self, v: VertexId) -> f64 {
        let m1 = self.m1[v.0];
        let m2 = self.m2[v.0];
        if m2 <= 0.0 || m1 <= 0.0 {
            return std::f64::consts::LN_2 * m1;
        }
        std::f64::consts::LN_2 * m1 * m1 / m2.sqrt()
    }
}

/// Computes per-vertex moments when terminal `source` drives the net
/// under `assignment`.
///
/// The driver and each repeater stage contribute single-pole moments
/// (`m1 = R·C_load + intrinsic`, `m2 = m1²` for the lumped stage);
/// wire segments contribute distributed-RC moments. Stages separated by
/// repeaters compose additively.
pub fn moments_from(
    net: &Net,
    rooted: &Rooted,
    library: &[Repeater],
    assignment: &Assignment,
    source: TerminalId,
) -> MomentAnalysis {
    let elmore = Elmore::new(net, rooted, library, assignment);
    let n = net.topology.vertex_count();
    // First pass: per-vertex Elmore arrival from the source (m1) via the
    // existing engine.
    let m1 = elmore.delays_from(source);

    // Second pass: m2 via the recurrence m2(v) = Σ_k R_k C_k m1(k),
    // where the sum runs over elements k whose resistance lies on the
    // source→v path. We walk outward from the source accumulating
    //   m2(next) = m2(v) + R_step · Σ_{k downstream of step} C_k m1(k)
    // and the weighted sums Σ C_k m1(k) come from a capacitance-style
    // bottom-up/top-down pair computed against the *driving direction*.
    // For tractability we reuse the per-direction capacitance views and
    // approximate each element's m1(k) by the arrival at its owning
    // vertex — exact for lumped loads, midpoint-rule for distributed
    // wires (the same discretization the insertion points already
    // impose, since subdivided wires are short).
    let mut cm = vec![0.0f64; n]; // Σ C·m1 looking *into* subtree of v
    for v in rooted.postorder() {
        cm[v.0] = match assignment.at(v) {
            Some(p) => {
                // msrnet-allow: panic placements index the library they were solved against
                let rep = &library[p.repeater];
                rep.cap_facing_parent(p.orientation) * m1[v.0]
            }
            None => {
                let mut acc = own_cap(net, v) * m1[v.0];
                for &u in rooted.children(v) {
                    acc += elmore.parent_edge_cap(u) * 0.5 * (m1[v.0] + m1[u.0])
                        + cm[u.0];
                }
                acc
            }
        };
    }
    let mut cm_up = vec![0.0f64; n]; // Σ C·m1 looking *out of* subtree of v
    for &v in rooted.preorder() {
        let Some(p) = rooted.parent(v) else { continue };
        cm_up[v.0] = match assignment.at(p) {
            Some(pl) => {
                // msrnet-allow: panic placements index the library they were solved against
                let rep = &library[pl.repeater];
                rep.cap_facing_child(pl.orientation) * m1[p.0]
            }
            None => {
                let mut acc = own_cap(net, p) * m1[p.0];
                for &s in rooted.children(p) {
                    if s != v {
                        acc += elmore.parent_edge_cap(s) * 0.5 * (m1[p.0] + m1[s.0])
                            + cm[s.0];
                    }
                }
                if let Some(gp) = rooted.parent(p) {
                    acc += elmore.parent_edge_cap(p) * 0.5 * (m1[p.0] + m1[gp.0])
                        + cm_up[p.0];
                }
                acc
            }
        };
    }

    let src_v = net.topology.terminal_vertex(source);
    let term = net.terminal(source);
    let mut m2 = vec![f64::NAN; n];
    // Driver stage: for a lumped driver the RC part of the second moment
    // is R · Σ C_k m1(k); the intrinsic delay T is an ideal delay
    // e^{-sT} ≈ 1 + Ts + T²/2 s², contributing T²/2 (its cross terms
    // with downstream elements are already carried by the global m1
    // inside the Σ C·m1 masses).
    let src_cm = {
        let mut acc = own_cap(net, src_v) * m1[src_v.0];
        for &u in rooted.children(src_v) {
            acc += elmore.parent_edge_cap(u) * 0.5 * (m1[src_v.0] + m1[u.0]) + cm[u.0];
        }
        if let Some(p) = rooted.parent(src_v) {
            acc += elmore.parent_edge_cap(src_v) * 0.5 * (m1[src_v.0] + m1[p.0])
                + cm_up[src_v.0];
        }
        acc
    };
    m2[src_v.0] =
        term.drive_res * src_cm + 0.5 * term.drive_intrinsic * term.drive_intrinsic;

    // Walk outward, adding each step's R times the C·m1 mass beyond it.
    let mut stack = vec![(src_v, src_v)];
    while let Some((v, pred)) = stack.pop() {
        for &(u, _e) in net.topology.neighbors(v) {
            if u == pred && u != v {
                continue;
            }
            if u == v {
                continue;
            }
            let upward = rooted.parent(v) == Some(u);
            let mut acc = m2[v.0];
            if v != src_v {
                if let Some(p) = assignment.at(v) {
                    // msrnet-allow: panic placements index the library they were solved against
                    let rep = &library[p.repeater];
                    let drive = if upward {
                        rep.upstream_drive(p.orientation)
                    } else {
                        rep.downstream_drive(p.orientation)
                    };
                    let mass = if upward {
                        elmore.parent_edge_cap(v) * 0.5 * (m1[v.0] + m1[u.0]) + cm_up[v.0]
                    } else {
                        elmore.parent_edge_cap(u) * 0.5 * (m1[v.0] + m1[u.0]) + cm[u.0]
                    };
                    // Ideal-delay moment of the intrinsic: T²/2 plus the
                    // cross term with everything upstream (T · m1 at the
                    // repeater input pin).
                    let t = drive.intrinsic;
                    acc += 0.5 * t * t + t * m1[v.0] + drive.out_res * mass;
                }
            }
            let (r_step, mass) = if upward {
                (
                    elmore.parent_edge_res(v),
                    elmore.parent_edge_cap(v) * 0.5 * (m1[v.0] + m1[u.0]) + cm_up[v.0],
                )
            } else {
                (
                    elmore.parent_edge_res(u),
                    elmore.parent_edge_cap(u) * 0.5 * (m1[v.0] + m1[u.0]) + cm[u.0],
                )
            };
            m2[u.0] = acc + r_step * mass;
            stack.push((u, v));
        }
    }
    MomentAnalysis { m1, m2 }
}

fn own_cap(net: &Net, v: VertexId) -> f64 {
    match net.topology.kind(v) {
        VertexKind::Terminal(t) => net.terminal(t).cap,
        _ => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetBuilder, Technology, Terminal};
    use msrnet_geom::Point;

    /// Driver R through one lumped load C: m1 = RC, m2 = R·C·m1 = (RC)².
    #[test]
    fn single_pole_moments() {
        let mut b = NetBuilder::new(Technology::new(0.0, 0.0));
        let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::source_only(0.0, 0.0, 4.0));
        let t1 = b.terminal(Point::new(1.0, 0.0), Terminal::sink_only(0.0, 2.0));
        b.wire(t0, t1);
        let net = b.build().unwrap();
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let asg = Assignment::empty(net.topology.vertex_count());
        let m = moments_from(&net, &rooted, &[], &asg, TerminalId(0));
        let v1 = net.topology.terminal_vertex(TerminalId(1));
        assert!((m.m1[v1.0] - 8.0).abs() < 1e-9);
        assert!((m.m2[v1.0] - 64.0).abs() < 1e-9, "m2 = {}", m.m2[v1.0]);
        // Single pole: D2M = ln2 · m1²/√m2 = ln2 · m1 — exact.
        assert!((m.d2m(v1) - std::f64::consts::LN_2 * 8.0).abs() < 1e-9);
    }

    /// Two cascaded RC sections: R1=1,C1=1 then R2=1,C2=1 (lumped at the
    /// terminals). m1(end) = R1(C1+C2) + R2 C2 = 3.
    /// m2(end) = R1(C1·m1(a) + C2·m1(end)) + R2·C2·m1(end)
    ///         = 1·(1·2 + 1·3) + 1·1·3 = 8.
    #[test]
    fn cascade_moments_by_hand() {
        let mut b = NetBuilder::new(Technology::new(0.0, 0.0));
        let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::source_only(0.0, 0.0, 1.0));
        let mid = b.terminal(Point::new(1.0, 0.0), Terminal::sink_only(0.0, 1.0));
        let end = b.terminal(Point::new(2.0, 0.0), Terminal::sink_only(0.0, 1.0));
        // Explicit resistive wires of zero capacitance: emulate discrete
        // R by unit-res tech? unit res is 0 here, so give the wires
        // length and a custom technology instead.
        let _ = (mid, end);
        let net = b.build();
        // Rebuild with resistive technology.
        drop(net);
        let mut b = NetBuilder::new(Technology::new(1.0, 0.0));
        let t0b = b.terminal(Point::new(0.0, 0.0), Terminal::source_only(0.0, 0.0, 0.0));
        let midb = b.terminal(Point::new(1.0, 0.0), Terminal::sink_only(0.0, 1.0));
        let endb = b.terminal(Point::new(2.0, 0.0), Terminal::sink_only(0.0, 1.0));
        b.wire(t0b, midb);
        b.wire(midb, endb);
        let net = b.build().unwrap();
        let _ = t0;
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let asg = Assignment::empty(net.topology.vertex_count());
        let m = moments_from(&net, &rooted, &[], &asg, TerminalId(0));
        let vm = net.topology.terminal_vertex(TerminalId(1));
        let ve = net.topology.terminal_vertex(TerminalId(2));
        assert!((m.m1[vm.0] - 2.0).abs() < 1e-9);
        assert!((m.m1[ve.0] - 3.0).abs() < 1e-9);
        assert!((m.m2[vm.0] - (1.0 * (1.0 * 2.0 + 1.0 * 3.0))).abs() < 1e-9);
        assert!((m.m2[ve.0] - 8.0).abs() < 1e-9, "m2 = {}", m.m2[ve.0]);
    }

    #[test]
    fn d2m_is_at_most_elmore() {
        // D2M ≤ Elmore on every node of a realistic net (the classical
        // pessimism-of-Elmore result: m2 ≥ m1² is false in general, but
        // D2M ≤ m1 holds whenever √m2 ≥ ln2·m1 — check empirically).
        let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
        let term = |at: f64| Terminal::bidirectional(at, 0.0, 0.05, 180.0);
        let t0 = b.terminal(Point::new(0.0, 0.0), term(0.0));
        let s = b.steiner(Point::new(4000.0, 0.0));
        let t1 = b.terminal(Point::new(8000.0, 0.0), term(0.0));
        let t2 = b.terminal(Point::new(4000.0, 5000.0), term(0.0));
        b.wire(t0, s);
        b.wire(s, t1);
        b.wire(s, t2);
        let net = b.build().unwrap();
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let asg = Assignment::empty(net.topology.vertex_count());
        let m = moments_from(&net, &rooted, &[], &asg, TerminalId(0));
        for v in net.topology.vertices() {
            assert!(m.m1[v.0].is_finite());
            assert!(m.m2[v.0].is_finite());
            assert!(
                m.d2m(v) <= m.m1[v.0] + 1e-9,
                "D2M must not exceed Elmore at {v}"
            );
        }
    }

    #[test]
    fn moments_decouple_across_repeaters() {
        use crate::{Buffer, Orientation, Repeater};
        let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
        let t0 = b.terminal(
            Point::new(0.0, 0.0),
            Terminal::source_only(0.0, 0.05, 180.0),
        );
        let ip = b.insertion_point(Point::new(4000.0, 0.0));
        let t1 = b.terminal(Point::new(8000.0, 0.0), Terminal::sink_only(0.0, 0.05));
        b.wire(t0, ip);
        b.wire(ip, t1);
        let net = b.build().unwrap();
        let buf = Buffer::new("1X", 50.0, 180.0, 0.05, 1.0);
        let lib = [Repeater::from_buffer_pair("r", &buf, &buf)];
        let mut asg = Assignment::empty(net.topology.vertex_count());
        asg.place(ip, 0, Orientation::AFacesParent);
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let with = moments_from(&net, &rooted, &lib, &asg, TerminalId(0));
        let without = moments_from(
            &net,
            &rooted,
            &lib,
            &Assignment::empty(net.topology.vertex_count()),
            TerminalId(0),
        );
        let v1 = net.topology.terminal_vertex(TerminalId(1));
        // The m1 values must match the Elmore engine exactly.
        let elmore = Elmore::new(&net, &rooted, &lib, &asg);
        assert!((with.m1[v1.0] - elmore.path_delay(TerminalId(0), TerminalId(1))).abs() < 1e-9);
        // Buffering this 8 mm line reduces the Elmore delay at the sink.
        assert!(with.m1[v1.0] < without.m1[v1.0]);
        // D2M stays a valid (≤ Elmore) estimate in both cases; the
        // buffered net is closer to single-pole, so its D2M/Elmore ratio
        // is *higher* — the distributed unbuffered line is where Elmore
        // is most pessimistic.
        assert!(with.d2m(v1) <= with.m1[v1.0] + 1e-9);
        assert!(without.d2m(v1) <= without.m1[v1.0] + 1e-9);
        assert!(
            with.d2m(v1) / with.m1[v1.0] > without.d2m(v1) / without.m1[v1.0],
            "buffered stage should look more single-pole"
        );
    }
}
