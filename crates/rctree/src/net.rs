use std::fmt;

use msrnet_geom::Point;

use crate::{Orientation, Repeater, Technology, Terminal, TerminalId};

/// Index of a vertex within a [`Topology`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VertexId(pub usize);

/// Index of an edge (wire segment) within a [`Topology`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EdgeId(pub usize);

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// How a structural removal renumbered ids: removals compact their
/// arrays by `swap_remove`, so at most one vertex, one edge and one
/// terminal change id per removal — the previously-last element of each
/// array moves into the vacated slot. Each field records that move as
/// `(old_last_id, new_id)`, or `None` when the removed element was
/// itself last (a pure pop) or no element of that class was removed.
///
/// Callers holding ids across a removal apply the remap: an id equal to
/// `old_last_id` becomes `new_id`; the removed element's id is dead; all
/// other ids are unchanged.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StructuralRemap {
    /// The vertex move, if a vertex changed id.
    pub vertex: Option<(VertexId, VertexId)>,
    /// The edge move, if an edge changed id.
    pub edge: Option<(EdgeId, EdgeId)>,
    /// The terminal move, if a terminal changed id.
    pub terminal: Option<(TerminalId, TerminalId)>,
}

impl StructuralRemap {
    /// `v` after the removal this remap describes.
    pub fn map_vertex(&self, v: VertexId) -> VertexId {
        match self.vertex {
            Some((old, new)) if v == old => new,
            _ => v,
        }
    }

    /// `e` after the removal this remap describes.
    pub fn map_edge(&self, e: EdgeId) -> EdgeId {
        match self.edge {
            Some((old, new)) if e == old => new,
            _ => e,
        }
    }

    /// `t` after the removal this remap describes.
    pub fn map_terminal(&self, t: TerminalId) -> TerminalId {
        match self.terminal {
            Some((old, new)) if t == old => new,
            _ => t,
        }
    }
}

/// The role of a topology vertex.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VertexKind {
    /// A bus terminal (source and/or sink).
    Terminal(TerminalId),
    /// A Steiner branch point.
    Steiner,
    /// A prescribed degree-2 candidate repeater insertion point
    /// (paper §II: insertion points have degree two to avoid ambiguity
    /// about which side of the repeater a branch connects).
    InsertionPoint,
}

#[derive(Clone, Debug)]
struct EdgeRec {
    a: VertexId,
    b: VertexId,
    length: f64,
    // Wire-width scaling relative to the technology's unit wire: a wider
    // wire divides resistance and multiplies capacitance.
    res_scale: f64,
    cap_scale: f64,
}

/// A routing tree: vertices (terminals, Steiner points, insertion points)
/// connected by wire segments with physical lengths.
///
/// `Topology` is pure structure; electrical and timing data live in
/// [`Net`]. Topologies are built through [`NetBuilder`] or by the
/// `msrnet-steiner` constructors.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    positions: Vec<Point>,
    kinds: Vec<VertexKind>,
    edges: Vec<EdgeRec>,
    adjacency: Vec<Vec<(VertexId, EdgeId)>>,
    terminal_vertices: Vec<VertexId>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.kinds.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of terminals.
    pub fn terminal_count(&self) -> usize {
        self.terminal_vertices.len()
    }

    /// All vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.kinds.len()).map(VertexId)
    }

    /// All edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len()).map(EdgeId)
    }

    /// The role of vertex `v`.
    pub fn kind(&self, v: VertexId) -> VertexKind {
        self.kinds[v.0]
    }

    /// The planar position of vertex `v`, µm.
    pub fn position(&self, v: VertexId) -> Point {
        self.positions[v.0]
    }

    /// The degree of vertex `v`.
    pub fn degree(&self, v: VertexId) -> usize {
        self.adjacency[v.0].len()
    }

    /// Neighbors of `v` with the connecting edge.
    pub fn neighbors(&self, v: VertexId) -> &[(VertexId, EdgeId)] {
        &self.adjacency[v.0]
    }

    /// Endpoints of edge `e`.
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        let rec = &self.edges[e.0];
        (rec.a, rec.b)
    }

    /// Physical length of edge `e`, µm.
    pub fn length(&self, e: EdgeId) -> f64 {
        self.edges[e.0].length
    }

    /// The wire-width scaling of edge `e` as `(res_scale, cap_scale)`:
    /// the edge's resistance is `res_scale · r · length` and its
    /// capacitance `cap_scale · c · length`. Both default to 1 (unit
    /// width); a wire of width `w` typically has `res_scale = 1/w` and
    /// `cap_scale ≈ w`.
    pub fn edge_scaling(&self, e: EdgeId) -> (f64, f64) {
        let rec = &self.edges[e.0];
        (rec.res_scale, rec.cap_scale)
    }

    /// Sets the wire-width scaling of edge `e` (see
    /// [`Topology::edge_scaling`]).
    ///
    /// # Panics
    ///
    /// Panics if a scale is non-finite or negative.
    pub fn set_edge_scaling(&mut self, e: EdgeId, res_scale: f64, cap_scale: f64) {
        assert!(res_scale.is_finite() && res_scale >= 0.0, "bad res_scale");
        assert!(cap_scale.is_finite() && cap_scale >= 0.0, "bad cap_scale");
        let rec = &mut self.edges[e.0];
        rec.res_scale = res_scale;
        rec.cap_scale = cap_scale;
    }

    /// Moves vertex `v` to `pos` without touching edge lengths — pair
    /// with [`Topology::set_edge_length`] when the move should change
    /// wire parasitics (edge length and position are stored
    /// independently so detours and non-geometric lengths stay
    /// expressible).
    ///
    /// # Panics
    ///
    /// Panics if a coordinate is non-finite.
    pub fn set_position(&mut self, v: VertexId, pos: Point) {
        assert!(pos.x.is_finite() && pos.y.is_finite(), "bad position");
        self.positions[v.0] = pos;
    }

    /// Sets the physical length of edge `e`, µm.
    ///
    /// # Panics
    ///
    /// Panics if `length` is non-finite or negative.
    pub fn set_edge_length(&mut self, e: EdgeId, length: f64) {
        assert!(length.is_finite() && length >= 0.0, "bad edge length");
        self.edges[e.0].length = length;
    }

    /// Total wirelength, µm.
    pub fn total_wirelength(&self) -> f64 {
        self.edges.iter().map(|e| e.length).sum()
    }

    /// The vertex hosting terminal `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn terminal_vertex(&self, t: TerminalId) -> VertexId {
        self.terminal_vertices[t.0]
    }

    /// The terminal hosted at vertex `v`, if any.
    pub fn vertex_terminal(&self, v: VertexId) -> Option<TerminalId> {
        match self.kinds[v.0] {
            VertexKind::Terminal(t) => Some(t),
            _ => None,
        }
    }

    /// All candidate insertion-point vertices.
    pub fn insertion_points(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.vertices()
            .filter(|&v| self.kind(v) == VertexKind::InsertionPoint)
    }

    /// Number of candidate insertion points.
    pub fn insertion_point_count(&self) -> usize {
        self.insertion_points().count()
    }

    fn add_vertex(&mut self, pos: Point, kind: VertexKind) -> VertexId {
        let id = VertexId(self.kinds.len());
        self.positions.push(pos);
        self.kinds.push(kind);
        self.adjacency.push(Vec::new());
        if let VertexKind::Terminal(t) = kind {
            debug_assert_eq!(t.0, self.terminal_vertices.len());
            self.terminal_vertices.push(id);
        }
        id
    }

    fn add_edge(&mut self, a: VertexId, b: VertexId, length: f64) -> EdgeId {
        let id = EdgeId(self.edges.len());
        self.edges.push(EdgeRec {
            a,
            b,
            length,
            res_scale: 1.0,
            cap_scale: 1.0,
        });
        self.adjacency[a.0].push((b, id));
        self.adjacency[b.0].push((a, id));
        id
    }

    /// Splits every wire into pieces of at most `max_spacing` µm by
    /// inserting degree-2 [`VertexKind::InsertionPoint`] vertices, and
    /// guarantees at least one insertion point per original wire
    /// (paper §VI: "we also ensured that all wire segments contained at
    /// least one insertion point").
    ///
    /// Inserted points are spaced uniformly along each wire; positions are
    /// interpolated linearly between the endpoints (positions are only
    /// used for reporting — lengths drive the electrical model).
    ///
    /// # Panics
    ///
    /// Panics if `max_spacing` is not strictly positive.
    pub fn subdivide_for_insertion(&mut self, max_spacing: f64) {
        assert!(
            max_spacing.is_finite() && max_spacing > 0.0,
            "max_spacing must be positive"
        );
        let original_edges = self.edges.len();
        for eid in 0..original_edges {
            let EdgeRec { a, b, length, res_scale, cap_scale } = self.edges[eid];
            // ceil(length / spacing) pieces, but at least 2 so that at
            // least one interior insertion point exists.
            let pieces = ((length / max_spacing).ceil() as usize).max(2);
            let n_points = pieces - 1;
            let pa = self.positions[a.0];
            let pb = self.positions[b.0];
            let piece_len = length / pieces as f64;
            // Re-target the existing edge to the first inserted point and
            // append the remaining pieces.
            let mut prev = a;
            for i in 1..=n_points {
                let frac = i as f64 / pieces as f64;
                let pos = Point::new(
                    pa.x + (pb.x - pa.x) * frac,
                    pa.y + (pb.y - pa.y) * frac,
                );
                let ip = self.add_vertex(pos, VertexKind::InsertionPoint);
                if i == 1 {
                    self.retarget_edge(EdgeId(eid), prev, ip, piece_len);
                } else {
                    let ne = self.add_edge(prev, ip, piece_len);
                    self.set_edge_scaling(ne, res_scale, cap_scale);
                }
                prev = ip;
            }
            let ne = self.add_edge(prev, b, piece_len);
            self.set_edge_scaling(ne, res_scale, cap_scale);
        }
    }

    /// Ensures every terminal is a leaf by re-hosting non-leaf terminals
    /// on a fresh zero-length pendant vertex (paper §III: "any nonleaf
    /// terminal can be made a leaf by adding a new vertex and a
    /// zero-length edge").
    pub fn normalize_terminals_to_leaves(&mut self) {
        for t in 0..self.terminal_vertices.len() {
            let v = self.terminal_vertices[t];
            if self.degree(v) > 1 {
                let pos = self.positions[v.0];
                let leaf = VertexId(self.kinds.len());
                self.positions.push(pos);
                self.kinds.push(VertexKind::Terminal(TerminalId(t)));
                self.adjacency.push(Vec::new());
                self.kinds[v.0] = VertexKind::Steiner;
                self.terminal_vertices[t] = leaf;
                self.add_edge(v, leaf, 0.0);
            }
        }
    }

    fn retarget_edge(&mut self, e: EdgeId, keep: VertexId, new_other: VertexId, length: f64) {
        let rec = &mut self.edges[e.0];
        let old_other = if rec.a == keep { rec.b } else { rec.a };
        rec.a = keep;
        rec.b = new_other;
        rec.length = length;
        // Fix adjacency: drop the edge from old_other, add to new_other.
        self.adjacency[old_other.0].retain(|&(_, eid)| eid != e);
        self.adjacency[new_other.0].push((keep, e));
        let keep_adj = &mut self.adjacency[keep.0];
        for entry in keep_adj.iter_mut() {
            if entry.1 == e {
                entry.0 = new_other;
            }
        }
    }

    /// Appends a fresh leaf vertex of the given kind and wires it to
    /// `at` with a unit-width edge of the given length. Purely
    /// append-only: no existing vertex, edge or terminal changes id, and
    /// `at`'s adjacency list only grows at its end (so rooted traversal
    /// orders over the untouched part of the tree are preserved).
    ///
    /// # Panics
    ///
    /// Panics if `at` is out of range, a coordinate is non-finite, or
    /// `length` is negative or non-finite. A `Terminal` kind must carry
    /// the next free terminal id.
    pub fn attach_leaf(
        &mut self,
        at: VertexId,
        pos: Point,
        kind: VertexKind,
        length: f64,
    ) -> (VertexId, EdgeId) {
        assert!(at.0 < self.kinds.len(), "attach point out of range");
        assert!(pos.x.is_finite() && pos.y.is_finite(), "bad position");
        assert!(length.is_finite() && length >= 0.0, "bad edge length");
        let leaf = self.add_vertex(pos, kind);
        let e = self.add_edge(at, leaf, length);
        (leaf, e)
    }

    /// Removes leaf vertex `v`, its single incident edge, and (when `v`
    /// hosts a terminal) its terminal entry, compacting each array by
    /// `swap_remove`. Returns the id moves callers must apply to ids
    /// they hold (see [`StructuralRemap`]).
    ///
    /// Adjacency entries of surviving vertices are edited in place (the
    /// neighbor's entry for the removed edge is dropped; renamed ids are
    /// rewritten in their existing slots), so traversal orders over the
    /// rest of the tree are unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range or not a leaf (degree 1).
    pub fn remove_leaf(&mut self, v: VertexId) -> StructuralRemap {
        assert!(v.0 < self.kinds.len(), "vertex out of range");
        assert_eq!(self.adjacency[v.0].len(), 1, "vertex is not a leaf");
        let (nbr, e) = self.adjacency[v.0][0];
        self.adjacency[v.0].clear();
        self.adjacency[nbr.0].retain(|&(_, eid)| eid != e);
        let edge = self.swap_remove_edge(e);
        let terminal = match self.kinds[v.0] {
            VertexKind::Terminal(t) => self.swap_remove_terminal(t),
            _ => None,
        };
        let vertex = self.swap_remove_vertex(v);
        StructuralRemap {
            vertex,
            edge,
            terminal,
        }
    }

    /// Splits edge `e` at fraction `frac` of its length by inserting a
    /// degree-2 [`VertexKind::InsertionPoint`] vertex. Edge `e` keeps
    /// its id and becomes the `a`-side piece (length `frac × l`); the
    /// appended edge covers the rest (`l − frac × l`, so the two pieces
    /// sum to `l` exactly when the arithmetic is exact, e.g. at
    /// `frac = 0.5`). Both pieces inherit `e`'s width scaling; the new
    /// vertex's position is interpolated linearly. Existing adjacency
    /// entries are rewritten in place, so no traversal order changes.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range or `frac` is not in `[0, 1]`.
    pub fn split_edge(&mut self, e: EdgeId, frac: f64) -> (VertexId, EdgeId) {
        assert!(e.0 < self.edges.len(), "edge out of range");
        assert!(
            frac.is_finite() && (0.0..=1.0).contains(&frac),
            "frac must be in [0, 1]"
        );
        let EdgeRec { a, b, length, res_scale, cap_scale } = self.edges[e.0];
        let l1 = length * frac;
        let pa = self.positions[a.0];
        let pb = self.positions[b.0];
        let pos = Point::new(pa.x + (pb.x - pa.x) * frac, pa.y + (pb.y - pa.y) * frac);
        let ip = self.add_vertex(pos, VertexKind::InsertionPoint);
        let ne = EdgeId(self.edges.len());
        self.edges.push(EdgeRec {
            a: ip,
            b,
            length: length - l1,
            res_scale,
            cap_scale,
        });
        self.edges[e.0].b = ip;
        self.edges[e.0].length = l1;
        // In-place adjacency rewrites: `a` keeps edge `e` but now faces
        // the insertion point; `b` keeps its slot but switches to the
        // new edge.
        for entry in self.adjacency[a.0].iter_mut() {
            if entry.1 == e {
                entry.0 = ip;
            }
        }
        for entry in self.adjacency[b.0].iter_mut() {
            if entry.1 == e {
                *entry = (ip, ne);
            }
        }
        self.adjacency[ip.0].push((a, e));
        self.adjacency[ip.0].push((b, ne));
        (ip, ne)
    }

    /// Splices out degree-2 vertex `v`, merging its two incident edges
    /// into the first-adjacency one (summed length, shared width
    /// scaling) and removing the second edge and `v` by `swap_remove`.
    /// Returns the surviving merged edge's post-removal id and the id
    /// moves (see [`StructuralRemap`]). Surviving adjacency entries are
    /// rewritten in place.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range, hosts a terminal, does not have
    /// degree 2, or its two edges disagree (bitwise) on width scaling.
    pub fn splice_degree2(&mut self, v: VertexId) -> (EdgeId, StructuralRemap) {
        assert!(v.0 < self.kinds.len(), "vertex out of range");
        assert!(
            !matches!(self.kinds[v.0], VertexKind::Terminal(_)),
            "cannot splice a terminal vertex"
        );
        assert_eq!(self.adjacency[v.0].len(), 2, "vertex is not degree 2");
        let (x, e1) = self.adjacency[v.0][0];
        let (y, e2) = self.adjacency[v.0][1];
        let (l1, l2) = (self.edges[e1.0].length, self.edges[e2.0].length);
        assert!(
            self.edges[e1.0].res_scale.to_bits() == self.edges[e2.0].res_scale.to_bits()
                && self.edges[e1.0].cap_scale.to_bits() == self.edges[e2.0].cap_scale.to_bits(),
            "spliced edges must share width scaling"
        );
        // e1 becomes x — y with the summed length.
        let rec = &mut self.edges[e1.0];
        if rec.a == v {
            rec.a = y;
        } else {
            rec.b = y;
        }
        rec.length = l1 + l2;
        for entry in self.adjacency[x.0].iter_mut() {
            if entry.1 == e1 {
                entry.0 = y;
            }
        }
        for entry in self.adjacency[y.0].iter_mut() {
            if entry.1 == e2 {
                *entry = (x, e1);
            }
        }
        self.adjacency[v.0].clear();
        let remap = StructuralRemap {
            edge: self.swap_remove_edge(e2),
            vertex: self.swap_remove_vertex(v),
            terminal: None,
        };
        let survivor = remap.map_edge(e1);
        (survivor, remap)
    }

    /// Removes edge `e` by `swap_remove`, rewriting surviving adjacency
    /// references to the moved last edge in place. The caller must have
    /// already detached `e` from both endpoints' adjacency lists.
    fn swap_remove_edge(&mut self, e: EdgeId) -> Option<(EdgeId, EdgeId)> {
        let last = EdgeId(self.edges.len() - 1);
        self.edges.swap_remove(e.0);
        if e == last {
            return None;
        }
        let (a, b) = (self.edges[e.0].a, self.edges[e.0].b);
        for u in [a, b] {
            for entry in self.adjacency[u.0].iter_mut() {
                if entry.1 == last {
                    entry.1 = e;
                }
            }
        }
        Some((last, e))
    }

    /// Removes terminal `t`'s hosting record by `swap_remove`, relabeling
    /// the moved last terminal's vertex in place.
    fn swap_remove_terminal(&mut self, t: TerminalId) -> Option<(TerminalId, TerminalId)> {
        let last = TerminalId(self.terminal_vertices.len() - 1);
        self.terminal_vertices.swap_remove(t.0);
        if t == last {
            return None;
        }
        let host = self.terminal_vertices[t.0];
        self.kinds[host.0] = VertexKind::Terminal(t);
        Some((last, t))
    }

    /// Removes vertex `v` by `swap_remove`, rewriting surviving
    /// references to the moved last vertex (adjacency partners, edge
    /// endpoints, terminal hosting) in place. The caller must have
    /// already emptied `v`'s adjacency list.
    fn swap_remove_vertex(&mut self, v: VertexId) -> Option<(VertexId, VertexId)> {
        debug_assert!(self.adjacency[v.0].is_empty(), "vertex still wired");
        let last = VertexId(self.kinds.len() - 1);
        self.positions.swap_remove(v.0);
        self.kinds.swap_remove(v.0);
        self.adjacency.swap_remove(v.0);
        if v == last {
            return None;
        }
        // The moved vertex's own adjacency list is intact; fix everyone
        // pointing at its old id.
        for i in 0..self.adjacency[v.0].len() {
            let (u, e) = self.adjacency[v.0][i];
            for entry in self.adjacency[u.0].iter_mut() {
                if entry.1 == e {
                    entry.0 = v;
                }
            }
            let rec = &mut self.edges[e.0];
            if rec.a == last {
                rec.a = v;
            }
            if rec.b == last {
                rec.b = v;
            }
        }
        if let VertexKind::Terminal(t) = self.kinds[v.0] {
            self.terminal_vertices[t.0] = v;
        }
        Some((last, v))
    }

    /// Checks structural invariants: the graph is a tree (connected and
    /// acyclic), insertion points have degree 2, lengths are finite and
    /// non-negative.
    pub fn check(&self) -> Result<(), BuildNetError> {
        let n = self.vertex_count();
        if n == 0 {
            return Err(BuildNetError::Empty);
        }
        if self.edge_count() + 1 != n {
            return Err(BuildNetError::NotATree);
        }
        // Connectivity by BFS.
        let mut seen = vec![false; n];
        let mut stack = vec![VertexId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &(u, _) in self.neighbors(v) {
                if !seen[u.0] {
                    seen[u.0] = true;
                    count += 1;
                    stack.push(u);
                }
            }
        }
        if count != n {
            return Err(BuildNetError::NotATree);
        }
        for e in self.edges() {
            let l = self.length(e);
            if !l.is_finite() || l < 0.0 {
                return Err(BuildNetError::BadLength(e));
            }
        }
        for v in self.vertices() {
            if self.kind(v) == VertexKind::InsertionPoint && self.degree(v) != 2 {
                return Err(BuildNetError::BadInsertionPointDegree(v));
            }
        }
        Ok(())
    }
}

/// Errors detected while building or validating a [`Net`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildNetError {
    /// The topology has no vertices.
    Empty,
    /// The graph is not a connected tree.
    NotATree,
    /// An edge has a negative or non-finite length.
    BadLength(EdgeId),
    /// An insertion point does not have degree 2.
    BadInsertionPointDegree(VertexId),
    /// The net has no terminal that can act as a source.
    NoSource,
    /// The net has no terminal that can act as a sink.
    NoSink,
}

impl fmt::Display for BuildNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildNetError::Empty => write!(f, "topology has no vertices"),
            BuildNetError::NotATree => write!(f, "topology is not a connected tree"),
            BuildNetError::BadLength(e) => write!(f, "edge {e} has an invalid length"),
            BuildNetError::BadInsertionPointDegree(v) => {
                write!(f, "insertion point {v} does not have degree 2")
            }
            BuildNetError::NoSource => write!(f, "net has no source terminal"),
            BuildNetError::NoSink => write!(f, "net has no sink terminal"),
        }
    }
}

impl std::error::Error for BuildNetError {}

/// Incrementally constructs a [`Net`]: a topology plus terminal
/// parameters and a technology.
///
/// # Examples
///
/// ```
/// use msrnet_rctree::{NetBuilder, Technology, Terminal};
/// use msrnet_geom::Point;
///
/// let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
/// let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
/// let s = b.steiner(Point::new(500.0, 0.0));
/// let t1 = b.terminal(Point::new(500.0, 400.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
/// let t2 = b.terminal(Point::new(900.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
/// b.wire(t0, s);
/// b.wire(s, t1);
/// b.wire(s, t2);
/// let net = b.build()?;
/// assert_eq!(net.topology.total_wirelength(), 1300.0);
/// # Ok::<(), msrnet_rctree::BuildNetError>(())
/// ```
#[derive(Clone, Debug)]
pub struct NetBuilder {
    topology: Topology,
    terminals: Vec<Terminal>,
    tech: Technology,
}

impl NetBuilder {
    /// Starts building a net in the given technology.
    pub fn new(tech: Technology) -> Self {
        NetBuilder {
            topology: Topology::new(),
            terminals: Vec::new(),
            tech,
        }
    }

    /// Adds a terminal vertex with its timing parameters.
    pub fn terminal(&mut self, pos: Point, params: Terminal) -> VertexId {
        let tid = TerminalId(self.terminals.len());
        self.terminals.push(params);
        self.topology.add_vertex(pos, VertexKind::Terminal(tid))
    }

    /// Adds a Steiner branch vertex.
    pub fn steiner(&mut self, pos: Point) -> VertexId {
        self.topology.add_vertex(pos, VertexKind::Steiner)
    }

    /// Adds a candidate repeater insertion point (must end up with
    /// degree 2).
    pub fn insertion_point(&mut self, pos: Point) -> VertexId {
        self.topology.add_vertex(pos, VertexKind::InsertionPoint)
    }

    /// Connects two vertices with a wire whose length is their
    /// rectilinear distance.
    pub fn wire(&mut self, a: VertexId, b: VertexId) -> EdgeId {
        let len = self
            .topology
            .position(a)
            .l1_distance(self.topology.position(b));
        self.topology.add_edge(a, b, len)
    }

    /// Connects two vertices with a wire of explicit length (µm),
    /// independent of their positions.
    pub fn wire_with_length(&mut self, a: VertexId, b: VertexId, length: f64) -> EdgeId {
        self.topology.add_edge(a, b, length)
    }

    /// Validates and finishes the net.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildNetError`] if the topology is not a tree, an
    /// insertion point is not degree 2, a length is invalid, or the net
    /// lacks a source or a sink.
    pub fn build(self) -> Result<Net, BuildNetError> {
        let net = Net {
            topology: self.topology,
            terminals: self.terminals,
            tech: self.tech,
        };
        net.check()?;
        Ok(net)
    }
}

/// A complete multisource net: routing topology, terminal parameters and
/// technology (paper §II "net-specific parameters").
#[derive(Clone, Debug)]
pub struct Net {
    /// The routing tree.
    pub topology: Topology,
    /// Terminal parameters, indexed by [`TerminalId`].
    pub terminals: Vec<Terminal>,
    /// Wire parasitics.
    pub tech: Technology,
}

impl Net {
    /// The parameters of terminal `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn terminal(&self, t: TerminalId) -> &Terminal {
        &self.terminals[t.0]
    }

    /// Ids of all terminals.
    pub fn terminal_ids(&self) -> impl Iterator<Item = TerminalId> {
        (0..self.terminals.len()).map(TerminalId)
    }

    /// Total wire capacitance of the net, pF.
    pub fn total_wire_cap(&self) -> f64 {
        self.topology.edges().map(|e| self.edge_cap(e)).sum()
    }

    /// Resistance of edge `e` including its wire-width scaling, Ω.
    pub fn edge_res(&self, e: EdgeId) -> f64 {
        let (rs, _) = self.topology.edge_scaling(e);
        rs * self.tech.wire_res(self.topology.length(e))
    }

    /// Capacitance of edge `e` including its wire-width scaling, pF.
    pub fn edge_cap(&self, e: EdgeId) -> f64 {
        let (_, cs) = self.topology.edge_scaling(e);
        cs * self.tech.wire_cap(self.topology.length(e))
    }

    /// Total capacitance (wires plus terminal loads), pF. This bounds the
    /// external capacitance any subtree can see and is used to clamp PWL
    /// domains in the optimizer.
    pub fn total_cap(&self) -> f64 {
        self.total_wire_cap() + self.terminals.iter().map(|t| t.cap).sum::<f64>()
    }

    /// Validates structure and the presence of at least one source and
    /// one sink.
    ///
    /// # Errors
    ///
    /// See [`BuildNetError`].
    pub fn check(&self) -> Result<(), BuildNetError> {
        self.topology.check()?;
        if !self.terminals.iter().any(Terminal::is_source) {
            return Err(BuildNetError::NoSource);
        }
        if !self.terminals.iter().any(Terminal::is_sink) {
            return Err(BuildNetError::NoSink);
        }
        Ok(())
    }

    /// Returns a copy with every wire subdivided so consecutive insertion
    /// points are at most `max_spacing` µm apart (and every original wire
    /// carries at least one).
    #[must_use]
    pub fn with_insertion_points(&self, max_spacing: f64) -> Net {
        let mut net = self.clone();
        net.topology.subdivide_for_insertion(max_spacing);
        net
    }

    /// Returns a copy in which every terminal is a leaf.
    #[must_use]
    pub fn normalized(&self) -> Net {
        let mut net = self.clone();
        net.topology.normalize_terminals_to_leaves();
        net
    }

    /// Roots the topology at the vertex hosting terminal `t`.
    pub fn rooted_at_terminal(&self, t: TerminalId) -> Rooted {
        Rooted::new(&self.topology, self.topology.terminal_vertex(t))
    }

    /// Adds a new leaf terminal at `pos`, wired to existing vertex `at`
    /// with a unit-width edge whose length is the rectilinear distance.
    /// Purely append-only (no existing id changes); returns the new
    /// terminal, its vertex, and its pendant edge — always the current
    /// maxima of their id spaces, so the edit is undone exactly by
    /// [`Net::remove_terminal`] on the returned id.
    ///
    /// # Panics
    ///
    /// Panics if `at` is out of range or a coordinate is non-finite.
    pub fn add_terminal(
        &mut self,
        at: VertexId,
        pos: Point,
        params: Terminal,
    ) -> (TerminalId, VertexId, EdgeId) {
        let tid = TerminalId(self.terminals.len());
        self.terminals.push(params);
        let len = pos.l1_distance(self.topology.position(at));
        let (v, e) = self
            .topology
            .attach_leaf(at, pos, VertexKind::Terminal(tid), len);
        (tid, v, e)
    }

    /// Removes leaf terminal `t`, its vertex and its pendant edge,
    /// compacting ids by `swap_remove` (see [`StructuralRemap`] for the
    /// id moves callers must apply).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range or its vertex is not a leaf.
    pub fn remove_terminal(&mut self, t: TerminalId) -> StructuralRemap {
        let v = self.topology.terminal_vertex(t);
        let remap = self.topology.remove_leaf(v);
        self.terminals.swap_remove(t.0);
        remap
    }

    /// Summary statistics of the net — sizes, wirelength, capacitances
    /// and role counts.
    pub fn stats(&self) -> NetStats {
        NetStats {
            terminals: self.topology.terminal_count(),
            steiner_points: self
                .topology
                .vertices()
                .filter(|&v| self.topology.kind(v) == VertexKind::Steiner)
                .count(),
            insertion_points: self.topology.insertion_point_count(),
            edges: self.topology.edge_count(),
            wirelength: self.topology.total_wirelength(),
            wire_cap: self.total_wire_cap(),
            total_cap: self.total_cap(),
            sources: self.terminals.iter().filter(|t| t.is_source()).count(),
            sinks: self.terminals.iter().filter(|t| t.is_sink()).count(),
            max_degree: self
                .topology
                .vertices()
                .map(|v| self.topology.degree(v))
                .max()
                .unwrap_or(0),
        }
    }
}

/// Summary statistics of a [`Net`], produced by [`Net::stats`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetStats {
    /// Number of terminals.
    pub terminals: usize,
    /// Number of Steiner branch vertices.
    pub steiner_points: usize,
    /// Number of candidate repeater insertion points.
    pub insertion_points: usize,
    /// Number of wire segments.
    pub edges: usize,
    /// Total wirelength, µm.
    pub wirelength: f64,
    /// Total wire capacitance, pF (width scaling included).
    pub wire_cap: f64,
    /// Total capacitance including terminal loads, pF.
    pub total_cap: f64,
    /// Terminals that can drive.
    pub sources: usize,
    /// Terminals that can receive.
    pub sinks: usize,
    /// Largest vertex degree.
    pub max_degree: usize,
}

impl fmt::Display for NetStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "terminals        : {} ({} sources, {} sinks)",
            self.terminals, self.sources, self.sinks
        )?;
        writeln!(f, "steiner points   : {}", self.steiner_points)?;
        writeln!(f, "insertion points : {}", self.insertion_points)?;
        writeln!(f, "wire segments    : {}", self.edges)?;
        writeln!(f, "wirelength       : {:.1} µm", self.wirelength)?;
        writeln!(f, "wire capacitance : {:.4} pF", self.wire_cap)?;
        writeln!(f, "total capacitance: {:.4} pF", self.total_cap)?;
        write!(f, "max degree       : {}", self.max_degree)
    }
}

/// A rooted view of a topology: parent/children arrays and traversal
/// orders for the bottom-up algorithms.
#[derive(Clone, Debug)]
pub struct Rooted {
    root: VertexId,
    parent: Vec<Option<VertexId>>,
    parent_edge: Vec<Option<EdgeId>>,
    children: Vec<Vec<VertexId>>,
    preorder: Vec<VertexId>,
    depth: Vec<usize>,
}

impl Rooted {
    /// Roots `topology` at `root` by depth-first search.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range.
    pub fn new(topology: &Topology, root: VertexId) -> Self {
        let n = topology.vertex_count();
        assert!(root.0 < n, "root out of range");
        let mut parent = vec![None; n];
        let mut parent_edge = vec![None; n];
        let mut children = vec![Vec::new(); n];
        let mut depth = vec![0usize; n];
        let mut preorder = Vec::with_capacity(n);
        let mut stack = vec![root];
        let mut seen = vec![false; n];
        seen[root.0] = true;
        while let Some(v) = stack.pop() {
            preorder.push(v);
            for &(u, e) in topology.neighbors(v) {
                if !seen[u.0] {
                    seen[u.0] = true;
                    parent[u.0] = Some(v);
                    parent_edge[u.0] = Some(e);
                    children[v.0].push(u);
                    depth[u.0] = depth[v.0] + 1;
                    stack.push(u);
                }
            }
        }
        Rooted {
            root,
            parent,
            parent_edge,
            children,
            preorder,
            depth,
        }
    }

    /// The root vertex.
    pub fn root(&self) -> VertexId {
        self.root
    }

    /// The parent of `v`, or `None` at the root.
    pub fn parent(&self, v: VertexId) -> Option<VertexId> {
        self.parent[v.0]
    }

    /// The edge connecting `v` to its parent, or `None` at the root.
    pub fn parent_edge(&self, v: VertexId) -> Option<EdgeId> {
        self.parent_edge[v.0]
    }

    /// The children of `v`.
    pub fn children(&self, v: VertexId) -> &[VertexId] {
        &self.children[v.0]
    }

    /// Depth of `v` (root has depth 0).
    pub fn depth(&self, v: VertexId) -> usize {
        self.depth[v.0]
    }

    /// Vertices in a parent-before-children order.
    pub fn preorder(&self) -> &[VertexId] {
        &self.preorder
    }

    /// Vertices in a children-before-parent order.
    pub fn postorder(&self) -> impl Iterator<Item = VertexId> + '_ {
        self.preorder.iter().rev().copied()
    }

    /// The lowest common ancestor of `u` and `w`.
    pub fn lca(&self, u: VertexId, w: VertexId) -> VertexId {
        let (mut a, mut b) = (u, w);
        while self.depth[a.0] > self.depth[b.0] {
            // msrnet-allow: panic strictly deeper vertices have a parent
            a = self.parent[a.0].expect("deeper vertex has a parent");
        }
        while self.depth[b.0] > self.depth[a.0] {
            // msrnet-allow: panic strictly deeper vertices have a parent
            b = self.parent[b.0].expect("deeper vertex has a parent");
        }
        while a != b {
            // msrnet-allow: panic equal-depth distinct vertices are both below the root
            a = self.parent[a.0].expect("distinct vertices have parents");
            // msrnet-allow: panic equal-depth distinct vertices are both below the root
            b = self.parent[b.0].expect("distinct vertices have parents");
        }
        a
    }

    /// The vertices on the path from `u` to `w`, inclusive.
    pub fn path(&self, u: VertexId, w: VertexId) -> Vec<VertexId> {
        let mut up = Vec::new();
        let mut down = Vec::new();
        let (mut a, mut b) = (u, w);
        while self.depth[a.0] > self.depth[b.0] {
            up.push(a);
            // msrnet-allow: panic strictly deeper vertices have a parent
            a = self.parent[a.0].expect("depth > 0 has parent");
        }
        while self.depth[b.0] > self.depth[a.0] {
            down.push(b);
            // msrnet-allow: panic strictly deeper vertices have a parent
            b = self.parent[b.0].expect("depth > 0 has parent");
        }
        while a != b {
            up.push(a);
            down.push(b);
            // msrnet-allow: panic equal-depth distinct vertices are both below the root
            a = self.parent[a.0].expect("distinct vertices have parents");
            // msrnet-allow: panic equal-depth distinct vertices are both below the root
            b = self.parent[b.0].expect("distinct vertices have parents");
        }
        up.push(a);
        up.extend(down.into_iter().rev());
        up
    }
}

/// A repeater placed at an insertion point with an orientation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlacedRepeater {
    /// Index into the repeater library slice used by the optimizer.
    pub repeater: usize,
    /// Which side faces the root.
    pub orientation: Orientation,
}

/// A (possibly empty) assignment of oriented repeaters to the insertion
/// points of a topology (paper Problem 2.1's decision variable).
///
/// # Examples
///
/// ```
/// use msrnet_rctree::{Assignment, Orientation};
///
/// let mut asg = Assignment::empty(10);
/// asg.place(msrnet_rctree::VertexId(3), 0, Orientation::AFacesParent);
/// assert_eq!(asg.placed_count(), 1);
/// asg.clear(msrnet_rctree::VertexId(3));
/// assert_eq!(asg.placed_count(), 0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Assignment {
    slots: Vec<Option<PlacedRepeater>>,
}

impl Assignment {
    /// An assignment with no repeaters, for a topology of `vertex_count`
    /// vertices.
    pub fn empty(vertex_count: usize) -> Self {
        Assignment {
            slots: vec![None; vertex_count],
        }
    }

    /// Places library repeater `repeater` at vertex `v` with the given
    /// orientation, replacing any previous choice.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn place(&mut self, v: VertexId, repeater: usize, orientation: Orientation) {
        self.slots[v.0] = Some(PlacedRepeater {
            repeater,
            orientation,
        });
    }

    /// Removes any repeater at `v`.
    pub fn clear(&mut self, v: VertexId) {
        self.slots[v.0] = None;
    }

    /// The placement at `v`, if any.
    pub fn at(&self, v: VertexId) -> Option<PlacedRepeater> {
        self.slots.get(v.0).copied().flatten()
    }

    /// Number of placed repeaters.
    pub fn placed_count(&self) -> usize {
        self.slots.iter().flatten().count()
    }

    /// Vertices holding repeaters.
    pub fn placements(&self) -> impl Iterator<Item = (VertexId, PlacedRepeater)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.map(|p| (VertexId(i), p)))
    }

    /// Total repeater cost under `library`.
    ///
    /// # Panics
    ///
    /// Panics if a placement references a repeater outside `library`.
    pub fn total_cost(&self, library: &[Repeater]) -> f64 {
        self.placements()
            // msrnet-allow: panic documented contract: panics on out-of-library placements
            .map(|(_, p)| library[p.repeater].cost)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Buffer;

    fn tech() -> Technology {
        Technology::new(0.03, 0.00035)
    }

    fn bidir() -> Terminal {
        Terminal::bidirectional(0.0, 0.0, 0.05, 180.0)
    }

    fn star_net() -> Net {
        // t0 -- s -- t1, s -- t2 (a 3-terminal star).
        let mut b = NetBuilder::new(tech());
        let t0 = b.terminal(Point::new(0.0, 0.0), bidir());
        let s = b.steiner(Point::new(100.0, 0.0));
        let t1 = b.terminal(Point::new(200.0, 0.0), bidir());
        let t2 = b.terminal(Point::new(100.0, 150.0), bidir());
        b.wire(t0, s);
        b.wire(s, t1);
        b.wire(s, t2);
        b.build().unwrap()
    }

    #[test]
    fn builder_produces_valid_tree() {
        let net = star_net();
        assert_eq!(net.topology.vertex_count(), 4);
        assert_eq!(net.topology.edge_count(), 3);
        assert_eq!(net.topology.terminal_count(), 3);
        assert_eq!(net.topology.total_wirelength(), 350.0);
        assert!(net.check().is_ok());
    }

    #[test]
    fn build_rejects_disconnected() {
        let mut b = NetBuilder::new(tech());
        let t0 = b.terminal(Point::new(0.0, 0.0), bidir());
        let t1 = b.terminal(Point::new(10.0, 0.0), bidir());
        let t2 = b.terminal(Point::new(20.0, 0.0), bidir());
        b.wire(t0, t1);
        // t2 left floating: |E| + 1 != |V|.
        let _ = t2;
        assert_eq!(b.build().unwrap_err(), BuildNetError::NotATree);
    }

    #[test]
    fn build_rejects_cycle() {
        let mut b = NetBuilder::new(tech());
        let t0 = b.terminal(Point::new(0.0, 0.0), bidir());
        let t1 = b.terminal(Point::new(10.0, 0.0), bidir());
        let t2 = b.terminal(Point::new(20.0, 0.0), bidir());
        b.wire(t0, t1);
        b.wire(t1, t2);
        b.wire(t2, t0);
        assert_eq!(b.build().unwrap_err(), BuildNetError::NotATree);
    }

    #[test]
    fn build_rejects_sourceless_net() {
        let mut b = NetBuilder::new(tech());
        let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::sink_only(0.0, 0.05));
        let t1 = b.terminal(Point::new(10.0, 0.0), Terminal::sink_only(0.0, 0.05));
        b.wire(t0, t1);
        assert_eq!(b.build().unwrap_err(), BuildNetError::NoSource);
    }

    #[test]
    fn build_rejects_dangling_insertion_point() {
        let mut b = NetBuilder::new(tech());
        let t0 = b.terminal(Point::new(0.0, 0.0), bidir());
        let t1 = b.terminal(Point::new(10.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
        let ip = b.insertion_point(Point::new(5.0, 0.0));
        b.wire(t0, ip);
        b.wire(ip, t1);
        // Fine so far; now a second net with a leaf insertion point.
        assert!(b.build().is_ok());

        let mut b = NetBuilder::new(tech());
        let t0 = b.terminal(Point::new(0.0, 0.0), bidir());
        let t1 = b.terminal(Point::new(10.0, 0.0), bidir());
        b.wire(t0, t1);
        let ip = b.insertion_point(Point::new(5.0, 5.0));
        b.wire(t0, ip);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildNetError::BadInsertionPointDegree(_)
        ));
    }

    #[test]
    fn subdivision_respects_spacing_and_minimum() {
        let net = star_net().with_insertion_points(80.0);
        assert!(net.check().is_ok());
        // Every original wire got at least one insertion point and no
        // piece exceeds the spacing.
        assert!(net.topology.insertion_point_count() >= 3);
        for e in net.topology.edges() {
            assert!(net.topology.length(e) <= 80.0 + 1e-9);
        }
        // Total wirelength is preserved.
        assert!((net.topology.total_wirelength() - 350.0).abs() < 1e-9);
    }

    #[test]
    fn subdivision_of_short_wire_still_adds_one_point() {
        let mut b = NetBuilder::new(tech());
        let t0 = b.terminal(Point::new(0.0, 0.0), bidir());
        let t1 = b.terminal(Point::new(10.0, 0.0), bidir());
        b.wire(t0, t1);
        let net = b.build().unwrap().with_insertion_points(800.0);
        assert_eq!(net.topology.insertion_point_count(), 1);
        assert!(net.check().is_ok());
    }

    #[test]
    fn normalization_makes_terminals_leaves() {
        // Terminal directly in the middle of a path.
        let mut b = NetBuilder::new(tech());
        let t0 = b.terminal(Point::new(0.0, 0.0), bidir());
        let mid = b.terminal(Point::new(100.0, 0.0), bidir());
        let t2 = b.terminal(Point::new(200.0, 0.0), bidir());
        b.wire(t0, mid);
        b.wire(mid, t2);
        let net = b.build().unwrap().normalized();
        assert!(net.check().is_ok());
        for t in net.terminal_ids() {
            let v = net.topology.terminal_vertex(t);
            assert_eq!(net.topology.degree(v), 1, "terminal {t} must be a leaf");
        }
        // Wirelength unchanged (pendant edge has zero length).
        assert_eq!(net.topology.total_wirelength(), 200.0);
    }

    #[test]
    fn rooted_structure_is_consistent() {
        let net = star_net();
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let root = rooted.root();
        assert_eq!(net.topology.vertex_terminal(root), Some(TerminalId(0)));
        assert_eq!(rooted.depth(root), 0);
        assert!(rooted.parent(root).is_none());
        let mut seen = 0;
        for &v in rooted.preorder() {
            seen += 1;
            for &c in rooted.children(v) {
                assert_eq!(rooted.parent(c), Some(v));
                assert_eq!(rooted.depth(c), rooted.depth(v) + 1);
            }
        }
        assert_eq!(seen, net.topology.vertex_count());
        // Postorder visits children before parents.
        let mut visited = vec![false; net.topology.vertex_count()];
        for v in rooted.postorder() {
            for &c in rooted.children(v) {
                assert!(visited[c.0], "child must be visited before parent");
            }
            visited[v.0] = true;
        }
    }

    #[test]
    fn path_goes_through_lca() {
        let net = star_net();
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let v1 = net.topology.terminal_vertex(TerminalId(1));
        let v2 = net.topology.terminal_vertex(TerminalId(2));
        let path = rooted.path(v1, v2);
        assert_eq!(path.len(), 3);
        assert_eq!(path[0], v1);
        assert_eq!(path[2], v2);
        assert_eq!(net.topology.kind(path[1]), VertexKind::Steiner);
        // Path to self is trivial.
        assert_eq!(rooted.path(v1, v1), vec![v1]);
        // LCA of the two leaves is the Steiner branch; of a leaf and the
        // root it is the root; of a vertex with itself, itself.
        assert_eq!(rooted.lca(v1, v2), path[1]);
        assert_eq!(rooted.lca(v1, rooted.root()), rooted.root());
        assert_eq!(rooted.lca(v2, v2), v2);
        // LCA lies on the path and is its unique highest vertex.
        let l = rooted.lca(v1, v2);
        assert!(path.contains(&l));
        assert!(path.iter().all(|&p| rooted.depth(p) >= rooted.depth(l)));
    }

    #[test]
    fn assignment_roundtrip_and_cost() {
        let b = Buffer::new("1X", 50.0, 180.0, 0.05, 1.0);
        let lib = [Repeater::from_buffer_pair("r", &b, &b)];
        let mut asg = Assignment::empty(5);
        assert_eq!(asg.placed_count(), 0);
        asg.place(VertexId(2), 0, Orientation::BFacesParent);
        asg.place(VertexId(4), 0, Orientation::AFacesParent);
        assert_eq!(asg.placed_count(), 2);
        assert_eq!(asg.total_cost(&lib), 4.0);
        assert_eq!(
            asg.at(VertexId(2)),
            Some(PlacedRepeater {
                repeater: 0,
                orientation: Orientation::BFacesParent
            })
        );
        asg.clear(VertexId(2));
        assert_eq!(asg.placed_count(), 1);
        assert_eq!(asg.at(VertexId(0)), None);
    }

    #[test]
    fn stats_summarize_the_net() {
        let net = star_net().with_insertion_points(80.0);
        let st = net.stats();
        assert_eq!(st.terminals, 3);
        assert_eq!(st.sources, 3);
        assert_eq!(st.sinks, 3);
        assert_eq!(st.steiner_points, 1);
        assert!(st.insertion_points >= 3);
        assert_eq!(st.edges, net.topology.edge_count());
        assert!((st.wirelength - 350.0).abs() < 1e-9);
        assert!((st.total_cap - net.total_cap()).abs() < 1e-12);
        assert_eq!(st.max_degree, 3);
        let text = format!("{st}");
        assert!(text.contains("terminals"));
        assert!(text.contains("350.0"));
    }

    #[test]
    fn total_cap_counts_wires_and_loads() {
        let net = star_net();
        let expect = 0.00035 * 350.0 + 3.0 * 0.05;
        assert!((net.total_cap() - expect).abs() < 1e-12);
    }

    /// Full structural snapshot for add→remove round-trip checks:
    /// positions, kinds, edges (endpoints, bitwise lengths and scales),
    /// adjacency lists in order, and terminal hosting.
    fn snapshot(net: &Net) -> Vec<String> {
        let topo = &net.topology;
        let mut out = Vec::new();
        for v in topo.vertices() {
            out.push(format!(
                "v{} {:?} ({:x},{:x}) adj {:?}",
                v.0,
                topo.kind(v),
                topo.position(v).x.to_bits(),
                topo.position(v).y.to_bits(),
                topo.neighbors(v),
            ));
        }
        for e in topo.edges() {
            let (rs, cs) = topo.edge_scaling(e);
            out.push(format!(
                "e{} {:?} len {:x} rs {:x} cs {:x}",
                e.0,
                topo.endpoints(e),
                topo.length(e).to_bits(),
                rs.to_bits(),
                cs.to_bits(),
            ));
        }
        for t in net.terminal_ids() {
            out.push(format!("t{} @ v{}", t.0, topo.terminal_vertex(t).0));
        }
        out
    }

    #[test]
    fn add_then_remove_terminal_is_bitwise_identity() {
        let mut net = star_net();
        let before = snapshot(&net);
        let s = VertexId(1); // the Steiner branch
        let (tid, v, e) = net.add_terminal(
            s,
            Point::new(130.0, 40.0),
            Terminal::sink_only(12.0, 0.08),
        );
        assert_eq!(tid, TerminalId(3));
        assert_eq!(v, VertexId(4));
        assert_eq!(e, EdgeId(3));
        assert!(net.check().is_ok());
        assert_eq!(net.topology.length(e), 30.0 + 40.0);
        let remap = net.remove_terminal(tid);
        // Removing the just-appended ids is a pure pop: nothing moves.
        assert_eq!(remap, StructuralRemap::default());
        assert_eq!(snapshot(&net), before);
    }

    #[test]
    fn remove_interior_terminal_remaps_moved_ids() {
        // Remove t0 (vertex 0): the last vertex, edge and terminal all
        // move into vacated slots.
        let mut net = star_net();
        let remap = net.remove_terminal(TerminalId(0));
        assert!(net.check().is_ok());
        assert_eq!(net.topology.vertex_count(), 3);
        assert_eq!(net.topology.terminal_count(), 2);
        assert_eq!(remap.vertex, Some((VertexId(3), VertexId(0))));
        assert_eq!(remap.terminal, Some((TerminalId(2), TerminalId(0))));
        // Old t2 (at (100,150)) now answers to id 0.
        let moved = net.topology.terminal_vertex(TerminalId(0));
        assert_eq!(net.topology.position(moved), Point::new(100.0, 150.0));
        // Wirelength dropped by exactly the removed pendant edge.
        assert_eq!(net.topology.total_wirelength(), 250.0);
    }

    #[test]
    fn split_then_splice_edge_is_bitwise_identity() {
        let mut net = star_net();
        net.topology.set_edge_scaling(EdgeId(1), 0.5, 2.0);
        let before = snapshot(&net);
        let (ip, ne) = net.topology.split_edge(EdgeId(1), 0.5);
        assert!(net.check().is_ok());
        assert_eq!(net.topology.kind(ip), VertexKind::InsertionPoint);
        assert_eq!(net.topology.degree(ip), 2);
        // Halves carry the parent's scaling and sum exactly.
        assert_eq!(net.topology.edge_scaling(ne), (0.5, 2.0));
        assert_eq!(
            net.topology.length(EdgeId(1)) + net.topology.length(ne),
            100.0
        );
        let (survivor, remap) = net.topology.splice_degree2(ip);
        assert_eq!(survivor, EdgeId(1));
        assert_eq!(remap, StructuralRemap::default());
        assert_eq!(snapshot(&net), before);
    }

    #[test]
    fn splice_remaps_when_removed_ids_are_not_last() {
        // Split edge 0 then edge 2: two insertion points. Splicing the
        // *first* one forces swap-remove moves.
        let mut net = star_net();
        let (ip0, _) = net.topology.split_edge(EdgeId(0), 0.5);
        let (ip2, ne2) = net.topology.split_edge(EdgeId(2), 0.5);
        let (survivor, remap) = net.topology.splice_degree2(ip0);
        assert!(net.check().is_ok());
        assert_eq!(survivor, EdgeId(0));
        // The last vertex (ip2) and last edge (ne2) moved down.
        assert_eq!(remap.vertex, Some((ip2, ip0)));
        assert_eq!(remap.edge.map(|(old, _)| old), Some(ne2));
        assert_eq!(net.topology.length(EdgeId(0)), 100.0);
        assert_eq!(net.topology.insertion_point_count(), 1);
    }

    #[test]
    fn structural_edits_preserve_adjacency_order_of_survivors() {
        let mut net = star_net();
        let s = VertexId(1);
        let order_before: Vec<_> = net.topology.neighbors(s).to_vec();
        let (tid, _, _) = net.add_terminal(s, Point::new(90.0, -10.0), bidir());
        net.remove_terminal(tid);
        assert_eq!(net.topology.neighbors(s), &order_before[..]);
        // Same through a split/splice cycle on the middle edge.
        let (ip, _) = net.topology.split_edge(EdgeId(1), 0.5);
        net.topology.splice_degree2(ip);
        assert_eq!(net.topology.neighbors(s), &order_before[..]);
    }

    #[test]
    fn structural_remap_maps_only_the_moved_id() {
        let r = StructuralRemap {
            vertex: Some((VertexId(9), VertexId(2))),
            edge: Some((EdgeId(5), EdgeId(1))),
            terminal: Some((TerminalId(3), TerminalId(0))),
        };
        assert_eq!(r.map_vertex(VertexId(9)), VertexId(2));
        assert_eq!(r.map_vertex(VertexId(4)), VertexId(4));
        assert_eq!(r.map_edge(EdgeId(5)), EdgeId(1));
        assert_eq!(r.map_edge(EdgeId(0)), EdgeId(0));
        assert_eq!(r.map_terminal(TerminalId(3)), TerminalId(0));
        assert_eq!(r.map_terminal(TerminalId(1)), TerminalId(1));
        assert_eq!(StructuralRemap::default().map_vertex(VertexId(7)), VertexId(7));
    }
}
