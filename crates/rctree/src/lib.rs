//! RC-tree net model and Elmore delay engine for multisource nets.
//!
//! This crate is the physical substrate beneath the ARD computation and
//! the repeater-insertion dynamic program (paper §II–§III):
//!
//! * [`Technology`] — per-unit-length wire resistance and capacitance;
//! * [`Buffer`], [`Repeater`], [`Orientation`] — the repeater library
//!   model: a bidirectional repeater has an A side and a B side with
//!   per-direction intrinsic delay and output resistance, and
//!   per-side input capacitance (paper §II);
//! * [`Terminal`] — per-terminal timing parameters: arrival time `AT`,
//!   downstream delay `q`, bus load capacitance and driver resistance
//!   (paper Fig. 1);
//! * [`Topology`], [`Net`], [`Rooted`] — the routing tree with terminals,
//!   Steiner branch points, and prescribed degree-2 repeater insertion
//!   points;
//! * [`Assignment`] — a concrete placement of oriented repeaters on
//!   insertion points;
//! * [`elmore`] — the bidirectional capacitance recurrences (paper
//!   Eq. 1–2), directed wire/repeater delays, and single-source Elmore
//!   delay traversals.
//!
//! Units: length µm, resistance Ω, capacitance pF, delay ps
//! (1 Ω · 1 pF = 1 ps), cost in equivalent 1X buffers.
//!
//! # Examples
//!
//! ```
//! use msrnet_rctree::{Net, NetBuilder, Technology, Terminal};
//! use msrnet_geom::Point;
//!
//! // A two-terminal bus: both ends can drive and receive.
//! let tech = Technology::new(0.03, 0.00035);
//! let mut b = NetBuilder::new(tech);
//! let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
//! let t1 = b.terminal(Point::new(1000.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
//! b.wire(t0, t1);
//! let net: Net = b.build()?;
//! assert_eq!(net.topology.terminal_count(), 2);
//! # Ok::<(), msrnet_rctree::BuildNetError>(())
//! ```

pub mod elmore;
mod library;
pub mod moments;
pub mod transient;
mod net;
mod terminal;

pub use library::{Buffer, DriveParams, Orientation, Repeater};
pub use net::{
    Assignment, BuildNetError, EdgeId, Net, NetBuilder, NetStats, PlacedRepeater, Rooted,
    StructuralRemap, Topology, VertexId, VertexKind,
};
pub use terminal::{Terminal, TerminalId};

/// Wire parasitics per unit length for the target technology.
///
/// `unit_res` is in Ω/µm and `unit_cap` in pF/µm, so a wire of length
/// `l` µm has resistance `unit_res · l` and capacitance `unit_cap · l`
/// (fixed-width wires; fringe capacitance can be folded into `unit_cap`,
/// paper §II footnote 4).
///
/// # Examples
///
/// ```
/// use msrnet_rctree::Technology;
///
/// let tech = Technology::new(0.03, 0.00035);
/// assert_eq!(tech.wire_res(100.0), 3.0);
/// assert!((tech.wire_cap(100.0) - 0.035).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Technology {
    /// Wire resistance per µm, in Ω/µm.
    pub unit_res: f64,
    /// Wire capacitance per µm, in pF/µm.
    pub unit_cap: f64,
}

impl Technology {
    /// Creates a technology from per-unit-length parasitics.
    ///
    /// # Panics
    ///
    /// Panics if either value is negative or non-finite.
    pub fn new(unit_res: f64, unit_cap: f64) -> Self {
        assert!(
            unit_res.is_finite() && unit_res >= 0.0,
            "unit resistance must be finite and non-negative"
        );
        assert!(
            unit_cap.is_finite() && unit_cap >= 0.0,
            "unit capacitance must be finite and non-negative"
        );
        Technology { unit_res, unit_cap }
    }

    /// Resistance of a wire of `length` µm, in Ω.
    pub fn wire_res(&self, length: f64) -> f64 {
        self.unit_res * length
    }

    /// Capacitance of a wire of `length` µm, in pF.
    pub fn wire_cap(&self, length: f64) -> f64 {
        self.unit_cap * length
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn technology_scales_linearly() {
        let t = Technology::new(0.5, 0.25);
        assert_eq!(t.wire_res(4.0), 2.0);
        assert_eq!(t.wire_cap(4.0), 1.0);
        assert_eq!(t.wire_res(0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "unit resistance")]
    fn technology_rejects_negative_res() {
        Technology::new(-1.0, 0.1);
    }

    #[test]
    #[should_panic(expected = "unit capacitance")]
    fn technology_rejects_nan_cap() {
        Technology::new(0.1, f64::NAN);
    }
}
