use std::fmt;

/// A unidirectional buffer: the primitive cell from which repeaters and
/// terminal drivers are composed (paper Table I builds everything from a
/// single buffer and its sized variants).
///
/// # Examples
///
/// ```
/// use msrnet_rctree::Buffer;
///
/// let b1x = Buffer::new("1X", 50.0, 180.0, 0.05, 1.0);
/// let b4x = b1x.scaled(4.0);
/// assert_eq!(b4x.out_res, 45.0);
/// assert_eq!(b4x.in_cap, 0.2);
/// assert_eq!(b4x.cost, 4.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Buffer {
    /// Human-readable name (e.g. `"1X"`).
    pub name: String,
    /// Intrinsic delay, ps.
    pub intrinsic: f64,
    /// Output resistance, Ω.
    pub out_res: f64,
    /// Input capacitance, pF.
    pub in_cap: f64,
    /// Cost in equivalent 1X buffers (typically area).
    pub cost: f64,
}

impl Buffer {
    /// Creates a buffer from its electrical parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is negative or non-finite.
    pub fn new(name: &str, intrinsic: f64, out_res: f64, in_cap: f64, cost: f64) -> Self {
        for (label, v) in [
            ("intrinsic", intrinsic),
            ("out_res", out_res),
            ("in_cap", in_cap),
            ("cost", cost),
        ] {
            assert!(v.is_finite() && v >= 0.0, "buffer {label} must be finite and non-negative");
        }
        Buffer {
            name: name.to_owned(),
            intrinsic,
            out_res,
            in_cap,
            cost,
        }
    }

    /// The `kX` sized variant: cost `k·cost`, resistance `out_res/k`,
    /// input capacitance `k·in_cap`, same intrinsic delay — exactly the
    /// sizing rule of paper §VI.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not strictly positive.
    pub fn scaled(&self, k: f64) -> Buffer {
        assert!(k.is_finite() && k > 0.0, "scale factor must be positive");
        Buffer {
            name: format!("{}·{k}X", self.name.trim_end_matches(|c: char| {
                c.is_ascii_digit() || c == 'X' || c == '.'
            })),
            intrinsic: self.intrinsic,
            out_res: self.out_res / k,
            in_cap: self.in_cap * k,
            cost: self.cost * k,
        }
    }
}

impl fmt::Display for Buffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (d={} ps, R={} Ω, C={} pF, cost={})",
            self.name, self.intrinsic, self.out_res, self.in_cap, self.cost
        )
    }
}

/// Per-direction drive parameters of a repeater.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriveParams {
    /// Intrinsic delay in this direction, ps.
    pub intrinsic: f64,
    /// Output resistance in this direction, Ω.
    pub out_res: f64,
}

/// A bidirectional repeater: two drive directions (A→B and B→A) plus a
/// per-side input capacitance and a cost (paper §II).
///
/// Repeaters are placed at degree-2 insertion points; the chosen
/// [`Orientation`] decides which side faces the tree root. A symmetric
/// repeater built from a pair of identical buffers is orientation-
/// invariant; the algorithm nevertheless explores both orientations when
/// the parameters are asymmetric.
///
/// # Examples
///
/// ```
/// use msrnet_rctree::{Buffer, Repeater};
///
/// let b = Buffer::new("1X", 50.0, 180.0, 0.05, 1.0);
/// let rep = Repeater::from_buffer_pair("rep1x", &b, &b);
/// assert_eq!(rep.cost, 2.0);
/// assert_eq!(rep.cap_a, rep.cap_b);
/// assert!(rep.is_symmetric());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Repeater {
    /// Human-readable name.
    pub name: String,
    /// Drive parameters for a signal entering at A and leaving at B.
    pub a_to_b: DriveParams,
    /// Drive parameters for a signal entering at B and leaving at A.
    pub b_to_a: DriveParams,
    /// Input capacitance presented at the A side, pF.
    pub cap_a: f64,
    /// Input capacitance presented at the B side, pF.
    pub cap_b: f64,
    /// Cost in equivalent 1X buffers.
    pub cost: f64,
    /// Whether the repeater inverts signal polarity (paper §V extension:
    /// inverters as repeaters). Polarity feasibility is enforced by the
    /// optimizer when inverting repeaters are allowed.
    pub inverting: bool,
}

impl Repeater {
    /// Builds a bidirectional repeater from two anti-parallel
    /// unidirectional buffers: `fwd` drives A→B and `bwd` drives B→A.
    ///
    /// The A side is loaded by `fwd`'s input capacitance and the B side by
    /// `bwd`'s; total cost is the sum. This is the construction Table I
    /// prescribes ("bidirectional repeaters ... are constructed from a
    /// pair of unidirectional buffers").
    pub fn from_buffer_pair(name: &str, fwd: &Buffer, bwd: &Buffer) -> Self {
        Repeater {
            name: name.to_owned(),
            a_to_b: DriveParams {
                intrinsic: fwd.intrinsic,
                out_res: fwd.out_res,
            },
            b_to_a: DriveParams {
                intrinsic: bwd.intrinsic,
                out_res: bwd.out_res,
            },
            cap_a: fwd.in_cap,
            cap_b: bwd.in_cap,
            cost: fwd.cost + bwd.cost,
            inverting: false,
        }
    }

    /// Marks the repeater as signal-inverting (for the inverter-repeater
    /// extension) and returns it.
    #[must_use]
    pub fn inverting(mut self) -> Self {
        self.inverting = true;
        self
    }

    /// Whether both directions and both side capacitances are identical,
    /// making orientation irrelevant.
    pub fn is_symmetric(&self) -> bool {
        self.a_to_b == self.b_to_a && self.cap_a == self.cap_b
    }

    /// Drive parameters for the direction *toward the child* (away from
    /// the root) under `orientation`.
    pub fn downstream_drive(&self, orientation: Orientation) -> DriveParams {
        match orientation {
            Orientation::AFacesParent => self.a_to_b,
            Orientation::BFacesParent => self.b_to_a,
        }
    }

    /// Drive parameters for the direction *toward the parent* (toward the
    /// root) under `orientation`.
    pub fn upstream_drive(&self, orientation: Orientation) -> DriveParams {
        match orientation {
            Orientation::AFacesParent => self.b_to_a,
            Orientation::BFacesParent => self.a_to_b,
        }
    }

    /// Input capacitance presented to the parent side under `orientation`.
    pub fn cap_facing_parent(&self, orientation: Orientation) -> f64 {
        match orientation {
            Orientation::AFacesParent => self.cap_a,
            Orientation::BFacesParent => self.cap_b,
        }
    }

    /// Input capacitance presented to the child side under `orientation`.
    pub fn cap_facing_child(&self, orientation: Orientation) -> f64 {
        match orientation {
            Orientation::AFacesParent => self.cap_b,
            Orientation::BFacesParent => self.cap_a,
        }
    }
}

impl fmt::Display for Repeater {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (cost={})", self.name, self.cost)
    }
}

/// Which side of a repeater faces the parent (root side) of the rooted
/// topology — the orientation decision of the insertion algorithm
/// (paper §II: "an assignment **and orientation** of repeaters").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// The A side connects toward the root.
    #[default]
    AFacesParent,
    /// The B side connects toward the root.
    BFacesParent,
}

impl Orientation {
    /// Both orientations, in a fixed order.
    pub const BOTH: [Orientation; 2] = [Orientation::AFacesParent, Orientation::BFacesParent];

    /// The opposite orientation.
    #[must_use]
    pub fn flipped(self) -> Orientation {
        match self {
            Orientation::AFacesParent => Orientation::BFacesParent,
            Orientation::BFacesParent => Orientation::AFacesParent,
        }
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Orientation::AFacesParent => write!(f, "A↑"),
            Orientation::BFacesParent => write!(f, "B↑"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(r: f64, c: f64) -> Buffer {
        Buffer::new("t", 10.0, r, c, 1.0)
    }

    #[test]
    fn scaled_buffer_follows_sizing_rule() {
        let b = Buffer::new("1X", 50.0, 180.0, 0.05, 1.0);
        let b3 = b.scaled(3.0);
        assert_eq!(b3.intrinsic, 50.0);
        assert_eq!(b3.out_res, 60.0);
        assert!((b3.in_cap - 0.15).abs() < 1e-12);
        assert_eq!(b3.cost, 3.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scaled_rejects_zero() {
        buf(1.0, 1.0).scaled(0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn buffer_rejects_negative_cost() {
        Buffer::new("bad", 1.0, 1.0, 1.0, -1.0);
    }

    #[test]
    fn asymmetric_repeater_orientation_accessors() {
        let fwd = buf(100.0, 0.01);
        let bwd = buf(200.0, 0.02);
        let r = Repeater::from_buffer_pair("r", &fwd, &bwd);
        assert!(!r.is_symmetric());
        assert_eq!(r.cap_a, 0.01);
        assert_eq!(r.cap_b, 0.02);
        // A faces parent: child-bound signals enter at A, drive with fwd.
        let o = Orientation::AFacesParent;
        assert_eq!(r.downstream_drive(o).out_res, 100.0);
        assert_eq!(r.upstream_drive(o).out_res, 200.0);
        assert_eq!(r.cap_facing_parent(o), 0.01);
        assert_eq!(r.cap_facing_child(o), 0.02);
        // Flipped orientation swaps everything.
        let o = o.flipped();
        assert_eq!(r.downstream_drive(o).out_res, 200.0);
        assert_eq!(r.upstream_drive(o).out_res, 100.0);
        assert_eq!(r.cap_facing_parent(o), 0.02);
        assert_eq!(r.cap_facing_child(o), 0.01);
    }

    #[test]
    fn symmetric_repeater_reports_symmetry() {
        let b = buf(100.0, 0.01);
        let r = Repeater::from_buffer_pair("r", &b, &b);
        assert!(r.is_symmetric());
        assert_eq!(r.cost, 2.0);
        assert!(!r.inverting);
        assert!(r.clone().inverting().inverting);
    }

    #[test]
    fn orientation_display_and_flip_involution() {
        for o in Orientation::BOTH {
            assert_eq!(o.flipped().flipped(), o);
        }
        assert_eq!(format!("{}", Orientation::AFacesParent), "A↑");
    }
}
