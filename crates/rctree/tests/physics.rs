//! Physical invariants of the Elmore engine under seeded randomized
//! testing: capacitance conservation, delay symmetry on electrically
//! symmetric nets, and monotonicity under load growth.

use msrnet_geom::Point;
use msrnet_rctree::elmore::Elmore;
use msrnet_rctree::{
    Assignment, Buffer, Net, NetBuilder, Orientation, Repeater, Technology, Terminal, TerminalId,
};
use msrnet_rng::{Rng, SeedableRng, SplitMix64};

const CASES: usize = 48;

/// Builds a random unbuffered net over generated coordinates; all
/// terminals identical (same cap, same drive).
fn build_net(coords: &[(u16, u16)]) -> Option<Net> {
    let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
    let mut pts: Vec<Point> = Vec::new();
    for &(x, y) in coords {
        let p = Point::new((x % 9000) as f64, (y % 9000) as f64);
        if !pts.contains(&p) {
            pts.push(p);
        }
    }
    if pts.len() < 2 {
        return None;
    }
    let ids: Vec<_> = pts
        .iter()
        .map(|&p| b.terminal(p, Terminal::bidirectional(0.0, 0.0, 0.05, 180.0)))
        .collect();
    for i in 1..ids.len() {
        b.wire(ids[i - 1], ids[i]);
    }
    b.build().ok()
}

fn arb_coords(rng: &mut SplitMix64, lo: usize, hi: usize) -> Vec<(u16, u16)> {
    let n = rng.gen_range(lo..hi);
    (0..n)
        .map(|_| {
            (
                rng.gen_range(0..9000i32) as u16,
                rng.gen_range(0..9000i32) as u16,
            )
        })
        .collect()
}

/// With no repeaters, the total decoupled load seen by a driver is the
/// same at every terminal: the whole net.
#[test]
fn total_cap_is_position_independent() {
    let mut rng = SplitMix64::seed_from_u64(30);
    for _ in 0..CASES {
        let coords = arb_coords(&mut rng, 2, 10);
        let Some(net) = build_net(&coords) else { continue };
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let asg = Assignment::empty(net.topology.vertex_count());
        let e = Elmore::new(&net, &rooted, &[], &asg);
        let expect = net.total_cap();
        for t in net.terminal_ids() {
            let v = net.topology.terminal_vertex(t);
            assert!((e.total_cap_at(v) - expect).abs() < 1e-9);
        }
    }
}

/// On a **two-terminal** net with identical end loads and drivers, the
/// Elmore path delay is direction-symmetric regardless of how the wire
/// is subdivided. (With more terminals, side branches load the two
/// directions differently and symmetry genuinely breaks — see
/// `three_terminal_delays_are_asymmetric` below.)
#[test]
fn two_terminal_delays_are_symmetric() {
    let mut rng = SplitMix64::seed_from_u64(31);
    for _ in 0..CASES {
        let len = rng.gen_range(200..9000i32) as f64;
        let spacing = rng.gen_range(100.0..2000.0f64);
        let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
        let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
        let t1 = b.terminal(Point::new(len, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
        b.wire(t0, t1);
        let net = b.build().expect("valid").with_insertion_points(spacing);
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let asg = Assignment::empty(net.topology.vertex_count());
        let e = Elmore::new(&net, &rooted, &[], &asg);
        let fwd = e.path_delay(TerminalId(0), TerminalId(1));
        let bwd = e.path_delay(TerminalId(1), TerminalId(0));
        assert!((fwd - bwd).abs() < 1e-6 * fwd.max(1.0));
    }
}

/// Increasing any terminal's load capacitance can only increase every
/// path delay from any *other* terminal (Elmore monotonicity).
#[test]
fn delays_are_monotone_in_loads() {
    let mut rng = SplitMix64::seed_from_u64(32);
    for _ in 0..CASES {
        let coords = arb_coords(&mut rng, 3, 8);
        let victim = rng.gen_range(0..8usize);
        let extra = rng.gen_range(0.01..0.5f64);
        let Some(net) = build_net(&coords) else { continue };
        let nt = net.terminals.len();
        let victim = TerminalId(victim % nt);
        let mut heavier = net.clone();
        heavier.terminals[victim.0].cap += extra;
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let asg = Assignment::empty(net.topology.vertex_count());
        let base = Elmore::new(&net, &rooted, &[], &asg);
        let more = Elmore::new(&heavier, &rooted, &[], &asg);
        for u in net.terminal_ids() {
            if u == victim {
                continue;
            }
            for w in net.terminal_ids() {
                if w == u {
                    continue;
                }
                assert!(
                    more.path_delay(u, w) >= base.path_delay(u, w) - 1e-9,
                    "extra load decreased a delay"
                );
            }
        }
    }
}

/// A repeater decouples: delays from sources on the A-facing side to
/// sinks on the same side are unaffected by capacitance added on the
/// far side of the repeater.
#[test]
fn repeater_isolates_far_side_loads() {
    let mut rng = SplitMix64::seed_from_u64(33);
    for _ in 0..CASES {
        let extra = rng.gen_range(0.01..2.0f64);
        let len = rng.gen_range(500..5000i32) as f64;
        let make = |far_cap: f64| {
            let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
            let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
            let t1 = b.terminal(Point::new(len, 100.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
            let s = b.steiner(Point::new(len, 0.0));
            let ip = b.insertion_point(Point::new(len * 1.5, 0.0));
            let t2 = b.terminal(Point::new(2.0 * len, 0.0), Terminal::bidirectional(0.0, 0.0, far_cap, 180.0));
            b.wire(t0, s);
            b.wire(s, t1);
            b.wire(s, ip);
            b.wire(ip, t2);
            b.build().expect("valid")
        };
        let buf = Buffer::new("1X", 50.0, 180.0, 0.05, 1.0);
        let lib = [Repeater::from_buffer_pair("r", &buf, &buf)];
        let light = make(0.05);
        let heavy = make(0.05 + extra);
        let evaluate = |net: &Net| {
            let rooted = net.rooted_at_terminal(TerminalId(0));
            let mut asg = Assignment::empty(net.topology.vertex_count());
            let ip = net.topology.insertion_points().next().expect("one ip");
            asg.place(ip, 0, Orientation::AFacesParent);
            let e = Elmore::new(net, &rooted, &lib, &asg);
            e.path_delay(TerminalId(0), TerminalId(1))
        };
        // t0 → t1 never crosses the repeater; the far load at t2 is
        // behind it and must be invisible.
        assert!((evaluate(&light) - evaluate(&heavy)).abs() < 1e-9);
    }
}

/// The counterpoint to the two-terminal symmetry property: with a side
/// branch, driving toward it differs from driving away from it, so the
/// pairwise Elmore delays are genuinely asymmetric — which is exactly why
/// the ARD maximizes over *ordered* pairs.
#[test]
fn three_terminal_delays_are_asymmetric() {
    let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
    let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
    let mid = b.steiner(Point::new(4000.0, 0.0));
    let t1 = b.terminal(Point::new(8000.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
    let t2 = b.terminal(Point::new(4000.0, 6000.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
    b.wire(t0, mid);
    b.wire(mid, t1);
    b.wire(mid, t2);
    let net = b.build().expect("valid");
    let rooted = net.rooted_at_terminal(TerminalId(0));
    let asg = Assignment::empty(net.topology.vertex_count());
    let e = Elmore::new(&net, &rooted, &[], &asg);
    // t0 → t1 passes the heavy t2 branch halfway; t1 → t0 sees the same
    // wires but different downstream caps per element — the delays must
    // differ measurably on this asymmetric geometry... here they match
    // by mirror symmetry of t0/t1, so compare a genuinely asymmetric
    // pair instead: t0 → t2 vs t2 → t0.
    let fwd = e.path_delay(TerminalId(0), TerminalId(2));
    let bwd = e.path_delay(TerminalId(2), TerminalId(0));
    assert!(
        (fwd - bwd).abs() > 1.0,
        "expected measurable asymmetry, got {fwd} vs {bwd}"
    );
}
