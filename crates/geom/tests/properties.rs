//! Randomized property tests of the geometry primitives, driven by a
//! seeded in-tree generator so every run checks the same cases.

use msrnet_geom::{hanan_grid, BoundingBox, Point};
use msrnet_rng::{Rng, SeedableRng, SplitMix64};

const CASES: usize = 128;

fn arb_point(rng: &mut SplitMix64) -> Point {
    Point::new(
        rng.gen_range(0..10_000i32) as f64,
        rng.gen_range(0..10_000i32) as f64,
    )
}

fn arb_points(rng: &mut SplitMix64, lo: usize, hi: usize) -> Vec<Point> {
    let n = rng.gen_range(lo..hi);
    (0..n).map(|_| arb_point(rng)).collect()
}

#[test]
fn l1_is_a_metric() {
    let mut rng = SplitMix64::seed_from_u64(1);
    for _ in 0..CASES {
        let (a, b, c) = (arb_point(&mut rng), arb_point(&mut rng), arb_point(&mut rng));
        // Identity, symmetry, triangle inequality.
        assert_eq!(a.l1_distance(a), 0.0);
        assert_eq!(a.l1_distance(b), b.l1_distance(a));
        assert!(a.l1_distance(c) <= a.l1_distance(b) + b.l1_distance(c) + 1e-9);
        assert!(a.l1_distance(b) >= 0.0);
    }
}

#[test]
fn median3_minimizes_total_distance() {
    let mut rng = SplitMix64::seed_from_u64(2);
    for _ in 0..CASES {
        let (a, b, c) = (arb_point(&mut rng), arb_point(&mut rng), arb_point(&mut rng));
        let m = Point::median3(a, b, c);
        let cost = |p: Point| p.l1_distance(a) + p.l1_distance(b) + p.l1_distance(c);
        // The coordinate-wise median beats (or ties) every Hanan candidate
        // and every input point.
        for cand in hanan_grid(&[a, b, c]) {
            assert!(cost(m) <= cost(cand) + 1e-9);
        }
        // Permutation invariance.
        assert_eq!(m, Point::median3(c, a, b));
        assert_eq!(m, Point::median3(b, c, a));
    }
}

#[test]
fn bounding_box_is_tight() {
    let mut rng = SplitMix64::seed_from_u64(3);
    for _ in 0..CASES {
        let pts = arb_points(&mut rng, 1, 12);
        let bb = BoundingBox::of(pts.iter().copied()).expect("nonempty");
        for &p in &pts {
            assert!(bb.contains(p));
        }
        // Each side is touched by some point.
        assert!(pts.iter().any(|p| p.x == bb.min_x));
        assert!(pts.iter().any(|p| p.x == bb.max_x));
        assert!(pts.iter().any(|p| p.y == bb.min_y));
        assert!(pts.iter().any(|p| p.y == bb.max_y));
        // Half-perimeter lower-bounds any spanning-tree wirelength proxy:
        // it is at least the largest pairwise coordinate spread.
        assert!(bb.half_perimeter() >= 0.0);
    }
}

#[test]
fn hanan_grid_is_the_coordinate_product() {
    let mut rng = SplitMix64::seed_from_u64(4);
    for _ in 0..CASES {
        let pts = arb_points(&mut rng, 1, 8);
        let grid = hanan_grid(&pts);
        // Every input point appears.
        for p in &pts {
            assert!(grid.contains(p));
        }
        // Size is (#distinct x) × (#distinct y) and every grid point uses
        // input coordinates.
        let mut xs: Vec<f64> = pts.iter().map(|p| p.x).collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup();
        let mut ys: Vec<f64> = pts.iter().map(|p| p.y).collect();
        ys.sort_by(f64::total_cmp);
        ys.dedup();
        assert_eq!(grid.len(), xs.len() * ys.len());
        for g in &grid {
            assert!(xs.contains(&g.x) && ys.contains(&g.y));
        }
    }
}
