//! Property-based tests of the geometry primitives.

use msrnet_geom::{hanan_grid, BoundingBox, Point};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (0i32..10_000, 0i32..10_000).prop_map(|(x, y)| Point::new(x as f64, y as f64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn l1_is_a_metric(a in arb_point(), b in arb_point(), c in arb_point()) {
        // Identity, symmetry, triangle inequality.
        prop_assert_eq!(a.l1_distance(a), 0.0);
        prop_assert_eq!(a.l1_distance(b), b.l1_distance(a));
        prop_assert!(a.l1_distance(c) <= a.l1_distance(b) + b.l1_distance(c) + 1e-9);
        prop_assert!(a.l1_distance(b) >= 0.0);
    }

    #[test]
    fn median3_minimizes_total_distance(a in arb_point(), b in arb_point(), c in arb_point()) {
        let m = Point::median3(a, b, c);
        let cost = |p: Point| p.l1_distance(a) + p.l1_distance(b) + p.l1_distance(c);
        // The coordinate-wise median beats (or ties) every Hanan candidate
        // and every input point.
        for cand in hanan_grid(&[a, b, c]) {
            prop_assert!(cost(m) <= cost(cand) + 1e-9);
        }
        // Permutation invariance.
        prop_assert_eq!(m, Point::median3(c, a, b));
        prop_assert_eq!(m, Point::median3(b, c, a));
    }

    #[test]
    fn bounding_box_is_tight(pts in prop::collection::vec(arb_point(), 1..12)) {
        let bb = BoundingBox::of(pts.iter().copied()).expect("nonempty");
        for &p in &pts {
            prop_assert!(bb.contains(p));
        }
        // Each side is touched by some point.
        prop_assert!(pts.iter().any(|p| p.x == bb.min_x));
        prop_assert!(pts.iter().any(|p| p.x == bb.max_x));
        prop_assert!(pts.iter().any(|p| p.y == bb.min_y));
        prop_assert!(pts.iter().any(|p| p.y == bb.max_y));
        // Half-perimeter lower-bounds any spanning-tree wirelength proxy:
        // it is at least the largest pairwise coordinate spread.
        prop_assert!(bb.half_perimeter() >= 0.0);
    }

    #[test]
    fn hanan_grid_is_the_coordinate_product(pts in prop::collection::vec(arb_point(), 1..8)) {
        let grid = hanan_grid(&pts);
        // Every input point appears.
        for p in &pts {
            prop_assert!(grid.contains(p));
        }
        // Size is (#distinct x) × (#distinct y) and every grid point uses
        // input coordinates.
        let mut xs: Vec<f64> = pts.iter().map(|p| p.x).collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup();
        let mut ys: Vec<f64> = pts.iter().map(|p| p.y).collect();
        ys.sort_by(f64::total_cmp);
        ys.dedup();
        prop_assert_eq!(grid.len(), xs.len() * ys.len());
        for g in &grid {
            prop_assert!(xs.contains(&g.x) && ys.contains(&g.y));
        }
    }
}
