//! Planar geometry primitives for rectilinear interconnect.
//!
//! Everything in `msrnet` lives on a Manhattan plane measured in
//! micrometers. This crate provides the small vocabulary shared by the
//! Steiner-tree constructor and the workload generators: [`Point`],
//! rectilinear distance, [`BoundingBox`], and the [`hanan_grid`] of a
//! point set (the classical candidate set for rectilinear Steiner points).
//!
//! # Examples
//!
//! ```
//! use msrnet_geom::{Point, BoundingBox};
//!
//! let a = Point::new(0.0, 0.0);
//! let b = Point::new(30.0, 40.0);
//! assert_eq!(a.l1_distance(b), 70.0);
//!
//! let bb = BoundingBox::of([a, b]).expect("two points");
//! assert_eq!(bb.half_perimeter(), 70.0);
//! ```

mod point;

pub use point::{BoundingBox, Point};

/// Returns the Hanan grid of `points`: every intersection of a horizontal
/// and a vertical line through an input point.
///
/// The Hanan grid is the classical candidate set for rectilinear Steiner
/// points: some optimal rectilinear Steiner minimal tree uses only Hanan
/// points (Hanan, 1966). Coordinates are deduplicated exactly (bitwise on
/// `f64`), which is appropriate because workload generators produce points
/// on an integer lattice.
///
/// The result has at most `n * n` points and contains every input point.
///
/// # Examples
///
/// ```
/// use msrnet_geom::{hanan_grid, Point};
///
/// let pts = [Point::new(0.0, 0.0), Point::new(10.0, 20.0)];
/// let grid = hanan_grid(&pts);
/// assert_eq!(grid.len(), 4);
/// assert!(grid.contains(&Point::new(0.0, 20.0)));
/// assert!(grid.contains(&Point::new(10.0, 0.0)));
/// ```
pub fn hanan_grid(points: &[Point]) -> Vec<Point> {
    let mut xs: Vec<f64> = points.iter().map(|p| p.x).collect();
    let mut ys: Vec<f64> = points.iter().map(|p| p.y).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();
    ys.sort_by(f64::total_cmp);
    ys.dedup();
    let mut grid = Vec::with_capacity(xs.len() * ys.len());
    for &x in &xs {
        for &y in &ys {
            grid.push(Point::new(x, y));
        }
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hanan_grid_of_empty_set_is_empty() {
        assert!(hanan_grid(&[]).is_empty());
    }

    #[test]
    fn hanan_grid_of_single_point_is_that_point() {
        let p = Point::new(3.0, 4.0);
        assert_eq!(hanan_grid(&[p]), vec![p]);
    }

    #[test]
    fn hanan_grid_contains_all_inputs() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(5.0, 9.0),
            Point::new(2.0, 7.0),
        ];
        let grid = hanan_grid(&pts);
        assert_eq!(grid.len(), 9);
        for p in pts {
            assert!(grid.contains(&p));
        }
    }

    #[test]
    fn hanan_grid_dedups_shared_coordinates() {
        // Two points sharing an x line: 1 distinct x and 2 ys gives 1*2=2.
        let pts = [Point::new(1.0, 2.0), Point::new(1.0, 5.0)];
        assert_eq!(hanan_grid(&pts).len(), 2);
    }
}
