use std::fmt;

/// A point on the Manhattan plane, in micrometers.
///
/// `Point` is a plain value type: `Copy`, comparable, hashable (coordinates
/// come from integer-lattice workloads, so bitwise equality is meaningful).
///
/// # Examples
///
/// ```
/// use msrnet_geom::Point;
///
/// let p = Point::new(100.0, 250.0);
/// assert_eq!(p.l1_distance(Point::ORIGIN), 350.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Point {
    /// Horizontal coordinate, µm.
    pub x: f64,
    /// Vertical coordinate, µm.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates (µm).
    pub fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Rectilinear (L1 / Manhattan) distance to `other`, in µm.
    ///
    /// This is the wirelength of any monotone rectilinear route between the
    /// two points.
    pub fn l1_distance(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// The median point of three points, coordinate-wise.
    ///
    /// The coordinate-wise median is the unique point minimizing the total
    /// L1 distance to all three inputs; it is the optimal Steiner point for
    /// a three-terminal rectilinear net.
    ///
    /// # Examples
    ///
    /// ```
    /// use msrnet_geom::Point;
    ///
    /// let m = Point::median3(
    ///     Point::new(0.0, 0.0),
    ///     Point::new(10.0, 2.0),
    ///     Point::new(4.0, 8.0),
    /// );
    /// assert_eq!(m, Point::new(4.0, 2.0));
    /// ```
    pub fn median3(a: Point, b: Point, c: Point) -> Point {
        Point {
            x: median(a.x, b.x, c.x),
            y: median(a.y, b.y, c.y),
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

fn median(a: f64, b: f64, c: f64) -> f64 {
    a.max(b).min(a.max(c)).min(b.max(c))
}

/// An axis-aligned rectangle enclosing a point set, in µm.
///
/// Used to reason about net extent (the half-perimeter is the classical
/// wirelength lower bound) and by the workload generators to size grids.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BoundingBox {
    /// Smallest x among the enclosed points.
    pub min_x: f64,
    /// Smallest y among the enclosed points.
    pub min_y: f64,
    /// Largest x among the enclosed points.
    pub max_x: f64,
    /// Largest y among the enclosed points.
    pub max_y: f64,
}

impl BoundingBox {
    /// Computes the bounding box of an iterator of points.
    ///
    /// Returns `None` for an empty iterator.
    ///
    /// # Examples
    ///
    /// ```
    /// use msrnet_geom::{BoundingBox, Point};
    ///
    /// let bb = BoundingBox::of([Point::new(1.0, 5.0), Point::new(4.0, 2.0)])
    ///     .expect("nonempty");
    /// assert_eq!(bb.width(), 3.0);
    /// assert_eq!(bb.height(), 3.0);
    /// ```
    pub fn of<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = BoundingBox {
            min_x: first.x,
            min_y: first.y,
            max_x: first.x,
            max_y: first.y,
        };
        for p in it {
            bb.min_x = bb.min_x.min(p.x);
            bb.min_y = bb.min_y.min(p.y);
            bb.max_x = bb.max_x.max(p.x);
            bb.max_y = bb.max_y.max(p.y);
        }
        Some(bb)
    }

    /// Horizontal extent, µm.
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Vertical extent, µm.
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Half the perimeter: `width + height`, µm.
    ///
    /// This is the classical lower bound on the wirelength of any tree
    /// spanning the enclosed points.
    pub fn half_perimeter(&self) -> f64 {
        self.width() + self.height()
    }

    /// Whether `p` lies inside or on the boundary.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l1_distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.5, -2.0);
        let b = Point::new(-3.0, 4.0);
        assert_eq!(a.l1_distance(b), b.l1_distance(a));
        assert_eq!(a.l1_distance(a), 0.0);
        assert_eq!(a.l1_distance(b), 10.5);
    }

    #[test]
    fn median3_is_inside_bounding_box() {
        let a = Point::new(0.0, 10.0);
        let b = Point::new(5.0, 0.0);
        let c = Point::new(9.0, 9.0);
        let m = Point::median3(a, b, c);
        let bb = BoundingBox::of([a, b, c]).unwrap();
        assert!(bb.contains(m));
        assert_eq!(m, Point::new(5.0, 9.0));
    }

    #[test]
    fn median3_minimizes_total_l1_among_hanan_candidates() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 2.0);
        let c = Point::new(4.0, 8.0);
        let m = Point::median3(a, b, c);
        let cost =
            |p: Point| p.l1_distance(a) + p.l1_distance(b) + p.l1_distance(c);
        for cand in crate::hanan_grid(&[a, b, c]) {
            assert!(cost(m) <= cost(cand) + 1e-12);
        }
    }

    #[test]
    fn bounding_box_of_empty_is_none() {
        assert!(BoundingBox::of(std::iter::empty()).is_none());
    }

    #[test]
    fn bounding_box_contains_its_points() {
        let pts = [
            Point::new(2.0, 3.0),
            Point::new(-1.0, 7.0),
            Point::new(5.0, -2.0),
        ];
        let bb = BoundingBox::of(pts).unwrap();
        for p in pts {
            assert!(bb.contains(p));
        }
        assert_eq!(bb.half_perimeter(), 6.0 + 9.0);
    }

    #[test]
    fn point_display_and_from_tuple() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(format!("{p}"), "(1, 2)");
    }
}
