//! The shared edit-replay engine behind both `msrnet-cli edits` and the
//! server's `open`/`edit`/`recompute` requests.
//!
//! A [`Replayer`] owns one [`IncrementalOptimizer`] session plus the
//! replay's accumulated report state: one JSON row per step (step 0 is
//! the initial all-dirty compute, each later step replays one edit,
//! cross-checked bit-for-bit against a from-scratch oracle) and the
//! applied/rejected/mismatch counters. [`Replayer::report`] assembles
//! the exact `msrnet_edits` document the CLI prints.
//!
//! Because the CLI and the server drive this one implementation — and
//! the protocol passes the resulting text through verbatim — a served
//! `recompute` is byte-identical to a local `msrnet-cli edits` run on
//! the same net and trace *by construction*. The golden/oracle tests
//! assert that equality on raw bytes.

use msrnet_core::{
    required_cap_bound, MsriOptions, PruningStrategy, TerminalOptions, TradeoffCurve, WireOption,
};
use msrnet_incremental::{Edit, IncrementalOptimizer};
use msrnet_rctree::{Net, Repeater, TerminalId};

/// Bit-level curve equality (values and realizations) for the per-edit
/// incremental-vs-scratch cross-check.
pub fn curves_bit_identical(a: &TradeoffCurve, b: &TradeoffCurve) -> bool {
    a.len() == b.len()
        && a.points().iter().zip(b.points()).all(|(pa, pb)| {
            pa.cost.to_bits() == pb.cost.to_bits()
                && pa.ard.to_bits() == pb.ard.to_bits()
                && pa.assignment == pb.assignment
                && pa.terminal_choices == pb.terminal_choices
                && pa.wire_choices == pb.wire_choices
        })
}

/// A finite float as JSON, non-finite as `null`.
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// One incremental session plus its replay report state.
pub struct Replayer {
    session: IncrementalOptimizer,
    /// Net label echoed into the report (the CLI passes the `.msr`
    /// path; served sessions pass the name uploaded with `open`).
    label: String,
    initial_root: TerminalId,
    rows: Vec<String>,
    edits_seen: usize,
    applied: usize,
    rejected: usize,
    mismatches: usize,
}

impl std::fmt::Debug for Replayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replayer")
            .field("label", &self.label)
            .field("root", &self.initial_root.0)
            .field("edits_seen", &self.edits_seen)
            .field("applied", &self.applied)
            .field("rejected", &self.rejected)
            .field("mismatches", &self.mismatches)
            .finish_non_exhaustive()
    }
}

impl Replayer {
    /// Builds a session the way `msrnet-cli edits` does — default-cost
    /// driver menus with the given driver cost, the unit wire menu,
    /// inverting repeaters allowed iff the library has any — and runs
    /// step 0 (the initial all-dirty compute) so the session is
    /// validated eagerly.
    ///
    /// # Errors
    ///
    /// A message (the CLI surfaces it verbatim) when the root index is
    /// out of range or the configuration's capacitance bound is
    /// degenerate. An *infeasible* initial solve is not an error: it
    /// becomes step 0's row, exactly as in the CLI.
    pub fn open(
        label: impl Into<String>,
        net: Net,
        root: TerminalId,
        library: Vec<Repeater>,
        driver_cost: f64,
        pruning: PruningStrategy,
        timing: bool,
    ) -> Result<Replayer, String> {
        Replayer::open_with_wires(
            label,
            net,
            root,
            library,
            vec![WireOption::unit()],
            driver_cost,
            pruning,
            timing,
        )
    }

    /// [`Replayer::open`] with an explicit wire-sizing menu, so an edit
    /// session replays through the same per-subtree cache the
    /// wire-sizing DP (`optimize_with_wires`) uses. The menu must be
    /// non-empty; `msrnet-cli edits --wire-widths` builds it the same
    /// way the `wires` subcommand does.
    ///
    /// # Errors
    ///
    /// As [`Replayer::open`], plus an empty wire menu.
    #[allow(clippy::too_many_arguments)]
    pub fn open_with_wires(
        label: impl Into<String>,
        net: Net,
        root: TerminalId,
        library: Vec<Repeater>,
        wire_options: Vec<WireOption>,
        driver_cost: f64,
        pruning: PruningStrategy,
        timing: bool,
    ) -> Result<Replayer, String> {
        if root.0 >= net.terminals.len() {
            return Err(format!("--root {} out of range", root.0));
        }
        if wire_options.is_empty() {
            return Err("wire menu must not be empty".into());
        }
        let term_opts = TerminalOptions::defaults_with_cost(&net, driver_cost);
        let options = MsriOptions {
            allow_inverting: library.iter().any(|r| r.inverting),
            pruning,
            ..MsriOptions::default()
        };
        let bound = required_cap_bound(&net, &library, &term_opts, &wire_options);
        if !bound.is_finite() || bound <= 0.0 {
            return Err(format!("degenerate configuration: cap bound {bound}"));
        }
        let session =
            IncrementalOptimizer::new(net, root, library, term_opts, wire_options, options);
        let mut rep = Replayer {
            session,
            label: label.into(),
            initial_root: root,
            rows: Vec::new(),
            edits_seen: 0,
            applied: 0,
            rejected: 0,
            mismatches: 0,
        };
        rep.recompute_row(0, "initial", timing);
        Ok(rep)
    }

    /// Replays one edit: apply, recompute, cross-check against a
    /// from-scratch oracle, append the row. Returns `false` if the edit
    /// was rejected (the row records the reason; the session state is
    /// unchanged).
    pub fn step(&mut self, edit: &Edit, timing: bool) -> bool {
        self.edits_seen += 1;
        let step = self.edits_seen;
        if let Err(e) = self.session.apply(edit) {
            self.rejected += 1;
            self.rows.push(format!(
                "    {{\"step\": {step}, \"op\": \"{}\", \"status\": \"rejected\", \
                 \"reason\": \"{e}\", \"bit_identical\": null, \"micros\": null}}",
                edit.op_name()
            ));
            return false;
        }
        self.applied += 1;
        self.recompute_row(step, edit.op_name(), timing);
        true
    }

    /// Replays a whole trace in order.
    pub fn replay(&mut self, edits: &[Edit], timing: bool) {
        for edit in edits {
            self.step(edit, timing);
        }
    }

    fn recompute_row(&mut self, step: usize, op: &str, timing: bool) {
        // msrnet-allow: wall-clock recompute latency is emitted only under the CLI's --timing flag; default output is byte-stable
        let t0 = timing.then(std::time::Instant::now);
        let inc = self.session.recompute();
        let micros = match t0 {
            Some(t) => format!("{}", t.elapsed().as_micros()),
            None => "null".into(),
        };
        let scratch = self.session.from_scratch();
        match (inc, scratch) {
            (Ok((a, sa)), Ok((b, _))) => {
                let bit = curves_bit_identical(&a, &b);
                if !bit {
                    self.mismatches += 1;
                }
                let best = a.best_ard();
                self.rows.push(format!(
                    "    {{\"step\": {step}, \"op\": \"{op}\", \"status\": \"ok\", \
                     \"nodes_visited\": {}, \"nodes_recomputed\": {}, \"nodes_reused\": {}, \
                     \"points\": {}, \"best_ard\": {}, \"min_cost\": {}, \
                     \"bit_identical\": {bit}, \"micros\": {micros}}}",
                    sa.nodes_visited,
                    sa.nodes_recomputed,
                    sa.nodes_reused,
                    a.len(),
                    json_num(best.ard),
                    json_num(a.min_cost().cost),
                ));
            }
            (Err(a), Err(b)) => {
                let bit = a == b;
                if !bit {
                    self.mismatches += 1;
                }
                self.rows.push(format!(
                    "    {{\"step\": {step}, \"op\": \"{op}\", \"status\": \"infeasible\", \
                     \"error\": \"{a}\", \"bit_identical\": {bit}, \"micros\": {micros}}}"
                ));
            }
            (inc, _) => {
                self.mismatches += 1;
                self.rows.push(format!(
                    "    {{\"step\": {step}, \"op\": \"{op}\", \"status\": \"mismatch\", \
                     \"error\": \"only one side solved (incremental ok: {})\", \
                     \"bit_identical\": false, \"micros\": {micros}}}",
                    inc.is_ok()
                ));
            }
        }
    }

    /// Assembles the full `msrnet_edits` report, byte-identical to what
    /// `msrnet-cli edits` prints for the same net (labelled by this
    /// session's label), root, and concatenated traces.
    pub fn report(&self) -> String {
        format!(
            "{{\n  \"benchmark\": \"msrnet_edits\",\n  \"net\": \"{}\",\n  \
             \"root\": {},\n  \"edits\": {},\n  \"applied\": {},\n  \
             \"rejected\": {},\n  \"escalations\": {},\n  \
             \"mismatches\": {},\n  \"steps\": [\n{}\n  ]\n}}\n",
            self.label,
            self.initial_root.0,
            self.edits_seen,
            self.applied,
            self.rejected,
            self.session.escalations(),
            self.mismatches,
            self.rows.join(",\n"),
        )
    }

    /// The rows appended since index `from` (the server's `edit`
    /// response returns just the new rows, joined by newlines).
    pub fn rows_since(&self, from: usize) -> String {
        self.rows[from.min(self.rows.len())..].join("\n")
    }

    /// How many rows the replay has produced so far (step 0 included).
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The session's current trade-off curve as deterministic JSON
    /// (`msrnet_curve` schema: cost/ARD pairs in curve order, no
    /// timing fields).
    ///
    /// # Errors
    ///
    /// The optimizer's infeasibility message when the current state has
    /// no feasible solution.
    pub fn curve_json(&mut self) -> Result<String, String> {
        let (curve, _) = self.session.recompute().map_err(|e| e.to_string())?;
        let mut out = String::from("{\n  \"benchmark\": \"msrnet_curve\",\n  \"points\": [\n");
        let pts = curve.points();
        for (i, p) in pts.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"cost\": {}, \"ard\": {}}}{}\n",
                json_num(p.cost),
                json_num(p.ard),
                if i + 1 < pts.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        Ok(out)
    }

    /// Total edits replayed (rejected ones included).
    pub fn edits_seen(&self) -> usize {
        self.edits_seen
    }

    /// Edits accepted by the session.
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// Edits rejected (structurally invalid for the current net).
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Recomputes that diverged from the from-scratch oracle.
    pub fn mismatches(&self) -> usize {
        self.mismatches
    }

    /// Bound escalations (see `IncrementalOptimizer::escalations`).
    pub fn escalations(&self) -> u64 {
        self.session.escalations()
    }

    /// Resident DP-cache size, the session's retained-memory proxy.
    pub fn cached_subtrees(&self) -> usize {
        self.session.cached_subtrees()
    }

    /// The session's report label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The underlying session (read-only).
    pub fn session(&self) -> &IncrementalOptimizer {
        &self.session
    }
}
