//! The wire framing layer: length-prefixed frames with a fixed header.
//!
//! Every message on a connection — request or response — is one frame:
//!
//! ```text
//! offset  size  field
//! 0       2     magic  "MR" (0x4D 0x52)
//! 2       1     version (currently 1)
//! 3       1     kind (request/response discriminant, see `proto`)
//! 4       4     payload length, big-endian u32
//! 8       n     payload
//! ```
//!
//! Decoding is an incremental state machine ([`FrameDecoder`]): bytes
//! are fed in arbitrary chunks and each header field is validated as
//! soon as its bytes are available, so a given byte stream produces the
//! same [`FrameError`] no matter how the transport chunks it. The
//! production socket read path and the protocol fuzz tests drive the
//! *same* decoder, which is what makes the fuzz coverage real.
//!
//! The decoder never panics; every rejection is a typed [`FrameError`].

use std::fmt;

/// Frame magic, first byte: `'M'`.
pub const MAGIC0: u8 = 0x4D;
/// Frame magic, second byte: `'R'`.
pub const MAGIC1: u8 = 0x52;
/// The only protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Fixed header size in bytes (magic + version + kind + length).
pub const HEADER_LEN: usize = 8;
/// Default cap on payload length (8 MiB): frames announcing more are
/// rejected before any payload is buffered.
pub const DEFAULT_MAX_PAYLOAD: u32 = 8 * 1024 * 1024;

/// One decoded frame: the kind discriminant plus its raw payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Frame {
    /// Request/response discriminant byte (interpreted by `proto`).
    pub kind: u8,
    /// Raw payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Encodes the frame for the wire (header + payload).
    ///
    /// # Errors
    ///
    /// Returns [`FrameError::Oversized`] if the payload exceeds
    /// `max_payload` (encoders obey the same limit they decode under,
    /// so a conforming peer never triggers the decoder's cap).
    pub fn encode(&self, max_payload: u32) -> Result<Vec<u8>, FrameError> {
        if self.payload.len() as u64 > u64::from(max_payload) {
            return Err(FrameError::Oversized {
                len: self.payload.len() as u64,
                limit: max_payload,
            });
        }
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.push(MAGIC0);
        out.push(MAGIC1);
        out.push(VERSION);
        out.push(self.kind);
        out.extend_from_slice(&(self.payload.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.payload);
        Ok(out)
    }
}

/// A typed framing failure. Any of these poisons the connection: the
/// stream position is no longer trustworthy, so the server sends a
/// best-effort error frame and drops the connection.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The first two bytes were not `"MR"`.
    BadMagic {
        /// The offending byte.
        got: u8,
        /// Position within the magic (0 or 1).
        at: u8,
    },
    /// The version byte named a protocol this build does not speak.
    BadVersion {
        /// The offending version byte.
        got: u8,
    },
    /// The header announced a payload larger than the configured cap.
    Oversized {
        /// Announced payload length.
        len: u64,
        /// Configured cap.
        limit: u32,
    },
    /// The stream ended mid-frame (header or payload incomplete).
    Truncated {
        /// Bytes still needed to complete the current frame.
        missing: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic { got, at } => {
                write!(f, "bad frame magic: byte {at} is {got:#04x}")
            }
            FrameError::BadVersion { got } => {
                write!(f, "unsupported protocol version {got} (this build speaks {VERSION})")
            }
            FrameError::Oversized { len, limit } => {
                write!(f, "frame payload of {len} bytes exceeds the {limit}-byte limit")
            }
            FrameError::Truncated { missing } => {
                write!(f, "stream ended mid-frame ({missing} more bytes needed)")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Incremental frame decoder.
///
/// Feed bytes with [`FrameDecoder::feed`], drain complete frames with
/// [`FrameDecoder::next_frame`], and call [`FrameDecoder::finish`] when
/// the stream ends to surface a trailing partial frame as
/// [`FrameError::Truncated`]. After any error the decoder is poisoned
/// and keeps returning the same error.
#[derive(Debug)]
pub struct FrameDecoder {
    max_payload: u32,
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by emitted frames.
    consumed: usize,
    poisoned: Option<FrameError>,
}

impl FrameDecoder {
    /// A decoder enforcing the given payload cap.
    pub fn new(max_payload: u32) -> Self {
        FrameDecoder {
            max_payload,
            buf: Vec::new(),
            consumed: 0,
            poisoned: None,
        }
    }

    /// Appends transport bytes to the decode buffer.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.poisoned.is_none() {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// True if a partial frame is buffered (used by the server's
    /// slow-loris policy: a read timeout mid-frame drops the
    /// connection, a timeout between frames is just idleness).
    pub fn mid_frame(&self) -> bool {
        self.poisoned.is_none() && self.buf.len() > self.consumed
    }

    /// Tries to decode the next complete frame.
    ///
    /// Returns `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// A typed [`FrameError`] as soon as a header field is provably
    /// invalid — independent of how the input was chunked.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        match self.try_decode() {
            Ok(v) => Ok(v),
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
        }
    }

    fn try_decode(&mut self) -> Result<Option<Frame>, FrameError> {
        // Reclaim consumed prefix occasionally so long-lived
        // connections don't grow the buffer without bound.
        if self.consumed > 0 && self.consumed == self.buf.len() {
            self.buf.clear();
            self.consumed = 0;
        }
        let have = &self.buf[self.consumed..];
        // Validate each header field as soon as its bytes exist.
        if !have.is_empty() && have[0] != MAGIC0 {
            return Err(FrameError::BadMagic { got: have[0], at: 0 });
        }
        if have.len() >= 2 && have[1] != MAGIC1 {
            return Err(FrameError::BadMagic { got: have[1], at: 1 });
        }
        if have.len() >= 3 && have[2] != VERSION {
            return Err(FrameError::BadVersion { got: have[2] });
        }
        if have.len() < HEADER_LEN {
            return Ok(None);
        }
        let len = u32::from_be_bytes([have[4], have[5], have[6], have[7]]);
        if len > self.max_payload {
            return Err(FrameError::Oversized {
                len: u64::from(len),
                limit: self.max_payload,
            });
        }
        let total = HEADER_LEN + len as usize;
        if have.len() < total {
            return Ok(None);
        }
        let frame = Frame {
            kind: have[3],
            payload: have[HEADER_LEN..total].to_vec(),
        };
        self.consumed += total;
        Ok(Some(frame))
    }

    /// Declares end-of-stream.
    ///
    /// # Errors
    ///
    /// [`FrameError::Truncated`] if bytes of an incomplete frame remain
    /// buffered (a mid-frame disconnect), or the poisoning error if the
    /// decoder already failed.
    pub fn finish(&self) -> Result<(), FrameError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        let pending = self.buf.len() - self.consumed;
        if pending == 0 {
            return Ok(());
        }
        // How many more bytes the current frame needs: up to a full
        // header if the length is still unknown, else the remainder of
        // the announced payload.
        let missing = if pending < HEADER_LEN {
            HEADER_LEN - pending
        } else {
            let have = &self.buf[self.consumed..];
            let len = u32::from_be_bytes([have[4], have[5], have[6], have[7]]) as usize;
            HEADER_LEN + len - pending
        };
        Err(FrameError::Truncated { missing })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(bytes: &[u8], chunk: usize) -> Result<Vec<Frame>, FrameError> {
        let mut dec = FrameDecoder::new(DEFAULT_MAX_PAYLOAD);
        let mut frames = Vec::new();
        for piece in bytes.chunks(chunk.max(1)) {
            dec.feed(piece);
            while let Some(f) = dec.next_frame()? {
                frames.push(f);
            }
        }
        dec.finish()?;
        Ok(frames)
    }

    #[test]
    fn round_trip_is_chunking_invariant() {
        let frames = [
            Frame { kind: 0x01, payload: b"hello".to_vec() },
            Frame { kind: 0x81, payload: Vec::new() },
            Frame { kind: 0x05, payload: vec![0u8; 1000] },
        ];
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend(f.encode(DEFAULT_MAX_PAYLOAD).unwrap());
        }
        for chunk in [1, 2, 3, 7, 64, wire.len()] {
            assert_eq!(decode_all(&wire, chunk).unwrap(), frames, "chunk={chunk}");
        }
    }

    #[test]
    fn errors_are_chunking_invariant() {
        let cases: Vec<(Vec<u8>, FrameError)> = vec![
            (vec![0x00], FrameError::BadMagic { got: 0x00, at: 0 }),
            (vec![MAGIC0, 0xFF], FrameError::BadMagic { got: 0xFF, at: 1 }),
            (vec![MAGIC0, MAGIC1, 9], FrameError::BadVersion { got: 9 }),
            (
                {
                    let mut v = vec![MAGIC0, MAGIC1, VERSION, 0x01];
                    v.extend(u32::MAX.to_be_bytes());
                    v
                },
                FrameError::Oversized { len: u64::from(u32::MAX), limit: DEFAULT_MAX_PAYLOAD },
            ),
        ];
        for (bytes, want) in cases {
            for chunk in [1, 2, bytes.len()] {
                assert_eq!(decode_all(&bytes, chunk).unwrap_err(), want);
            }
        }
    }

    #[test]
    fn truncation_reports_missing_bytes() {
        // Header promises 10 payload bytes, stream ends after 4.
        let mut wire = vec![MAGIC0, MAGIC1, VERSION, 0x02];
        wire.extend(10u32.to_be_bytes());
        wire.extend([0u8; 4]);
        let err = decode_all(&wire, wire.len()).unwrap_err();
        assert_eq!(err, FrameError::Truncated { missing: 6 });

        // Partial header.
        let err = decode_all(&[MAGIC0, MAGIC1], 1).unwrap_err();
        assert_eq!(err, FrameError::Truncated { missing: 6 });
    }

    #[test]
    fn poisoned_decoder_stays_poisoned() {
        let mut dec = FrameDecoder::new(16);
        dec.feed(&[0xFF]);
        let first = dec.next_frame().unwrap_err();
        dec.feed(&[MAGIC0, MAGIC1, VERSION, 0x01, 0, 0, 0, 0]);
        assert_eq!(dec.next_frame().unwrap_err(), first);
        assert_eq!(dec.finish().unwrap_err(), first);
    }

    #[test]
    fn encode_refuses_oversized_payloads() {
        let f = Frame { kind: 1, payload: vec![0u8; 17] };
        assert!(matches!(f.encode(16), Err(FrameError::Oversized { len: 17, limit: 16 })));
    }
}
