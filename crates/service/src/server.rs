//! The resident session server.
//!
//! One accept loop, one handler thread per connection (capped), one
//! shared [`SessionTable`] behind a mutex. The table lock is held only
//! for bookkeeping: a session being served is *checked out* of the
//! table, so concurrent sessions optimize in parallel and a concurrent
//! touch of the same session gets a typed `Busy` rather than blocking.
//!
//! Degradation contract (exercised by the fault-injection suite):
//!
//! * framing error (bad magic/version, oversized announcement) →
//!   best-effort `BadFrame`/`Oversized` response, connection dropped;
//! * unknown request kind / malformed body → typed error response,
//!   connection continues;
//! * client disconnect mid-frame → connection reaped, sessions intact;
//! * read timeout mid-frame (slow-loris) → connection dropped;
//! * deadline expiry → `DeadlineExceeded` at a cooperative checkpoint,
//!   completed steps retained;
//! * connection cap exceeded → `Busy` response, connection dropped;
//! * handler panic → session tombstoned (`Evicted`), worker reaped,
//!   server stays serviceable.
//!
//! Nothing in this module panics on malformed input, and no failure
//! class wedges a worker or a session.

use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use msrnet_batch::{run_batch, BatchJob};
use msrnet_core::{PruningStrategy, TerminalOptions};
use msrnet_incremental::json::{parse_json, Json};
use msrnet_incremental::parse_trace;
use msrnet_netgen::format::parse_net_file;
use msrnet_rctree::TerminalId;

use crate::frame::{Frame, FrameDecoder, FrameError, DEFAULT_MAX_PAYLOAD};
use crate::net::{Endpoint, Listener, Stream};
use crate::proto::{ErrorCode, Request, Response, NO_DEADLINE};
use crate::replay::Replayer;
use crate::session::SessionTable;

/// Server tuning knobs. The defaults suit tests and small deployments.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Per-frame payload cap; larger announcements are `Oversized`.
    pub max_payload: u32,
    /// Hard cap on live sessions (`SessionLimit` beyond it).
    pub max_sessions: usize,
    /// LRU cap on resident sessions (eviction beyond it).
    pub max_resident: usize,
    /// Cap on concurrent connections (`Busy` beyond it).
    pub max_connections: usize,
    /// Cap on the thread count a `batch` request may ask for.
    pub batch_threads_cap: usize,
    /// Socket read timeout; a timeout that strikes mid-frame drops the
    /// connection (slow-loris defense).
    pub read_timeout_ms: u64,
    /// Serve exactly one connection, then return (golden-file tests).
    pub once: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_payload: DEFAULT_MAX_PAYLOAD,
            max_sessions: 4096,
            max_resident: 1024,
            max_connections: 64,
            batch_threads_cap: 8,
            read_timeout_ms: 2000,
            once: false,
        }
    }
}

/// Counters the `stats` request reports. All logical (no wall clock),
/// so a sequential request trace yields byte-stable stats.
struct Shared {
    config: ServerConfig,
    table: Mutex<SessionTable>,
    requests_ok: AtomicU64,
    requests_error: AtomicU64,
    connections: AtomicUsize,
    /// Set by [`Server::run`] on shutdown so idle workers (blocked in a
    /// timed read on a still-open connection) exit instead of wedging
    /// the final join. Worker exit latency is bounded by
    /// [`ServerConfig::read_timeout_ms`].
    shutdown: AtomicBool,
}

fn lock_table(m: &Mutex<SessionTable>) -> MutexGuard<'_, SessionTable> {
    // A poisoning panic has already tombstoned its session via the
    // checkout guard; the table itself is still consistent.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A bound, not-yet-running server.
pub struct Server {
    listener: Listener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the endpoint.
    ///
    /// # Errors
    ///
    /// The underlying bind failure.
    pub fn bind(endpoint: &Endpoint, config: ServerConfig) -> std::io::Result<Server> {
        let listener = Listener::bind(endpoint)?;
        let table = SessionTable::new(config.max_sessions, config.max_resident);
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                config,
                table: Mutex::new(table),
                requests_ok: AtomicU64::new(0),
                requests_error: AtomicU64::new(0),
                connections: AtomicUsize::new(0),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The actually-bound endpoint (reports the OS-assigned port for
    /// `tcp:HOST:0` binds).
    ///
    /// # Errors
    ///
    /// The underlying `local_addr` failure.
    pub fn local_endpoint(&self) -> std::io::Result<Endpoint> {
        self.listener.local_endpoint()
    }

    /// Runs the accept loop until `stop` is set (or, with
    /// [`ServerConfig::once`], until one connection has been served).
    /// Joins every handler thread before returning.
    ///
    /// # Errors
    ///
    /// Listener setup failures; per-connection I/O errors are absorbed
    /// (the connection is dropped, the server keeps serving).
    pub fn run(self, stop: &AtomicBool) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if stop.load(Ordering::Acquire) {
                break;
            }
            match self.listener.accept() {
                Ok(stream) => {
                    let shared = Arc::clone(&self.shared);
                    if self.shared.config.once {
                        handle_connection(stream, &shared);
                        break;
                    }
                    let active = shared.connections.fetch_add(1, Ordering::AcqRel);
                    if active >= shared.config.max_connections {
                        shared.connections.fetch_sub(1, Ordering::AcqRel);
                        refuse_busy(stream, &shared);
                        continue;
                    }
                    workers.push(std::thread::spawn(move || {
                        handle_connection(stream, &shared);
                        shared.connections.fetch_sub(1, Ordering::AcqRel);
                    }));
                    // Reap finished workers so long runs don't
                    // accumulate handles.
                    workers.retain(|h| !h.is_finished());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => {
                    // Transient accept failure; keep serving.
                    std::thread::sleep(Duration::from_millis(2));
                }
            }
        }
        // Open-but-idle connections must not wedge the join below: flag
        // the shutdown so every worker exits at its next read timeout.
        self.shared.shutdown.store(true, Ordering::Release);
        for h in workers {
            // A handler panic already tombstoned its session; nothing
            // to propagate.
            let _ = h.join();
        }
        Ok(())
    }
}

/// Best-effort `Busy` response to a connection over the cap.
fn refuse_busy(mut stream: Stream, shared: &Shared) {
    let resp = Response::Err {
        code: ErrorCode::Busy,
        message: "connection limit reached".into(),
    };
    shared.requests_error.fetch_add(1, Ordering::AcqRel);
    if let Ok(bytes) = resp.encode().encode(u32::MAX) {
        let _ = stream.write_all(&bytes);
    }
}

/// Serves one connection until EOF, a framing error, or a mid-frame
/// stall. Never panics on input; never leaves a session checked out.
fn handle_connection(mut stream: Stream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(
        shared.config.read_timeout_ms.max(1),
    )));
    let mut dec = FrameDecoder::new(shared.config.max_payload);
    let mut buf = [0u8; 16 * 1024];
    loop {
        // Drain complete frames before reading more bytes.
        loop {
            match dec.next_frame() {
                Ok(Some(frame)) => {
                    let resp = serve_frame(&frame, shared);
                    match resp.encode().encode(u32::MAX) {
                        Ok(bytes) => {
                            if stream.write_all(&bytes).is_err() || stream.flush().is_err() {
                                return;
                            }
                        }
                        Err(_) => return,
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing failure: the stream position is lost.
                    // Answer with the matching code, then drop.
                    let code = match e {
                        FrameError::Oversized { .. } => ErrorCode::Oversized,
                        _ => ErrorCode::BadFrame,
                    };
                    shared.requests_error.fetch_add(1, Ordering::AcqRel);
                    let resp = Response::Err {
                        code,
                        message: e.to_string(),
                    };
                    if let Ok(bytes) = resp.encode().encode(u32::MAX) {
                        let _ = stream.write_all(&bytes);
                    }
                    return;
                }
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => return, // EOF; a mid-frame EOF is just a drop.
            Ok(n) => dec.feed(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if dec.mid_frame() {
                    // Slow-loris: a header arrived but the rest is
                    // being dripped. Cut the connection.
                    return;
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    // The accept loop is joining workers; an idle
                    // connection must not hold shutdown hostage.
                    return;
                }
                // Idle between requests is fine; keep waiting.
            }
            Err(_) => return,
        }
    }
}

/// Cooperative deadline: checked between units of work, never
/// preemptively.
struct Deadline {
    started: Instant,
    budget: Option<Duration>,
}

impl Deadline {
    fn new(deadline_ms: u32) -> Deadline {
        // msrnet-allow: wall-clock deadlines bound request latency; they gate only error responses, never optimization results
        let started = Instant::now();
        let budget = (deadline_ms != NO_DEADLINE)
            .then(|| Duration::from_millis(u64::from(deadline_ms)));
        Deadline { started, budget }
    }

    fn check(&self) -> Result<(), (ErrorCode, String)> {
        match self.budget {
            Some(budget) if self.started.elapsed() >= budget => Err((
                ErrorCode::DeadlineExceeded,
                format!("deadline of {} ms expired", budget.as_millis()),
            )),
            _ => Ok(()),
        }
    }
}

/// Checkout guard: puts the session back on every exit path; if the
/// thread is panicking the session state is suspect, so the slot is
/// tombstoned instead (typed `Evicted` on re-touch, never a wedge).
struct Checkout<'a> {
    table: &'a Mutex<SessionTable>,
    id: u64,
    sess: Option<Box<Replayer>>,
}

impl<'a> Checkout<'a> {
    fn take(table: &'a Mutex<SessionTable>, id: u64) -> Result<Checkout<'a>, ErrorCode> {
        let sess = lock_table(table).checkout(id)?;
        Ok(Checkout {
            table,
            id,
            sess: Some(sess),
        })
    }

    /// Consumes the checkout and removes the session from the table.
    fn close(mut self) {
        self.sess = None;
        // msrnet-allow: lock-discipline receiver is the table guard: .close() dispatches to SessionTable::close, not Checkout::close
        lock_table(self.table).close(self.id);
    }
}

impl Drop for Checkout<'_> {
    fn drop(&mut self) {
        if let Some(sess) = self.sess.take() {
            let mut t = lock_table(self.table);
            if std::thread::panicking() {
                t.mark_evicted(self.id);
            } else {
                t.put_back(self.id, sess);
            }
        }
    }
}

fn err(code: ErrorCode, message: impl Into<String>) -> Response {
    Response::Err {
        code,
        message: message.into(),
    }
}

/// Decodes and executes one request frame, tallying the outcome.
fn serve_frame(frame: &Frame, shared: &Shared) -> Response {
    let resp = match Request::decode(frame) {
        Ok(req) => handle_request(req, shared),
        Err(e) => err(e.code(), e.to_string()),
    };
    match resp {
        Response::Ok(_) => shared.requests_ok.fetch_add(1, Ordering::AcqRel),
        Response::Err { .. } => shared.requests_error.fetch_add(1, Ordering::AcqRel),
    };
    resp
}

fn handle_request(req: Request, shared: &Shared) -> Response {
    let deadline = Deadline::new(req.deadline_ms());
    if let Err((code, msg)) = deadline.check() {
        return err(code, msg);
    }
    match req {
        Request::Open {
            root,
            driver_cost,
            name,
            pruning,
            msr,
            ..
        } => handle_open(shared, &deadline, root, driver_cost, name, &pruning, &msr),
        Request::Edit { session, trace, .. } => {
            handle_edit(shared, &deadline, session, &trace)
        }
        Request::Recompute { session, .. } => match Checkout::take(&shared.table, session) {
            Ok(mut co) => match co.sess.as_mut() {
                Some(rep) => Response::Ok(rep.report().into_bytes()),
                None => err(ErrorCode::Internal, "empty checkout"),
            },
            Err(code) => err(code, format!("session {session}: {code}")),
        },
        Request::Curve { session, .. } => match Checkout::take(&shared.table, session) {
            Ok(mut co) => match co.sess.as_mut() {
                Some(rep) => match rep.curve_json() {
                    Ok(json) => Response::Ok(json.into_bytes()),
                    Err(e) => err(ErrorCode::Infeasible, e),
                },
                None => err(ErrorCode::Internal, "empty checkout"),
            },
            Err(code) => err(code, format!("session {session}: {code}")),
        },
        Request::Batch { spec, .. } => handle_batch(shared, &deadline, &spec),
        Request::Close { session, .. } => match Checkout::take(&shared.table, session) {
            Ok(co) => {
                co.close();
                Response::Ok(Vec::new())
            }
            Err(code) => err(code, format!("session {session}: {code}")),
        },
        Request::Stats { .. } => Response::Ok(stats_json(shared).into_bytes()),
    }
}

fn handle_open(
    shared: &Shared,
    deadline: &Deadline,
    root: u32,
    driver_cost: f64,
    name: String,
    pruning: &str,
    msr: &str,
) -> Response {
    if !driver_cost.is_finite() {
        return err(ErrorCode::ParseError, "driver cost must be finite");
    }
    let pruning = if pruning.is_empty() {
        PruningStrategy::default()
    } else {
        match PruningStrategy::parse(pruning) {
            Ok(s) => s,
            Err(e) => return err(ErrorCode::ParseError, format!("pruning: {e}")),
        }
    };
    let nf = match parse_net_file(msr) {
        Ok(nf) => nf,
        Err(e) => return err(ErrorCode::ParseError, e.to_string()),
    };
    if root as usize >= nf.net.terminals.len() {
        return err(
            ErrorCode::ParseError,
            format!("root {root} out of range for {} terminals", nf.net.terminals.len()),
        );
    }
    if let Err((code, msg)) = deadline.check() {
        return err(code, msg);
    }
    let rep = match Replayer::open(
        name,
        nf.net,
        TerminalId(root as usize),
        nf.library,
        driver_cost,
        pruning,
        false,
    ) {
        Ok(rep) => rep,
        Err(e) => return err(ErrorCode::ParseError, e),
    };
    if let Err((code, msg)) = deadline.check() {
        return err(code, msg);
    }
    // msrnet-allow: lock-discipline receiver is the table guard: .open() dispatches to SessionTable::open; the solve ran above, outside the lock
    match lock_table(&shared.table).open(Box::new(rep)) {
        Ok(id) => Response::Ok(id.to_be_bytes().to_vec()),
        Err(code) => err(code, format!("{code}: session table at capacity")),
    }
}

fn handle_edit(shared: &Shared, deadline: &Deadline, session: u64, trace: &str) -> Response {
    let edits = match parse_trace(trace) {
        Ok(edits) => edits,
        Err(e) => return err(ErrorCode::ParseError, e.to_string()),
    };
    let mut co = match Checkout::take(&shared.table, session) {
        Ok(co) => co,
        Err(code) => return err(code, format!("session {session}: {code}")),
    };
    let Some(rep) = co.sess.as_mut() else {
        return err(ErrorCode::Internal, "empty checkout");
    };
    let before = rep.row_count();
    for edit in &edits {
        if let Err((code, msg)) = deadline.check() {
            // Completed steps stay applied; the client sees how far
            // the replay got from the row count in later requests.
            return err(code, msg);
        }
        rep.step(edit, false);
    }
    Response::Ok(rep.rows_since(before).into_bytes())
}

fn handle_batch(shared: &Shared, deadline: &Deadline, spec: &str) -> Response {
    let parsed = match parse_json(spec) {
        Ok(v) => v,
        Err(e) => return err(ErrorCode::ParseError, e.to_string()),
    };
    let Json::Obj(fields) = &parsed else {
        return err(ErrorCode::ParseError, "batch spec must be a JSON object");
    };
    let threads = match Json::get(fields, "threads") {
        // msrnet-allow: float-eq fract()==0.0 is the exact integrality test for a JSON count
        Some(Json::Num(x)) if *x >= 1.0 && x.fract() == 0.0 && *x <= 1024.0 => *x as usize,
        None => 1,
        _ => return err(ErrorCode::ParseError, "\"threads\" must be a positive integer"),
    };
    let threads = threads.min(shared.config.batch_threads_cap.max(1));
    let driver_cost = match Json::get(fields, "driver_cost") {
        Some(Json::Num(x)) if x.is_finite() => *x,
        None => 0.0,
        _ => return err(ErrorCode::ParseError, "\"driver_cost\" must be a finite number"),
    };
    let pruning = match Json::get(fields, "pruning") {
        Some(Json::Str(raw)) => match PruningStrategy::parse(raw) {
            Ok(s) => s,
            Err(e) => return err(ErrorCode::ParseError, format!("\"pruning\": {e}")),
        },
        None => PruningStrategy::default(),
        _ => return err(ErrorCode::ParseError, "\"pruning\" must be a strategy string"),
    };
    let Some(Json::Arr(nets)) = Json::get(fields, "nets") else {
        return err(ErrorCode::ParseError, "batch spec is missing the \"nets\" array");
    };
    if nets.is_empty() {
        return err(ErrorCode::ParseError, "batch spec has no nets");
    }
    let mut jobs: Vec<BatchJob> = Vec::with_capacity(nets.len());
    for (i, entry) in nets.iter().enumerate() {
        let Json::Obj(net_fields) = entry else {
            return err(ErrorCode::ParseError, format!("net #{i} must be an object"));
        };
        let Some(Json::Str(net_name)) = Json::get(net_fields, "name") else {
            return err(ErrorCode::ParseError, format!("net #{i} is missing \"name\""));
        };
        let Some(Json::Str(msr)) = Json::get(net_fields, "msr") else {
            return err(ErrorCode::ParseError, format!("net #{i} is missing \"msr\""));
        };
        let nf = match parse_net_file(msr) {
            Ok(nf) => nf,
            Err(e) => {
                return err(ErrorCode::ParseError, format!("net \"{net_name}\": {e}"))
            }
        };
        let mut job = BatchJob::new(net_name, nf.net, nf.library);
        job.drivers = TerminalOptions::defaults_with_cost(&job.net, driver_cost);
        job.options.allow_inverting = job.library.iter().any(|r| r.inverting);
        job.options.pruning = pruning;
        jobs.push(job);
    }
    if let Err((code, msg)) = deadline.check() {
        return err(code, msg);
    }
    // `run_batch` is one pool run; the deadline is checked before the
    // pool spins up (its per-net work is bounded by the frame cap).
    let report = run_batch(&jobs, threads);
    Response::Ok(report.to_json_opts(false).into_bytes())
}

/// The `stats` response: logical counters only, so a sequential request
/// trace yields byte-stable output.
fn stats_json(shared: &Shared) -> String {
    let t = lock_table(&shared.table);
    format!(
        "{{\n  \"benchmark\": \"msrnet_serve_stats\",\n  \
         \"sessions_open\": {},\n  \"sessions_resident\": {},\n  \
         \"sessions_opened\": {},\n  \"sessions_closed\": {},\n  \
         \"sessions_evicted\": {},\n  \"cached_subtrees\": {},\n  \
         \"requests_ok\": {},\n  \"requests_error\": {}\n}}\n",
        t.open_count(),
        t.resident_count(),
        t.opened(),
        t.closed(),
        t.evictions(),
        t.cached_subtrees(),
        shared.requests_ok.load(Ordering::Acquire),
        shared.requests_error.load(Ordering::Acquire),
    )
}
