//! Transport abstraction: one listener/stream pair covering TCP and
//! Unix-domain sockets, so the server, the client, and every test speak
//! through the same code path regardless of endpoint family.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Where to bind or connect.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// A TCP socket address, e.g. `127.0.0.1:0`.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl Endpoint {
    /// Parses `tcp:HOST:PORT` or `unix:PATH`.
    ///
    /// # Errors
    ///
    /// A message naming the expected forms.
    pub fn parse(s: &str) -> Result<Endpoint, String> {
        if let Some(addr) = s.strip_prefix("tcp:") {
            Ok(Endpoint::Tcp(addr.to_string()))
        } else if let Some(path) = s.strip_prefix("unix:") {
            Ok(Endpoint::Unix(PathBuf::from(path)))
        } else {
            Err(format!(
                "bad endpoint `{s}` (expected tcp:HOST:PORT or unix:PATH)"
            ))
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
            Endpoint::Unix(p) => write!(f, "unix:{}", p.display()),
        }
    }
}

/// A bound listener on either family.
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    Unix(UnixListener),
}

impl Listener {
    /// Binds the endpoint (for `tcp:HOST:0` the OS picks the port; read
    /// it back with [`Listener::local_endpoint`]).
    ///
    /// # Errors
    ///
    /// The underlying bind failure.
    pub fn bind(endpoint: &Endpoint) -> io::Result<Listener> {
        match endpoint {
            Endpoint::Tcp(addr) => Ok(Listener::Tcp(TcpListener::bind(addr)?)),
            Endpoint::Unix(path) => Ok(Listener::Unix(UnixListener::bind(path)?)),
        }
    }

    /// The actually-bound endpoint.
    ///
    /// # Errors
    ///
    /// The underlying `local_addr` failure.
    pub fn local_endpoint(&self) -> io::Result<Endpoint> {
        match self {
            Listener::Tcp(l) => Ok(Endpoint::Tcp(l.local_addr()?.to_string())),
            Listener::Unix(l) => {
                let addr = l.local_addr()?;
                Ok(Endpoint::Unix(
                    addr.as_pathname().map(PathBuf::from).unwrap_or_default(),
                ))
            }
        }
    }

    /// Toggles non-blocking accepts.
    ///
    /// # Errors
    ///
    /// The underlying `set_nonblocking` failure.
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            Listener::Unix(l) => l.set_nonblocking(nb),
        }
    }

    /// Accepts one connection.
    ///
    /// # Errors
    ///
    /// The underlying accept failure (including `WouldBlock` in
    /// non-blocking mode).
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Tcp(s))
            }
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Unix(s))
            }
        }
    }
}

/// A connected stream on either family.
pub enum Stream {
    /// TCP stream.
    Tcp(TcpStream),
    /// Unix-domain stream.
    Unix(UnixStream),
}

impl Stream {
    /// Connects to the endpoint.
    ///
    /// # Errors
    ///
    /// The underlying connect failure.
    pub fn connect(endpoint: &Endpoint) -> io::Result<Stream> {
        match endpoint {
            Endpoint::Tcp(addr) => Ok(Stream::Tcp(TcpStream::connect(addr)?)),
            Endpoint::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
        }
    }

    /// Sets (or clears) the read timeout.
    ///
    /// # Errors
    ///
    /// The underlying `set_read_timeout` failure.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            Stream::Unix(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            Stream::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_round_trips() {
        let e = Endpoint::parse("tcp:127.0.0.1:4000").unwrap();
        assert_eq!(e, Endpoint::Tcp("127.0.0.1:4000".into()));
        assert_eq!(e.to_string(), "tcp:127.0.0.1:4000");
        let e = Endpoint::parse("unix:/tmp/msrnet.sock").unwrap();
        assert_eq!(e.to_string(), "unix:/tmp/msrnet.sock");
        assert!(Endpoint::parse("http://x").is_err());
    }
}
