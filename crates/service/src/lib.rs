//! Optimization-as-a-service: a resident session server for the
//! Lillis–Cheng repeater-insertion engine.
//!
//! Every other front end pays process startup and full `.msr` parsing
//! per request. This crate keeps [`IncrementalOptimizer`]
//! (`msrnet-incremental`) sessions *resident server-side*, so the unit
//! of service becomes one dirty-path recompute — the shape the
//! ROADMAP's "serve heavy traffic" north star calls for.
//!
//! The stack, bottom up:
//!
//! * [`frame`] — length-prefixed frames with an incremental, fuzz-driven
//!   decoder shared with the production read path;
//! * [`proto`] — typed requests (`open`/`edit`/`recompute`/`curve`/
//!   `batch`/`close`/`stats`), typed [`proto::ErrorCode`]s, per-request
//!   deadlines;
//! * [`replay`] — the shared edit-replay engine behind both
//!   `msrnet-cli edits` and served sessions (this sharing, plus
//!   verbatim text payloads, is what makes served reports
//!   byte-identical to local runs — the server's oracle);
//! * [`session`] — bounded-memory session table: logical-clock LRU
//!   eviction, hard caps, typed `Evicted` tombstones;
//! * [`server`] / [`client`] — the accept loop with its degradation
//!   contract, and a blocking client;
//! * [`net`] — TCP/Unix-domain transport used by both ends.
//!
//! # Examples
//!
//! ```
//! use std::sync::atomic::{AtomicBool, Ordering};
//! use msrnet_service::net::Endpoint;
//! use msrnet_service::server::{Server, ServerConfig};
//! use msrnet_service::client::Client;
//! use msrnet_netgen::format::write_net_file;
//! use msrnet_netgen::{table1, ExperimentNet};
//! use msrnet_rng::SeedableRng;
//!
//! // A loopback server on an OS-assigned port.
//! let server = Server::bind(
//!     &Endpoint::Tcp("127.0.0.1:0".into()),
//!     ServerConfig::default(),
//! )?;
//! let endpoint = server.local_endpoint()?;
//! let stop = AtomicBool::new(false);
//! std::thread::scope(|scope| -> Result<(), Box<dyn std::error::Error>> {
//!     scope.spawn(|| server.run(&stop));
//!
//!     // Upload a net, replay an edit, fetch the report.
//!     let params = table1();
//!     let mut rng = msrnet_rng::rngs::StdRng::seed_from_u64(7);
//!     let exp = ExperimentNet::random(&mut rng, 4, &params)?;
//!     let msr = write_net_file(&exp.with_insertion_points(2000.0), &[params.repeater(1.0)]);
//!
//!     let mut client = Client::connect(&endpoint)?;
//!     let session = client.open("demo.msr", &msr, 0, 0.0)?;
//!     client.edit(session, "{\"edits\": [{\"op\": \"swap_library\", \"scale\": 2.0}]}")?;
//!     let report = client.recompute(session)?;
//!     assert!(report.starts_with("{\n  \"benchmark\": \"msrnet_edits\""));
//!     client.close(session)?;
//!
//!     stop.store(true, Ordering::Release);
//!     Ok(())
//! })?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! [`IncrementalOptimizer`]: msrnet_incremental::IncrementalOptimizer

pub mod client;
pub mod frame;
pub mod net;
pub mod proto;
pub mod replay;
pub mod server;
pub mod session;

pub use client::{Client, ClientError};
pub use frame::{Frame, FrameDecoder, FrameError};
pub use net::Endpoint;
pub use proto::{ErrorCode, Request, Response};
pub use replay::Replayer;
pub use server::{Server, ServerConfig};
pub use session::SessionTable;
