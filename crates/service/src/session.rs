//! The resident session table: bounded-memory bookkeeping for the
//! server's open [`Replayer`] sessions.
//!
//! Recency is a logical `u64` touch clock, not wall time, so eviction
//! order is a pure function of the request sequence (deterministic
//! under test). Two caps bound memory:
//!
//! * `max_sessions` — hard cap on *live* ids (resident + checked out).
//!   Opening past it is [`ErrorCode::SessionLimit`].
//! * `max_resident` — LRU cap on sessions actually held in memory.
//!   Opening past it evicts the documented victim: the **resident**
//!   session with the lowest last-touch tick (checked-out sessions are
//!   in use on another connection and are never victims). The evicted
//!   id stays behind as a tombstone; touching it is
//!   [`ErrorCode::Evicted`] — a typed signal to re-open — while an id
//!   that was never opened (or was closed) is
//!   [`ErrorCode::UnknownSession`].
//!
//! A session being served is *checked out* of the table (no big lock
//! around the DP); a concurrent touch of the same id gets
//! [`ErrorCode::Busy`]. If the serving thread panics, the checkout
//! guard in `server` marks the slot [`Slot::Evicted`] so the id can
//! never wedge.

use std::collections::BTreeMap;

use crate::proto::ErrorCode;
use crate::replay::Replayer;

/// One session slot.
pub enum Slot {
    /// In memory, available.
    Resident {
        /// Logical tick of the last touch.
        last_touch: u64,
        /// The session itself.
        sess: Box<Replayer>,
    },
    /// Temporarily owned by a connection thread.
    CheckedOut {
        /// Logical tick of the checkout.
        last_touch: u64,
    },
    /// Evicted under memory pressure; tombstone so re-touches get a
    /// typed [`ErrorCode::Evicted`] rather than `UnknownSession`.
    Evicted,
}

/// The table of live sessions plus its counters.
pub struct SessionTable {
    slots: BTreeMap<u64, Slot>,
    next_id: u64,
    clock: u64,
    max_sessions: usize,
    max_resident: usize,
    opened: u64,
    closed: u64,
    evictions: u64,
}

impl SessionTable {
    /// An empty table with the given caps (both clamped to ≥ 1).
    pub fn new(max_sessions: usize, max_resident: usize) -> SessionTable {
        SessionTable {
            slots: BTreeMap::new(),
            next_id: 1,
            clock: 0,
            max_sessions: max_sessions.max(1),
            max_resident: max_resident.max(1),
            opened: 0,
            closed: 0,
            evictions: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn live_count(&self) -> usize {
        self.slots
            .values()
            .filter(|s| !matches!(s, Slot::Evicted))
            .count()
    }

    /// Sessions currently resident in memory.
    pub fn resident_count(&self) -> usize {
        self.slots
            .values()
            .filter(|s| matches!(s, Slot::Resident { .. }))
            .count()
    }

    /// Live sessions (resident + checked out).
    pub fn open_count(&self) -> usize {
        self.live_count()
    }

    /// Sessions opened over the table's lifetime.
    pub fn opened(&self) -> u64 {
        self.opened
    }

    /// Sessions explicitly closed.
    pub fn closed(&self) -> u64 {
        self.closed
    }

    /// Sessions evicted under memory pressure.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Total resident DP-cache size across resident sessions.
    pub fn cached_subtrees(&self) -> usize {
        self.slots
            .values()
            .map(|s| match s {
                Slot::Resident { sess, .. } => sess.cached_subtrees(),
                _ => 0,
            })
            .sum()
    }

    /// Admits a new session, evicting the LRU resident if the resident
    /// cap is exceeded. Returns the new session id.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::SessionLimit`] at the hard cap on live sessions.
    pub fn open(&mut self, sess: Box<Replayer>) -> Result<u64, ErrorCode> {
        if self.live_count() >= self.max_sessions {
            return Err(ErrorCode::SessionLimit);
        }
        let id = self.next_id;
        self.next_id += 1;
        let last_touch = self.tick();
        self.slots.insert(id, Slot::Resident { last_touch, sess });
        self.opened += 1;
        while self.resident_count() > self.max_resident {
            if !self.evict_lru(id) {
                break;
            }
        }
        Ok(id)
    }

    /// Evicts the resident session with the lowest last-touch tick,
    /// sparing `keep` (the slot being admitted). Returns whether a
    /// victim was found.
    fn evict_lru(&mut self, keep: u64) -> bool {
        let victim = self
            .slots
            .iter()
            .filter_map(|(&id, slot)| match slot {
                Slot::Resident { last_touch, .. } if id != keep => Some((*last_touch, id)),
                _ => None,
            })
            .min();
        match victim {
            Some((_, id)) => {
                self.slots.insert(id, Slot::Evicted);
                self.evictions += 1;
                true
            }
            None => false,
        }
    }

    /// Takes a session out of the table for exclusive use.
    ///
    /// # Errors
    ///
    /// [`ErrorCode::UnknownSession`] for an id never opened or already
    /// closed, [`ErrorCode::Evicted`] for a tombstone, and
    /// [`ErrorCode::Busy`] if another connection has it checked out.
    pub fn checkout(&mut self, id: u64) -> Result<Box<Replayer>, ErrorCode> {
        let tick = self.tick();
        match self.slots.get_mut(&id) {
            None => Err(ErrorCode::UnknownSession),
            Some(Slot::Evicted) => Err(ErrorCode::Evicted),
            Some(Slot::CheckedOut { .. }) => Err(ErrorCode::Busy),
            Some(slot @ Slot::Resident { .. }) => {
                let prev = std::mem::replace(slot, Slot::CheckedOut { last_touch: tick });
                match prev {
                    Slot::Resident { sess, .. } => Ok(sess),
                    // `slot` matched Resident above; the replace handed
                    // us exactly that value.
                    _ => Err(ErrorCode::Internal),
                }
            }
        }
    }

    /// Returns a checked-out session. No-op if the id was closed or
    /// force-evicted while out.
    pub fn put_back(&mut self, id: u64, sess: Box<Replayer>) {
        let tick = self.tick();
        if let Some(slot @ Slot::CheckedOut { .. }) = self.slots.get_mut(&id) {
            *slot = Slot::Resident {
                last_touch: tick,
                sess,
            };
        }
    }

    /// Marks a checked-out slot evicted — the panic-safety path: the
    /// session's state is suspect, so the id must not wedge as
    /// `CheckedOut` (→ permanent `Busy`) nor come back resident.
    pub fn mark_evicted(&mut self, id: u64) {
        if let Some(slot @ Slot::CheckedOut { .. }) = self.slots.get_mut(&id) {
            *slot = Slot::Evicted;
            self.evictions += 1;
        }
    }

    /// Closes a session: the id is removed entirely (later touches are
    /// `UnknownSession`). The caller must hold the checkout.
    pub fn close(&mut self, id: u64) {
        if self.slots.remove(&id).is_some() {
            self.closed += 1;
        }
    }

    /// Typed close for an id the caller has *not* checked out: rejects
    /// tombstones and busy sessions like any other touch.
    ///
    /// # Errors
    ///
    /// Same as [`SessionTable::checkout`].
    pub fn close_checked(&mut self, id: u64) -> Result<(), ErrorCode> {
        match self.slots.get(&id) {
            None => Err(ErrorCode::UnknownSession),
            Some(Slot::Evicted) => Err(ErrorCode::Evicted),
            Some(Slot::CheckedOut { .. }) => Err(ErrorCode::Busy),
            Some(Slot::Resident { .. }) => {
                self.slots.remove(&id);
                self.closed += 1;
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrnet_core::PruningStrategy;
    use msrnet_netgen::{table1, ExperimentNet};
    use msrnet_rctree::TerminalId;
    use msrnet_rng::SeedableRng;

    fn replayer(seed: u64) -> Box<Replayer> {
        let params = table1();
        let mut rng = msrnet_rng::rngs::StdRng::seed_from_u64(seed);
        let exp = ExperimentNet::random(&mut rng, 4, &params).unwrap();
        let net = exp.with_insertion_points(2000.0);
        let lib = vec![params.repeater(1.0)];
        Box::new(
            Replayer::open("t", net, TerminalId(0), lib, 0.0, PruningStrategy::default(), false)
                .unwrap(),
        )
    }

    #[test]
    fn lru_evicts_the_oldest_resident_and_tombstones_it() {
        let mut t = SessionTable::new(100, 2);
        let a = t.open(replayer(1)).unwrap();
        let b = t.open(replayer(2)).unwrap();
        // Touch a so b becomes the LRU.
        let s = t.checkout(a).unwrap();
        t.put_back(a, s);
        let c = t.open(replayer(3)).unwrap();
        assert_eq!(t.resident_count(), 2);
        assert_eq!(t.evictions(), 1);
        assert_eq!(t.checkout(b).unwrap_err(), ErrorCode::Evicted);
        for id in [a, c] {
            let s = t.checkout(id).unwrap();
            t.put_back(id, s);
        }
    }

    #[test]
    fn hard_cap_rejects_and_close_frees() {
        let mut t = SessionTable::new(2, 2);
        let a = t.open(replayer(1)).unwrap();
        let _b = t.open(replayer(2)).unwrap();
        assert!(matches!(t.open(replayer(3)), Err(ErrorCode::SessionLimit)));
        t.close_checked(a).unwrap();
        assert_eq!(t.checkout(a).unwrap_err(), ErrorCode::UnknownSession);
        let _c = t.open(replayer(3)).unwrap();
        assert_eq!(t.opened(), 3);
        assert_eq!(t.closed(), 1);
    }

    #[test]
    fn checked_out_sessions_are_busy_and_never_victims() {
        let mut t = SessionTable::new(100, 1);
        let a = t.open(replayer(1)).unwrap();
        let held = t.checkout(a).unwrap();
        assert_eq!(t.checkout(a).unwrap_err(), ErrorCode::Busy);
        // Opening past the resident cap cannot evict `a` (checked out)
        // or the newcomer itself, so the cap is transiently exceeded
        // rather than a live session destroyed.
        let b = t.open(replayer(2)).unwrap();
        t.put_back(a, held);
        let s = t.checkout(a).unwrap();
        t.put_back(a, s);
        let s = t.checkout(b).unwrap();
        t.put_back(b, s);
        assert_eq!(t.evictions(), 0);
    }

    #[test]
    fn panicking_handler_path_tombstones_instead_of_wedging() {
        let mut t = SessionTable::new(100, 10);
        let a = t.open(replayer(1)).unwrap();
        let _held = t.checkout(a).unwrap();
        t.mark_evicted(a);
        assert_eq!(t.checkout(a).unwrap_err(), ErrorCode::Evicted);
        assert_eq!(t.evictions(), 1);
    }
}
