//! A blocking client for the session server.
//!
//! Response payloads are returned as raw bytes, never re-parsed and
//! re-emitted: printing them verbatim is what preserves the
//! byte-identity of served reports with their local CLI oracles.

use std::fmt;
use std::io::{Read, Write};
use std::time::Duration;

use crate::frame::{FrameDecoder, FrameError, DEFAULT_MAX_PAYLOAD};
use crate::net::{Endpoint, Stream};
use crate::proto::{ErrorCode, ProtoError, Request, Response, NO_DEADLINE};

/// A client-side failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(String),
    /// The server's bytes did not frame correctly.
    Frame(FrameError),
    /// The server's frame was not a valid response.
    Proto(ProtoError),
    /// The server answered with a typed error.
    Server {
        /// The failure class.
        code: ErrorCode,
        /// Server-provided detail.
        message: String,
    },
    /// The server closed the connection before answering.
    Disconnected,
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Frame(e) => write!(f, "framing error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => write!(f, "server error ({code}): {message}"),
            ClientError::Disconnected => f.write_str("server closed the connection"),
        }
    }
}

impl std::error::Error for ClientError {}

/// One connection to a server.
pub struct Client {
    stream: Stream,
    dec: FrameDecoder,
    /// Deadline attached to subsequent requests.
    pub deadline_ms: u32,
}

impl Client {
    /// Connects to a server endpoint.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on connect failure.
    pub fn connect(endpoint: &Endpoint) -> Result<Client, ClientError> {
        let stream = Stream::connect(endpoint).map_err(|e| ClientError::Io(e.to_string()))?;
        Ok(Client {
            stream,
            dec: FrameDecoder::new(DEFAULT_MAX_PAYLOAD),
            deadline_ms: NO_DEADLINE,
        })
    }

    /// Sets the client-side read timeout (None = block forever).
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] if the socket rejects the option.
    pub fn set_read_timeout(&mut self, dur: Option<Duration>) -> Result<(), ClientError> {
        self.stream
            .set_read_timeout(dur)
            .map_err(|e| ClientError::Io(e.to_string()))
    }

    /// Sends one request and waits for its response payload.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`]; a typed server rejection surfaces as
    /// [`ClientError::Server`] with its [`ErrorCode`].
    pub fn request(&mut self, req: &Request) -> Result<Vec<u8>, ClientError> {
        let bytes = req
            .encode()
            .encode(u32::MAX)
            .map_err(ClientError::Frame)?;
        self.stream
            .write_all(&bytes)
            .and_then(|()| self.stream.flush())
            .map_err(|e| ClientError::Io(e.to_string()))?;
        let frame = loop {
            match self.dec.next_frame().map_err(ClientError::Frame)? {
                Some(f) => break f,
                None => {
                    let mut buf = [0u8; 16 * 1024];
                    let n = self
                        .stream
                        .read(&mut buf)
                        .map_err(|e| ClientError::Io(e.to_string()))?;
                    if n == 0 {
                        return Err(ClientError::Disconnected);
                    }
                    self.dec.feed(&buf[..n]);
                }
            }
        };
        match Response::decode(&frame).map_err(ClientError::Proto)? {
            Response::Ok(payload) => Ok(payload),
            Response::Err { code, message } => Err(ClientError::Server { code, message }),
        }
    }

    /// Opens a session; returns its id.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn open(
        &mut self,
        name: &str,
        msr: &str,
        root: u32,
        driver_cost: f64,
    ) -> Result<u64, ClientError> {
        self.open_with_pruning(name, msr, root, driver_cost, "")
    }

    /// Opens a session pinned to a pruning strategy (`PruningStrategy`
    /// `parse` syntax, e.g. `"approx:0.05"`; empty = server default);
    /// returns its id.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn open_with_pruning(
        &mut self,
        name: &str,
        msr: &str,
        root: u32,
        driver_cost: f64,
        pruning: &str,
    ) -> Result<u64, ClientError> {
        let payload = self.request(&Request::Open {
            deadline_ms: self.deadline_ms,
            root,
            driver_cost,
            name: name.to_string(),
            pruning: pruning.to_string(),
            msr: msr.to_string(),
        })?;
        if payload.len() != 8 {
            return Err(ClientError::Proto(ProtoError::BadPayload {
                field: "session id",
                detail: format!("expected 8 bytes, got {}", payload.len()),
            }));
        }
        Ok(u64::from_be_bytes([
            payload[0], payload[1], payload[2], payload[3], payload[4], payload[5], payload[6],
            payload[7],
        ]))
    }

    /// Replays a trace; returns the new report rows (newline-joined).
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn edit(&mut self, session: u64, trace: &str) -> Result<String, ClientError> {
        let payload = self.request(&Request::Edit {
            deadline_ms: self.deadline_ms,
            session,
            trace: trace.to_string(),
        })?;
        Ok(String::from_utf8_lossy(&payload).into_owned())
    }

    /// Fetches the session's full `msrnet_edits` report.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn recompute(&mut self, session: u64) -> Result<String, ClientError> {
        let payload = self.request(&Request::Recompute {
            deadline_ms: self.deadline_ms,
            session,
        })?;
        Ok(String::from_utf8_lossy(&payload).into_owned())
    }

    /// Fetches the session's current trade-off curve JSON.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn curve(&mut self, session: u64) -> Result<String, ClientError> {
        let payload = self.request(&Request::Curve {
            deadline_ms: self.deadline_ms,
            session,
        })?;
        Ok(String::from_utf8_lossy(&payload).into_owned())
    }

    /// Runs a batch spec; returns the deterministic batch report.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn batch(&mut self, spec: &str) -> Result<String, ClientError> {
        let payload = self.request(&Request::Batch {
            deadline_ms: self.deadline_ms,
            spec: spec.to_string(),
        })?;
        Ok(String::from_utf8_lossy(&payload).into_owned())
    }

    /// Closes a session.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn close(&mut self, session: u64) -> Result<(), ClientError> {
        self.request(&Request::Close {
            deadline_ms: self.deadline_ms,
            session,
        })?;
        Ok(())
    }

    /// Fetches server counters.
    ///
    /// # Errors
    ///
    /// Any [`ClientError`].
    pub fn stats(&mut self) -> Result<String, ClientError> {
        let payload = self.request(&Request::Stats {
            deadline_ms: self.deadline_ms,
        })?;
        Ok(String::from_utf8_lossy(&payload).into_owned())
    }
}
