//! Typed requests and responses on top of the [`frame`](crate::frame)
//! layer.
//!
//! Request frames (kinds `0x01`–`0x07`) all start with a big-endian
//! `u32` deadline in milliseconds (`0xFFFF_FFFF` = no deadline; `0`
//! expires at the server's first cooperative check), followed by a
//! kind-specific body. Response frames are `0x81` (`OK`, payload = raw
//! result bytes passed through verbatim — this is what makes served
//! reports byte-identical to their local CLI oracles) or `0xE0`
//! (`ERROR`, payload = big-endian `u16` [`ErrorCode`] + UTF-8 message).
//!
//! Decoding never panics; malformed bodies map to [`ProtoError`], which
//! the server answers with [`ErrorCode::BadPayload`] (or
//! [`ErrorCode::UnknownKind`]) while keeping the connection alive —
//! unlike framing errors, a bad body leaves the stream position intact.

use std::fmt;

use crate::frame::Frame;

/// Request kind: open a new resident session from an `.msr` upload.
pub const KIND_OPEN: u8 = 0x01;
/// Request kind: apply an edit trace to a session, one recompute per edit.
pub const KIND_EDIT: u8 = 0x02;
/// Request kind: assemble the session's full replay report.
pub const KIND_RECOMPUTE: u8 = 0x03;
/// Request kind: the session's current cost/ARD trade-off curve.
pub const KIND_CURVE: u8 = 0x04;
/// Request kind: optimize a list of nets on the worker pool.
pub const KIND_BATCH: u8 = 0x05;
/// Request kind: close a session.
pub const KIND_CLOSE: u8 = 0x06;
/// Request kind: server-wide counters.
pub const KIND_STATS: u8 = 0x07;
/// Response kind: success, payload is the raw result.
pub const KIND_OK: u8 = 0x81;
/// Response kind: failure, payload is code + message.
pub const KIND_ERROR: u8 = 0xE0;

/// Deadline sentinel meaning "no deadline".
pub const NO_DEADLINE: u32 = u32::MAX;

/// Typed failure codes carried in `ERROR` responses.
///
/// The codes are part of the wire contract: tests (and clients) match
/// on them, so the mapping from failure to code is documented behaviour,
/// not an implementation detail.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// The framing layer rejected the stream (bad magic/version); the
    /// connection is dropped after this response.
    BadFrame = 1,
    /// A frame announced a payload above the server's limit; the
    /// connection is dropped after this response.
    Oversized = 2,
    /// The frame kind byte is not a known request.
    UnknownKind = 3,
    /// The request body did not match its kind's layout.
    BadPayload = 4,
    /// The body parsed structurally but its content was rejected
    /// (bad `.msr` text, bad trace JSON, bad batch spec).
    ParseError = 5,
    /// No session with that id was ever opened, or it was closed.
    UnknownSession = 6,
    /// The session existed but was evicted under memory pressure;
    /// re-open to continue.
    Evicted = 7,
    /// The server is at its hard session cap.
    SessionLimit = 8,
    /// The session is currently serving another connection.
    Busy = 9,
    /// The request's deadline expired at a cooperative checkpoint.
    DeadlineExceeded = 10,
    /// The optimization itself reported infeasibility.
    Infeasible = 11,
    /// Anything else (lock poisoning, I/O mid-response, …).
    Internal = 12,
}

impl ErrorCode {
    /// Decodes a wire code.
    pub fn from_u16(raw: u16) -> Option<ErrorCode> {
        use ErrorCode::*;
        Some(match raw {
            1 => BadFrame,
            2 => Oversized,
            3 => UnknownKind,
            4 => BadPayload,
            5 => ParseError,
            6 => UnknownSession,
            7 => Evicted,
            8 => SessionLimit,
            9 => Busy,
            10 => DeadlineExceeded,
            11 => Infeasible,
            12 => Internal,
            _ => return None,
        })
    }

    /// Stable lower-case name (used in client-facing messages).
    pub fn name(self) -> &'static str {
        use ErrorCode::*;
        match self {
            BadFrame => "bad_frame",
            Oversized => "oversized",
            UnknownKind => "unknown_kind",
            BadPayload => "bad_payload",
            ParseError => "parse_error",
            UnknownSession => "unknown_session",
            Evicted => "evicted",
            SessionLimit => "session_limit",
            Busy => "busy",
            DeadlineExceeded => "deadline_exceeded",
            Infeasible => "infeasible",
            Internal => "internal",
        }
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One decoded request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Open a session: parse `msr`, build an incremental optimizer
    /// rooted at terminal `root` with the given driver cost, run the
    /// initial all-dirty recompute, and return the session id.
    Open {
        /// Per-request deadline in ms ([`NO_DEADLINE`] = none).
        deadline_ms: u32,
        /// Root terminal index.
        root: u32,
        /// Driver cost handed to `TerminalOptions::defaults_with_cost`.
        driver_cost: f64,
        /// Label echoed into reports (the CLI passes the net path so
        /// served reports are byte-identical to local ones).
        name: String,
        /// Pruning strategy in [`PruningStrategy`](msrnet_core::PruningStrategy)
        /// `parse`/`Display` syntax; empty selects the server default, so
        /// a served session can be pinned to the same strategy as its
        /// local `msrnet-cli edits --pruning` oracle.
        pruning: String,
        /// `.msr` net text.
        msr: String,
    },
    /// Replay an edit trace (`{"edits": [...]}`) through a session.
    Edit {
        /// Per-request deadline in ms.
        deadline_ms: u32,
        /// Session id from `Open`.
        session: u64,
        /// Trace JSON.
        trace: String,
    },
    /// Assemble the session's full `msrnet_edits` report.
    Recompute {
        /// Per-request deadline in ms.
        deadline_ms: u32,
        /// Session id.
        session: u64,
    },
    /// The session's current trade-off curve as JSON.
    Curve {
        /// Per-request deadline in ms.
        deadline_ms: u32,
        /// Session id.
        session: u64,
    },
    /// Optimize a list of nets across the worker pool. The body is a
    /// JSON spec `{"threads": K, "driver_cost": C, "nets": [{"name":
    /// N, "msr": TEXT}, ...]}`.
    Batch {
        /// Per-request deadline in ms.
        deadline_ms: u32,
        /// Batch spec JSON.
        spec: String,
    },
    /// Close (and drop) a session.
    Close {
        /// Per-request deadline in ms.
        deadline_ms: u32,
        /// Session id.
        session: u64,
    },
    /// Server-wide counters.
    Stats {
        /// Per-request deadline in ms.
        deadline_ms: u32,
    },
}

impl Request {
    /// The request's deadline field.
    pub fn deadline_ms(&self) -> u32 {
        match *self {
            Request::Open { deadline_ms, .. }
            | Request::Edit { deadline_ms, .. }
            | Request::Recompute { deadline_ms, .. }
            | Request::Curve { deadline_ms, .. }
            | Request::Batch { deadline_ms, .. }
            | Request::Close { deadline_ms, .. }
            | Request::Stats { deadline_ms } => deadline_ms,
        }
    }

    /// Encodes the request as a frame.
    pub fn encode(&self) -> Frame {
        let mut p = Vec::new();
        let kind = match self {
            Request::Open {
                deadline_ms,
                root,
                driver_cost,
                name,
                pruning,
                msr,
            } => {
                p.extend(deadline_ms.to_be_bytes());
                p.extend(root.to_be_bytes());
                p.extend(driver_cost.to_bits().to_be_bytes());
                p.extend((name.len() as u32).to_be_bytes());
                p.extend(name.as_bytes());
                p.extend((pruning.len() as u32).to_be_bytes());
                p.extend(pruning.as_bytes());
                p.extend(msr.as_bytes());
                KIND_OPEN
            }
            Request::Edit {
                deadline_ms,
                session,
                trace,
            } => {
                p.extend(deadline_ms.to_be_bytes());
                p.extend(session.to_be_bytes());
                p.extend(trace.as_bytes());
                KIND_EDIT
            }
            Request::Recompute {
                deadline_ms,
                session,
            } => {
                p.extend(deadline_ms.to_be_bytes());
                p.extend(session.to_be_bytes());
                KIND_RECOMPUTE
            }
            Request::Curve {
                deadline_ms,
                session,
            } => {
                p.extend(deadline_ms.to_be_bytes());
                p.extend(session.to_be_bytes());
                KIND_CURVE
            }
            Request::Batch { deadline_ms, spec } => {
                p.extend(deadline_ms.to_be_bytes());
                p.extend(spec.as_bytes());
                KIND_BATCH
            }
            Request::Close {
                deadline_ms,
                session,
            } => {
                p.extend(deadline_ms.to_be_bytes());
                p.extend(session.to_be_bytes());
                KIND_CLOSE
            }
            Request::Stats { deadline_ms } => {
                p.extend(deadline_ms.to_be_bytes());
                KIND_STATS
            }
        };
        Frame { kind, payload: p }
    }

    /// Decodes a request frame.
    ///
    /// # Errors
    ///
    /// [`ProtoError::UnknownKind`] for a non-request kind byte, or
    /// [`ProtoError::BadPayload`] when the body does not match the
    /// kind's layout (short fields, non-UTF-8 text, …).
    pub fn decode(frame: &Frame) -> Result<Request, ProtoError> {
        let mut c = Cursor {
            bytes: &frame.payload,
            pos: 0,
        };
        let deadline_ms = c.u32("deadline")?;
        let req = match frame.kind {
            KIND_OPEN => {
                let root = c.u32("root")?;
                let driver_cost = f64::from_bits(c.u64("driver_cost")?);
                let name_len = c.u32("name length")? as usize;
                let name = c.text_exact(name_len, "name")?;
                let pruning_len = c.u32("pruning length")? as usize;
                let pruning = c.text_exact(pruning_len, "pruning")?;
                let msr = c.text_rest("msr")?;
                Request::Open {
                    deadline_ms,
                    root,
                    driver_cost,
                    name,
                    pruning,
                    msr,
                }
            }
            KIND_EDIT => Request::Edit {
                deadline_ms,
                session: c.u64("session")?,
                trace: c.text_rest("trace")?,
            },
            KIND_RECOMPUTE => {
                let r = Request::Recompute {
                    deadline_ms,
                    session: c.u64("session")?,
                };
                c.end()?;
                r
            }
            KIND_CURVE => {
                let r = Request::Curve {
                    deadline_ms,
                    session: c.u64("session")?,
                };
                c.end()?;
                r
            }
            KIND_BATCH => Request::Batch {
                deadline_ms,
                spec: c.text_rest("spec")?,
            },
            KIND_CLOSE => {
                let r = Request::Close {
                    deadline_ms,
                    session: c.u64("session")?,
                };
                c.end()?;
                r
            }
            KIND_STATS => {
                let r = Request::Stats { deadline_ms };
                c.end()?;
                r
            }
            other => return Err(ProtoError::UnknownKind { kind: other }),
        };
        Ok(req)
    }
}

/// One decoded response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Success; the payload is the raw result (report text, rows,
    /// session id bytes, …) passed through verbatim.
    Ok(Vec<u8>),
    /// Typed failure.
    Err {
        /// The failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Encodes the response as a frame.
    pub fn encode(&self) -> Frame {
        match self {
            Response::Ok(payload) => Frame {
                kind: KIND_OK,
                payload: payload.clone(),
            },
            Response::Err { code, message } => {
                let mut p = Vec::with_capacity(2 + message.len());
                p.extend((*code as u16).to_be_bytes());
                p.extend(message.as_bytes());
                Frame {
                    kind: KIND_ERROR,
                    payload: p,
                }
            }
        }
    }

    /// Decodes a response frame.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] for a non-response kind, a short error payload,
    /// an unassigned error code, or a non-UTF-8 message.
    pub fn decode(frame: &Frame) -> Result<Response, ProtoError> {
        match frame.kind {
            KIND_OK => Ok(Response::Ok(frame.payload.clone())),
            KIND_ERROR => {
                if frame.payload.len() < 2 {
                    return Err(ProtoError::BadPayload {
                        field: "error code",
                        detail: "payload shorter than 2 bytes".into(),
                    });
                }
                let raw = u16::from_be_bytes([frame.payload[0], frame.payload[1]]);
                let code = ErrorCode::from_u16(raw).ok_or(ProtoError::BadPayload {
                    field: "error code",
                    detail: format!("unassigned code {raw}"),
                })?;
                let message = String::from_utf8_lossy(&frame.payload[2..]).into_owned();
                Ok(Response::Err { code, message })
            }
            other => Err(ProtoError::UnknownKind { kind: other }),
        }
    }
}

/// A typed request/response body decode failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoError {
    /// The kind byte is not assigned.
    UnknownKind {
        /// The offending kind byte.
        kind: u8,
    },
    /// The body did not match the kind's layout.
    BadPayload {
        /// Which field failed.
        field: &'static str,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::UnknownKind { kind } => write!(f, "unknown frame kind {kind:#04x}"),
            ProtoError::BadPayload { field, detail } => {
                write!(f, "bad request payload ({field}): {detail}")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl ProtoError {
    /// The error code a server answers this decode failure with.
    pub fn code(&self) -> ErrorCode {
        match self {
            ProtoError::UnknownKind { .. } => ErrorCode::UnknownKind,
            ProtoError::BadPayload { .. } => ErrorCode::BadPayload,
        }
    }
}

/// Bounds-checked big-endian reader over a request body.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let s = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(ProtoError::BadPayload {
                field,
                detail: format!(
                    "needs {n} bytes at offset {}, payload has {}",
                    self.pos,
                    self.bytes.len()
                ),
            }),
        }
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, ProtoError> {
        let b = self.take(4, field)?;
        Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, ProtoError> {
        let b = self.take(8, field)?;
        Ok(u64::from_be_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn text_exact(&mut self, n: usize, field: &'static str) -> Result<String, ProtoError> {
        let b = self.take(n, field)?;
        String::from_utf8(b.to_vec()).map_err(|_| ProtoError::BadPayload {
            field,
            detail: "not valid UTF-8".into(),
        })
    }

    fn text_rest(&mut self, field: &'static str) -> Result<String, ProtoError> {
        let b = &self.bytes[self.pos..];
        self.pos = self.bytes.len();
        String::from_utf8(b.to_vec()).map_err(|_| ProtoError::BadPayload {
            field,
            detail: "not valid UTF-8".into(),
        })
    }

    fn end(&self) -> Result<(), ProtoError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(ProtoError::BadPayload {
                field: "trailing bytes",
                detail: format!("{} unexpected bytes after the body", self.bytes.len() - self.pos),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(req: Request) {
        let frame = req.encode();
        assert_eq!(Request::decode(&frame).unwrap(), req);
    }

    #[test]
    fn requests_round_trip() {
        round_trip(Request::Open {
            deadline_ms: NO_DEADLINE,
            root: 3,
            driver_cost: 2.5,
            name: "nets/a.msr".into(),
            pruning: String::new(),
            msr: "# net\n".into(),
        });
        round_trip(Request::Open {
            deadline_ms: NO_DEADLINE,
            root: 0,
            driver_cost: 0.0,
            name: "b.msr".into(),
            pruning: "approx:0.05".into(),
            msr: "# net\n".into(),
        });
        round_trip(Request::Edit {
            deadline_ms: 250,
            session: 7,
            trace: "{\"edits\": []}".into(),
        });
        round_trip(Request::Recompute { deadline_ms: 0, session: 1 });
        round_trip(Request::Curve { deadline_ms: 1, session: 2 });
        round_trip(Request::Batch { deadline_ms: NO_DEADLINE, spec: "{}".into() });
        round_trip(Request::Close { deadline_ms: NO_DEADLINE, session: 9 });
        round_trip(Request::Stats { deadline_ms: NO_DEADLINE });
    }

    #[test]
    fn responses_round_trip() {
        for r in [
            Response::Ok(b"payload".to_vec()),
            Response::Ok(Vec::new()),
            Response::Err { code: ErrorCode::Evicted, message: "session 4 evicted".into() },
        ] {
            assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        }
    }

    #[test]
    fn short_bodies_are_typed_errors() {
        // OPEN with only a deadline: missing root.
        let f = Frame { kind: KIND_OPEN, payload: NO_DEADLINE.to_be_bytes().to_vec() };
        let e = Request::decode(&f).unwrap_err();
        assert!(matches!(e, ProtoError::BadPayload { field: "root", .. }), "{e:?}");
        assert_eq!(e.code(), ErrorCode::BadPayload);

        // Empty payload: not even a deadline.
        let f = Frame { kind: KIND_STATS, payload: Vec::new() };
        assert!(Request::decode(&f).is_err());

        // RECOMPUTE with trailing junk.
        let mut p = NO_DEADLINE.to_be_bytes().to_vec();
        p.extend(1u64.to_be_bytes());
        p.push(0xAA);
        let f = Frame { kind: KIND_RECOMPUTE, payload: p };
        let e = Request::decode(&f).unwrap_err();
        assert!(matches!(e, ProtoError::BadPayload { field: "trailing bytes", .. }), "{e:?}");
    }

    #[test]
    fn unknown_kinds_are_typed_errors() {
        let f = Frame { kind: 0x42, payload: NO_DEADLINE.to_be_bytes().to_vec() };
        let e = Request::decode(&f).unwrap_err();
        assert_eq!(e, ProtoError::UnknownKind { kind: 0x42 });
        assert_eq!(e.code(), ErrorCode::UnknownKind);
    }

    #[test]
    fn non_utf8_text_is_rejected() {
        let mut p = NO_DEADLINE.to_be_bytes().to_vec();
        p.extend(1u64.to_be_bytes());
        p.extend([0xFF, 0xFE]);
        let f = Frame { kind: KIND_EDIT, payload: p };
        let e = Request::decode(&f).unwrap_err();
        assert!(matches!(e, ProtoError::BadPayload { field: "trace", .. }), "{e:?}");
    }

    #[test]
    fn every_error_code_round_trips() {
        for raw in 1..=12u16 {
            let code = ErrorCode::from_u16(raw).unwrap();
            assert_eq!(code as u16, raw);
            assert!(!code.name().is_empty());
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(13), None);
    }
}
