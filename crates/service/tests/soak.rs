//! Concurrency soak: many client threads hammer one server under
//! eviction pressure, and every served report must be byte-identical to
//! a locally computed oracle for the same net and trace.
//!
//! The always-run `soak_smoke` keeps CI fast; `soak_full` (behind
//! `--ignored`, run by the CI `service` job) scales the same harness to
//! more threads and rounds. Both assert:
//!
//! * bit-identical responses — each thread's served `recompute` report
//!   equals the local `Replayer` oracle byte for byte, every round;
//! * `RecomputeStats` invariants — in every `"ok"` row,
//!   `nodes_recomputed + nodes_reused == nodes_visited` and the
//!   incremental-vs-scratch cross-check holds (`bit_identical: true`);
//! * eviction pressure is survivable — `max_resident` is below the
//!   number of concurrent sessions, so sessions get evicted mid-run;
//!   threads see a typed `Evicted`, reopen, and continue;
//! * session accounting closes — `opened == closed + evicted + open`.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use msrnet_incremental::parse_trace;
use msrnet_netgen::format::{parse_net_file, write_net_file};
use msrnet_netgen::{table1, ExperimentNet};
use msrnet_rng::rngs::StdRng;
use msrnet_rng::SeedableRng;
use msrnet_service::client::{Client, ClientError};
use msrnet_service::net::Endpoint;
use msrnet_service::replay::Replayer;
use msrnet_service::server::{Server, ServerConfig};
use msrnet_service::ErrorCode;

/// One thread's workload: a fixed net, a fixed trace, and the locally
/// computed report both sides must agree on.
struct Workload {
    name: String,
    msr: String,
    trace: String,
    expected_report: String,
}

fn workload(thread: usize) -> Workload {
    let params = table1();
    let mut rng = StdRng::seed_from_u64(1000 + thread as u64);
    let exp = ExperimentNet::random(&mut rng, 4 + thread % 3, &params).expect("generate");
    let msr = write_net_file(&exp.with_insertion_points(2500.0), &[params.repeater(1.0)]);
    let name = format!("soak-{thread}.msr");
    let trace = format!(
        "{{\"edits\": [\
           {{\"op\": \"swap_library\", \"scale\": {}}}, \
           {{\"op\": \"set_arrival\", \"terminal\": 1, \"value\": {}}}\
         ]}}",
        1.0 + thread as f64 * 0.25,
        5.0 + thread as f64,
    );

    // Local oracle: the same Replayer the server drives, same label,
    // same defaults (root 0, driver cost 0, default pruning).
    let nf = parse_net_file(&msr).expect("fixture parses");
    let mut rep = Replayer::open(
        name.clone(),
        nf.net,
        msrnet_rctree::TerminalId(0),
        nf.library,
        0.0,
        msrnet_core::PruningStrategy::default(),
        false,
    )
    .expect("oracle opens");
    rep.replay(&parse_trace(&trace).expect("trace parses"), false);
    let expected_report = rep.report();

    Workload { name, msr, trace, expected_report }
}

/// Extracts an integer field from a report row.
fn field(line: &str, key: &str) -> u64 {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag).unwrap_or_else(|| panic!("no {key} in {line}")) + tag.len();
    line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("bad {key} in {line}"))
}

/// Checks the per-row invariants of a served report.
fn check_rows(report: &str) {
    let mut ok_rows = 0;
    for line in report.lines() {
        if line.contains("\"status\": \"ok\"") {
            ok_rows += 1;
            assert!(
                line.contains("\"bit_identical\": true"),
                "served recompute diverged from its scratch oracle: {line}"
            );
            let visited = field(line, "nodes_visited");
            let recomputed = field(line, "nodes_recomputed");
            let reused = field(line, "nodes_reused");
            assert_eq!(
                recomputed + reused,
                visited,
                "RecomputeStats do not partition the visited nodes: {line}"
            );
        }
        assert!(
            !line.contains("\"status\": \"mismatch\""),
            "served recompute mismatch: {line}"
        );
    }
    assert!(ok_rows > 0, "report has no ok rows:\n{report}");
}

/// Runs the soak with the given shape; returns total evictions seen by
/// clients.
fn run_soak(threads: usize, rounds: usize, max_resident: usize) -> u64 {
    let server = Server::bind(
        &Endpoint::Tcp("127.0.0.1:0".into()),
        ServerConfig { max_resident, ..ServerConfig::default() },
    )
    .expect("bind");
    let endpoint = server.local_endpoint().expect("endpoint");
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let server_thread = std::thread::spawn(move || server.run(&stop2).expect("server run"));

    let evictions = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let endpoint = &endpoint;
            let evictions = &evictions;
            scope.spawn(move || {
                let w = workload(t);
                let mut client = Client::connect(endpoint).expect("connect");
                client
                    .set_read_timeout(Some(Duration::from_secs(60)))
                    .expect("timeout");
                for round in 0..rounds {
                    // Open → edit → recompute → close. Another thread's
                    // open may evict this session between requests;
                    // that is the point of the pressure — reopen and
                    // retry the round.
                    'round: for attempt in 0..64 {
                        assert!(attempt < 63, "thread {t} round {round}: evicted forever");
                        let session = match client.open(&w.name, &w.msr, 0, 0.0) {
                            Ok(id) => id,
                            Err(e) => panic!("thread {t} round {round}: open failed: {e}"),
                        };
                        for step in ["edit", "recompute", "close"] {
                            let result = match step {
                                "edit" => client.edit(session, &w.trace).map(|_| ()),
                                "recompute" => match client.recompute(session) {
                                    Ok(report) => {
                                        assert_eq!(
                                            report, w.expected_report,
                                            "thread {t} round {round}: served report \
                                             diverged from the local oracle"
                                        );
                                        check_rows(&report);
                                        Ok(())
                                    }
                                    Err(e) => Err(e),
                                },
                                _ => client.close(session),
                            };
                            match result {
                                Ok(()) => {}
                                Err(ClientError::Server {
                                    code: ErrorCode::Evicted, ..
                                }) => {
                                    evictions.fetch_add(1, Ordering::Relaxed);
                                    continue 'round;
                                }
                                Err(e) => {
                                    panic!("thread {t} round {round} {step}: {e}")
                                }
                            }
                        }
                        break;
                    }
                }
            });
        }
    });

    // Session accounting must close: every opened session is now
    // closed, evicted, or still resident (none should be).
    let mut c = Client::connect(&endpoint).expect("stats connect");
    c.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
    let stats = c.stats().expect("stats");
    let opened = stat(&stats, "sessions_opened");
    let closed = stat(&stats, "sessions_closed");
    let evicted = stat(&stats, "sessions_evicted");
    let open = stat(&stats, "sessions_open");
    assert_eq!(
        opened,
        closed + evicted + open,
        "session accounting does not close:\n{stats}"
    );
    assert_eq!(open, 0, "all sessions were closed or evicted:\n{stats}");

    stop.store(true, Ordering::Release);
    server_thread.join().expect("server thread");
    evictions.load(Ordering::Relaxed)
}

fn stat(stats: &str, key: &str) -> u64 {
    let line = stats
        .lines()
        .find(|l| l.contains(&format!("\"{key}\"")))
        .unwrap_or_else(|| panic!("no {key} in {stats}"));
    field(line, key)
}

#[test]
fn soak_smoke() {
    // 3 concurrent sessions against 2 resident slots: enough pressure
    // to exercise eviction handling without slowing CI's default lane.
    run_soak(3, 2, 2);
}

#[test]
#[ignore = "CI service job: minutes-long concurrency soak"]
fn soak_full() {
    let evictions = run_soak(8, 25, 3);
    // With 8 concurrent sessions and 3 resident slots over 200 rounds,
    // eviction pressure is statistically certain; if no client ever saw
    // one, the harness is not testing what it claims to.
    assert!(evictions > 0, "soak never hit eviction pressure");
}
