//! Fault-injection tests: every documented failure class must produce
//! its specific typed error, leave the server serviceable, and never
//! panic or wedge a worker.
//!
//! Each test spins a real loopback TCP server, injects one fault, then
//! proves the server still answers on a fresh connection. The classes
//! covered here mirror the degradation contract in
//! `msrnet_service::server`:
//!
//! * client disconnect mid-frame;
//! * session hard cap (`SessionLimit`) and LRU eviction (`Evicted`,
//!   with the documented victim);
//! * deadline expiry (`DeadlineExceeded`) with completed work retained;
//! * oversized frame (`Oversized`) and malformed frame (`BadFrame`),
//!   both followed by a connection drop;
//! * slow-loris (mid-frame stall → cut);
//! * connection cap (`Busy`).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use msrnet_netgen::format::write_net_file;
use msrnet_netgen::{table1, ExperimentNet};
use msrnet_rng::rngs::StdRng;
use msrnet_rng::SeedableRng;
use msrnet_service::client::{Client, ClientError};
use msrnet_service::frame::FrameDecoder;
use msrnet_service::net::Endpoint;
use msrnet_service::proto::Response;
use msrnet_service::server::{Server, ServerConfig};
use msrnet_service::ErrorCode;

/// A running loopback server; stopped and joined on drop.
struct TestServer {
    endpoint: Endpoint,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    fn spawn(config: ServerConfig) -> TestServer {
        let server =
            Server::bind(&Endpoint::Tcp("127.0.0.1:0".into()), config).expect("bind loopback");
        let endpoint = server.local_endpoint().expect("local endpoint");
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            server.run(&stop2).expect("server run");
        });
        TestServer { endpoint, stop, handle: Some(handle) }
    }

    fn client(&self) -> Client {
        let mut c = Client::connect(&self.endpoint).expect("connect");
        c.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
        c
    }

    /// The raw TCP address, for hand-rolled byte-level injection.
    fn addr(&self) -> &str {
        match &self.endpoint {
            Endpoint::Tcp(addr) => addr,
            other => panic!("expected a TCP endpoint, got {other}"),
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            h.join().expect("server thread");
        }
    }
}

/// A small deterministic net upload.
fn fixture_msr(seed: u64) -> String {
    let params = table1();
    let mut rng = StdRng::seed_from_u64(seed);
    let exp = ExperimentNet::random(&mut rng, 4, &params).expect("generate");
    write_net_file(&exp.with_insertion_points(2000.0), &[params.repeater(1.0)])
}

/// Asserts a typed server rejection with the expected code.
fn expect_code(result: Result<impl std::fmt::Debug, ClientError>, want: ErrorCode) {
    match result {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, want),
        other => panic!("expected server error {want}, got {other:?}"),
    }
}

/// Reads exactly one response frame from a raw socket.
fn read_response(stream: &mut TcpStream) -> Response {
    let mut dec = FrameDecoder::new(u32::MAX);
    let mut buf = [0u8; 4096];
    loop {
        if let Some(frame) = dec.next_frame().expect("response frames") {
            return Response::decode(&frame).expect("typed response");
        }
        let n = stream.read(&mut buf).expect("read response");
        assert!(n > 0, "connection closed before a response arrived");
        dec.feed(&buf[..n]);
    }
}

#[test]
fn disconnect_mid_frame_leaves_sessions_intact() {
    let ts = TestServer::spawn(ServerConfig::default());
    let msr = fixture_msr(11);

    let mut a = ts.client();
    let session = a.open("a.msr", &msr, 0, 0.0).expect("open");
    let report_before = a.recompute(session).expect("recompute");
    drop(a);

    // A second connection starts a frame and dies mid-payload.
    {
        let mut raw = TcpStream::connect(ts.addr()).expect("raw connect");
        // Valid header announcing 64 payload bytes; send only 3.
        raw.write_all(&[0x4D, 0x52, 0x01, 0x07, 0, 0, 0, 64, 1, 2, 3]).expect("partial");
        raw.flush().expect("flush");
        // Dropping the stream closes the socket mid-frame.
    }

    // The server must still answer, and the session opened before the
    // fault must be untouched — byte-identical report.
    let mut b = ts.client();
    let report_after = b.recompute(session).expect("recompute after fault");
    assert_eq!(report_before, report_after);
    b.close(session).expect("close");
}

#[test]
fn session_hard_cap_is_a_typed_limit() {
    let ts = TestServer::spawn(ServerConfig {
        max_sessions: 2,
        max_resident: 2,
        ..ServerConfig::default()
    });
    let msr = fixture_msr(12);
    let mut c = ts.client();

    let s1 = c.open("one.msr", &msr, 0, 0.0).expect("open 1");
    let s2 = c.open("two.msr", &msr, 0, 0.0).expect("open 2");
    expect_code(c.open("three.msr", &msr, 0, 0.0), ErrorCode::SessionLimit);

    // Closing a session frees capacity; the cap is on live sessions,
    // not a lifetime quota.
    c.close(s1).expect("close");
    let s3 = c.open("three.msr", &msr, 0, 0.0).expect("open after close");
    assert_ne!(s3, s2, "session ids are never reused");
    c.close(s2).expect("close 2");
    c.close(s3).expect("close 3");
}

#[test]
fn lru_eviction_tombstones_the_documented_victim() {
    let ts = TestServer::spawn(ServerConfig {
        max_resident: 2,
        ..ServerConfig::default()
    });
    let msr = fixture_msr(13);
    let mut c = ts.client();

    let s1 = c.open("one.msr", &msr, 0, 0.0).expect("open 1");
    let s2 = c.open("two.msr", &msr, 0, 0.0).expect("open 2");
    // Touch s1 so s2 becomes least-recently-used.
    c.recompute(s1).expect("touch 1");
    // Admitting s3 pushes residency to 3 > 2: s2 is the documented
    // victim (lowest logical touch tick among resident sessions).
    let s3 = c.open("three.msr", &msr, 0, 0.0).expect("open 3");

    expect_code(c.recompute(s2), ErrorCode::Evicted);
    // The tombstone is stable: touching it again keeps saying Evicted,
    // not UnknownSession.
    expect_code(c.curve(s2), ErrorCode::Evicted);
    // Survivors are untouched.
    c.recompute(s1).expect("s1 alive");
    c.recompute(s3).expect("s3 alive");

    // Stats expose the eviction.
    let stats = c.stats().expect("stats");
    assert!(stats.contains("\"sessions_evicted\": 1"), "{stats}");
}

#[test]
fn zero_deadline_expires_and_retains_completed_work() {
    let ts = TestServer::spawn(ServerConfig::default());
    let msr = fixture_msr(14);
    let mut c = ts.client();

    let session = c.open("net.msr", &msr, 0, 0.0).expect("open");
    let report_before = c.recompute(session).expect("baseline");

    // A 0 ms deadline expires at the first cooperative checkpoint —
    // deterministically, no sleeps involved.
    c.deadline_ms = 0;
    expect_code(
        c.edit(session, "{\"edits\": [{\"op\": \"swap_library\", \"scale\": 2.0}]}"),
        ErrorCode::DeadlineExceeded,
    );
    expect_code(c.open("again.msr", &msr, 0, 0.0), ErrorCode::DeadlineExceeded);

    // The session survives the expired request, with no partial edit
    // applied (the edit deadline fires before step 1).
    c.deadline_ms = u32::MAX;
    let report_after = c.recompute(session).expect("recompute");
    assert_eq!(report_before, report_after);
    c.close(session).expect("close");
}

#[test]
fn oversized_frame_is_refused_then_dropped() {
    let ts = TestServer::spawn(ServerConfig {
        max_payload: 1024,
        ..ServerConfig::default()
    });
    let mut msr = fixture_msr(15);
    while msr.len() <= 1024 {
        msr.push_str("# padding to exceed the frame cap\n");
    }
    let mut c = ts.client();

    expect_code(c.open("big.msr", &msr, 0, 0.0), ErrorCode::Oversized);
    // Framing errors poison the connection: the server drops it after
    // the error response.
    match c.stats() {
        Err(ClientError::Disconnected | ClientError::Io(_)) => {}
        other => panic!("expected a dropped connection, got {other:?}"),
    }
    // A fresh connection with a under-cap request still works.
    let mut c2 = ts.client();
    let stats = c2.stats().expect("server still serviceable");
    assert!(stats.contains("msrnet_serve_stats"), "{stats}");
}

#[test]
fn malformed_bytes_get_bad_frame_then_dropped() {
    let ts = TestServer::spawn(ServerConfig::default());

    let mut raw = TcpStream::connect(ts.addr()).expect("raw connect");
    raw.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    raw.write_all(b"GET / HTTP/1.1\r\n\r\n").expect("garbage");
    raw.flush().expect("flush");
    match read_response(&mut raw) {
        Response::Err { code, .. } => assert_eq!(code, ErrorCode::BadFrame),
        other => panic!("expected BadFrame, got {other:?}"),
    }
    // After the error frame the server hangs up.
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).expect("EOF");
    assert!(rest.is_empty(), "no bytes after the error frame");

    let mut c = ts.client();
    c.stats().expect("server still serviceable");
}

#[test]
fn slow_loris_is_cut_at_the_read_timeout() {
    let ts = TestServer::spawn(ServerConfig {
        read_timeout_ms: 50,
        ..ServerConfig::default()
    });

    let mut raw = TcpStream::connect(ts.addr()).expect("raw connect");
    raw.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    // A valid header announcing 64 bytes, then... nothing. The server's
    // read times out mid-frame and cuts the connection instead of
    // holding the worker hostage.
    raw.write_all(&[0x4D, 0x52, 0x01, 0x07, 0, 0, 0, 64]).expect("header");
    raw.flush().expect("flush");
    let mut rest = Vec::new();
    raw.read_to_end(&mut rest).expect("server hangs up");
    assert!(rest.is_empty(), "cut without a response: {rest:02x?}");

    let mut c = ts.client();
    c.stats().expect("server still serviceable");
}

#[test]
fn connection_cap_refuses_with_busy() {
    let ts = TestServer::spawn(ServerConfig {
        max_connections: 1,
        ..ServerConfig::default()
    });

    // First connection occupies the only slot (its worker lives until
    // the socket closes).
    let mut a = ts.client();
    a.stats().expect("first connection serves");

    // Second connection is refused with a typed Busy.
    let mut b = ts.client();
    match b.stats() {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Busy),
        // The refusal frame may arrive before or after our request
        // write; either way the request fails cleanly.
        Err(ClientError::Disconnected | ClientError::Io(_)) => {}
        other => panic!("expected Busy/drop, got {other:?}"),
    }

    // Releasing the first connection frees the slot.
    drop(a);
    // The server reaps the worker asynchronously; retry briefly.
    let mut ok = false;
    for _ in 0..100 {
        let mut c = ts.client();
        if c.stats().is_ok() {
            ok = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(ok, "slot never freed after the first connection closed");
}
