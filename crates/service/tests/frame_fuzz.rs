//! Protocol fuzz tests: the framing decoder and request decoder must
//! never panic, whatever bytes arrive, and their verdicts must not
//! depend on how the stream is chunked.
//!
//! Two layers of coverage:
//!
//! * seeded random fuzz — random byte soup, mutated valid frames, and
//!   valid frames under random chunkings, thousands of cases per run,
//!   fully deterministic (`msrnet-rng`, fixed seeds);
//! * a pinned corpus (`tests/corpus/*.bin`) — one file per failure
//!   class found interesting during development, each asserted down to
//!   the exact error classification so regressions name the file.
//!
//! The decoder under test is the production read path: both
//! `Server::handle_connection` and `Client::request` feed sockets
//! through this exact `FrameDecoder`.

use msrnet_rng::rngs::StdRng;
use msrnet_rng::{Rng, SeedableRng};
use msrnet_service::frame::{Frame, FrameDecoder, FrameError, DEFAULT_MAX_PAYLOAD, HEADER_LEN};
use msrnet_service::proto::{ProtoError, Request, Response};
use msrnet_service::ErrorCode;

/// Feeds `bytes` to a fresh decoder in the given chunk sizes and
/// collects every verdict (frames and the terminal error, if any).
fn drive(bytes: &[u8], chunks: &[usize], max_payload: u32) -> (Vec<Frame>, Option<FrameError>) {
    let mut dec = FrameDecoder::new(max_payload);
    let mut frames = Vec::new();
    let mut fed = 0;
    let mut chunk_iter = chunks.iter().copied().chain(std::iter::repeat(usize::MAX));
    while fed < bytes.len() {
        let n = chunk_iter.next().expect("infinite").min(bytes.len() - fed).max(1);
        dec.feed(&bytes[fed..fed + n]);
        fed += n;
        loop {
            match dec.next_frame() {
                Ok(Some(f)) => frames.push(f),
                Ok(None) => break,
                Err(e) => return (frames, Some(e)),
            }
        }
    }
    (frames, None)
}

/// Random chunk sizes covering the 1-byte drip and big-gulp extremes.
fn random_chunks(rng: &mut StdRng, total: usize) -> Vec<usize> {
    let mut chunks = Vec::new();
    let mut left = total;
    while left > 0 {
        let n = match rng.gen_range(0..3u32) {
            0 => 1,
            1 => rng.gen_range(1..=8usize),
            _ => rng.gen_range(1..=left.max(1)),
        }
        .min(left);
        chunks.push(n);
        left -= n;
    }
    chunks
}

#[test]
fn random_byte_soup_never_panics_and_is_chunking_invariant() {
    let mut rng = StdRng::seed_from_u64(0x5EED_F00D);
    for case in 0..2000 {
        let len = rng.gen_range(0..=64usize);
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let baseline = drive(&bytes, &[usize::MAX], DEFAULT_MAX_PAYLOAD);
        for _ in 0..4 {
            let chunks = random_chunks(&mut rng, bytes.len());
            let got = drive(&bytes, &chunks, DEFAULT_MAX_PAYLOAD);
            assert_eq!(
                got, baseline,
                "case {case}: verdict changed under chunking {chunks:?} for {bytes:02x?}"
            );
        }
    }
}

#[test]
fn valid_frames_survive_any_chunking() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for _ in 0..500 {
        let count = rng.gen_range(1..=4usize);
        let mut stream = Vec::new();
        let mut sent = Vec::new();
        for _ in 0..count {
            let kind = rng.next_u64() as u8;
            let len = rng.gen_range(0..=128usize);
            let payload: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            let frame = Frame { kind, payload };
            stream.extend(frame.encode(DEFAULT_MAX_PAYLOAD).expect("under cap"));
            sent.push(frame);
        }
        let chunks = random_chunks(&mut rng, stream.len());
        let (frames, err) = drive(&stream, &chunks, DEFAULT_MAX_PAYLOAD);
        assert!(err.is_none(), "valid stream errored: {err:?}");
        assert_eq!(frames, sent);
    }
}

#[test]
fn mutated_valid_frames_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xBAD_CAFE);
    let reqs = [
        Request::Stats { deadline_ms: u32::MAX },
        Request::Close { deadline_ms: 5, session: 42 },
        Request::Open {
            deadline_ms: u32::MAX,
            root: 1,
            driver_cost: 0.5,
            name: "n.msr".into(),
            pruning: "approx:0.1".into(),
            msr: "# stub\n".into(),
        },
    ];
    for case in 0..2000 {
        let req = &reqs[case % reqs.len()];
        let mut bytes = req.encode().encode(DEFAULT_MAX_PAYLOAD).expect("encode");
        // Flip 1–4 random bits (or truncate) and decode the result.
        if rng.gen_bool(0.2) {
            let keep = rng.gen_range(0..=bytes.len());
            bytes.truncate(keep);
        } else {
            for _ in 0..rng.gen_range(1..=4u32) {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] ^= 1 << rng.gen_range(0..8u32);
            }
        }
        let (frames, _err) = drive(&bytes, &[usize::MAX], DEFAULT_MAX_PAYLOAD);
        for f in &frames {
            // Whatever framed, request decoding must classify it
            // without panicking.
            let _ = Request::decode(f);
            let _ = Response::decode(f);
        }
    }
}

#[test]
fn decoder_poisons_after_error() {
    // After a framing error the stream position is untrustworthy: the
    // decoder must keep reporting the error, not resynchronize.
    let mut dec = FrameDecoder::new(DEFAULT_MAX_PAYLOAD);
    dec.feed(&[0x58, 0x58, 1, 1, 0, 0, 0, 0]);
    let first = dec.next_frame().expect_err("bad magic");
    let again = dec.next_frame().expect_err("still poisoned");
    assert_eq!(first, again);
    // Even if valid bytes arrive afterwards.
    let good = Frame { kind: 7, payload: vec![] }
        .encode(DEFAULT_MAX_PAYLOAD)
        .expect("encode");
    dec.feed(&good);
    assert!(dec.next_frame().is_err());
}

// --- pinned corpus ---------------------------------------------------

/// Replays one corpus file against a fresh decoder (byte-at-a-time, the
/// harshest chunking) and returns its verdict.
fn replay(bytes: &[u8]) -> (Vec<Frame>, Option<FrameError>) {
    let chunks: Vec<usize> = vec![1; bytes.len()];
    drive(bytes, &chunks, DEFAULT_MAX_PAYLOAD)
}

#[test]
fn corpus_bad_magic() {
    let (frames, err) = replay(include_bytes!("corpus/bad-magic.bin"));
    assert!(frames.is_empty());
    assert!(
        matches!(err, Some(FrameError::BadMagic { got: 0x58, at: 0 })),
        "{err:?}"
    );
}

#[test]
fn corpus_bad_version() {
    let (frames, err) = replay(include_bytes!("corpus/bad-version.bin"));
    assert!(frames.is_empty());
    assert!(matches!(err, Some(FrameError::BadVersion { got: 2 })), "{err:?}");
}

#[test]
fn corpus_oversized_announcement() {
    // The length field alone must trigger the error — no 4 GiB buffer
    // is ever allocated.
    let (frames, err) = replay(include_bytes!("corpus/oversized.bin"));
    assert!(frames.is_empty());
    assert!(
        matches!(
            err,
            Some(FrameError::Oversized { len: 0xFFFF_FFFF, limit: DEFAULT_MAX_PAYLOAD })
        ),
        "{err:?}"
    );
}

#[test]
fn corpus_truncated_frame_reports_missing_bytes() {
    let bytes: &[u8] = include_bytes!("corpus/truncated-open.bin");
    let mut dec = FrameDecoder::new(DEFAULT_MAX_PAYLOAD);
    dec.feed(bytes);
    assert!(dec.next_frame().expect("incomplete, not an error").is_none());
    assert!(dec.mid_frame(), "a partial frame is pending");
    let fin = dec.finish().expect_err("truncated");
    // Announced 32 payload bytes, delivered 4 of them.
    assert_eq!(fin, FrameError::Truncated { missing: 28 });
}

#[test]
fn corpus_unknown_kind_is_typed() {
    let (frames, err) = replay(include_bytes!("corpus/unknown-kind.bin"));
    assert!(err.is_none(), "framing layer accepts unknown kinds: {err:?}");
    assert_eq!(frames.len(), 1);
    let e = Request::decode(&frames[0]).expect_err("unknown kind");
    assert_eq!(e, ProtoError::UnknownKind { kind: 0x7F });
    assert_eq!(e.code(), ErrorCode::UnknownKind);
}

#[test]
fn corpus_short_open_is_bad_payload() {
    let (frames, err) = replay(include_bytes!("corpus/short-open.bin"));
    assert!(err.is_none());
    assert_eq!(frames.len(), 1);
    let e = Request::decode(&frames[0]).expect_err("short body");
    assert!(matches!(e, ProtoError::BadPayload { field: "deadline", .. }), "{e:?}");
    assert_eq!(e.code(), ErrorCode::BadPayload);
}

#[test]
fn corpus_trailing_bytes_after_close_are_rejected() {
    let (frames, err) = replay(include_bytes!("corpus/trailing-close.bin"));
    assert!(err.is_none());
    assert_eq!(frames.len(), 1);
    let e = Request::decode(&frames[0]).expect_err("trailing junk");
    assert!(
        matches!(e, ProtoError::BadPayload { field: "trailing bytes", .. }),
        "{e:?}"
    );
}

#[test]
fn corpus_good_frame_then_bad_magic() {
    // The valid STATS frame decodes; the corrupt second header then
    // poisons the stream at its first magic byte.
    let bytes: &[u8] = include_bytes!("corpus/good-then-bad-magic.bin");
    assert_eq!(bytes.len(), 2 * (HEADER_LEN + 4), "corpus file shape");
    let (frames, err) = replay(bytes);
    assert_eq!(frames.len(), 1);
    assert_eq!(
        Request::decode(&frames[0]).expect("valid stats"),
        Request::Stats { deadline_ms: u32::MAX }
    );
    assert!(
        matches!(err, Some(FrameError::BadMagic { got: 0x51, at: 0 })),
        "{err:?}"
    );
}
