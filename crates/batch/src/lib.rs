//! Parallel multi-net optimization engine.
//!
//! Production timing flows do not optimize one net: they sweep a design's
//! worth of multisource nets through ARD characterization (paper §III)
//! and the MSRI cost/ARD trade-off DP (paper §IV). This crate runs a
//! list of independent [`BatchJob`]s across a fixed-size worker pool:
//!
//! * each worker owns one [`MsriWorkspace`], so the DP's segment-arena
//!   reuse carries **across nets** — the hot loop stays allocation-free
//!   for the whole sweep;
//! * jobs are claimed from a shared atomic counter and results are
//!   stored by job index, so the output order (and every value in it)
//!   is independent of scheduling;
//! * per-net results are **bit-identical** to a sequential run — see
//!   [`reports_bit_identical`] and the determinism test — because the
//!   optimizer's arena path replicates the plain path's floating-point
//!   operations exactly and workspaces share no state between nets.
//!
//! The [`BatchReport`] serializes to machine-readable JSON
//! ([`BatchReport::to_json`]) with per-net ARD and cost figures, wall
//! time and thread count, ready to be dropped into a `BENCH_*.json`
//! style tracking file.
//!
//! The parallel-vs-sequential bit-identity claim is fuzzed continuously:
//! the `msrnet-verify` harness re-runs generated instances through
//! [`run_batch`] at one and several threads and compares with
//! [`reports_bit_identical`] (`msrnet-cli verify`, check
//! `batch_parallel_vs_sequential`).
//!
//! # Examples
//!
//! ```
//! use msrnet_batch::{random_jobs, run_batch, reports_bit_identical};
//! use msrnet_netgen::table1;
//!
//! // Eight random 6-terminal experiment nets, spaced per the paper.
//! let jobs = random_jobs(&table1(), 8, 6, 42, 800.0);
//! let sequential = run_batch(&jobs, 1);
//! let parallel = run_batch(&jobs, 4);
//! assert!(reports_bit_identical(&sequential, &parallel));
//! assert_eq!(parallel.threads, 4);
//! let json = parallel.to_json();
//! assert!(json.contains("\"nets\": 8"));
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use msrnet_core::ard::ard_linear;
use msrnet_core::{
    optimize_in, required_cap_bound, MsriOptions, MsriWorkspace, TerminalOptions, TradeoffCurve,
    WireOption,
};
use msrnet_incremental::{random_trace, IncrementalOptimizer};
use msrnet_netgen::{ExperimentNet, TechParams};
use msrnet_rctree::{Assignment, Net, Repeater, TerminalId};
use msrnet_rng::rngs::StdRng;
use msrnet_rng::SeedableRng;

/// One net to characterize and optimize.
#[derive(Clone, Debug)]
pub struct BatchJob {
    /// Label carried into the report (file name, generator seed, …).
    pub name: String,
    /// The optimization-ready net (terminals must be leaves).
    pub net: Net,
    /// Terminal to root the DP at (any; results are root-invariant).
    pub root: TerminalId,
    /// Repeater library for insertion points.
    pub library: Vec<Repeater>,
    /// Per-terminal driver menus.
    pub drivers: TerminalOptions,
    /// Optimizer options.
    pub options: MsriOptions,
}

impl BatchJob {
    /// Creates a job rooted at terminal 0 with default options.
    pub fn new(name: impl Into<String>, net: Net, library: Vec<Repeater>) -> Self {
        let drivers = TerminalOptions::defaults(&net);
        BatchJob {
            name: name.into(),
            net,
            root: TerminalId(0),
            library,
            drivers,
            options: MsriOptions::default(),
        }
    }
}

/// Per-net figures of merit extracted from the characterization and the
/// trade-off curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetSummary {
    /// ARD of the bare net (no repeaters, default drivers) — the §III
    /// characterization.
    pub bare_ard: f64,
    /// Cost of the cheapest trade-off point (the unoptimized baseline).
    pub min_cost: f64,
    /// ARD at the cheapest point.
    pub min_cost_ard: f64,
    /// Best achievable ARD over all assignments.
    pub best_ard: f64,
    /// Cost of the best-ARD solution.
    pub best_ard_cost: f64,
    /// Number of points on the Pareto trade-off curve.
    pub tradeoff_points: usize,
    /// DP candidates generated (effort proxy, deterministic).
    pub candidates: u64,
}

impl NetSummary {
    /// Exact bitwise equality of every float field — stricter than
    /// `==` (distinguishes `-0.0` and would catch a `NaN`).
    pub fn bit_eq(&self, other: &NetSummary) -> bool {
        self.bare_ard.to_bits() == other.bare_ard.to_bits()
            && self.min_cost.to_bits() == other.min_cost.to_bits()
            && self.min_cost_ard.to_bits() == other.min_cost_ard.to_bits()
            && self.best_ard.to_bits() == other.best_ard.to_bits()
            && self.best_ard_cost.to_bits() == other.best_ard_cost.to_bits()
            && self.tradeoff_points == other.tradeoff_points
            && self.candidates == other.candidates
    }
}

/// Outcome for one job: summary, or the optimizer error rendered as
/// text (an infeasible net does not abort the sweep).
#[derive(Clone, Debug)]
pub struct NetResult {
    /// The job's label.
    pub name: String,
    /// Summary, or error text for nets that fail to optimize.
    pub outcome: Result<NetSummary, String>,
    /// Per-net wall time, µs (not part of the determinism contract).
    pub micros: u64,
}

/// The sweep's aggregate output.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Worker threads used.
    pub threads: usize,
    /// End-to-end wall time of the sweep.
    pub wall: Duration,
    /// Per-net results, in job order regardless of scheduling.
    pub results: Vec<NetResult>,
}

/// Whether two reports carry identical per-net results (names, outcomes
/// and every float bit). Timing and thread count are ignored — they are
/// measurements, not results.
pub fn reports_bit_identical(a: &BatchReport, b: &BatchReport) -> bool {
    a.results.len() == b.results.len()
        && a.results.iter().zip(&b.results).all(|(x, y)| {
            x.name == y.name
                && match (&x.outcome, &y.outcome) {
                    (Ok(sx), Ok(sy)) => sx.bit_eq(sy),
                    (Err(ex), Err(ey)) => ex == ey,
                    _ => false,
                }
        })
}

/// Runs every job on a pool of `threads` workers (clamped to at least
/// one), each with its own reusable [`MsriWorkspace`].
///
/// The result vector is ordered by job index and is bit-identical for
/// every `threads` value.
pub fn run_batch(jobs: &[BatchJob], threads: usize) -> BatchReport {
    let threads = threads.max(1);
    let workers = threads.min(jobs.len()).max(1);
    // msrnet-allow: wall-clock elapsed-time report field only; never feeds optimization results
    let start = Instant::now();
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<NetResult>> = (0..jobs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut ws = MsriWorkspace::new();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        local.push((i, process(job, &mut ws)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            // msrnet-allow: panic a worker panic is already fatal; re-raising it on join is the intended behaviour
            for (i, r) in h.join().expect("batch workers do not panic") {
                slots[i] = Some(r);
            }
        }
    });
    BatchReport {
        threads,
        wall: start.elapsed(),
        results: slots
            .into_iter()
            // msrnet-allow: panic the atomic queue hands every index to exactly one worker
            .map(|s| s.expect("every job index is claimed exactly once"))
            .collect(),
    }
}

/// Characterizes and optimizes one net with a reused workspace.
fn process(job: &BatchJob, ws: &mut MsriWorkspace) -> NetResult {
    // msrnet-allow: wall-clock per-net elapsed-ms stat only; never feeds optimization results
    let t = Instant::now();
    let outcome = (|| {
        let rooted = job.net.rooted_at_terminal(job.root);
        let empty = Assignment::empty(job.net.topology.vertex_count());
        let bare = ard_linear(&job.net, &rooted, &job.library, &empty);
        let curve = optimize_in(
            &job.net,
            job.root,
            &job.library,
            &job.drivers,
            &job.options,
            ws,
        )
        .map_err(|e| e.to_string())?;
        let cheapest = curve.min_cost();
        let fastest = curve.best_ard();
        Ok(NetSummary {
            bare_ard: bare.ard,
            min_cost: cheapest.cost,
            min_cost_ard: cheapest.ard,
            best_ard: fastest.ard,
            best_ard_cost: fastest.cost,
            tradeoff_points: curve.points().len(),
            candidates: curve.stats().generated,
        })
    })();
    NetResult {
        name: job.name.clone(),
        outcome,
        micros: t.elapsed().as_micros() as u64,
    }
}

/// Runs every job on the same worker pool as [`run_batch`] but returns
/// the full per-net [`TradeoffCurve`]s (assignments included) instead of
/// scalar summaries.
///
/// Callers that *realize* solutions — the `msrnet-timing` closure loop
/// picks a frontier point per net and writes its repeater assignment
/// back into the design — need the curve itself; [`run_batch`] only
/// keeps figures of merit. Results are ordered by job index and
/// bit-identical for every `threads` value, by the same argument as
/// [`run_batch`] (atomic claim queue, per-worker workspaces, no shared
/// state between nets).
pub fn run_batch_curves(
    jobs: &[BatchJob],
    threads: usize,
) -> Vec<Result<TradeoffCurve, String>> {
    let workers = threads.max(1).min(jobs.len()).max(1);
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<Result<TradeoffCurve, String>>> =
        (0..jobs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut ws = MsriWorkspace::new();
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        let curve = optimize_in(
                            &job.net,
                            job.root,
                            &job.library,
                            &job.drivers,
                            &job.options,
                            &mut ws,
                        )
                        .map_err(|e| e.to_string());
                        local.push((i, curve));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            // msrnet-allow: panic a worker panic is already fatal; re-raising it on join is the intended behaviour
            for (i, r) in h.join().expect("batch workers do not panic") {
                slots[i] = Some(r);
            }
        }
    });
    slots
        .into_iter()
        // msrnet-allow: panic the atomic queue hands every index to exactly one worker
        .map(|s| s.expect("every job index is claimed exactly once"))
        .collect()
}

/// Builds `count` jobs over seeded random experiment nets (the paper's
/// §VI generator): `terminals`-pin nets with insertion points every
/// `spacing` µm, a 1X repeater pair and fixed 1X drivers.
///
/// Seeds run `seed0, seed0+1, …`; a seed whose random net is degenerate
/// (coincident pins) is skipped, so slightly more than `count` seeds may
/// be consumed.
pub fn random_jobs(
    params: &TechParams,
    count: usize,
    terminals: usize,
    seed0: u64,
    spacing: f64,
) -> Vec<BatchJob> {
    let mut jobs = Vec::with_capacity(count);
    let mut seed = seed0;
    while jobs.len() < count {
        let mut rng = StdRng::seed_from_u64(seed);
        if let Ok(exp) = ExperimentNet::random(&mut rng, terminals, params) {
            let net = exp.with_insertion_points(spacing);
            let drivers = params.fixed_driver_menu(&net);
            jobs.push(BatchJob {
                name: format!("net{seed:04}"),
                net,
                root: TerminalId(0),
                library: vec![params.repeater(1.0)],
                drivers,
                options: MsriOptions::default(),
            });
        }
        seed += 1;
    }
    jobs
}

// ---------------------------------------------------------------------
// Incremental edit replay
// ---------------------------------------------------------------------

/// Per-net outcome of an incremental edit-replay sweep: every recompute
/// is cross-checked bit-for-bit against a from-scratch re-solve, and the
/// engine's node-visit counters are accumulated so callers can assert
/// that edits really did recompute only dirty-path nodes.
#[derive(Clone, Debug)]
pub struct ReplayResult {
    /// The job's label.
    pub name: String,
    /// Edits that passed validation and were replayed.
    pub edits_applied: usize,
    /// Edits rejected by the typed edit API.
    pub edits_rejected: usize,
    /// Recomputes whose curve (or error) differed from the scratch
    /// oracle — always zero unless the engine is broken.
    pub mismatches: usize,
    /// Total nodes walked by incremental recomputes.
    pub nodes_visited: u64,
    /// Nodes whose candidate sets were rebuilt incrementally.
    pub nodes_recomputed: u64,
    /// Nodes a from-scratch replay of the same recomputes rebuilt.
    pub scratch_recomputed: u64,
    /// Domain-bound escalations triggered during the replay.
    pub escalations: u64,
    /// Session-level error (degenerate configuration), if any.
    pub error: Option<String>,
    /// Per-net wall time, µs (not part of the determinism contract).
    pub micros: u64,
}

/// Aggregate output of [`run_batch_incremental`].
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Worker threads used.
    pub threads: usize,
    /// Edits replayed per net.
    pub edits_per_net: usize,
    /// End-to-end wall time of the sweep.
    pub wall: Duration,
    /// Per-net results, in job order regardless of scheduling.
    pub results: Vec<ReplayResult>,
}

impl ReplayReport {
    /// Total incremental-vs-scratch mismatches across the sweep.
    pub fn mismatches(&self) -> usize {
        self.results.iter().map(|r| r.mismatches).sum()
    }

    /// Serializes the report as pretty-printed JSON (schema mirrors
    /// [`BatchReport::to_json`], `"benchmark": "msrnet_batch_edits"`).
    pub fn to_json(&self) -> String {
        let wall_ms = self.wall.as_secs_f64() * 1e3;
        let mut out = String::with_capacity(256 + 192 * self.results.len());
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"msrnet_batch_edits\",\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"edits_per_net\": {},\n", self.edits_per_net));
        out.push_str(&format!("  \"nets\": {},\n", self.results.len()));
        out.push_str(&format!("  \"mismatches\": {},\n", self.mismatches()));
        out.push_str(&format!("  \"wall_ms\": {},\n", json_num(wall_ms)));
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": {}, ", json_str(&r.name)));
            out.push_str(&format!("\"edits_applied\": {}, ", r.edits_applied));
            out.push_str(&format!("\"edits_rejected\": {}, ", r.edits_rejected));
            out.push_str(&format!("\"mismatches\": {}, ", r.mismatches));
            out.push_str(&format!("\"nodes_visited\": {}, ", r.nodes_visited));
            out.push_str(&format!("\"nodes_recomputed\": {}, ", r.nodes_recomputed));
            out.push_str(&format!("\"scratch_recomputed\": {}, ", r.scratch_recomputed));
            out.push_str(&format!("\"escalations\": {}, ", r.escalations));
            out.push_str(&format!("\"micros\": {}, ", r.micros));
            match &r.error {
                Some(e) => out.push_str(&format!("\"error\": {}", json_str(e))),
                None => out.push_str("\"error\": null"),
            }
            out.push('}');
            if i + 1 < self.results.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Replays a seeded random edit trace on every job through an
/// [`IncrementalOptimizer`] session, cross-checking each dirty-path
/// recompute against a from-scratch re-solve (bit-identical or it counts
/// as a mismatch). Uses the same claim-by-atomic worker pool as
/// [`run_batch`], so results are in job order for every thread count.
pub fn run_batch_incremental(
    jobs: &[BatchJob],
    threads: usize,
    edits_per_net: usize,
    seed: u64,
) -> ReplayReport {
    let threads = threads.max(1);
    let workers = threads.min(jobs.len()).max(1);
    // msrnet-allow: wall-clock elapsed-time report field only; never feeds optimization results
    let start = Instant::now();
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<ReplayResult>> = (0..jobs.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(job) = jobs.get(i) else { break };
                        let job_seed = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                        local.push((i, replay(job, edits_per_net, job_seed)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            // msrnet-allow: panic a worker panic is already fatal; re-raising it on join is the intended behaviour
            for (i, r) in h.join().expect("replay workers do not panic") {
                slots[i] = Some(r);
            }
        }
    });
    ReplayReport {
        threads,
        edits_per_net,
        wall: start.elapsed(),
        results: slots
            .into_iter()
            // msrnet-allow: panic the atomic queue hands every index to exactly one worker
            .map(|s| s.expect("every job index is claimed exactly once"))
            .collect(),
    }
}

/// Bit-level equality of two trade-off curves (values and realizations).
fn curves_bit_identical(a: &TradeoffCurve, b: &TradeoffCurve) -> bool {
    a.len() == b.len()
        && a.points().iter().zip(b.points()).all(|(pa, pb)| {
            pa.cost.to_bits() == pb.cost.to_bits()
                && pa.ard.to_bits() == pb.ard.to_bits()
                && pa.assignment == pb.assignment
                && pa.terminal_choices == pb.terminal_choices
                && pa.wire_choices == pb.wire_choices
        })
}

/// Replays one job's seeded edit trace against the scratch oracle.
fn replay(job: &BatchJob, edits_per_net: usize, seed: u64) -> ReplayResult {
    // msrnet-allow: wall-clock per-net elapsed-ms stat only; never feeds optimization results
    let t = Instant::now();
    let mut result = ReplayResult {
        name: job.name.clone(),
        edits_applied: 0,
        edits_rejected: 0,
        mismatches: 0,
        nodes_visited: 0,
        nodes_recomputed: 0,
        scratch_recomputed: 0,
        escalations: 0,
        error: None,
        micros: 0,
    };
    let bound = required_cap_bound(
        &job.net,
        &job.library,
        &job.drivers,
        &[WireOption::unit()],
    );
    if !bound.is_finite() || bound <= 0.0 {
        result.error = Some(format!("degenerate cap bound {bound}"));
        result.micros = t.elapsed().as_micros() as u64;
        return result;
    }
    let trace = random_trace(&job.net, seed, edits_per_net);
    let mut session = IncrementalOptimizer::new(
        job.net.clone(),
        job.root,
        job.library.clone(),
        job.drivers.clone(),
        vec![WireOption::unit()],
        job.options,
    );
    // Step 0 is the initial all-dirty compute; each applied edit then
    // compares its dirty-path recompute against the scratch oracle.
    for step in 0..=trace.len() {
        if step > 0 {
            if session.apply(&trace[step - 1]).is_err() {
                result.edits_rejected += 1;
                continue;
            }
            result.edits_applied += 1;
        }
        let inc = session.recompute();
        let scratch = session.from_scratch();
        match (inc, scratch) {
            (Ok((a, sa)), Ok((b, sb))) => {
                result.nodes_visited += sa.nodes_visited as u64;
                result.nodes_recomputed += sa.nodes_recomputed as u64;
                result.scratch_recomputed += sb.nodes_recomputed as u64;
                if !curves_bit_identical(&a, &b) {
                    result.mismatches += 1;
                }
            }
            (Err(a), Err(b)) => {
                if a != b {
                    result.mismatches += 1;
                }
            }
            _ => result.mismatches += 1,
        }
    }
    result.escalations = session.escalations();
    result.micros = t.elapsed().as_micros() as u64;
    result
}

// ---------------------------------------------------------------------
// JSON report
// ---------------------------------------------------------------------

impl BatchReport {
    /// Serializes the report as pretty-printed JSON.
    ///
    /// Schema (stable; suitable for `BENCH_*.json` tracking):
    ///
    /// ```json
    /// {
    ///   "benchmark": "msrnet_batch",
    ///   "threads": 4,
    ///   "nets": 100,
    ///   "failed": 0,
    ///   "wall_ms": 512.3,
    ///   "nets_per_s": 195.2,
    ///   "results": [
    ///     {"name": "net0001", "bare_ard": 3140.2, "min_cost": 2.0,
    ///      "min_cost_ard": 3140.2, "best_ard": 1180.4,
    ///      "best_ard_cost": 14.0, "tradeoff_points": 7,
    ///      "candidates": 4211, "micros": 880, "error": null}
    ///   ]
    /// }
    /// ```
    ///
    /// Non-finite floats (e.g. a `-∞` ARD on a sink-free net) serialize
    /// as `null`; failed nets carry `"error"` text and null metrics.
    pub fn to_json(&self) -> String {
        self.to_json_opts(true)
    }

    /// [`BatchReport::to_json`] with the timing fields made optional.
    ///
    /// With `timing: false` every volatile field — `wall_ms`,
    /// `nets_per_s`, and each result's `micros` — serializes as `null`,
    /// making the report a pure function of its inputs: byte-identical
    /// across runs, thread counts, and machines. The served `batch`
    /// request and its local `msrnet-cli batch --no-timing` oracle both
    /// use this mode so equality can be asserted on raw bytes.
    pub fn to_json_opts(&self, timing: bool) -> String {
        let wall_ms = self.wall.as_secs_f64() * 1e3;
        let nets_per_s = if self.wall.as_secs_f64() > 0.0 {
            self.results.len() as f64 / self.wall.as_secs_f64()
        } else {
            f64::INFINITY
        };
        let micros_of = |micros: u64| {
            if timing {
                micros.to_string()
            } else {
                "null".to_string()
            }
        };
        let failed = self.results.iter().filter(|r| r.outcome.is_err()).count();
        let mut out = String::with_capacity(256 + 192 * self.results.len());
        out.push_str("{\n");
        out.push_str("  \"benchmark\": \"msrnet_batch\",\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"nets\": {},\n", self.results.len()));
        out.push_str(&format!("  \"failed\": {failed},\n"));
        if timing {
            out.push_str(&format!("  \"wall_ms\": {},\n", json_num(wall_ms)));
            out.push_str(&format!("  \"nets_per_s\": {},\n", json_num(nets_per_s)));
        } else {
            out.push_str("  \"wall_ms\": null,\n");
            out.push_str("  \"nets_per_s\": null,\n");
        }
        out.push_str("  \"results\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": {}, ", json_str(&r.name)));
            match &r.outcome {
                Ok(s) => {
                    out.push_str(&format!("\"bare_ard\": {}, ", json_num(s.bare_ard)));
                    out.push_str(&format!("\"min_cost\": {}, ", json_num(s.min_cost)));
                    out.push_str(&format!("\"min_cost_ard\": {}, ", json_num(s.min_cost_ard)));
                    out.push_str(&format!("\"best_ard\": {}, ", json_num(s.best_ard)));
                    out.push_str(&format!("\"best_ard_cost\": {}, ", json_num(s.best_ard_cost)));
                    out.push_str(&format!("\"tradeoff_points\": {}, ", s.tradeoff_points));
                    out.push_str(&format!("\"candidates\": {}, ", s.candidates));
                    out.push_str(&format!("\"micros\": {}, ", micros_of(r.micros)));
                    out.push_str("\"error\": null");
                }
                Err(e) => {
                    out.push_str("\"bare_ard\": null, \"min_cost\": null, ");
                    out.push_str("\"min_cost_ard\": null, \"best_ard\": null, ");
                    out.push_str("\"best_ard_cost\": null, \"tradeoff_points\": null, ");
                    out.push_str(&format!(
                        "\"candidates\": null, \"micros\": {}, ",
                        micros_of(r.micros)
                    ));
                    out.push_str(&format!("\"error\": {}", json_str(e)));
                }
            }
            out.push('}');
            if i + 1 < self.results.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// A finite float as JSON, non-finite as `null`.
fn json_num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// A JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrnet_netgen::table1;

    #[test]
    fn json_escaping_and_nulls() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_str("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_num(f64::NEG_INFINITY), "null");
        assert_eq!(json_num(1.5), "1.5");
    }

    #[test]
    fn empty_batch_is_fine() {
        let report = run_batch(&[], 4);
        assert!(report.results.is_empty());
        assert!(report.to_json().contains("\"nets\": 0"));
    }

    #[test]
    fn edit_replay_is_clean_and_scheduling_invariant() {
        // Coarse insertion spacing keeps the per-edit debug-mode solves
        // cheap; 3 nets × (1 initial + 4 edits) is still ~30 DP runs.
        let jobs = random_jobs(&table1(), 3, 5, 21, 4000.0);
        let par = run_batch_incremental(&jobs, 2, 4, 9);
        assert_eq!(par.mismatches(), 0, "incremental diverged from scratch");
        for r in &par.results {
            assert!(r.error.is_none(), "{}: {:?}", r.name, r.error);
            assert!(r.nodes_recomputed <= r.scratch_recomputed);
        }
        let seq = run_batch_incremental(&jobs, 1, 4, 9);
        for (a, b) in par.results.iter().zip(&seq.results) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.edits_applied, b.edits_applied);
            assert_eq!(a.nodes_recomputed, b.nodes_recomputed);
            assert_eq!(a.escalations, b.escalations);
        }
        let json = par.to_json();
        assert!(json.contains("\"benchmark\": \"msrnet_batch_edits\""));
        assert!(json.contains("\"mismatches\": 0"));
    }

    #[test]
    fn batch_summaries_are_sane() {
        let jobs = random_jobs(&table1(), 4, 6, 7, 800.0);
        assert_eq!(jobs.len(), 4);
        let report = run_batch(&jobs, 2);
        for r in &report.results {
            let s = r.outcome.as_ref().expect("experiment nets optimize");
            // The §III characterization is finite on experiment nets
            // (every pin is bidirectional), and optimization can only
            // improve on the cheapest point.
            assert!(s.bare_ard.is_finite());
            assert!(s.best_ard <= s.min_cost_ard);
            assert!(s.best_ard_cost >= s.min_cost);
            assert!(s.tradeoff_points >= 1);
        }
    }
}
