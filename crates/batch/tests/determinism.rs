//! Determinism guard: the parallel engine must return bit-identical
//! per-net results for any thread count. Worker scheduling varies from
//! run to run; results must not.

use msrnet_batch::{random_jobs, reports_bit_identical, run_batch};
use msrnet_netgen::table1;

#[test]
fn parallel_runs_are_bit_identical_to_sequential() {
    let params = table1();
    // Mixed sizes so jobs have unequal durations and threads genuinely
    // interleave and steal from the shared queue.
    let mut jobs = random_jobs(&params, 12, 5, 200, 800.0);
    jobs.extend(random_jobs(&params, 6, 8, 300, 800.0));
    let sequential = run_batch(&jobs, 1);
    for threads in [2, 4, 7] {
        let parallel = run_batch(&jobs, threads);
        assert!(
            reports_bit_identical(&sequential, &parallel),
            "results diverged at {threads} threads"
        );
    }
    // Repeating the sequential run must also be stable (workspace reuse
    // does not leak state between nets).
    let again = run_batch(&jobs, 1);
    assert!(reports_bit_identical(&sequential, &again));
}
