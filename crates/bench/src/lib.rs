//! Shared harness for regenerating every table and figure of the paper's
//! evaluation (§VI).
//!
//! Each binary in `src/bin/` prints one table or figure; this library
//! holds the experiment logic so the micro-benchmarks and the binaries
//! measure exactly the same computations. See `EXPERIMENTS.md` at the
//! repository root for the paper-vs-measured record.

pub mod timing;

use std::time::{Duration, Instant};

use msrnet_core::{optimize, MsriOptions, MsriStats, TerminalOptions, TradeoffCurve};
use msrnet_netgen::{ExperimentNet, TechParams};
use msrnet_rctree::{Net, Repeater, TerminalId};
use msrnet_rng::rngs::StdRng;
use msrnet_rng::SeedableRng;

/// Default insertion-point spacing of the experiments (§VI: consecutive
/// insertion points no more than ≈800 µm apart).
pub const SPACING: f64 = 800.0;

/// Sizes used to build the driver-sizing library (§VI: 1X baseline plus
/// 2X, 3X, 4X variants).
pub const DRIVER_SIZES: [f64; 4] = [1.0, 2.0, 3.0, 4.0];

/// One experiment instance: a random `n`-terminal net with insertion
/// points, plus the two optimization configurations the paper compares.
pub struct Instance {
    /// The optimization-ready net.
    pub net: Net,
    /// Root used for the DP (any terminal; results are root-invariant).
    pub root: TerminalId,
    /// The single symmetric 1X-pair repeater of the experiments.
    pub library: Vec<Repeater>,
    /// Fixed 1X/1X drivers (repeater-insertion mode).
    pub fixed_drivers: TerminalOptions,
    /// Sized driver menus (driver-sizing mode).
    pub sizing_drivers: TerminalOptions,
}

impl Instance {
    /// Builds the experiment instance for a seeded random net.
    pub fn random(params: &TechParams, n: usize, seed: u64, spacing: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let exp = ExperimentNet::random(&mut rng, n, params).expect("random nets are valid");
        let net = exp.with_insertion_points(spacing);
        Instance {
            root: TerminalId(0),
            library: vec![params.repeater(1.0)],
            fixed_drivers: params.fixed_driver_menu(&net),
            sizing_drivers: params.sizing_menu(&net, &DRIVER_SIZES),
            net,
        }
    }

    /// Replaces the repeater library (e.g. with the asymmetric
    /// multi-cost regime) while keeping the same net and driver menus.
    pub fn with_library(mut self, library: Vec<Repeater>) -> Self {
        self.library = library;
        self
    }

    /// Runs driver sizing (no repeaters).
    pub fn run_sizing(&self, options: &MsriOptions) -> TradeoffCurve {
        optimize(&self.net, self.root, &[], &self.sizing_drivers, options)
            .expect("sizing optimization succeeds")
    }

    /// Runs repeater insertion with fixed 1X drivers.
    pub fn run_repeaters(&self, options: &MsriOptions) -> TradeoffCurve {
        optimize(
            &self.net,
            self.root,
            &self.library,
            &self.fixed_drivers,
            options,
        )
        .expect("repeater optimization succeeds")
    }
}

/// One row of Table II, all performance/cost columns normalized to the
/// min-cost solution (1X drivers, no repeaters) as in the paper.
#[derive(Clone, Copy, Debug)]
pub struct Table2Row {
    /// Net size (number of terminals).
    pub n: usize,
    /// Average number of repeater insertion points.
    pub avg_insertion_points: f64,
    /// Column 3: minimal diameter achievable by driver sizing alone.
    pub sizing_diameter: f64,
    /// Column 4: cost of that sizing solution.
    pub sizing_cost: f64,
    /// Column 5: cost of the cheapest repeater solution matching or
    /// beating the sizing diameter.
    pub repeater_cost_at_sizing_diameter: f64,
    /// Column 6: minimal diameter achievable by repeater insertion.
    pub repeater_diameter: f64,
    /// Column 7: cost of that repeater solution.
    pub repeater_cost: f64,
}

/// Computes one Table II row by averaging `trials` seeded random nets.
pub fn table2_row(params: &TechParams, n: usize, trials: usize, seed0: u64) -> Table2Row {
    let options = MsriOptions::default();
    let mut acc = [0.0f64; 6];
    for trial in 0..trials {
        let inst = Instance::random(params, n, seed0 + trial as u64, SPACING);
        let sizing = inst.run_sizing(&options);
        let repeaters = inst.run_repeaters(&options);
        // The min-cost solution (1X drivers, no repeaters) anchors the
        // normalization; it is the cheapest point of either curve.
        let base = sizing.min_cost();
        debug_assert!((base.ard - repeaters.min_cost().ard).abs() < 1e-6);
        let s_best = sizing.best_ard();
        let r_best = repeaters.best_ard();
        let r_match = repeaters
            .min_cost_meeting(s_best.ard)
            .expect("repeaters can match sizing");
        acc[0] += inst.net.topology.insertion_point_count() as f64;
        acc[1] += s_best.ard / base.ard;
        acc[2] += s_best.cost / base.cost;
        acc[3] += r_match.cost / base.cost;
        acc[4] += r_best.ard / base.ard;
        acc[5] += r_best.cost / base.cost;
    }
    let t = trials as f64;
    Table2Row {
        n,
        avg_insertion_points: acc[0] / t,
        sizing_diameter: acc[1] / t,
        sizing_cost: acc[2] / t,
        repeater_cost_at_sizing_diameter: acc[3] / t,
        repeater_diameter: acc[4] / t,
        repeater_cost: acc[5] / t,
    }
}

/// One row of Table III: the fastest sizing and repeater solutions on a
/// single sample topology (absolute values; cost in 1X buffers).
#[derive(Clone, Copy, Debug)]
pub struct Table3Row {
    /// Number of terminals.
    pub n: usize,
    /// Seed identifying the sample topology.
    pub seed: u64,
    /// Total wirelength, µm.
    pub wirelength: f64,
    /// Fastest driver-sizing solution: (diameter ps, cost).
    pub sizing: (f64, f64),
    /// Fastest repeater solution: (diameter ps, cost).
    pub repeaters: (f64, f64),
}

/// Computes one Table III row.
pub fn table3_row(params: &TechParams, n: usize, seed: u64) -> Table3Row {
    let options = MsriOptions::default();
    let inst = Instance::random(params, n, seed, SPACING);
    let sizing = inst.run_sizing(&options);
    let repeaters = inst.run_repeaters(&options);
    Table3Row {
        n,
        seed,
        wirelength: inst.net.topology.total_wirelength(),
        sizing: (sizing.best_ard().ard, sizing.best_ard().cost),
        repeaters: (repeaters.best_ard().ard, repeaters.best_ard().cost),
    }
}

/// One row of Table IV: average optimizer run times.
#[derive(Clone, Copy, Debug)]
pub struct Table4Row {
    /// Number of terminals.
    pub n: usize,
    /// Average driver-sizing run time.
    pub sizing_time: Duration,
    /// Average repeater-insertion run time.
    pub repeater_time: Duration,
}

/// Computes one Table IV row by averaging `trials` seeded nets.
pub fn table4_row(params: &TechParams, n: usize, trials: usize, seed0: u64) -> Table4Row {
    let options = MsriOptions::default();
    let mut sizing_total = Duration::ZERO;
    let mut repeater_total = Duration::ZERO;
    for trial in 0..trials {
        let inst = Instance::random(params, n, seed0 + trial as u64, SPACING);
        let t = Instant::now();
        let _ = inst.run_sizing(&options);
        sizing_total += t.elapsed();
        let t = Instant::now();
        let _ = inst.run_repeaters(&options);
        repeater_total += t.elapsed();
    }
    Table4Row {
        n,
        sizing_time: sizing_total / trials as u32,
        repeater_time: repeater_total / trials as u32,
    }
}

/// The asymmetric multi-cost repeater library: three denominations whose
/// pairwise cost sums stay distinct, so joins multiply rather than merge
/// cost classes. This is the Pareto-explosion regime of the verify grid
/// and the one the join cutoffs and bucketed MFS sweep target.
pub fn multicost_asym_library(params: &TechParams) -> Vec<Repeater> {
    let b1 = &params.buf_1x;
    let b2 = b1.scaled(2.0);
    let b4 = b1.scaled(4.0);
    vec![
        Repeater::from_buffer_pair("asym_s", b1, &b2),
        Repeater::from_buffer_pair("rep2x", &b2, &b2),
        Repeater::from_buffer_pair("asym_l", &b2, &b4),
    ]
}

/// Result of one pruning-strategy ablation run.
#[derive(Clone, Copy, Debug)]
pub struct AblationRow {
    /// Optimizer wall time.
    pub time: Duration,
    /// Optimizer counters.
    pub stats: MsriStats,
}

/// Runs repeater insertion under a given pruning configuration.
pub fn ablation_run(inst: &Instance, options: &MsriOptions) -> AblationRow {
    let t = Instant::now();
    let curve = inst.run_repeaters(options);
    AblationRow {
        time: t.elapsed(),
        stats: curve.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrnet_netgen::table1;

    #[test]
    fn table2_row_shape_matches_paper() {
        // The paper's headline (Table II): sizing reduces diameter
        // moderately; repeater insertion reduces it substantially more,
        // and matches sizing's diameter at lower cost.
        let params = table1();
        let row = table2_row(&params, 10, 3, 100);
        assert!(row.sizing_diameter < 1.0, "sizing helps");
        assert!(
            row.repeater_diameter < row.sizing_diameter,
            "repeaters beat sizing: {} vs {}",
            row.repeater_diameter,
            row.sizing_diameter
        );
        assert!(
            row.repeater_cost_at_sizing_diameter < row.sizing_cost,
            "repeaters match sizing diameter at lower cost"
        );
        assert!(row.sizing_cost > 1.0 && row.repeater_cost > 1.0);
        assert!(row.avg_insertion_points > 10.0);
    }

    #[test]
    fn instance_runs_both_modes() {
        let params = table1();
        // "Repeaters beat sizing" is a regime-dependent claim: below the
        // paper's 10-terminal experiment scale, wires are short enough
        // that a repeater's intrinsic delay doesn't pay off and sizing
        // can win. Test at the paper's smallest scale, where the claim
        // holds across seeds.
        let inst = Instance::random(&params, 10, 1, SPACING);
        let s = inst.run_sizing(&MsriOptions::default());
        let r = inst.run_repeaters(&MsriOptions::default());
        assert!((s.min_cost().ard - r.min_cost().ard).abs() < 1e-6);
        assert!(r.best_ard().ard <= s.best_ard().ard);
    }
}
