//! A minimal wall-clock micro-benchmark harness for the `[[bench]]`
//! targets (all declared `harness = false`).
//!
//! Each measurement warms the closure up, then runs batches until a
//! time budget is spent and reports the per-iteration median over the
//! batches. This is deliberately simple — the repository's benches are
//! trend trackers (is the DP getting faster PR over PR?), not
//! publication-grade statistics.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Default time budget per measurement.
const BUDGET: Duration = Duration::from_millis(300);
const WARMUP: Duration = Duration::from_millis(50);

/// Times `f` and prints `name: <median> ns/iter (<batches> batches)`.
///
/// The closure's return value is passed through [`black_box`] so the
/// optimizer cannot delete the measured work.
pub fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    // Warm-up: also discovers roughly how long one iteration takes.
    let warm_start = Instant::now();
    let mut warm_iters: u32 = 0;
    while warm_start.elapsed() < WARMUP {
        black_box(f());
        warm_iters += 1;
    }
    let per_iter = WARMUP.as_nanos() as u64 / u64::from(warm_iters.max(1));
    // Aim for ~30 batches inside the budget.
    let batch = (BUDGET.as_nanos() as u64 / 30 / per_iter.max(1)).clamp(1, 1_000_000) as u32;

    let mut samples: Vec<u64> = Vec::new();
    let start = Instant::now();
    while start.elapsed() < BUDGET {
        let t = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        samples.push(t.elapsed().as_nanos() as u64 / u64::from(batch));
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    println!("{name}: {median} ns/iter ({} batches of {batch})", samples.len());
}

/// Prints a group header, mirroring the benchmark-group structure the
/// bench targets had under their previous harness.
pub fn group(name: &str) {
    println!("\n== {name} ==");
}
