//! What does optimality (paper Theorem 4.1) buy over the obvious greedy
//! heuristic? For the §VI workload, compares the best-single-move greedy
//! inserter against the DP at matched cost levels.
//!
//! Run with: `cargo run --release -p msrnet-bench --bin greedy_vs_optimal`

use msrnet_bench::{Instance, SPACING};
use msrnet_core::greedy::greedy_insertion;
use msrnet_core::MsriOptions;
use msrnet_netgen::table1;

fn main() {
    let params = table1();
    let trials = 8u64;
    println!("Greedy single-move insertion vs the optimal DP (10-pin nets, {trials} seeds)");
    println!("------------------------------------------------------------------------------");
    println!(
        "{:>5} | {:>10} {:>10} | {:>12} {:>12} | {:>8}",
        "seed", "greedy $", "ARD", "optimal ARD", "@ same $", "excess"
    );
    println!("------------------------------------------------------------------------------");
    let mut total_excess = 0.0;
    let mut worst: f64 = 0.0;
    for seed in 0..trials {
        let inst = Instance::random(&params, 10, 7000 + seed, SPACING);
        // Give greedy the same timing model as the DP: the fixed 1X/1X
        // driver option applied to every terminal.
        let choices = vec![0usize; inst.net.terminals.len()];
        let (scenario, _) = msrnet_core::exhaustive::apply_terminal_choices(
            &inst.net,
            &inst.fixed_drivers,
            &choices,
        );
        // Greedy only spends repeaters; match by repeater cost (the
        // driver cost is a constant offset on both sides).
        let greedy = greedy_insertion(&scenario, inst.root, &inst.library, 0.0);
        let curve = inst.run_repeaters(&MsriOptions::default());
        let driver_cost = curve.min_cost().cost;
        let budget = greedy.final_cost() + driver_cost;
        let optimal_at_cost = curve
            .points()
            .iter()
            .filter(|p| p.cost <= budget + 1e-9)
            .map(|p| p.ard)
            .fold(f64::INFINITY, f64::min);
        let excess = greedy.final_ard() / optimal_at_cost - 1.0;
        total_excess += excess;
        worst = worst.max(excess);
        println!(
            "{:>5} | {:>10.0} {:>10.1} | {:>12.1} {:>12.0} | {:>7.2}%",
            seed,
            greedy.final_cost(),
            greedy.final_ard(),
            optimal_at_cost,
            budget,
            excess * 100.0
        );
    }
    println!("------------------------------------------------------------------------------");
    println!(
        "greedy is on average {:.2}% (worst {:.2}%) above the optimum at equal",
        100.0 * total_excess / trials as f64,
        100.0 * worst
    );
    println!("cost — and it cannot answer 'min cost subject to a spec' at all,");
    println!("while the DP's frontier contains every such answer (Problem 2.1).");
}
