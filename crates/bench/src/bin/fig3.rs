//! Reproduces paper Fig. 3: the motivational example behind the PWL
//! characterization. Two sources `u` and `w` join at a vertex `v`; the
//! bottom-up accumulated resistances to `v` are 7 and 12 (the paper's
//! values), so the arrival time at `v` from each source is a *line* in
//! the external capacitance `c_E`, and which source is critical depends
//! on `c_E` — the piece-wise maximum (Fig. 3c). Internal source→sink
//! paths add scalars to the intercepts, giving the internal augmented
//! diameter function (Fig. 3d).
//!
//! Run with: `cargo run --release -p msrnet-bench --bin fig3`

use msrnet_pwl::Pwl;

fn main() {
    let c_max = 4.0;
    // Arrival functions at v (paper Fig. 3b/c): slope = accumulated
    // upstream resistance; intercepts chosen so the two lines cross
    // inside the domain of interest.
    let y_u = Pwl::linear(16.0, 7.0, 0.0, c_max);
    let y_w = Pwl::linear(10.0, 12.0, 0.0, c_max);
    let arrival = y_u.max(&y_w);

    println!("Fig. 3(c) — arrival time at v as a function of c_E");
    println!("Y_u(c_E) = 16 + 7·c_E      (accumulated resistance 7)");
    println!("Y_w(c_E) = 10 + 12·c_E     (accumulated resistance 12)");
    println!("max(Y_u, Y_w):");
    for s in arrival.segments() {
        println!("  on [{:.2}, {:.2}]: {:.2} + {:.2}·(c_E − {:.2})", s.x0, s.x1, s.y0, s.slope, s.x0);
    }
    let crossover = arrival.segments()[0].x1;
    println!("critical source: u for c_E < {crossover:.2}, w beyond — the crossover of Fig. 3(c)");

    // Fig. 3(d): internal paths add the scalar delay from v down to the
    // other side's sink to each intercept.
    let d_uw = y_u.add_scalar(6.0); // path u → (sink below w's side)
    let d_wu = y_w.add_scalar(3.0); // path w → (sink below u's side)
    let diameter = d_uw.max(&d_wu);
    println!("\nFig. 3(d) — internal augmented path delays");
    println!("PD(u→·)(c_E) = Y_u + 6 = 22 + 7·c_E");
    println!("PD(w→·)(c_E) = Y_w + 3 = 13 + 12·c_E");
    println!("internal diameter D(c_E) = max of the two:");
    for s in diameter.segments() {
        println!("  on [{:.2}, {:.2}]: {:.2} + {:.2}·(c_E − {:.2})", s.x0, s.x1, s.y0, s.slope, s.x0);
    }
    println!(
        "\nsampled values: arrival(0)={:.1}, arrival(2)={:.1}; D(0)={:.1}, D(2)={:.1}",
        arrival.eval(0.0).unwrap(),
        arrival.eval(2.0).unwrap(),
        diameter.eval(0.0).unwrap(),
        diameter.eval(2.0).unwrap()
    );
}
