//! Explores asymmetric source/sink distributions — named by the paper's
//! conclusions (§VII) as a direction of interest: how does the benefit
//! of repeater insertion change when only a few terminals can drive the
//! bus?
//!
//! Fewer sources mean fewer direction conflicts, so repeaters can commit
//! to the dominant signal direction and the achievable diameter
//! reduction grows.
//!
//! Run with: `cargo run --release -p msrnet-bench --bin asymmetry`

use msrnet_core::{optimize, MsriOptions};
use msrnet_netgen::{table1, ExperimentNet};
use msrnet_rng::rngs::StdRng;
use msrnet_rng::SeedableRng;

fn main() {
    let params = table1();
    let n = 10usize;
    let trials = 5u64;
    println!("Asymmetric source/sink distributions ({n}-pin nets, {trials} seeds)");
    println!("--------------------------------------------------------------------");
    println!(
        "{:>8} | {:>14} | {:>14} | {:>12}",
        "sources", "base ARD (ps)", "best ARD (ps)", "reduction"
    );
    println!("--------------------------------------------------------------------");
    for n_sources in [1usize, 2, 5, 10] {
        let mut base = 0.0;
        let mut best = 0.0;
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(4000 + seed);
            let exp = ExperimentNet::random_asymmetric(&mut rng, n, n_sources, &params)
                .expect("valid net");
            let net = exp.with_insertion_points(800.0);
            let lib = [params.repeater(1.0)];
            let drivers = params.fixed_driver_menu(&net);
            let curve = optimize(
                &net,
                exp.source_terminal(),
                &lib,
                &drivers,
                &MsriOptions::default(),
            )
            .expect("optimize");
            base += curve.min_cost().ard;
            best += curve.best_ard().ard;
        }
        println!(
            "{:>8} | {:>14.1} | {:>14.1} | {:>11.1}%",
            n_sources,
            base / trials as f64,
            best / trials as f64,
            100.0 * (1.0 - best / base)
        );
    }
    println!("--------------------------------------------------------------------");
    println!("the same seeds are reused across rows, so rows differ only in how");
    println!("many of the ten terminals can drive.");
}
