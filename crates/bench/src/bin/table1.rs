//! Reproduces paper Table I: the technology parameters used by every
//! experiment. (See DESIGN.md: the paper's exact numbers are not legible
//! in the source text; these are representative same-era values, and all
//! Table II results are normalized ratios.)
//!
//! Run with: `cargo run --release -p msrnet-bench --bin table1`

use msrnet_netgen::table1;

fn main() {
    let p = table1();
    println!("Table I — technology parameters");
    println!("================================================================");
    println!("wire resistance r          : {:>8.4} Ω/µm", p.tech.unit_res);
    println!(
        "wire capacitance c         : {:>8.4} fF/µm",
        p.tech.unit_cap * 1000.0
    );
    println!("1X buffer intrinsic delay  : {:>8.1} ps", p.buf_1x.intrinsic);
    println!("1X buffer output resistance: {:>8.1} Ω", p.buf_1x.out_res);
    println!("1X buffer input capacitance: {:>8.3} pF", p.buf_1x.in_cap);
    println!("1X buffer cost             : {:>8.1}", p.buf_1x.cost);
    println!("previous-stage resistance  : {:>8.1} Ω", p.prev_stage_res);
    println!("subsequent-stage cap       : {:>8.2} pF", p.next_stage_cap);
    println!("placement grid             : {:>8.0} µm square", p.grid);
    println!();
    println!("kX buffer rule (paper §VI): cost k, resistance R/k, capacitance k·0.05 pF");
    let r = p.repeater(1.0);
    println!(
        "bidirectional repeater = pair of 1X buffers: cost {}, per-side cap {} pF",
        r.cost, r.cap_a
    );
    let d = p.driver_option(1.0, 1.0);
    println!(
        "terminal driver (1X/1X): cost {}, arrival extra {:.0} ps, downstream extra {:.0} ps",
        d.cost, d.arrival_extra, d.downstream_extra
    );
}
