//! Validates the paper's contribution 2 empirically: computing the ARD
//! in linear time (Fig. 2) versus the naive one-traversal-per-source
//! baseline. As the number of terminals grows, the naive method scales
//! as O(n²) while Fig. 2 stays O(n); both must agree on the value.
//!
//! Run with: `cargo run --release -p msrnet-bench --bin ard_scaling`

use std::time::Instant;

use msrnet_core::ard::{ard_linear, ard_naive};
use msrnet_netgen::{table1, ExperimentNet};
use msrnet_rctree::{Assignment, Orientation, TerminalId};
use msrnet_rng::rngs::StdRng;
use msrnet_rng::{Rng, SeedableRng};

fn main() {
    let params = table1();
    println!("ARD computation scaling: linear-time (Fig. 2) vs per-source naive");
    println!("------------------------------------------------------------------------");
    println!(
        "{:>6} {:>8} | {:>12} | {:>12} | {:>8} | {:>10}",
        "pins", "vertices", "linear", "naive", "ratio", "ARD agree"
    );
    println!("------------------------------------------------------------------------");
    for n in [10usize, 20, 50, 100, 200, 400] {
        let mut rng = StdRng::seed_from_u64(n as u64);
        // MST routing for large nets: the Steiner refinement is not the
        // subject of this scaling study.
        let exp = if n <= 50 {
            ExperimentNet::random(&mut rng, n, &params).expect("valid net")
        } else {
            ExperimentNet::random_mst(&mut rng, n, &params).expect("valid net")
        };
        let net = exp.with_insertion_points(800.0);
        // Random repeater sprinkle so decoupling paths are exercised.
        let lib = [params.repeater(1.0)];
        let mut asg = Assignment::empty(net.topology.vertex_count());
        for v in net.topology.insertion_points() {
            if rng.gen_bool(0.15) {
                asg.place(v, 0, Orientation::AFacesParent);
            }
        }
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let reps = 20;
        let t = Instant::now();
        let mut fast = f64::NAN;
        for _ in 0..reps {
            fast = ard_linear(&net, &rooted, &lib, &asg).ard;
        }
        let linear_time = t.elapsed() / reps;
        let t = Instant::now();
        let mut slow = f64::NAN;
        for _ in 0..reps {
            slow = ard_naive(&net, &rooted, &lib, &asg).ard;
        }
        let naive_time = t.elapsed() / reps;
        println!(
            "{:>6} {:>8} | {:>12?} | {:>12?} | {:>7.1}x | {:>10}",
            n,
            net.topology.vertex_count(),
            linear_time,
            naive_time,
            naive_time.as_secs_f64() / linear_time.as_secs_f64(),
            if (fast - slow).abs() < 1e-6 { "yes" } else { "NO" }
        );
        assert!((fast - slow).abs() < 1e-6, "algorithms disagree");
    }
    println!("------------------------------------------------------------------------");
    println!("expected shape: the ratio grows roughly linearly with the terminal");
    println!("count — the ARD is no harder than an RC-radius (paper §III).");
}
