//! Multisource topology synthesis study (paper §VII): for each random
//! terminal set, several candidate routing trees are generated — the
//! MST + 1-Steiner heuristic and P-Tree interval DPs over different
//! terminal permutations — then each is judged by the **ARD after
//! optimal repeater insertion**. Reports how often the timing-best
//! topology differs from the shortest one.
//!
//! Run with: `cargo run --release -p msrnet-bench --bin topology_compare`

use msrnet_core::{optimize, MsriOptions};
use msrnet_netgen::{random_points, table1};
use msrnet_rctree::{NetBuilder, TerminalId};
use msrnet_steiner::{nn_tour, ptree_topology, steiner_tree, two_opt, SteinerTopology};
use msrnet_rng::rngs::StdRng;
use msrnet_rng::SeedableRng;

fn main() {
    let params = table1();
    let n = 7usize;
    let trials = 8u64;
    println!("Multisource topology synthesis ({n}-pin nets, {trials} seeds):");
    println!("candidates = 1-Steiner heuristic + 4 P-Tree permutations,");
    println!("judged by post-repeater-insertion ARD.");
    println!("--------------------------------------------------------------------");
    println!(
        "{:>5} | {:>12} {:>12} | {:>12} {:>12} | {:>6}",
        "seed", "short wire", "its ARD", "best ARD", "its wire", "same?"
    );
    println!("--------------------------------------------------------------------");
    let mut diverged = 0;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(6000 + seed);
        let pts = random_points(&mut rng, n, params.grid);
        let mut candidates: Vec<SteinerTopology> = vec![steiner_tree(&pts)];
        for start in 0..4 {
            let order = two_opt(&pts, nn_tour(&pts, start));
            candidates.push(ptree_topology(&pts, &order));
        }
        let mut evaluated: Vec<(f64, f64)> = Vec::new(); // (wirelength, best ARD)
        for topo in &candidates {
            let mut b = NetBuilder::new(params.tech);
            let mut vids = Vec::new();
            for (i, &p) in topo.points.iter().enumerate() {
                if i < topo.terminal_count {
                    vids.push(b.terminal(p, params.bidirectional_terminal()));
                } else {
                    vids.push(b.steiner(p));
                }
            }
            for &(x, y) in &topo.edges {
                b.wire(vids[x], vids[y]);
            }
            let net = b
                .build()
                .expect("valid topology")
                .normalized()
                .with_insertion_points(800.0);
            let curve = optimize(
                &net,
                TerminalId(0),
                &[params.repeater(1.0)],
                &params.fixed_driver_menu(&net),
                &MsriOptions::default(),
            )
            .expect("optimize");
            evaluated.push((net.topology.total_wirelength(), curve.best_ard().ard));
        }
        let shortest = evaluated
            .iter()
            .cloned()
            .min_by(|a, b| a.0.total_cmp(&b.0))
            .expect("nonempty");
        let fastest = evaluated
            .iter()
            .cloned()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("nonempty");
        let same = (shortest.1 - fastest.1).abs() < 1e-6;
        if !same {
            diverged += 1;
        }
        println!(
            "{:>5} | {:>12.0} {:>12.1} | {:>12.1} {:>12.0} | {:>6}",
            seed,
            shortest.0,
            shortest.1,
            fastest.1,
            fastest.0,
            if same { "yes" } else { "NO" }
        );
    }
    println!("--------------------------------------------------------------------");
    println!(
        "timing-best topology differed from the shortest one on {diverged}/{trials} nets —"
    );
    println!("wirelength is not a sufficient objective for multisource routing,");
    println!("motivating the ARD-driven topology search of paper §VII.");
}
