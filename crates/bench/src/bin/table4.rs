//! Reproduces paper Table IV: average optimizer run times on 10-pin and
//! 20-pin nets (the paper reports CPU seconds on a Sun SPARC 10; the
//! claim is tractability, which we reproduce on modern hardware —
//! `cargo bench -p msrnet-bench` gives Criterion-grade numbers for the
//! same workload).
//!
//! Run with: `cargo run --release -p msrnet-bench --bin table4`

use msrnet_bench::table4_row;
use msrnet_netgen::table1;

fn main() {
    let params = table1();
    println!("Table IV — average optimizer run time (10 random nets per row)");
    println!("----------------------------------------------------------------");
    println!(
        "{:>4} | {:>16} | {:>16}",
        "pins", "driver sizing", "repeater insert"
    );
    println!("----------------------------------------------------------------");
    for n in [10usize, 20] {
        let row = table4_row(&params, n, 10, 1000 + n as u64);
        println!(
            "{:>4} | {:>16?} | {:>16?}",
            row.n, row.sizing_time, row.repeater_time
        );
    }
    println!("----------------------------------------------------------------");
    println!("paper reference: seconds-scale on a 1993 workstation; the");
    println!("tractability claim holds (both rows complete in well under a");
    println!("second here, growing mildly from 10 to 20 pins).");
}
