//! Ablation of the pruning machinery (paper §IV-D and §V):
//!
//! * divide-and-conquer MFS (paper Fig. 4, the default),
//! * naive pairwise MFS (same result, more comparisons),
//! * cost-bucketed sorted-sweep MFS (same result, scalar prefilters),
//! * whole-domain-only dominance (no partial-region invalidation —
//!   quantifies the value of *functional* pruning),
//! * approximate sweep at eps = 0.01 (relaxed dominance; frontier within
//!   a (1+eps) factor, not bit-identical).
//!
//! All exact strategies return identical frontiers (verified by the test
//! suite); this binary compares their cost. The second section repeats
//! the ablation on the asymmetric multi-cost library — the
//! Pareto-explosion regime where distinct cost denominations keep joins
//! from merging cost classes — which is where the join cutoffs and the
//! bucketed sweep earn their keep.
//!
//! Run with: `cargo run --release -p msrnet-bench --bin mfs_ablation`

use msrnet_bench::{ablation_run, multicost_asym_library, Instance, SPACING};
use msrnet_core::{MsriOptions, MsriStats, PruningStrategy};
use msrnet_netgen::{table1, TechParams};

const STRATEGIES: [(&str, PruningStrategy); 5] = [
    ("divide-conquer", PruningStrategy::DivideConquer),
    ("naive pairwise", PruningStrategy::Naive),
    ("bucketed sweep", PruningStrategy::Bucketed),
    ("whole-domain only", PruningStrategy::WholeDomainOnly),
    ("approx eps=0.01", PruningStrategy::Approximate { eps: 0.01 }),
];

/// Sums the per-step scalar/PWL prune counters over all DP subroutines.
fn prune_totals(stats: &MsriStats) -> (u64, u64) {
    let steps = [&stats.leaf, &stats.augment, &stats.join, &stats.repeater];
    (
        steps.iter().map(|s| s.scalar_pruned).sum(),
        steps.iter().map(|s| s.pwl_pruned).sum(),
    )
}

fn section(
    title: &str,
    params: &TechParams,
    trials: u64,
    make: impl Fn(u64) -> Instance,
) {
    const RULE: &str =
        "---------------------------------------------------------------------------------------------";
    println!("{title}");
    println!("{RULE}");
    println!(
        "{:<18} | {:>10} | {:>9} | {:>8} | {:>10} | {:>10} | {:>9}",
        "strategy", "avg time", "generated", "peak set", "scalar-prn", "pwl-prn", "surviving"
    );
    println!("{RULE}");
    for (name, strategy) in STRATEGIES {
        let options = MsriOptions {
            pruning: strategy,
            ..MsriOptions::default()
        };
        let mut time = std::time::Duration::ZERO;
        let mut generated = 0u64;
        let mut peak_set = 0usize;
        let mut scalar_pruned = 0u64;
        let mut pwl_pruned = 0u64;
        let mut surviving = 0u64;
        for seed in 0..trials {
            let inst = make(seed);
            let row = ablation_run(&inst, &options);
            time += row.time;
            generated += row.stats.generated;
            peak_set = peak_set.max(row.stats.peak_set());
            let (s, p) = prune_totals(&row.stats);
            scalar_pruned += s;
            pwl_pruned += p;
            surviving += row.stats.surviving;
        }
        println!(
            "{:<18} | {:>10?} | {:>9} | {:>8} | {:>10} | {:>10} | {:>9}",
            name,
            time / trials as u32,
            generated,
            peak_set,
            scalar_pruned,
            pwl_pruned,
            surviving
        );
    }
    println!("{RULE}");
    let _ = params;
}

fn main() {
    let params = table1();
    let trials = 5u64;
    section(
        &format!("Pruning-strategy ablation (20-pin nets, {trials} seeds, symmetric 1X repeater)"),
        &params,
        trials,
        |seed| Instance::random(&params, 20, 3000 + seed, SPACING),
    );
    println!();
    section(
        &format!(
            "Asymmetric multi-cost regime (6-pin nets, {trials} seeds, costs {{3,4,6}})"
        ),
        &params,
        trials,
        |seed| {
            Instance::random(&params, 6, 3000 + seed, 5.0 * SPACING)
                .with_library(multicost_asym_library(&params))
        },
    );
    println!();
    println!("expected shape: whole-domain-only pruning keeps far more candidates");
    println!("alive (larger sets, slower); functional region-wise pruning is what");
    println!("makes the PWL characterization practical (paper §IV-D). In the");
    println!("multi-cost regime the join cutoffs (counted under scalar-prn) kill");
    println!("hopeless products before materialization; the bucketed sweep prunes");
    println!("the same frontier as divide-and-conquer, well ahead of naive pairwise.");
}
