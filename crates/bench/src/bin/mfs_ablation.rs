//! Ablation of the pruning machinery (paper §IV-D and §V):
//!
//! * divide-and-conquer MFS (paper Fig. 4, the default),
//! * naive pairwise MFS (same result, more comparisons),
//! * whole-domain-only dominance (no partial-region invalidation —
//!   quantifies the value of *functional* pruning).
//!
//! All three return identical frontiers (verified by the test suite);
//! this binary compares their cost.
//!
//! Run with: `cargo run --release -p msrnet-bench --bin mfs_ablation`

use msrnet_bench::{ablation_run, Instance, SPACING};
use msrnet_core::{MsriOptions, PruningStrategy};
use msrnet_netgen::table1;

fn main() {
    let params = table1();
    let trials = 5u64;
    println!("Pruning-strategy ablation (20-pin nets, {trials} seeds, repeater mode)");
    println!("---------------------------------------------------------------------------");
    println!(
        "{:<18} | {:>10} | {:>10} | {:>12} | {:>10}",
        "strategy", "avg time", "generated", "max set", "surviving"
    );
    println!("---------------------------------------------------------------------------");
    for (name, strategy) in [
        ("divide-conquer", PruningStrategy::DivideConquer),
        ("naive pairwise", PruningStrategy::Naive),
        ("whole-domain only", PruningStrategy::WholeDomainOnly),
    ] {
        let options = MsriOptions {
            pruning: strategy,
            ..MsriOptions::default()
        };
        let mut time = std::time::Duration::ZERO;
        let mut generated = 0u64;
        let mut max_set = 0usize;
        let mut surviving = 0u64;
        for seed in 0..trials {
            let inst = Instance::random(&params, 20, 3000 + seed, SPACING);
            let row = ablation_run(&inst, &options);
            time += row.time;
            generated += row.stats.generated;
            max_set = max_set.max(row.stats.max_set_size);
            surviving += row.stats.surviving;
        }
        println!(
            "{:<18} | {:>10?} | {:>10} | {:>12} | {:>10}",
            name,
            time / trials as u32,
            generated,
            max_set,
            surviving
        );
    }
    println!("---------------------------------------------------------------------------");
    println!("expected shape: whole-domain-only pruning keeps far more candidates");
    println!("alive (larger sets, slower); functional region-wise pruning is what");
    println!("makes the PWL characterization practical (paper §IV-D).");
}
