//! Ablation of the pruning machinery (paper §IV-D and §V):
//!
//! * divide-and-conquer MFS (paper Fig. 4, the default),
//! * naive pairwise MFS (same result, more comparisons),
//! * cost-bucketed sorted-sweep MFS (same result, scalar prefilters),
//! * whole-domain-only dominance (no partial-region invalidation —
//!   quantifies the value of *functional* pruning),
//! * approximate sweep at eps = 0.01 (relaxed dominance; frontier within
//!   a (1+eps) factor, not bit-identical).
//!
//! All exact strategies return identical frontiers (verified by the test
//! suite); this binary compares their cost. The second section repeats
//! the ablation on the asymmetric multi-cost library — the
//! Pareto-explosion regime where distinct cost denominations keep joins
//! from merging cost classes — which is where the join cutoffs and the
//! bucketed sweep earn their keep. The third section ablates the
//! *predictive* pre-bounds (Li–Shi bound-before-materialize) against
//! block pruning alone: same frontier bits, fewer candidates ever built.
//!
//! Run with: `cargo run --release -p msrnet-bench --bin mfs_ablation`
//! Pass `--json PATH` to also write the predictive-section candidate
//! counts as a machine-readable JSON artifact (consumed by CI).

use msrnet_bench::{ablation_run, multicost_asym_library, Instance, SPACING};
use msrnet_core::{MsriOptions, MsriStats, PruningStrategy};
use msrnet_netgen::{table1, TechParams};

const STRATEGIES: [(&str, PruningStrategy); 5] = [
    ("divide-conquer", PruningStrategy::DivideConquer),
    ("naive pairwise", PruningStrategy::Naive),
    ("bucketed sweep", PruningStrategy::Bucketed),
    ("whole-domain only", PruningStrategy::WholeDomainOnly),
    ("approx eps=0.01", PruningStrategy::Approximate { eps: 0.01 }),
];

/// Sums the per-step scalar/PWL prune counters over all DP subroutines.
fn prune_totals(stats: &MsriStats) -> (u64, u64) {
    let steps = [&stats.leaf, &stats.augment, &stats.join, &stats.repeater];
    (
        steps.iter().map(|s| s.scalar_pruned).sum(),
        steps.iter().map(|s| s.pwl_pruned).sum(),
    )
}

fn section(
    title: &str,
    params: &TechParams,
    trials: u64,
    make: impl Fn(u64) -> Instance,
) {
    const RULE: &str =
        "---------------------------------------------------------------------------------------------";
    println!("{title}");
    println!("{RULE}");
    println!(
        "{:<18} | {:>10} | {:>9} | {:>8} | {:>10} | {:>10} | {:>9}",
        "strategy", "avg time", "generated", "peak set", "scalar-prn", "pwl-prn", "surviving"
    );
    println!("{RULE}");
    for (name, strategy) in STRATEGIES {
        let options = MsriOptions {
            pruning: strategy,
            ..MsriOptions::default()
        };
        let mut time = std::time::Duration::ZERO;
        let mut generated = 0u64;
        let mut peak_set = 0usize;
        let mut scalar_pruned = 0u64;
        let mut pwl_pruned = 0u64;
        let mut surviving = 0u64;
        for seed in 0..trials {
            let inst = make(seed);
            let row = ablation_run(&inst, &options);
            time += row.time;
            generated += row.stats.generated;
            peak_set = peak_set.max(row.stats.peak_set());
            let (s, p) = prune_totals(&row.stats);
            scalar_pruned += s;
            pwl_pruned += p;
            surviving += row.stats.surviving;
        }
        println!(
            "{:<18} | {:>10?} | {:>9} | {:>8} | {:>10} | {:>10} | {:>9}",
            name,
            time / trials as u32,
            generated,
            peak_set,
            scalar_pruned,
            pwl_pruned,
            surviving
        );
    }
    println!("{RULE}");
    let _ = params;
}

/// One predictive-vs-block comparison row, accumulated over the trial
/// seeds of a regime.
struct PredictiveRow {
    regime: &'static str,
    mode: &'static str,
    time: std::time::Duration,
    generated: u64,
    prebound_rejected: u64,
    materialized_avoided: u64,
    peak_set: usize,
    surviving: u64,
}

/// Ablates the predictive pre-bounds against block pruning alone: both
/// runs use the default exact strategy, so the frontier is bit-identical
/// and the only difference is how many candidates were ever built.
fn predictive_section(
    trials: u64,
    regimes: &[(&'static str, &dyn Fn(u64) -> Instance)],
) -> Vec<PredictiveRow> {
    const RULE: &str =
        "---------------------------------------------------------------------------------------------";
    println!("Predictive pre-bounds vs block pruning (exact frontier, identical bits)");
    println!("{RULE}");
    println!(
        "{:<26} | {:<10} | {:>10} | {:>9} | {:>8} | {:>8} | {:>7}",
        "regime", "mode", "avg time", "generated", "pre-rej", "avoided", "peak"
    );
    println!("{RULE}");
    let mut rows = Vec::new();
    for (regime, make) in regimes {
        for (mode, predictive) in [("predictive", true), ("block-only", false)] {
            let options = MsriOptions {
                predictive,
                ..MsriOptions::default()
            };
            let mut row = PredictiveRow {
                regime,
                mode,
                time: std::time::Duration::ZERO,
                generated: 0,
                prebound_rejected: 0,
                materialized_avoided: 0,
                peak_set: 0,
                surviving: 0,
            };
            for seed in 0..trials {
                let inst = make(seed);
                let run = ablation_run(&inst, &options);
                row.time += run.time;
                row.generated += run.stats.generated;
                row.peak_set = row.peak_set.max(run.stats.peak_set());
                row.surviving += run.stats.surviving;
                let steps = [
                    &run.stats.leaf,
                    &run.stats.augment,
                    &run.stats.join,
                    &run.stats.repeater,
                ];
                row.prebound_rejected += steps.iter().map(|s| s.prebound_rejected).sum::<u64>();
                row.materialized_avoided +=
                    steps.iter().map(|s| s.materialized_avoided).sum::<u64>();
            }
            println!(
                "{:<26} | {:<10} | {:>10?} | {:>9} | {:>8} | {:>8} | {:>7}",
                row.regime,
                row.mode,
                row.time / trials as u32,
                row.generated,
                row.prebound_rejected,
                row.materialized_avoided,
                row.peak_set
            );
            rows.push(row);
        }
    }
    println!("{RULE}");
    rows
}

/// Serializes the predictive-section rows as the CI candidate-count
/// artifact.
fn predictive_json(trials: u64, rows: &[PredictiveRow]) -> String {
    let mut out = String::from("{\n  \"bench\": \"mfs_ablation/predictive\",\n");
    out.push_str(&format!("  \"trials\": {trials},\n  \"rows\": [\n"));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"regime\": \"{}\", \"mode\": \"{}\", \"avg_ns\": {}, \"generated\": {}, \
             \"prebound_rejected\": {}, \"materialized_avoided\": {}, \"peak_set\": {}, \
             \"surviving\": {}}}{}\n",
            r.regime,
            r.mode,
            (r.time.as_nanos() / u128::from(trials)),
            r.generated,
            r.prebound_rejected,
            r.materialized_avoided,
            r.peak_set,
            r.surviving,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let params = table1();
    let trials = 5u64;
    section(
        &format!("Pruning-strategy ablation (20-pin nets, {trials} seeds, symmetric 1X repeater)"),
        &params,
        trials,
        |seed| Instance::random(&params, 20, 3000 + seed, SPACING),
    );
    println!();
    section(
        &format!(
            "Asymmetric multi-cost regime (6-pin nets, {trials} seeds, costs {{3,4,6}})"
        ),
        &params,
        trials,
        |seed| {
            Instance::random(&params, 6, 3000 + seed, 5.0 * SPACING)
                .with_library(multicost_asym_library(&params))
        },
    );
    println!();
    let make_sym = |seed: u64| Instance::random(&params, 20, 3000 + seed, SPACING);
    let make_multi = |seed: u64| {
        Instance::random(&params, 8, 3000 + seed, 4.0 * SPACING)
            .with_library(multicost_asym_library(&params))
    };
    let regimes: [(&'static str, &dyn Fn(u64) -> Instance); 2] = [
        ("20-pin symmetric 1X", &make_sym),
        ("8-pin multi-cost asym", &make_multi),
    ];
    let rows = predictive_section(trials, &regimes);
    if let Some(path) = json_path {
        let json = predictive_json(trials, &rows);
        std::fs::write(&path, json).expect("write --json artifact");
        eprintln!("wrote {path}");
    }
    println!();
    println!("expected shape: whole-domain-only pruning keeps far more candidates");
    println!("alive (larger sets, slower); functional region-wise pruning is what");
    println!("makes the PWL characterization practical (paper §IV-D). In the");
    println!("multi-cost regime the join cutoffs (counted under scalar-prn) kill");
    println!("hopeless products before materialization; the bucketed sweep prunes");
    println!("the same frontier as divide-and-conquer, well ahead of naive pairwise.");
}
