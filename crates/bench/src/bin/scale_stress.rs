//! Scaling study beyond the paper's 20-pin evaluation: optimizer run
//! time and candidate-set statistics on 10–40-pin nets, showing the DP
//! remains practical well past the published sizes (the pseudopolynomial
//! bound of §V in action).
//!
//! Run with: `cargo run --release -p msrnet-bench --bin scale_stress`

use std::time::Instant;

use msrnet_bench::{Instance, SPACING};
use msrnet_core::MsriOptions;
use msrnet_netgen::table1;

fn main() {
    let params = table1();
    let trials = 3u64;
    println!("Scaling beyond the paper ({trials} seeds per row, repeater mode)");
    println!("--------------------------------------------------------------------------");
    println!(
        "{:>5} | {:>8} | {:>12} | {:>10} | {:>10} | {:>9}",
        "pins", "avg ips", "avg time", "generated", "max set", "max segs"
    );
    println!("--------------------------------------------------------------------------");
    for n in [10usize, 20, 30, 40] {
        let mut time = std::time::Duration::ZERO;
        let mut ips = 0usize;
        let mut generated = 0u64;
        let mut max_set = 0usize;
        let mut max_segs = 0usize;
        for seed in 0..trials {
            let inst = Instance::random(&params, n, 9000 + seed, SPACING);
            ips += inst.net.topology.insertion_point_count();
            let t = Instant::now();
            let curve = inst.run_repeaters(&MsriOptions::default());
            time += t.elapsed();
            let stats = curve.stats();
            generated += stats.generated;
            max_set = max_set.max(stats.max_set_size);
            max_segs = max_segs.max(stats.max_segments);
        }
        println!(
            "{:>5} | {:>8.1} | {:>12?} | {:>10} | {:>10} | {:>9}",
            n,
            ips as f64 / trials as f64,
            time / trials as u32,
            generated / trials,
            max_set,
            max_segs
        );
    }
    println!("--------------------------------------------------------------------------");
    println!("PWL segment counts stay tiny (the paper's footnote 13 worst case");
    println!("does not materialize); candidate sets and run time grow gently.");
}
