//! Three delay models on the same optimized solutions: Elmore (the
//! optimizer's model), D2M (second-moment metric) and a backward-Euler
//! transient simulation (the numerical oracle). Confirms the classical
//! picture — Elmore is a safe upper bound, the simulated 50 % delay sits
//! below it, and the Elmore-optimized frontier ordering survives under
//! the numerical model.
//!
//! Run with: `cargo run --release -p msrnet-bench --bin elmore_vs_spice`

use msrnet_bench::{Instance, SPACING};
use msrnet_core::exhaustive::apply_terminal_choices;
use msrnet_core::MsriOptions;
use msrnet_netgen::table1;
use msrnet_rctree::transient::{simulated_ard, TransientOptions};

fn main() {
    let params = table1();
    let trials = 3u64;
    let topts = TransientOptions::default();
    println!("Elmore vs transient simulation on optimized frontiers");
    println!("(8-pin nets, {trials} seeds; both ends of each frontier)");
    println!("--------------------------------------------------------------------------------");
    println!(
        "{:>5} | {:>10} | {:>13} {:>13} {:>7} | {:>10}",
        "seed", "solution", "elmore (ps)", "simulated", "ratio", "ordering"
    );
    println!("--------------------------------------------------------------------------------");
    for seed in 0..trials {
        let inst = Instance::random(&params, 8, 4200 + seed, SPACING);
        let curve = inst.run_repeaters(&MsriOptions::default());
        let rooted = inst.net.rooted_at_terminal(inst.root);
        let mut sims = Vec::new();
        for (label, point) in [("min-cost", curve.min_cost()), ("best-ARD", curve.best_ard())] {
            let (scenario, _) =
                apply_terminal_choices(&inst.net, &inst.fixed_drivers, &point.terminal_choices);
            let sim = simulated_ard(&scenario, &rooted, &inst.library, &point.assignment, &topts);
            assert!(
                sim <= point.ard * 1.001,
                "Elmore must upper-bound the simulation ({sim} vs {})",
                point.ard
            );
            sims.push(sim);
            println!(
                "{:>5} | {:>10} | {:>13.1} {:>13.1} {:>6.2} |",
                seed,
                label,
                point.ard,
                sim,
                sim / point.ard
            );
        }
        let preserved = sims[1] < sims[0];
        println!(
            "      |            |                                     | {:>10}",
            if preserved { "preserved" } else { "FLIPPED" }
        );
        assert!(
            preserved,
            "the optimized solution must also win under simulation"
        );
    }
    println!("--------------------------------------------------------------------------------");
    println!("simulated/Elmore ratios land in the classical 0.5–0.9 band (more");
    println!("distributed nets sit lower); the optimizer's ranking is preserved");
    println!("under the numerical model on every instance.");
}
