//! Reproduces paper Fig. 11: optimization of an eight-pin net (the
//! paper's example has ≈19.6 kµm of total wire). Shows the unoptimized
//! topology, a two-repeater solution and a five-repeater solution, each
//! with its RC-diameter and critical source → sink pair — illustrating
//! how the algorithm rebalances the critical path as buffering resources
//! grow.
//!
//! Run with: `cargo run --release -p msrnet-bench --bin fig11`

use msrnet_bench::{Instance, SPACING};
use msrnet_core::ard::ard_linear;
use msrnet_core::exhaustive::apply_terminal_choices;
use msrnet_core::{MsriOptions, TradeoffPoint};
use msrnet_netgen::table1;
use msrnet_rctree::VertexId;

fn main() {
    let params = table1();
    // Pick a seeded 8-pin net whose wirelength is close to the paper's
    // 19.6 kµm example and whose frontier contains 2- and 5-repeater
    // solutions.
    let (inst, curve) = (0..500u64)
        .find_map(|seed| {
            let inst = Instance::random(&params, 8, seed, SPACING);
            let wl = inst.net.topology.total_wirelength();
            if !(18_500.0..=20_500.0).contains(&wl) {
                return None;
            }
            let curve = inst.run_repeaters(&MsriOptions::default());
            let has = |k| curve.points().iter().any(|p| p.assignment.placed_count() == k);
            (has(2) && has(5)).then_some((inst, curve))
        })
        .expect("a suitable seed exists");

    println!(
        "Fig. 11 — eight-pin net, total wirelength {:.1} kµm, {} insertion points",
        inst.net.topology.total_wirelength() / 1000.0,
        inst.net.topology.insertion_point_count()
    );
    println!("terminal positions:");
    for t in inst.net.terminal_ids() {
        let v = inst.net.topology.terminal_vertex(t);
        let p = inst.net.topology.position(v);
        println!("  {t}: ({:>6.0}, {:>6.0})", p.x, p.y);
    }

    let rooted = inst.net.rooted_at_terminal(inst.root);
    let show = |label: &str, point: &TradeoffPoint| {
        let (scenario, _) =
            apply_terminal_choices(&inst.net, &inst.fixed_drivers, &point.terminal_choices);
        let report = ard_linear(&scenario, &rooted, &inst.library, &point.assignment);
        let (src, snk) = report.critical.expect("feasible");
        println!("\n({label}) {} repeaters — RC-diameter {:.1} ps, critical {src} → {snk}",
            point.assignment.placed_count(), report.ard);
        for (v, placed) in point.assignment.placements() {
            let p = inst.net.topology.position(v);
            println!(
                "    repeater '{}' at ({:>6.0}, {:>6.0}) oriented {}",
                inst.library[placed.repeater].name, p.x, p.y, placed.orientation
            );
        }
        let _ = VertexId(0);
    };

    let by_count = |k: usize| {
        curve
            .points()
            .iter()
            .find(|p| p.assignment.placed_count() == k)
            .expect("frontier point present")
    };
    show("a", by_count(0));
    show("b", by_count(2));
    show("c", by_count(5));

    // Emit the three panels as SVG files, the visual counterpart of the
    // paper's figure.
    for (label, k) in [("a", 0usize), ("b", 2), ("c", 5)] {
        let point = by_count(k);
        let svg = msrnet_cli::svg::render_svg(
            &inst.net,
            Some(&point.assignment),
            &msrnet_cli::svg::RenderOptions::default(),
        );
        let path = format!("fig11_{label}.svg");
        match std::fs::write(&path, svg) {
            Ok(()) => println!("\nwrote {path} ({k} repeaters)"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }

    println!("\nfull frontier:");
    println!("{curve}");
    println!("note how the critical source/sink pair shifts as repeaters are");
    println!("added — the algorithm balances the requirements of all paths");
    println!("(paper Fig. 11 caption).");
}
