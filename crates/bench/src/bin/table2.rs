//! Reproduces paper Table II: driver sizing vs repeater insertion on ten
//! random nets each of 10 and 20 terminals (1 cm × 1 cm grid, ≤800 µm
//! insertion spacing, all terminals both source and sink, AT = q = 0).
//! Columns 3–7 are normalized to the min-cost solution (1X drivers, no
//! repeaters), exactly as in the paper.
//!
//! Run with: `cargo run --release -p msrnet-bench --bin table2`

use msrnet_bench::table2_row;
use msrnet_netgen::table1;

fn main() {
    let params = table1();
    println!("Table II — sizing vs repeater insertion (10 random nets per row,");
    println!("values normalized to the min-cost / no-insertion solution)");
    println!("----------------------------------------------------------------------------");
    println!(
        "{:>4} {:>8} | {:>10} {:>10} | {:>12} | {:>10} {:>10}",
        "pins", "avg ips", "size diam", "size cost", "rep cost@sd", "rep diam", "rep cost"
    );
    println!("----------------------------------------------------------------------------");
    for n in [10usize, 20] {
        let row = table2_row(&params, n, 10, 1000 + n as u64);
        println!(
            "{:>4} {:>8.1} | {:>10.3} {:>10.3} | {:>12.3} | {:>10.3} {:>10.3}",
            row.n,
            row.avg_insertion_points,
            row.sizing_diameter,
            row.sizing_cost,
            row.repeater_cost_at_sizing_diameter,
            row.repeater_diameter,
            row.repeater_cost
        );
    }
    println!("----------------------------------------------------------------------------");
    println!("paper reference (TCAD'99 Table II): 10 pins — sizing diam 0.73,");
    println!("repeater diam 0.55; repeater cost at sizing diameter substantially");
    println!("below sizing cost. Shapes, not absolute values, are the claim.");
}
