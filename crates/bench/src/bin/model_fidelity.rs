//! Delay-model sensitivity study. The paper (§II footnote 7) stresses
//! that the ARD is well defined for any delay model; the optimizer uses
//! Elmore (like all the single-source work it builds on). This binary
//! re-evaluates Elmore-optimized solutions under the second-moment
//! **D2M** metric and checks that the optimization conclusions survive:
//!
//! * Elmore upper-bounds D2M on every source/sink pair;
//! * the Elmore-optimal frontier stays monotone under D2M;
//! * the repeater-vs-unbuffered improvement is as large (or larger)
//!   under the more accurate metric.
//!
//! Run with: `cargo run --release -p msrnet-bench --bin model_fidelity`

use msrnet_bench::{Instance, SPACING};
use msrnet_core::exhaustive::apply_terminal_choices;
use msrnet_core::MsriOptions;
use msrnet_netgen::table1;
use msrnet_rctree::moments::moments_from;
use msrnet_rctree::{Assignment, Net, Repeater, TerminalId};

/// D2M-evaluated ARD of a fixed assignment: max over source/sink pairs
/// of `AT(u) + D2M(u→w) + q(w)`.
fn ard_d2m(net: &Net, library: &[Repeater], assignment: &Assignment) -> f64 {
    let rooted = net.rooted_at_terminal(TerminalId(0));
    let mut worst = f64::NEG_INFINITY;
    for u in net.terminal_ids() {
        if !net.terminal(u).is_source() {
            continue;
        }
        let m = moments_from(net, &rooted, library, assignment, u);
        for w in net.terminal_ids() {
            if w == u || !net.terminal(w).is_sink() {
                continue;
            }
            let wv = net.topology.terminal_vertex(w);
            worst = worst.max(
                net.terminal(u).arrival + m.d2m(wv) + net.terminal(w).downstream,
            );
        }
    }
    worst
}

fn main() {
    let params = table1();
    let trials = 5u64;
    println!("Delay-model sensitivity: Elmore-optimized frontiers under D2M");
    println!("(10-pin nets, {trials} seeds)");
    println!("---------------------------------------------------------------------");
    println!(
        "{:>5} | {:>11} {:>11} | {:>11} {:>11} | {:>9}",
        "seed", "elmore base", "elm best", "d2m base", "d2m best", "monotone?"
    );
    println!("---------------------------------------------------------------------");
    for seed in 0..trials {
        let inst = Instance::random(&params, 10, 8000 + seed, SPACING);
        let curve = inst.run_repeaters(&MsriOptions::default());
        // Re-evaluate each frontier point under D2M.
        let mut d2m_vals = Vec::new();
        for p in curve.points() {
            let (scenario, _) =
                apply_terminal_choices(&inst.net, &inst.fixed_drivers, &p.terminal_choices);
            let v = ard_d2m(&scenario, &inst.library, &p.assignment);
            assert!(
                v <= p.ard + 1e-6,
                "D2M must not exceed the Elmore ARD ({v} vs {})",
                p.ard
            );
            d2m_vals.push(v);
        }
        let monotone = d2m_vals.windows(2).all(|w| w[1] <= w[0] + 1e-6);
        println!(
            "{:>5} | {:>11.1} {:>11.1} | {:>11.1} {:>11.1} | {:>9}",
            seed,
            curve.min_cost().ard,
            curve.best_ard().ard,
            d2m_vals.first().expect("nonempty"),
            d2m_vals.last().expect("nonempty"),
            if monotone { "yes" } else { "mostly" }
        );
    }
    println!("---------------------------------------------------------------------");
    println!("Elmore bounds D2M on every point; the optimized ordering survives");
    println!("re-evaluation under the second-moment metric (occasional near-ties");
    println!("may reorder within tolerance — 'mostly').");
}
