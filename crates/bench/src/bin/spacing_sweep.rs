//! Reproduces the paper's footnote 15: denser insertion-point spacing
//! (down to ≈300 µm) improves solution quality only marginally while
//! increasing run time. Sweeps spacing ∈ {800, 450, 300} µm on the same
//! 20-pin nets.
//!
//! Run with: `cargo run --release -p msrnet-bench --bin spacing_sweep`

use std::time::Instant;

use msrnet_bench::Instance;
use msrnet_core::MsriOptions;
use msrnet_netgen::table1;

fn main() {
    let params = table1();
    let options = MsriOptions::default();
    let trials = 5u64;
    println!("Footnote 15 — insertion-point spacing sweep (20-pin nets, {trials} seeds)");
    println!("----------------------------------------------------------------------");
    println!(
        "{:>12} | {:>8} | {:>14} | {:>14} | {:>10}",
        "spacing (µm)", "avg ips", "best ARD (ps)", "vs 800 µm", "avg time"
    );
    println!("----------------------------------------------------------------------");
    let mut baseline: Option<f64> = None;
    for spacing in [800.0, 450.0, 300.0] {
        let mut ips = 0.0;
        let mut ard = 0.0;
        let mut time = std::time::Duration::ZERO;
        for seed in 0..trials {
            let inst = Instance::random(&params, 20, 2000 + seed, spacing);
            ips += inst.net.topology.insertion_point_count() as f64;
            let t = Instant::now();
            let curve = inst.run_repeaters(&options);
            time += t.elapsed();
            ard += curve.best_ard().ard;
        }
        let t = trials as f64;
        let avg_ard = ard / t;
        let rel = baseline.map(|b| avg_ard / b).unwrap_or(1.0);
        baseline.get_or_insert(avg_ard);
        println!(
            "{:>12.0} | {:>8.1} | {:>14.1} | {:>13.3}x | {:>10?}",
            spacing,
            ips / t,
            avg_ard,
            rel,
            time / trials as u32
        );
    }
    println!("----------------------------------------------------------------------");
    println!("expected shape: denser spacing buys only a few percent of diameter at");
    println!("a multiple of the run time (paper: 'the improvement in solution");
    println!("quality versus wider spacing of insertion points was small').");
}
