//! Reproduces paper Table III: the fastest driver-sizing and repeater
//! solutions on six sample topologies (cost in equivalent 1X buffers).
//!
//! Run with: `cargo run --release -p msrnet-bench --bin table3`

use msrnet_bench::table3_row;
use msrnet_netgen::table1;

fn main() {
    let params = table1();
    println!("Table III — fastest sizing vs fastest repeater insertion on six");
    println!("sample topologies (diameter in ps, cost in 1X-buffer equivalents)");
    println!("--------------------------------------------------------------------------");
    println!(
        "{:>4} {:>6} {:>10} | {:>11} {:>9} | {:>11} {:>9} | {:>6}",
        "pins", "seed", "wire (µm)", "size diam", "cost", "rep diam", "cost", "ratio"
    );
    println!("--------------------------------------------------------------------------");
    for (n, seed) in [(8, 11u64), (10, 12), (12, 13), (14, 14), (16, 15), (20, 16)] {
        let row = table3_row(&params, n, seed);
        println!(
            "{:>4} {:>6} {:>10.0} | {:>11.1} {:>9.0} | {:>11.1} {:>9.0} | {:>6.2}",
            row.n,
            row.seed,
            row.wirelength,
            row.sizing.0,
            row.sizing.1,
            row.repeaters.0,
            row.repeaters.1,
            row.repeaters.0 / row.sizing.0
        );
    }
    println!("--------------------------------------------------------------------------");
    println!("shape check: repeater diameter beats sizing diameter on every sample");
    println!("(ratio < 1), matching the paper's Table III.");
}
