//! All three knobs at once: the DP optimizes driver sizing, repeater
//! insertion and wire sizing *simultaneously* (paper §V notes the
//! technique subsumes driver sizing; §VII adds wire sizing). This study
//! compares single knobs against the combined optimization on the §VI
//! workload.
//!
//! Run with: `cargo run --release -p msrnet-bench --bin combined_knobs`

use msrnet_bench::Instance;
use msrnet_core::{optimize_with_wires, MsriOptions, WireOption};
use msrnet_netgen::table1;

fn main() {
    let params = table1();
    let trials = 3u64;
    let widths = [
        WireOption::unit(),
        WireOption::width("2W", 2.0, 0.0005),
    ];
    let unit = [WireOption::unit()];
    let options = MsriOptions::default();
    println!("Single knobs vs simultaneous optimization (6-pin nets, {trials} seeds,");
    println!("driver sizes {{1X, 3X}} per side — richer menus explode the joint");
    println!("frontier combinatorially without changing the story)");
    println!("best achievable ARD (ps) per configuration:");
    println!("----------------------------------------------------------------------------");
    println!(
        "{:>5} | {:>9} | {:>9} | {:>9} | {:>11} | {:>11}",
        "seed", "sizing", "repeaters", "wires", "rep+sizing", "all three"
    );
    println!("----------------------------------------------------------------------------");
    for seed in 0..trials {
        // Coarser insertion spacing than the §VI default: wire sizing
        // multiplies candidates per segment, and the joint frontier is
        // the object of study, not segment granularity.
        let inst = Instance::random(&params, 6, 9500 + seed, 1600.0);
        let sizing_menus = &params.sizing_menu(&inst.net, &[1.0, 3.0]);
        let fixed = &inst.fixed_drivers;
        let lib = &inst.library;
        let run = |lib: &[msrnet_rctree::Repeater],
                   drivers: &msrnet_core::TerminalOptions,
                   wires: &[WireOption]| {
            optimize_with_wires(&inst.net, inst.root, lib, drivers, wires, &options)
                .expect("optimize")
                .best_ard()
                .ard
        };
        let s = run(&[], sizing_menus, &unit);
        let r = run(lib, fixed, &unit);
        let w = run(&[], fixed, &widths);
        let rs = run(lib, sizing_menus, &unit);
        let all = run(lib, sizing_menus, &widths);
        println!(
            "{:>5} | {:>9.1} | {:>9.1} | {:>9.1} | {:>11.1} | {:>11.1}",
            seed, s, r, w, rs, all
        );
        // Simultaneous optimization can never lose to any single knob.
        assert!(rs <= s + 1e-6 && rs <= r + 1e-6);
        assert!(all <= rs + 1e-6 && all <= w + 1e-6);
    }
    println!("----------------------------------------------------------------------------");
    println!("repeater insertion dominates; adding driver sizing on top buys a");
    println!("further margin (the repeater closest to each driver no longer has");
    println!("to compensate for a weak 1X stage), and wire widening contributes");
    println!("little on bidirectional buses (see the wire_sizing example).");
}
