//! Micro-benchmark of the linear-time ARD computation (paper §III,
//! Fig. 2) against the naive per-source traversal — the empirical side
//! of contribution 2 ("the ARD is no harder than an RC-radius").

use msrnet_bench::timing::{bench, group};
use msrnet_core::ard::{ard_linear, ard_naive};
use msrnet_netgen::{table1, ExperimentNet};
use msrnet_rctree::{Assignment, Net, Orientation, Repeater, TerminalId};
use msrnet_rng::rngs::StdRng;
use msrnet_rng::{Rng, SeedableRng};

fn setup(n: usize) -> (Net, Vec<Repeater>, Assignment) {
    let params = table1();
    let mut rng = StdRng::seed_from_u64(n as u64);
    let exp = if n <= 50 {
        ExperimentNet::random(&mut rng, n, &params).expect("valid")
    } else {
        ExperimentNet::random_mst(&mut rng, n, &params).expect("valid")
    };
    let net = exp.with_insertion_points(800.0);
    let lib = vec![params.repeater(1.0)];
    let mut asg = Assignment::empty(net.topology.vertex_count());
    for v in net.topology.insertion_points() {
        if rng.gen_bool(0.15) {
            asg.place(v, 0, Orientation::AFacesParent);
        }
    }
    (net, lib, asg)
}

fn bench_transient() {
    use msrnet_rctree::transient::{simulate_from, TransientOptions};
    group("transient_oracle");
    let (net, lib, asg) = setup(10);
    let rooted = net.rooted_at_terminal(TerminalId(0));
    let opts = TransientOptions::default();
    bench("simulate_from_10pin", || {
        simulate_from(&net, &rooted, &lib, &asg, TerminalId(0), &opts)
    });
}

fn bench_ard() {
    group("ard_scaling");
    for n in [20usize, 100, 400] {
        let (net, lib, asg) = setup(n);
        let rooted = net.rooted_at_terminal(TerminalId(0));
        bench(&format!("linear_fig2/{n}"), || {
            ard_linear(&net, &rooted, &lib, &asg)
        });
        bench(&format!("naive_per_source/{n}"), || {
            ard_naive(&net, &rooted, &lib, &asg)
        });
    }
}

fn main() {
    bench_ard();
    bench_transient();
}
