//! Criterion benchmark of the linear-time ARD computation (paper §III,
//! Fig. 2) against the naive per-source traversal — the empirical side
//! of contribution 2 ("the ARD is no harder than an RC-radius").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msrnet_core::ard::{ard_linear, ard_naive};
use msrnet_netgen::{table1, ExperimentNet};
use msrnet_rctree::{Assignment, Net, Orientation, Repeater, TerminalId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn setup(n: usize) -> (Net, Vec<Repeater>, Assignment) {
    let params = table1();
    let mut rng = StdRng::seed_from_u64(n as u64);
    let exp = if n <= 50 {
        ExperimentNet::random(&mut rng, n, &params).expect("valid")
    } else {
        ExperimentNet::random_mst(&mut rng, n, &params).expect("valid")
    };
    let net = exp.with_insertion_points(800.0);
    let lib = vec![params.repeater(1.0)];
    let mut asg = Assignment::empty(net.topology.vertex_count());
    for v in net.topology.insertion_points() {
        if rng.gen_bool(0.15) {
            asg.place(v, 0, Orientation::AFacesParent);
        }
    }
    (net, lib, asg)
}

fn bench_transient(c: &mut Criterion) {
    use msrnet_rctree::transient::{simulate_from, TransientOptions};
    let mut group = c.benchmark_group("transient_oracle");
    group.sample_size(10);
    let (net, lib, asg) = setup(10);
    let rooted = net.rooted_at_terminal(TerminalId(0));
    let opts = TransientOptions::default();
    group.bench_function("simulate_from_10pin", |b| {
        b.iter(|| simulate_from(&net, &rooted, &lib, &asg, TerminalId(0), &opts))
    });
    group.finish();
}

fn bench_ard(c: &mut Criterion) {
    let mut group = c.benchmark_group("ard_scaling");
    for n in [20usize, 100, 400] {
        let (net, lib, asg) = setup(n);
        let rooted = net.rooted_at_terminal(TerminalId(0));
        group.bench_with_input(BenchmarkId::new("linear_fig2", n), &n, |b, _| {
            b.iter(|| ard_linear(&net, &rooted, &lib, &asg))
        });
        group.bench_with_input(BenchmarkId::new("naive_per_source", n), &n, |b, _| {
            b.iter(|| ard_naive(&net, &rooted, &lib, &asg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ard, bench_transient);
criterion_main!(benches);
