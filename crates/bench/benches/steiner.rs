//! Criterion benchmarks of the topology substrates: rectilinear MST,
//! iterated 1-Steiner refinement, and the P-Tree interval DP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msrnet_geom::Point;
use msrnet_steiner::{nn_tour, ptree_topology, rectilinear_mst, steiner_tree, two_opt};

fn points(n: usize, seed: u64) -> Vec<Point> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % 10_000) as f64
    };
    (0..n).map(|_| Point::new(next(), next())).collect()
}

fn bench_topologies(c: &mut Criterion) {
    let mut group = c.benchmark_group("steiner");
    group.sample_size(20);
    for n in [10usize, 20] {
        let pts = points(n, 42);
        group.bench_with_input(BenchmarkId::new("mst", n), &pts, |b, pts| {
            b.iter(|| rectilinear_mst(pts))
        });
        group.bench_with_input(BenchmarkId::new("one_steiner", n), &pts, |b, pts| {
            b.iter(|| steiner_tree(pts))
        });
    }
    // The P-Tree DP is O(n²·|H|²); bench at a modest size.
    let pts = points(8, 42);
    let order = two_opt(&pts, nn_tour(&pts, 0));
    group.bench_function("ptree_8", |b| b.iter(|| ptree_topology(&pts, &order)));
    group.finish();
}

criterion_group!(benches, bench_topologies);
criterion_main!(benches);
