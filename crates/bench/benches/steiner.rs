//! Micro-benchmarks of the topology substrates: rectilinear MST,
//! iterated 1-Steiner refinement, and the P-Tree interval DP.

use msrnet_bench::timing::{bench, group};
use msrnet_geom::Point;
use msrnet_steiner::{nn_tour, ptree_topology, rectilinear_mst, steiner_tree, two_opt};

fn points(n: usize, seed: u64) -> Vec<Point> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) % 10_000) as f64
    };
    (0..n).map(|_| Point::new(next(), next())).collect()
}

fn main() {
    group("steiner");
    for n in [10usize, 20] {
        let pts = points(n, 42);
        bench(&format!("mst/{n}"), || rectilinear_mst(&pts));
        bench(&format!("one_steiner/{n}"), || steiner_tree(&pts));
    }
    // The P-Tree DP is O(n²·|H|²); bench at a modest size.
    let pts = points(8, 42);
    let order = two_opt(&pts, nn_tour(&pts, 0));
    bench("ptree_8", || ptree_topology(&pts, &order));
}
