//! Topology-search benchmark: DP-frontier-scored Steiner co-optimization
//! on raw chip-scale routes.
//!
//! Each instance is a bare Steiner route (no pre-seeded insertion
//! points — the search's densify moves place repeater sites where the
//! frontier earns them). The acceptance contract is **asserted**: the
//! search must never worsen its objective (beyond float-associativity
//! ulps of home re-adds), and the pinned seed-7 instance must strictly
//! improve over the initial route. Wall-clock figures are
//! informational; the hard signal is the score delta and move counters.
//!
//! Environment knobs:
//! * `TOPOLOGY_BENCH_TERMINALS` — net size (default 12).
//! * `TOPOLOGY_BENCH_NETS` — seeded instances (default 5).
//! * `TOPOLOGY_BENCH_ROUNDS` — search rounds (default 3).
//! * `TOPOLOGY_JSON` — when set, writes the per-net result table to
//!   this path as JSON.

use std::time::Instant;

use msrnet_core::{MsriOptions, TerminalOptions, WireOption};
use msrnet_incremental::{IncrementalOptimizer, Objective, SearchConfig, TopologySearch};
use msrnet_netgen::{table1, ExperimentNet};
use msrnet_rctree::TerminalId;
use msrnet_rng::{SeedableRng, SplitMix64};

const PINNED_SEED: u64 = 7;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn session_for(seed: u64, terminals: usize) -> IncrementalOptimizer {
    let params = table1();
    let mut rng = SplitMix64::seed_from_u64(seed);
    let exp = ExperimentNet::random(&mut rng, terminals, &params)
        // msrnet-allow: panic random nets over valid tech parameters always build
        .expect("random net construction");
    let net = exp.net;
    let library = vec![params.repeater(1.0), params.repeater(2.0)];
    let term_opts = TerminalOptions::defaults(&net);
    IncrementalOptimizer::new(
        net,
        TerminalId(0),
        library,
        term_opts,
        vec![WireOption::unit()],
        MsriOptions::default(),
    )
}

fn main() {
    let terminals = env_usize("TOPOLOGY_BENCH_TERMINALS", 12);
    let nets = env_usize("TOPOLOGY_BENCH_NETS", 5);
    let rounds = env_usize("TOPOLOGY_BENCH_ROUNDS", 3);
    println!(
        "topology search: {nets} nets x {terminals} terminals, {rounds} rounds \
         (pinned seed {PINNED_SEED})"
    );

    let mut rows: Vec<String> = Vec::new();
    let mut improved_count = 0usize;
    for i in 0..nets {
        let seed = PINNED_SEED + i as u64;
        let cfg = SearchConfig {
            rounds,
            densify_top: 4,
            seed,
            ..SearchConfig::default()
        };
        let mut search = TopologySearch::new(session_for(seed, terminals), Objective::BestArd, cfg);
        let t0 = Instant::now();
        let out = search.run();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

        assert!(
            out.initial_score.is_finite(),
            "seed {seed}: initial route infeasible"
        );
        let tol = 1e-9 * out.initial_score.abs().max(1.0);
        assert!(
            out.final_score <= out.initial_score + tol,
            "seed {seed}: search worsened the objective: {} -> {}",
            out.initial_score,
            out.final_score
        );
        if out.improved() {
            improved_count += 1;
        }
        println!(
            "  seed {seed}: best ARD {:.2} -> {:.2} ps ({}), \
             {} reattach + {} densify accepted of {} trials, {} edits, {wall_ms:.1} ms",
            out.initial_score,
            out.final_score,
            if out.improved() { "improved" } else { "unchanged" },
            out.stats.reattach_accepted,
            out.stats.densify_accepted,
            out.stats.reattach_trials + out.stats.densify_trials,
            out.edits.len(),
        );
        rows.push(format!(
            "    {{\"seed\": {seed}, \"initial_score\": {}, \"final_score\": {}, \
             \"improved\": {}, \"reattach_accepted\": {}, \"densify_accepted\": {}, \
             \"edits\": {}, \"wall_ms\": {wall_ms:.3}}}",
            out.initial_score,
            out.final_score,
            out.improved(),
            out.stats.reattach_accepted,
            out.stats.densify_accepted,
            out.edits.len(),
        ));

        // The acceptance criterion's pinned instance: the chip-scale
        // regime search must strictly beat the initial Steiner route.
        if seed == PINNED_SEED {
            assert!(
                out.improved(),
                "pinned seed {PINNED_SEED} did not strictly improve: {} -> {}",
                out.initial_score,
                out.final_score
            );
        }
    }
    println!("improved {improved_count}/{nets} instances");

    if let Ok(path) = std::env::var("TOPOLOGY_JSON") {
        let json = format!(
            "{{\n  \"benchmark\": \"msrnet_topology_bench\",\n  \"terminals\": {terminals},\n  \
             \"rounds\": {rounds},\n  \"improved\": {improved_count},\n  \"nets\": [\n{}\n  ]\n}}\n",
            rows.join(",\n")
        );
        // msrnet-allow: panic bench harness surfaces IO failures directly
        std::fs::write(&path, json).expect("writing TOPOLOGY_JSON");
        println!("wrote {path}");
    }
}
