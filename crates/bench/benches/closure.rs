//! Chip-scale timing closure: design size × K sweep of the closure loop
//! over generated chips, reporting the WNS/TNS trajectory, the number of
//! nets touched, the Pareto candidates enumerated, and wall time.
//!
//! This is the source for the chip-scale table in EXPERIMENTS.md. Every
//! row re-propagates the full timing graph after each round, so the wall
//! time covers both the per-net MSRI solves and the graph passes. The
//! monotonicity guarantee (post-loop WNS ≥ pre-loop WNS) is asserted on
//! every configuration, not just reported.

use std::time::Instant;

use msrnet_timing::{generate_chip, propagate, run_closure, ChipConfig, ClosureConfig};

const SEED: u64 = 1;
const ROUNDS: usize = 8;

fn main() {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = hw.clamp(1, 8);
    println!(
        "closure: seed {SEED}, {ROUNDS} round budget, {threads} worker thread(s) ({hw} hardware)"
    );
    println!(
        "{:>5} {:>3} {:>6} {:>6} {:>10} {:>10} {:>10} {:>10} {:>7} {:>10} {:>9}",
        "nets", "k", "cells", "pins", "wns0", "wns*", "tns0", "tns*", "touched", "candidates", "wall_ms"
    );
    for &nets in &[30usize, 60, 120] {
        for &k in &[4usize, 8, 16] {
            let cfg = ChipConfig {
                nets,
                seed: SEED,
                ..ChipConfig::default()
            };
            let mut design = generate_chip(&cfg).expect("chip generation");
            let timing = propagate(&design).expect("generated chips are DAGs");
            let wns0 = timing.wns();
            let t0 = Instant::now();
            let report = run_closure(
                &mut design,
                &ClosureConfig {
                    k,
                    max_rounds: ROUNDS,
                    threads,
                    slack_target: 0.0,
                },
            )
            .expect("closure loop");
            let wall = t0.elapsed().as_secs_f64() * 1e3;
            assert!(
                report.wns_final >= wns0,
                "closure worsened WNS on nets={nets} k={k}: {wns0} -> {}",
                report.wns_final
            );
            let touched: usize = report.rounds.iter().map(|r| r.touched.len()).sum();
            let candidates: u64 = report
                .rounds
                .iter()
                .flat_map(|r| r.touched.iter().map(|t| t.candidates))
                .sum();
            println!(
                "{:>5} {:>3} {:>6} {:>6} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>7} {:>10} {:>9.1}",
                nets,
                k,
                report.cells,
                report.pins,
                report.wns_initial,
                report.wns_final,
                report.tns_initial,
                report.tns_final,
                touched,
                candidates,
                wall
            );
        }
    }
}
