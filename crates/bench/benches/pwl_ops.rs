//! Micro-benchmarks of the PWL primitives (paper Eq. 3) and the
//! minimal-functional-subset pruning (paper Fig. 4 vs naive pairwise) —
//! the inner loops of the repeater-insertion dynamic program.

use msrnet_bench::timing::{bench, group};
use msrnet_pwl::{mfs_divide_conquer, mfs_naive, FuncPoint, Pwl};

/// Deterministic pseudo-random PWL built from `k` joined segments.
fn random_pwl(seed: &mut u64, k: usize) -> Pwl {
    let next = move |s: &mut u64| {
        *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*s >> 33) as f64) / ((1u64 << 31) as f64)
    };
    let mut f = Pwl::empty();
    let width = 10.0 / k as f64;
    for i in 0..k {
        let lo = i as f64 * width;
        let piece = Pwl::linear(next(seed) * 100.0, next(seed) * 20.0, lo, lo + width);
        f = if f.is_empty() {
            piece
        } else {
            // Stitch by taking the max over overlapping constants.
            Pwl::from_segments(
                f.segments()
                    .iter()
                    .chain(piece.segments())
                    .copied()
                    .collect(),
            )
        };
    }
    f
}

fn candidates(n: usize) -> Vec<FuncPoint<usize>> {
    let mut seed = 0xC0FFEE;
    (0..n)
        .map(|i| {
            let cost = (i % 7) as f64;
            let y = random_pwl(&mut seed, 4);
            let d = random_pwl(&mut seed, 4);
            FuncPoint::new(i, vec![cost, (i % 5) as f64, 0.0], vec![y, d])
        })
        .collect()
}

fn bench_primitives() {
    let mut seed = 12345u64;
    let f = random_pwl(&mut seed, 16);
    let g = random_pwl(&mut seed, 16);
    group("pwl_primitives");
    bench("max_16seg", || f.max(&g));
    bench("le_regions_16seg", || f.le_regions(&g));
    bench("shift_add_clamp", || {
        f.shifted_arg(0.5).add_linear(3.0, 7.0).clamp_domain(0.0, 9.0)
    });
}

fn bench_mfs() {
    group("mfs_pruning");
    for n in [64usize, 256] {
        let cands = candidates(n);
        bench(&format!("divide_conquer/{n}"), || {
            mfs_divide_conquer(cands.clone(), 8)
        });
        bench(&format!("naive/{n}"), || mfs_naive(cands.clone()));
    }
}

fn main() {
    bench_primitives();
    bench_mfs();
}
