//! Criterion benchmarks of the PWL primitives (paper Eq. 3) and the
//! minimal-functional-subset pruning (paper Fig. 4 vs naive pairwise) —
//! the inner loops of the repeater-insertion dynamic program.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msrnet_pwl::{mfs_divide_conquer, mfs_naive, FuncPoint, Pwl};

/// Deterministic pseudo-random PWL built from `k` joined segments.
fn random_pwl(seed: &mut u64, k: usize) -> Pwl {
    let next = move |s: &mut u64| {
        *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((*s >> 33) as f64) / ((1u64 << 31) as f64)
    };
    let mut f = Pwl::empty();
    let width = 10.0 / k as f64;
    for i in 0..k {
        let lo = i as f64 * width;
        let piece = Pwl::linear(next(seed) * 100.0, next(seed) * 20.0, lo, lo + width);
        f = if f.is_empty() {
            piece
        } else {
            // Stitch by taking the max over overlapping constants.
            Pwl::from_segments(
                f.segments()
                    .iter()
                    .chain(piece.segments())
                    .copied()
                    .collect(),
            )
        };
    }
    f
}

fn candidates(n: usize) -> Vec<FuncPoint<usize>> {
    let mut seed = 0xC0FFEE;
    (0..n)
        .map(|i| {
            let cost = (i % 7) as f64;
            let y = random_pwl(&mut seed, 4);
            let d = random_pwl(&mut seed, 4);
            FuncPoint::new(i, vec![cost, (i % 5) as f64, 0.0], vec![y, d])
        })
        .collect()
}

fn bench_primitives(c: &mut Criterion) {
    let mut seed = 12345u64;
    let f = random_pwl(&mut seed, 16);
    let g = random_pwl(&mut seed, 16);
    let mut group = c.benchmark_group("pwl_primitives");
    group.bench_function("max_16seg", |b| b.iter(|| f.max(&g)));
    group.bench_function("le_regions_16seg", |b| b.iter(|| f.le_regions(&g)));
    group.bench_function("shift_add_clamp", |b| {
        b.iter(|| f.shifted_arg(0.5).add_linear(3.0, 7.0).clamp_domain(0.0, 9.0))
    });
    group.finish();
}

fn bench_mfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("mfs_pruning");
    group.sample_size(20);
    for n in [64usize, 256] {
        let cands = candidates(n);
        group.bench_with_input(BenchmarkId::new("divide_conquer", n), &n, |b, _| {
            b.iter(|| mfs_divide_conquer(cands.clone(), 8))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| mfs_naive(cands.clone()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_mfs);
criterion_main!(benches);
