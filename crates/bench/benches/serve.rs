//! Loopback soak bench for the session server: client threads hammer a
//! resident server with open → edit → recompute → close rounds over
//! real TCP, and every served report is checked byte-for-byte against a
//! local `Replayer` oracle.
//!
//! Like `edits.rs`, the correctness contract is **asserted** (served
//! responses bit-identical to the local oracle, session accounting
//! closed at the end); the latency/throughput figures are
//! informational — one-core CI wall time is noisy, so the hard signal
//! is the identity checks and the request counters.
//!
//! Environment knobs:
//! * `SERVE_SOAK_THREADS` — concurrent client threads (default 4).
//! * `SERVE_SOAK_ROUNDS` — rounds per thread (default 10).
//! * `SERVE_SOAK_RESIDENT` — LRU residency cap (default 3, below the
//!   thread count so eviction pressure is exercised).
//! * `SERVE_SOAK_JSON` — when set, writes the soak summary to this
//!   path as JSON (uploaded as a CI artifact by the `service` job).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use msrnet_incremental::parse_trace;
use msrnet_netgen::format::{parse_net_file, write_net_file};
use msrnet_netgen::{table1, ExperimentNet};
use msrnet_rng::rngs::StdRng;
use msrnet_rng::SeedableRng;
use msrnet_service::client::{Client, ClientError};
use msrnet_service::net::Endpoint;
use msrnet_service::replay::Replayer;
use msrnet_service::server::{Server, ServerConfig};
use msrnet_service::ErrorCode;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One thread's fixed workload and its locally computed oracle report.
struct Workload {
    name: String,
    msr: String,
    trace: String,
    expected_report: String,
}

fn workload(thread: usize) -> Workload {
    let params = table1();
    let mut rng = StdRng::seed_from_u64(4000 + thread as u64);
    let exp = ExperimentNet::random(&mut rng, 5 + thread % 4, &params).expect("generate");
    let msr = write_net_file(&exp.with_insertion_points(2500.0), &[params.repeater(1.0)]);
    let name = format!("bench-{thread}.msr");
    let trace = format!(
        "{{\"edits\": [\
           {{\"op\": \"swap_library\", \"scale\": {}}}, \
           {{\"op\": \"set_arrival\", \"terminal\": 1, \"value\": {}}}\
         ]}}",
        1.0 + thread as f64 * 0.2,
        3.0 + thread as f64,
    );
    let nf = parse_net_file(&msr).expect("fixture parses");
    let mut rep = Replayer::open(
        name.clone(),
        nf.net,
        msrnet_rctree::TerminalId(0),
        nf.library,
        0.0,
        msrnet_core::PruningStrategy::default(),
        false,
    )
    .expect("oracle opens");
    rep.replay(&parse_trace(&trace).expect("trace parses"), false);
    let expected_report = rep.report();
    Workload { name, msr, trace, expected_report }
}

/// Per-thread tallies merged into the summary at the end.
#[derive(Default)]
struct Tally {
    rounds_ok: u64,
    evictions: u64,
    request_us: u64,
    requests: u64,
}

fn main() {
    let threads = env_usize("SERVE_SOAK_THREADS", 4);
    let rounds = env_usize("SERVE_SOAK_ROUNDS", 10);
    let max_resident = env_usize("SERVE_SOAK_RESIDENT", 3);

    let server = Server::bind(
        &Endpoint::Tcp("127.0.0.1:0".into()),
        ServerConfig { max_resident, ..ServerConfig::default() },
    )
    .expect("bind loopback");
    let endpoint = server.local_endpoint().expect("endpoint");
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let server_thread = std::thread::spawn(move || server.run(&stop2).expect("server run"));

    println!(
        "serve soak: {threads} client thread(s) x {rounds} round(s), \
         {max_resident} resident slot(s), endpoint {endpoint}"
    );

    let rounds_ok = AtomicU64::new(0);
    let evictions = AtomicU64::new(0);
    let request_us = AtomicU64::new(0);
    let requests = AtomicU64::new(0);
    let wall = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let endpoint = &endpoint;
            let (rounds_ok, evictions, request_us, requests) =
                (&rounds_ok, &evictions, &request_us, &requests);
            scope.spawn(move || {
                let w = workload(t);
                let mut client = Client::connect(endpoint).expect("connect");
                client
                    .set_read_timeout(Some(Duration::from_secs(120)))
                    .expect("timeout");
                let mut tally = Tally::default();
                for round in 0..rounds {
                    'round: for attempt in 0..64 {
                        assert!(attempt < 63, "thread {t} round {round}: evicted forever");
                        let t0 = Instant::now();
                        let session =
                            client.open(&w.name, &w.msr, 0, 0.0).expect("open");
                        let steps: [(&str, Result<(), ClientError>); 3] = [
                            ("edit", client.edit(session, &w.trace).map(|_| ())),
                            (
                                "recompute",
                                client.recompute(session).map(|report| {
                                    assert_eq!(
                                        report, w.expected_report,
                                        "thread {t} round {round}: served report \
                                         diverged from the local oracle"
                                    );
                                }),
                            ),
                            ("close", client.close(session)),
                        ];
                        for (step, result) in steps {
                            match result {
                                Ok(()) => {}
                                Err(ClientError::Server {
                                    code: ErrorCode::Evicted, ..
                                }) => {
                                    tally.evictions += 1;
                                    continue 'round;
                                }
                                Err(e) => panic!("thread {t} round {round} {step}: {e}"),
                            }
                        }
                        // 4 requests (open/edit/recompute/close) made it.
                        tally.requests += 4;
                        tally.request_us += t0.elapsed().as_micros() as u64;
                        tally.rounds_ok += 1;
                        break;
                    }
                }
                rounds_ok.fetch_add(tally.rounds_ok, Ordering::Relaxed);
                evictions.fetch_add(tally.evictions, Ordering::Relaxed);
                request_us.fetch_add(tally.request_us, Ordering::Relaxed);
                requests.fetch_add(tally.requests, Ordering::Relaxed);
            });
        }
    });
    let wall_us = wall.elapsed().as_micros() as u64;

    // Session accounting must close before shutdown.
    let mut c = Client::connect(&endpoint).expect("stats connect");
    c.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
    let stats = c.stats().expect("stats");
    assert!(stats.contains("\"sessions_open\": 0"), "unclosed sessions:\n{stats}");
    drop(c);
    stop.store(true, Ordering::Release);
    server_thread.join().expect("server thread");

    let rounds_ok = rounds_ok.load(Ordering::Relaxed);
    let evictions = evictions.load(Ordering::Relaxed);
    let request_us = request_us.load(Ordering::Relaxed);
    let requests = requests.load(Ordering::Relaxed);
    assert_eq!(rounds_ok as usize, threads * rounds, "not every round completed");

    println!("  rounds ok   : {rounds_ok} ({requests} requests)");
    println!("  evictions   : {evictions} typed Evicted retries");
    println!(
        "  round latency: {:.1} µs mean over completed rounds",
        request_us as f64 / rounds_ok.max(1) as f64
    );
    println!(
        "  throughput  : {:.0} requests/s (informational; 1-core CI wall \
         time is noisy — the asserted contract is byte-identity and the \
         session accounting)",
        requests as f64 / (wall_us as f64 / 1e6).max(1e-9)
    );

    if let Ok(path) = std::env::var("SERVE_SOAK_JSON") {
        let out = format!(
            "{{\n  \"benchmark\": \"msrnet_serve_soak\",\n  \
             \"threads\": {threads},\n  \"rounds\": {rounds},\n  \
             \"max_resident\": {max_resident},\n  \
             \"rounds_ok\": {rounds_ok},\n  \"requests\": {requests},\n  \
             \"evictions\": {evictions},\n  \
             \"round_latency_us_mean\": {},\n  \"wall_us\": {wall_us},\n  \
             \"server_stats\": {}\n}}\n",
            request_us as f64 / rounds_ok.max(1) as f64,
            // The stats response is itself a JSON object; embed verbatim.
            stats.trim_end(),
        );
        std::fs::write(&path, out).expect("write soak JSON");
        println!("  wrote soak summary to {path}");
    }
}
