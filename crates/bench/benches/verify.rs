//! Throughput of the differential-verification harness: how many
//! generated cases per second the full check registry sustains, and
//! where the time goes per check.
//!
//! The CI gate runs `msrnet-cli verify --cases 500 --budget-ms 30000`;
//! this bench tells us how much headroom that budget has (and flags a
//! regression in the `dp_set_estimate` work gating if a check's share
//! of the wall time explodes).

use std::time::Instant;

use msrnet_verify::{generate, registry, run_check, CheckOutcome};

const SEED: u64 = 7;
const CASES: usize = 500;

fn main() {
    let checks = registry();
    let mut per_check_ms = vec![0.0f64; checks.len()];
    let mut per_check_pass = vec![0usize; checks.len()];
    let mut failures = 0usize;
    let mut generated = 0usize;

    let t0 = Instant::now();
    for index in 0..CASES {
        let Some(inst) = generate(SEED, index) else {
            continue;
        };
        generated += 1;
        for (i, check) in checks.iter().enumerate() {
            let tc = Instant::now();
            match run_check(check, &inst) {
                CheckOutcome::Pass => per_check_pass[i] += 1,
                CheckOutcome::Skip(_) => {}
                CheckOutcome::Fail(_) => failures += 1,
            }
            per_check_ms[i] += tc.elapsed().as_secs_f64() * 1e3;
        }
    }
    let wall = t0.elapsed().as_secs_f64();

    println!("verify throughput: seed {SEED}, {generated} cases");
    println!("  wall        : {:.1} ms", wall * 1e3);
    println!("  cases/s     : {:.0}", generated as f64 / wall);
    println!("  per check (total ms / passes):");
    let mut order: Vec<usize> = (0..checks.len()).collect();
    order.sort_by(|&a, &b| per_check_ms[b].total_cmp(&per_check_ms[a]));
    for i in order {
        println!(
            "    {:<30} {:>8.1} ms  {:>4} passed",
            checks[i].name, per_check_ms[i], per_check_pass[i]
        );
    }
    assert_eq!(failures, 0, "oracle mismatches during benchmark run");
}
