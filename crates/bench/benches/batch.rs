//! Multi-net batch throughput: a 100-net sweep run sequentially and on a
//! worker pool, with the determinism guard asserted between the two.
//!
//! Prints wall time and nets/s for each configuration plus the measured
//! speedup. On a multi-core machine the parallel sweep is expected to be
//! ≥2× faster with 4+ workers; on a single hardware thread the speedup
//! degenerates to ~1× (reported honestly either way).

use msrnet_batch::{random_jobs, reports_bit_identical, run_batch};
use msrnet_netgen::table1;

const NETS: usize = 100;
const TERMINALS: usize = 8;

fn main() {
    let params = table1();
    let jobs = random_jobs(&params, NETS, TERMINALS, 1000, 800.0);
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let threads = hw.max(4);

    let sequential = run_batch(&jobs, 1);
    let parallel = run_batch(&jobs, threads);
    assert!(
        reports_bit_identical(&sequential, &parallel),
        "parallel batch results diverged from sequential"
    );

    let s = sequential.wall.as_secs_f64();
    let p = parallel.wall.as_secs_f64();
    println!(
        "batch/sequential        {NETS} nets ({TERMINALS} terminals) in {:8.1} ms  {:6.1} nets/s",
        s * 1e3,
        NETS as f64 / s
    );
    println!(
        "batch/parallel[{threads}]      {NETS} nets ({TERMINALS} terminals) in {:8.1} ms  {:6.1} nets/s",
        p * 1e3,
        NETS as f64 / p
    );
    println!(
        "batch/speedup           {:.2}x on {hw} hardware thread(s); results bit-identical",
        s / p
    );
}
