//! Edit-replay benchmark: incremental dirty-path recomputation vs
//! from-scratch re-solves over a seeded edit trace.
//!
//! The correctness contract (every incremental result bit-identical to
//! a from-scratch recompute, incremental never rebuilding more nodes
//! than scratch) is **asserted** here — the benchmark doubles as a
//! smoke gate. The speedup figure is informational only: CI runs on a
//! one-core container where wall-clock ratios are noisy, so the hard
//! acceptance signal is the node-visit counters, not time.
//!
//! Environment knobs:
//! * `EDITS_BENCH_EDITS` — edits per trace (default 50; CI smoke uses
//!   a smaller count).
//! * `EDITS_BENCH_TERMINALS` — net size (default 8).
//! * `EDITS_TIMINGS_JSON` — when set, writes the per-edit timing table
//!   to this path as JSON.

use std::time::Instant;

use msrnet_bench::Instance;
use msrnet_core::{MsriOptions, TradeoffCurve, WireOption};
use msrnet_incremental::{random_trace, IncrementalOptimizer};
use msrnet_netgen::table1;

const SEED: u64 = 7;

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn curves_bit_identical(a: &TradeoffCurve, b: &TradeoffCurve) -> bool {
    a.len() == b.len()
        && a.points().iter().zip(b.points()).all(|(pa, pb)| {
            pa.cost.to_bits() == pb.cost.to_bits()
                && pa.ard.to_bits() == pb.ard.to_bits()
                && pa.assignment == pb.assignment
                && pa.terminal_choices == pb.terminal_choices
                && pa.wire_choices == pb.wire_choices
        })
}

fn main() {
    let edits = env_usize("EDITS_BENCH_EDITS", 50);
    let terminals = env_usize("EDITS_BENCH_TERMINALS", 8);
    let inst = Instance::random(&table1(), terminals, SEED, 800.0);
    let trace = random_trace(&inst.net, SEED, edits);
    let mut session = IncrementalOptimizer::new(
        inst.net.clone(),
        inst.root,
        inst.library.clone(),
        inst.fixed_drivers.clone(),
        vec![WireOption::unit()],
        MsriOptions::default(),
    );

    println!(
        "edit replay: {} terminals, {} insertion points, {} edits (seed {SEED})",
        terminals,
        inst.net.topology.insertion_point_count(),
        trace.len()
    );

    // Row per compared step: (op, inc µs, scratch µs, rebuilt, visited).
    let mut rows: Vec<(String, f64, f64, usize, usize)> = Vec::new();
    let mut inc_total = 0.0f64;
    let mut scratch_total = 0.0f64;
    let mut rebuilt_total = 0usize;
    let mut visited_total = 0usize;
    let mut applied = 0usize;

    for step in 0..=trace.len() {
        let op = if step == 0 {
            "initial".to_string()
        } else {
            let edit = &trace[step - 1];
            if session.apply(edit).is_err() {
                continue;
            }
            applied += 1;
            edit.op_name().to_string()
        };
        let t0 = Instant::now();
        let inc = session.recompute();
        let inc_us = t0.elapsed().as_secs_f64() * 1e6;
        let t1 = Instant::now();
        let scratch = session.from_scratch();
        let scratch_us = t1.elapsed().as_secs_f64() * 1e6;
        match (inc, scratch) {
            (Ok((a, sa)), Ok((b, sb))) => {
                assert!(
                    curves_bit_identical(&a, &b),
                    "step {step} ({op}): incremental diverged from scratch"
                );
                assert!(
                    sa.nodes_recomputed <= sb.nodes_recomputed,
                    "step {step} ({op}): incremental rebuilt {} nodes, scratch {}",
                    sa.nodes_recomputed,
                    sb.nodes_recomputed
                );
                if step > 0 {
                    inc_total += inc_us;
                    scratch_total += scratch_us;
                    rebuilt_total += sa.nodes_recomputed;
                    visited_total += sa.nodes_visited;
                }
                rows.push((op, inc_us, scratch_us, sa.nodes_recomputed, sa.nodes_visited));
            }
            (Err(a), Err(b)) => {
                assert_eq!(a, b, "step {step} ({op}): error variants diverged");
                rows.push((op, inc_us, scratch_us, 0, 0));
            }
            (inc, _) => panic!(
                "step {step} ({op}): only one side solved (incremental ok: {})",
                inc.is_ok()
            ),
        }
    }

    println!("  applied     : {applied}/{} edits", trace.len());
    println!("  escalations : {}", session.escalations());
    println!(
        "  rebuilt     : {rebuilt_total}/{visited_total} visited nodes across edits ({:.0}%)",
        100.0 * rebuilt_total as f64 / visited_total.max(1) as f64
    );
    println!("  incremental : {:.1} ms total over edits", inc_total / 1e3);
    println!("  from-scratch: {:.1} ms total over edits", scratch_total / 1e3);
    println!(
        "  speedup     : {:.2}x (informational; 1-core CI wall time is noisy — \
         the asserted contract is bit-identity and the node counters)",
        scratch_total / inc_total.max(1e-9)
    );

    if let Ok(path) = std::env::var("EDITS_TIMINGS_JSON") {
        let mut out = String::from("{\n  \"benchmark\": \"msrnet_edit_replay\",\n");
        out.push_str(&format!("  \"terminals\": {terminals},\n"));
        out.push_str(&format!("  \"edits\": {},\n  \"applied\": {applied},\n", trace.len()));
        out.push_str(&format!("  \"rebuilt_nodes\": {rebuilt_total},\n"));
        out.push_str(&format!("  \"visited_nodes\": {visited_total},\n"));
        out.push_str(&format!("  \"incremental_us\": {inc_total},\n"));
        out.push_str(&format!("  \"scratch_us\": {scratch_total},\n"));
        out.push_str("  \"steps\": [\n");
        for (i, (op, inc_us, scratch_us, rebuilt, visited)) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"op\": \"{op}\", \"incremental_us\": {inc_us}, \
                 \"scratch_us\": {scratch_us}, \"rebuilt\": {rebuilt}, \"visited\": {visited}}}{}\n",
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(&path, out).expect("write timings JSON");
        println!("  wrote per-edit timings to {path}");
    }

    // A replay where no point edit reused anything would mean the
    // dirty-path machinery is inert; fail loudly rather than report a
    // meaningless speedup. (SwapLibrary/Reroot legitimately rebuild all.)
    assert!(
        rebuilt_total < visited_total,
        "no node reuse across {applied} edits — incremental engine inert"
    );
}
