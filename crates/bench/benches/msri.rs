//! Micro-benchmark version of paper Table IV: repeater-insertion and
//! driver-sizing optimizer run time on 10-pin and 20-pin random nets.

use msrnet_bench::timing::{bench, group};
use msrnet_bench::{Instance, SPACING};
use msrnet_core::MsriOptions;
use msrnet_netgen::table1;

fn main() {
    let params = table1();
    let options = MsriOptions::default();
    group("table4_msri");
    for n in [10usize, 20] {
        let inst = Instance::random(&params, n, 42 + n as u64, SPACING);
        bench(&format!("repeater_insertion/{n}"), || {
            inst.run_repeaters(&options)
        });
        bench(&format!("driver_sizing/{n}"), || inst.run_sizing(&options));
    }
}
