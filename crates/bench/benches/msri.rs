//! Criterion version of paper Table IV: repeater-insertion and
//! driver-sizing optimizer run time on 10-pin and 20-pin random nets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use msrnet_bench::{Instance, SPACING};
use msrnet_core::MsriOptions;
use msrnet_netgen::table1;

fn bench_msri(c: &mut Criterion) {
    let params = table1();
    let options = MsriOptions::default();
    let mut group = c.benchmark_group("table4_msri");
    group.sample_size(20);
    for n in [10usize, 20] {
        let inst = Instance::random(&params, n, 42 + n as u64, SPACING);
        group.bench_with_input(BenchmarkId::new("repeater_insertion", n), &inst, |b, inst| {
            b.iter(|| inst.run_repeaters(&options))
        });
        group.bench_with_input(BenchmarkId::new("driver_sizing", n), &inst, |b, inst| {
            b.iter(|| inst.run_sizing(&options))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_msri);
criterion_main!(benches);
