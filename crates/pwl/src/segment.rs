use std::fmt;

/// One line segment of a piece-wise linear function.
///
/// The segment is defined on the closed interval `[x0, x1]` and takes the
/// value `y0 + slope · (x − x0)` there. This mirrors the paper's
/// quadruple `(y, slope, lo, hi)` (Definition 4.1) with the y-intercept
/// anchored at `x0` for numerical stability.
///
/// A segment whose value is `-∞` (no internal source yet) stores
/// `y0 = f64::NEG_INFINITY` and `slope = 0`, so arithmetic never produces
/// `NaN` from `−∞ + ∞·0`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// Lower end of the domain.
    pub x0: f64,
    /// Upper end of the domain (`x1 >= x0`).
    pub x1: f64,
    /// Value at `x0`.
    pub y0: f64,
    /// Slope; always `0` when `y0` is `-∞`.
    pub slope: f64,
}

impl Segment {
    /// Creates a segment; normalizes `-∞` values to slope 0.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `x1 < x0`, if any coordinate is `NaN`, or
    /// if `y0` is `+∞` (undefined regions are represented by *gaps*, never
    /// by `+∞` segments).
    pub fn new(x0: f64, x1: f64, y0: f64, slope: f64) -> Self {
        debug_assert!(x1 >= x0, "inverted segment domain [{x0}, {x1}]");
        debug_assert!(!x0.is_nan() && !x1.is_nan() && !y0.is_nan() && !slope.is_nan());
        debug_assert!(y0 != f64::INFINITY, "+inf must be a domain gap, not a segment");
        if y0 == f64::NEG_INFINITY {
            Segment { x0, x1, y0, slope: 0.0 }
        } else {
            Segment { x0, x1, y0, slope }
        }
    }

    /// Value at `x`, which must lie in `[x0, x1]` (not checked in release).
    pub fn value_at(&self, x: f64) -> f64 {
        debug_assert!(x >= self.x0 - 1e-9 && x <= self.x1 + 1e-9);
        if self.y0 == f64::NEG_INFINITY {
            f64::NEG_INFINITY
        } else {
            self.y0 + self.slope * (x - self.x0)
        }
    }

    /// Value at the upper end of the domain.
    pub fn value_at_end(&self) -> f64 {
        self.value_at(self.x1)
    }

    /// The restriction of this segment to `[lo, hi] ∩ [x0, x1]`, or `None`
    /// if the intersection is empty.
    pub fn restricted(&self, lo: f64, hi: f64) -> Option<Segment> {
        let nlo = self.x0.max(lo);
        let nhi = self.x1.min(hi);
        if nlo > nhi {
            return None;
        }
        Some(Segment::new(nlo, nhi, self.value_at(nlo), self.slope))
    }

    /// Whether this segment and `next` describe one straight line and touch
    /// (within `eps` in both x and y), so they can be coalesced.
    pub fn joins(&self, next: &Segment, eps: f64) -> bool {
        if (next.x0 - self.x1).abs() > eps {
            return false;
        }
        if self.y0 == f64::NEG_INFINITY || next.y0 == f64::NEG_INFINITY {
            return self.y0 == next.y0;
        }
        (self.slope - next.slope).abs() <= eps
            && (self.value_at_end() - next.y0).abs() <= eps.max(1e-9 * self.y0.abs())
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:.6}, {:.6}] ↦ {:.6} + {:.6}·(x−{:.6})",
            self.x0, self.x1, self.y0, self.slope, self.x0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_interpolates_linearly() {
        let s = Segment::new(2.0, 6.0, 10.0, 0.5);
        assert_eq!(s.value_at(2.0), 10.0);
        assert_eq!(s.value_at(4.0), 11.0);
        assert_eq!(s.value_at_end(), 12.0);
    }

    #[test]
    fn neg_inf_segment_has_zero_slope() {
        let s = Segment::new(0.0, 5.0, f64::NEG_INFINITY, 123.0);
        assert_eq!(s.slope, 0.0);
        assert_eq!(s.value_at(3.0), f64::NEG_INFINITY);
    }

    #[test]
    fn restrict_clips_domain() {
        let s = Segment::new(0.0, 10.0, 0.0, 1.0);
        let r = s.restricted(4.0, 6.0).unwrap();
        assert_eq!(r.x0, 4.0);
        assert_eq!(r.x1, 6.0);
        assert_eq!(r.y0, 4.0);
        assert!(s.restricted(11.0, 12.0).is_none());
    }

    #[test]
    fn joins_detects_collinear_neighbors() {
        let a = Segment::new(0.0, 2.0, 1.0, 3.0);
        let b = Segment::new(2.0, 5.0, 7.0, 3.0);
        let c = Segment::new(2.0, 5.0, 8.0, 3.0);
        assert!(a.joins(&b, 1e-9));
        assert!(!a.joins(&c, 1e-9));
    }

    #[test]
    fn joins_handles_neg_inf() {
        let a = Segment::new(0.0, 1.0, f64::NEG_INFINITY, 0.0);
        let b = Segment::new(1.0, 2.0, f64::NEG_INFINITY, 0.0);
        let c = Segment::new(1.0, 2.0, 5.0, 0.0);
        assert!(a.joins(&b, 1e-9));
        assert!(!a.joins(&c, 1e-9));
    }
}
