use std::fmt;

use crate::{IntervalSet, Segment, EPS};

/// A piece-wise linear function on a finite union of closed intervals.
///
/// This is the paper's representation of the two capacitance-dependent
/// solution characteristics (arrival time `Y(c_E)` and internal diameter
/// `D(c_E)`, §IV-B). Segments are sorted and non-overlapping; **gaps are
/// undefined regions** (conceptually `+∞`: the solution is dominated
/// there). Segment values may be `-∞` (no internal source).
///
/// All operations are linear in the number of segments involved, matching
/// the paper's claim for the primitives of Eq. 3.
///
/// # Examples
///
/// ```
/// use msrnet_pwl::Pwl;
///
/// let f = Pwl::linear(5.0, 2.0, 0.0, 10.0); // 5 + 2x on [0, 10]
/// let g = f.shifted_arg(3.0);               // g(x) = f(x + 3) on [-3, 7]
/// assert_eq!(g.eval(0.0), Some(11.0));
/// let h = g.clamp_domain(0.0, 7.0).add_linear(1.0, 0.5);
/// assert_eq!(h.eval(2.0), Some(f.eval(5.0).unwrap() + 1.0 + 0.5 * 2.0));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Pwl {
    segs: Vec<Segment>,
}

impl Pwl {
    /// The everywhere-undefined function.
    pub fn empty() -> Self {
        Pwl { segs: Vec::new() }
    }

    /// The constant function `y` on `[lo, hi]`.
    ///
    /// `y` may be `-∞`; `+∞` is represented by [`Pwl::empty`] instead.
    pub fn constant(y: f64, lo: f64, hi: f64) -> Self {
        Pwl {
            segs: vec![Segment::new(lo, hi, y, 0.0)],
        }
    }

    /// The function `y_at_lo + slope · (x − lo)` on `[lo, hi]`.
    pub fn linear(y_at_lo: f64, slope: f64, lo: f64, hi: f64) -> Self {
        Pwl {
            segs: vec![Segment::new(lo, hi, y_at_lo, slope)],
        }
    }

    /// The constant `-∞` on `[lo, hi]` — "no source in this subtree yet".
    pub fn neg_inf(lo: f64, hi: f64) -> Self {
        Pwl::constant(f64::NEG_INFINITY, lo, hi)
    }

    /// Builds a function from segments, sorting, validating disjointness,
    /// and coalescing collinear neighbors.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if two segments overlap by more than [`EPS`].
    pub fn from_segments(mut segs: Vec<Segment>) -> Self {
        segs.retain(|s| s.x1 >= s.x0);
        segs.sort_by(|a, b| a.x0.total_cmp(&b.x0));
        for w in segs.windows(2) {
            debug_assert!(
                w[1].x0 >= w[0].x1 - EPS,
                "overlapping segments: {} and {}",
                w[0],
                w[1]
            );
        }
        let mut pwl = Pwl { segs };
        pwl.coalesce();
        pwl
    }

    /// The segments of the function, sorted by domain.
    pub fn segments(&self) -> &[Segment] {
        &self.segs
    }

    /// Whether the function is undefined everywhere.
    pub fn is_empty(&self) -> bool {
        self.segs.is_empty()
    }

    /// The domain as an interval set.
    pub fn domain(&self) -> IntervalSet {
        IntervalSet::from_spans(self.segs.iter().map(|s| (s.x0, s.x1)))
    }

    /// Evaluates the function at `x`, or `None` if `x` is in a gap.
    ///
    /// Boundary points are included with an [`EPS`] tolerance so that
    /// evaluating exactly at a clamped domain edge is robust.
    pub fn eval(&self, x: f64) -> Option<f64> {
        // Segments are sorted by x0; find the last with x0 <= x + EPS.
        let idx = self.segs.partition_point(|s| s.x0 <= x + EPS);
        if idx == 0 {
            return None;
        }
        let s = &self.segs[idx - 1];
        if x <= s.x1 + EPS {
            Some(s.value_at(x.clamp(s.x0, s.x1)))
        } else {
            None
        }
    }

    /// Adds the scalar `c` to the function (paper's *AddScalar*).
    ///
    /// Adding to a `-∞` segment leaves it `-∞`.
    #[must_use]
    pub fn add_scalar(&self, c: f64) -> Pwl {
        debug_assert!(c.is_finite() || c == f64::NEG_INFINITY);
        let segs = self
            .segs
            .iter()
            .map(|s| Segment::new(s.x0, s.x1, s.y0 + c, s.slope))
            .collect();
        Pwl { segs }
    }

    /// Adds the line `c0 + slope·x` to the function (paper's *AddLinear*;
    /// used when a wire of resistance `R_w` is traversed: the arrival
    /// gains `R_w · (C_w/2 + c_E)`).
    #[must_use]
    pub fn add_linear(&self, c0: f64, slope: f64) -> Pwl {
        let segs = self
            .segs
            .iter()
            .map(|s| {
                if s.y0 == f64::NEG_INFINITY {
                    *s
                } else {
                    Segment::new(s.x0, s.x1, s.y0 + c0 + slope * s.x0, s.slope + slope)
                }
            })
            .collect();
        Pwl { segs }
    }

    /// Argument shift: returns `g` with `g(x) = f(x + dx)` (paper's
    /// *Shift*; adding capacitance `C` beneath a subtree means its old
    /// characteristic is consulted at `c_E + C`).
    #[must_use]
    pub fn shifted_arg(&self, dx: f64) -> Pwl {
        let segs = self
            .segs
            .iter()
            .map(|s| Segment::new(s.x0 - dx, s.x1 - dx, s.y0, s.slope))
            .collect();
        Pwl { segs }
    }

    /// Restricts the domain to `[lo, hi]`.
    #[must_use]
    pub fn clamp_domain(&self, lo: f64, hi: f64) -> Pwl {
        let segs = self
            .segs
            .iter()
            .filter_map(|s| s.restricted(lo, hi))
            .collect();
        let mut pwl = Pwl { segs };
        pwl.coalesce();
        pwl
    }

    /// Restricts the domain to an arbitrary interval set (used when MFS
    /// pruning invalidates regions of a solution).
    #[must_use]
    pub fn restrict(&self, keep: &IntervalSet) -> Pwl {
        let mut segs = Vec::with_capacity(self.segs.len());
        for &(lo, hi) in keep.spans() {
            for s in &self.segs {
                if s.x0 > hi {
                    break;
                }
                if let Some(r) = s.restricted(lo, hi) {
                    if r.x1 > r.x0 {
                        segs.push(r);
                    }
                }
            }
        }
        Pwl::from_segments(segs)
    }

    /// Pointwise maximum (paper's *Max*; selects the critical source).
    ///
    /// The result is defined exactly where **both** inputs are defined:
    /// an undefined (pruned / `+∞`) side makes the maximum undefined.
    #[must_use]
    pub fn max(&self, other: &Pwl) -> Pwl {
        let mut out: Vec<Segment> = Vec::with_capacity(self.segs.len() + other.segs.len());
        for (lo, hi, a, b) in zip_cells(self, other) {
            let ya0 = a.value_at(lo);
            let yb0 = b.value_at(lo);
            if ya0 == f64::NEG_INFINITY {
                out.push(Segment::new(lo, hi, yb0, b.slope));
                continue;
            }
            if yb0 == f64::NEG_INFINITY {
                out.push(Segment::new(lo, hi, ya0, a.slope));
                continue;
            }
            let dy0 = ya0 - yb0;
            let ds = a.slope - b.slope;
            // Crossing point of the two lines inside the cell, if any.
            let cross = if ds.abs() > EPS {
                let x = lo - dy0 / ds;
                (x > lo + EPS && x < hi - EPS).then_some(x)
            } else {
                None
            };
            match cross {
                Some(x) => {
                    // One line wins before x, the other after.
                    let (first, second) = if dy0 > 0.0 { (a, b) } else { (b, a) };
                    out.push(Segment::new(lo, x, first.value_at(lo), first.slope));
                    out.push(Segment::new(x, hi, second.value_at(x), second.slope));
                }
                None => {
                    let mid = 0.5 * (lo + hi);
                    let win = if a.value_at(mid) >= b.value_at(mid) { a } else { b };
                    out.push(Segment::new(lo, hi, win.value_at(lo), win.slope));
                }
            }
        }
        Pwl::from_segments(out)
    }

    /// Pointwise minimum; defined exactly where both inputs are defined.
    ///
    /// Not used by the maximizing DP itself, but the natural dual of
    /// [`Pwl::max`] for clients analyzing best-case envelopes.
    #[must_use]
    pub fn min(&self, other: &Pwl) -> Pwl {
        let mut out: Vec<Segment> = Vec::with_capacity(self.segs.len() + other.segs.len());
        for (lo, hi, a, b) in zip_cells(self, other) {
            let ya0 = a.value_at(lo);
            let yb0 = b.value_at(lo);
            if ya0 == f64::NEG_INFINITY || yb0 == f64::NEG_INFINITY {
                out.push(Segment::new(lo, hi, f64::NEG_INFINITY, 0.0));
                continue;
            }
            let dy0 = ya0 - yb0;
            let ds = a.slope - b.slope;
            let cross = if ds.abs() > EPS {
                let x = lo - dy0 / ds;
                (x > lo + EPS && x < hi - EPS).then_some(x)
            } else {
                None
            };
            match cross {
                Some(x) => {
                    let (first, second) = if dy0 < 0.0 { (a, b) } else { (b, a) };
                    out.push(Segment::new(lo, x, first.value_at(lo), first.slope));
                    out.push(Segment::new(x, hi, second.value_at(x), second.slope));
                }
                None => {
                    let mid = 0.5 * (lo + hi);
                    let win = if a.value_at(mid) <= b.value_at(mid) { a } else { b };
                    out.push(Segment::new(lo, hi, win.value_at(lo), win.slope));
                }
            }
        }
        Pwl::from_segments(out)
    }

    /// The region `{x ∈ dom(self) ∩ dom(other) : self(x) ≤ other(x)}`.
    ///
    /// This is the primitive behind MFS pruning: the sub-level comparison
    /// of two solution characteristics.
    pub fn le_regions(&self, other: &Pwl) -> IntervalSet {
        let mut spans = Vec::new();
        for (lo, hi, a, b) in zip_cells(self, other) {
            let ya0 = a.value_at(lo);
            let yb0 = b.value_at(lo);
            if ya0 == f64::NEG_INFINITY {
                spans.push((lo, hi));
                continue;
            }
            if yb0 == f64::NEG_INFINITY {
                continue;
            }
            let dy0 = ya0 - yb0;
            let ds = a.slope - b.slope;
            if ds.abs() <= EPS {
                if dy0 <= EPS {
                    spans.push((lo, hi));
                }
            } else {
                let x = lo - dy0 / ds;
                if ds > 0.0 {
                    // a − b increasing: a ≤ b for x ≤ crossing.
                    let end = x.min(hi);
                    if end >= lo {
                        spans.push((lo, end));
                    }
                } else {
                    let start = x.max(lo);
                    if start <= hi {
                        spans.push((start, hi));
                    }
                }
            }
        }
        IntervalSet::from_spans(spans)
    }

    /// Smallest value attained over the whole domain, or `None` if empty.
    ///
    /// A linear piece attains its extremes at segment endpoints.
    pub fn min_value(&self) -> Option<f64> {
        self.segs
            .iter()
            .map(|s| s.y0.min(s.value_at_end()))
            .min_by(f64::total_cmp)
    }

    /// Largest value attained over the whole domain, or `None` if empty.
    pub fn max_value(&self) -> Option<f64> {
        self.segs
            .iter()
            .map(|s| s.y0.max(s.value_at_end()))
            .max_by(f64::total_cmp)
    }

    /// Samples the function at `n ≥ 2` evenly spaced points across its
    /// domain span, skipping gaps — convenient for plotting and reports.
    ///
    /// Returns an empty vector for an empty function.
    pub fn sample(&self, n: usize) -> Vec<(f64, f64)> {
        let (Some(first), Some(last)) = (self.segs.first(), self.segs.last()) else {
            return Vec::new();
        };
        let n = n.max(2);
        let lo = first.x0;
        let hi = last.x1;
        (0..n)
            .filter_map(|i| {
                let x = lo + (hi - lo) * i as f64 / (n - 1) as f64;
                self.eval(x).map(|y| (x, y))
            })
            .collect()
    }

    /// Merges adjacent collinear segments (within [`EPS`]) in place.
    fn coalesce(&mut self) {
        coalesce_in_place(&mut self.segs);
    }

    /// Consumes the function, returning its segment storage — lets an
    /// arena reclaim the allocation (see [`crate::SegmentArena`]).
    pub fn into_segments(self) -> Vec<Segment> {
        self.segs
    }

    /// Wraps a segment vector verbatim — caller guarantees sortedness and
    /// disjointness. Used by the arena ops that mirror non-coalescing
    /// primitives ([`Pwl::add_scalar`]-shaped maps).
    pub(crate) fn from_raw(segs: Vec<Segment>) -> Pwl {
        Pwl { segs }
    }

    /// Like [`Pwl::from_segments`] minus the sort: validates (debug),
    /// drops inverted segments and coalesces, for producers that emit
    /// segments already in domain order.
    pub(crate) fn from_sorted_segments(mut segs: Vec<Segment>) -> Pwl {
        segs.retain(|s| s.x1 >= s.x0);
        for w in segs.windows(2) {
            debug_assert!(
                w[1].x0 >= w[0].x1 - EPS,
                "overlapping segments: {} and {}",
                w[0],
                w[1]
            );
        }
        coalesce_in_place(&mut segs);
        Pwl { segs }
    }
}

/// Allocation-free coalesce: merges adjacent collinear segments (within
/// [`EPS`]) by two-pointer compaction.
pub(crate) fn coalesce_in_place(segs: &mut Vec<Segment>) {
    if segs.len() < 2 {
        return;
    }
    let mut w = 0usize;
    for r in 1..segs.len() {
        let Some(&s) = segs.get(r) else { break };
        match segs.get_mut(w) {
            Some(cur) if cur.joins(&s, EPS) => cur.x1 = s.x1,
            _ => {
                w += 1;
                if let Some(slot) = segs.get_mut(w) {
                    *slot = s;
                }
            }
        }
    }
    segs.truncate(w + 1);
}

/// The upper envelope (pointwise max) of many functions.
///
/// Defined where **all** inputs are defined; returns [`Pwl::empty`] for an
/// empty input slice.
///
/// # Examples
///
/// ```
/// use msrnet_pwl::{upper_envelope, Pwl};
///
/// let fs = [
///     Pwl::linear(0.0, 1.0, 0.0, 10.0),
///     Pwl::linear(5.0, 0.0, 0.0, 10.0),
/// ];
/// let env = upper_envelope(&fs);
/// assert_eq!(env.eval(2.0), Some(5.0));
/// assert_eq!(env.eval(8.0), Some(8.0));
/// ```
pub fn upper_envelope(fs: &[Pwl]) -> Pwl {
    let mut it = fs.iter();
    let Some(first) = it.next() else {
        return Pwl::empty();
    };
    it.fold(first.clone(), |acc, f| acc.max(f))
}

/// The lower envelope (pointwise min) of many functions; defined where
/// **all** inputs are defined. Dual of [`upper_envelope`].
pub fn lower_envelope(fs: &[Pwl]) -> Pwl {
    let mut it = fs.iter();
    let Some(first) = it.next() else {
        return Pwl::empty();
    };
    it.fold(first.clone(), |acc, f| acc.min(f))
}

/// Sweeps the common refinement of the two functions' domains, yielding
/// `(lo, hi, seg_of_a, seg_of_b)` for every maximal cell where both are
/// defined by single segments. Zero-width cells are skipped.
pub(crate) fn zip_cells<'a>(
    a: &'a Pwl,
    b: &'a Pwl,
) -> impl Iterator<Item = (f64, f64, Segment, Segment)> + 'a {
    let mut i = 0;
    let mut j = 0;
    std::iter::from_fn(move || {
        while i < a.segs.len() && j < b.segs.len() {
            let sa = a.segs[i];
            let sb = b.segs[j];
            let lo = sa.x0.max(sb.x0);
            let hi = sa.x1.min(sb.x1);
            if sa.x1 <= sb.x1 {
                i += 1;
            } else {
                j += 1;
            }
            if hi > lo {
                return Some((lo, hi, sa, sb));
            }
        }
        None
    })
}

impl fmt::Display for Pwl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.segs.is_empty() {
            return write!(f, "⊥ (undefined)");
        }
        for (i, s) in self.segs.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_inside_outside_and_gaps() {
        let f = Pwl::from_segments(vec![
            Segment::new(0.0, 1.0, 0.0, 1.0),
            Segment::new(2.0, 3.0, 5.0, -1.0),
        ]);
        assert_eq!(f.eval(0.5), Some(0.5));
        assert_eq!(f.eval(1.5), None);
        assert_eq!(f.eval(2.5), Some(4.5));
        assert_eq!(f.eval(-1.0), None);
        assert_eq!(f.eval(4.0), None);
    }

    #[test]
    fn eval_at_boundaries_with_tolerance() {
        let f = Pwl::linear(1.0, 2.0, 0.0, 4.0);
        assert_eq!(f.eval(0.0), Some(1.0));
        assert_eq!(f.eval(4.0), Some(9.0));
        assert_eq!(f.eval(4.0 + 1e-12), Some(9.0));
    }

    #[test]
    fn add_scalar_and_linear() {
        let f = Pwl::linear(2.0, 3.0, 1.0, 5.0);
        let g = f.add_scalar(10.0);
        assert_eq!(g.eval(1.0), Some(12.0));
        let h = f.add_linear(1.0, 2.0); // f(x) + 1 + 2x
        assert_eq!(h.eval(2.0), Some(2.0 + 3.0 + 1.0 + 4.0));
    }

    #[test]
    fn add_linear_preserves_neg_inf() {
        let f = Pwl::neg_inf(0.0, 5.0);
        let g = f.add_linear(100.0, 7.0);
        assert_eq!(g.eval(3.0), Some(f64::NEG_INFINITY));
    }

    #[test]
    fn shift_arg_moves_domain() {
        let f = Pwl::linear(0.0, 1.0, 0.0, 10.0);
        let g = f.shifted_arg(4.0); // g(x) = f(x+4) on [-4, 6]
        assert_eq!(g.eval(-4.0), Some(0.0));
        assert_eq!(g.eval(0.0), Some(4.0));
        assert_eq!(g.eval(6.0), Some(10.0));
        assert_eq!(g.eval(7.0), None);
    }

    #[test]
    fn max_of_crossing_lines_has_breakpoint() {
        // f = x, g = 10 − x on [0, 10]; cross at 5.
        let f = Pwl::linear(0.0, 1.0, 0.0, 10.0);
        let g = Pwl::linear(10.0, -1.0, 0.0, 10.0);
        let m = f.max(&g);
        assert_eq!(m.segments().len(), 2);
        assert_eq!(m.eval(0.0), Some(10.0));
        assert_eq!(m.eval(5.0), Some(5.0));
        assert_eq!(m.eval(10.0), Some(10.0));
    }

    #[test]
    fn max_defined_only_on_common_domain() {
        let f = Pwl::linear(0.0, 0.0, 0.0, 4.0);
        let g = Pwl::linear(1.0, 0.0, 2.0, 8.0);
        let m = f.max(&g);
        assert_eq!(m.eval(1.0), None);
        assert_eq!(m.eval(3.0), Some(1.0));
        assert_eq!(m.eval(5.0), None);
    }

    #[test]
    fn max_with_neg_inf_side_returns_other() {
        let f = Pwl::neg_inf(0.0, 10.0);
        let g = Pwl::linear(1.0, 2.0, 0.0, 10.0);
        let m = f.max(&g);
        assert_eq!(m.eval(3.0), Some(7.0));
        let m2 = g.max(&f);
        assert_eq!(m2.eval(3.0), Some(7.0));
    }

    #[test]
    fn max_of_two_neg_inf_is_neg_inf() {
        let f = Pwl::neg_inf(0.0, 5.0);
        let m = f.max(&f.clone());
        assert_eq!(m.eval(2.0), Some(f64::NEG_INFINITY));
    }

    #[test]
    fn le_regions_of_crossing_lines() {
        let f = Pwl::linear(0.0, 1.0, 0.0, 10.0); // x
        let g = Pwl::constant(5.0, 0.0, 10.0);
        let r = f.le_regions(&g); // x ≤ 5
        assert!(r.contains(4.0));
        assert!(!r.contains(6.0));
        let r2 = g.le_regions(&f); // 5 ≤ x
        assert!(r2.contains(6.0));
        assert!(!r2.contains(4.0));
    }

    #[test]
    fn le_regions_neg_inf_always_below() {
        let f = Pwl::neg_inf(0.0, 10.0);
        let g = Pwl::constant(-1000.0, 0.0, 10.0);
        assert_eq!(f.le_regions(&g).measure(), 10.0);
        assert!(g.le_regions(&f).is_empty());
    }

    #[test]
    fn restrict_to_interval_set() {
        let f = Pwl::linear(0.0, 1.0, 0.0, 10.0);
        let keep = IntervalSet::from_spans([(1.0, 2.0), (8.0, 9.0)]);
        let g = f.restrict(&keep);
        assert_eq!(g.eval(1.5), Some(1.5));
        assert_eq!(g.eval(5.0), None);
        assert_eq!(g.eval(8.5), Some(8.5));
    }

    #[test]
    fn coalesce_merges_collinear() {
        let f = Pwl::from_segments(vec![
            Segment::new(0.0, 2.0, 0.0, 1.0),
            Segment::new(2.0, 5.0, 2.0, 1.0),
        ]);
        assert_eq!(f.segments().len(), 1);
    }

    #[test]
    fn min_max_values() {
        let f = Pwl::from_segments(vec![
            Segment::new(0.0, 2.0, 3.0, -1.0),
            Segment::new(2.0, 4.0, 1.0, 2.0),
        ]);
        assert_eq!(f.min_value(), Some(1.0));
        assert_eq!(f.max_value(), Some(5.0));
        assert_eq!(Pwl::empty().min_value(), None);
    }

    #[test]
    fn envelope_of_three() {
        let fs = [
            Pwl::linear(0.0, 1.0, 0.0, 10.0),
            Pwl::linear(10.0, -1.0, 0.0, 10.0),
            Pwl::constant(6.0, 0.0, 10.0),
        ];
        let env = upper_envelope(&fs);
        for x in [0.0, 2.5, 5.0, 7.5, 10.0] {
            let expect = fs
                .iter()
                .map(|f| f.eval(x).unwrap())
                .fold(f64::NEG_INFINITY, f64::max);
            assert!((env.eval(x).unwrap() - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn sample_covers_domain_and_skips_gaps() {
        let f = Pwl::from_segments(vec![
            Segment::new(0.0, 1.0, 0.0, 1.0),
            Segment::new(3.0, 4.0, 5.0, 0.0),
        ]);
        let pts = f.sample(9);
        // 9 samples over [0, 4]: x = 0, 0.5, …, 4; the gap (1, 3) drops
        // three of them.
        assert!(pts.len() < 9);
        for (x, y) in &pts {
            assert_eq!(f.eval(*x), Some(*y));
        }
        assert_eq!(pts.first().map(|p| p.0), Some(0.0));
        assert_eq!(pts.last().map(|p| p.0), Some(4.0));
        assert!(Pwl::empty().sample(5).is_empty());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Pwl::empty()), "⊥ (undefined)");
        assert!(format!("{}", Pwl::constant(1.0, 0.0, 1.0)).contains("↦"));
    }
}
