use std::fmt;

use crate::EPS;

/// A finite union of disjoint closed intervals on the real line.
///
/// `IntervalSet` tracks the *validity domain* of a dynamic-programming
/// subsolution: the set of external-capacitance values for which the
/// solution has not been proven suboptimal. Dominance pruning removes
/// regions with [`IntervalSet::subtract`]; combining subtrees intersects
/// domains with [`IntervalSet::intersect`].
///
/// Intervals are kept sorted, disjoint, and separated by more than [`EPS`]
/// (closer intervals are coalesced).
///
/// # Examples
///
/// ```
/// use msrnet_pwl::IntervalSet;
///
/// let a = IntervalSet::from_interval(0.0, 10.0);
/// let b = a.subtract(&IntervalSet::from_interval(3.0, 5.0));
/// assert!(b.contains(2.0));
/// assert!(!b.contains(4.0));
/// assert!(b.contains(7.0));
/// assert_eq!(b.measure(), 8.0);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct IntervalSet {
    // Sorted, pairwise-disjoint, each with lo <= hi.
    spans: Vec<(f64, f64)>,
}

impl IntervalSet {
    /// The empty set.
    pub fn empty() -> Self {
        IntervalSet { spans: Vec::new() }
    }

    /// A single interval `[lo, hi]`.
    ///
    /// Returns the empty set if `lo > hi`.
    pub fn from_interval(lo: f64, hi: f64) -> Self {
        if lo > hi {
            IntervalSet::empty()
        } else {
            IntervalSet {
                spans: vec![(lo, hi)],
            }
        }
    }

    /// Builds a set from raw spans, normalizing order and overlap.
    ///
    /// Spans with `lo > hi` are dropped; overlapping or near-touching
    /// (within [`EPS`]) spans are merged.
    pub fn from_spans<I: IntoIterator<Item = (f64, f64)>>(spans: I) -> Self {
        let mut v: Vec<(f64, f64)> = spans.into_iter().filter(|&(lo, hi)| lo <= hi).collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut out: Vec<(f64, f64)> = Vec::with_capacity(v.len());
        for (lo, hi) in v {
            match out.last_mut() {
                Some(last) if lo <= last.1 + EPS => last.1 = last.1.max(hi),
                _ => out.push((lo, hi)),
            }
        }
        IntervalSet { spans: out }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// The disjoint spans, sorted by lower endpoint.
    pub fn spans(&self) -> &[(f64, f64)] {
        &self.spans
    }

    /// Whether `x` lies in the set (inclusive endpoints).
    pub fn contains(&self, x: f64) -> bool {
        self.spans.iter().any(|&(lo, hi)| x >= lo && x <= hi)
    }

    /// Total length of all spans.
    pub fn measure(&self) -> f64 {
        self.spans.iter().map(|&(lo, hi)| hi - lo).sum()
    }

    /// Smallest element, if any.
    pub fn min(&self) -> Option<f64> {
        self.spans.first().map(|&(lo, _)| lo)
    }

    /// Largest element, if any.
    pub fn max(&self) -> Option<f64> {
        self.spans.last().map(|&(_, hi)| hi)
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        IntervalSet::from_spans(self.spans.iter().chain(other.spans.iter()).copied())
    }

    /// Set intersection.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.spans.len() && j < other.spans.len() {
            let (alo, ahi) = self.spans[i];
            let (blo, bhi) = other.spans[j];
            let lo = alo.max(blo);
            let hi = ahi.min(bhi);
            if lo <= hi {
                out.push((lo, hi));
            }
            if ahi < bhi {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { spans: out }
    }

    /// Set difference `self \ other`.
    ///
    /// Removals thinner than [`EPS`] may leave degenerate slivers; slivers
    /// shorter than `EPS` are discarded so that pruning makes progress.
    pub fn subtract(&self, other: &IntervalSet) -> IntervalSet {
        let mut out: Vec<(f64, f64)> = Vec::new();
        let mut j = 0;
        for &(lo, hi) in &self.spans {
            let mut cur = lo;
            while j < other.spans.len() && other.spans[j].1 < cur {
                j += 1;
            }
            let mut k = j;
            while k < other.spans.len() && other.spans[k].0 <= hi {
                let (blo, bhi) = other.spans[k];
                if blo > cur {
                    out.push((cur, blo.min(hi)));
                }
                cur = cur.max(bhi);
                if cur >= hi {
                    break;
                }
                k += 1;
            }
            if cur < hi {
                out.push((cur, hi));
            }
        }
        out.retain(|&(lo, hi)| hi - lo > EPS);
        IntervalSet { spans: out }
    }

    /// Translates every span by `dx` (may be negative).
    pub fn shift(&self, dx: f64) -> IntervalSet {
        IntervalSet {
            spans: self.spans.iter().map(|&(lo, hi)| (lo + dx, hi + dx)).collect(),
        }
    }

    /// Clamps the set to `[lo, hi]`.
    pub fn clamp(&self, lo: f64, hi: f64) -> IntervalSet {
        self.intersect(&IntervalSet::from_interval(lo, hi))
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.spans.is_empty() {
            return write!(f, "∅");
        }
        for (i, (lo, hi)) in self.spans.iter().enumerate() {
            if i > 0 {
                write!(f, " ∪ ")?;
            }
            write!(f, "[{lo}, {hi}]")?;
        }
        Ok(())
    }
}

impl FromIterator<(f64, f64)> for IntervalSet {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        IntervalSet::from_spans(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_behaves() {
        let e = IntervalSet::empty();
        assert!(e.is_empty());
        assert!(!e.contains(0.0));
        assert_eq!(e.measure(), 0.0);
        assert_eq!(e.min(), None);
        assert_eq!(format!("{e}"), "∅");
    }

    #[test]
    fn from_interval_rejects_inverted() {
        assert!(IntervalSet::from_interval(5.0, 1.0).is_empty());
    }

    #[test]
    fn from_spans_normalizes_overlap() {
        let s = IntervalSet::from_spans([(4.0, 6.0), (0.0, 2.0), (1.5, 3.0)]);
        assert_eq!(s.spans(), &[(0.0, 3.0), (4.0, 6.0)]);
    }

    #[test]
    fn intersect_basic() {
        let a = IntervalSet::from_spans([(0.0, 5.0), (10.0, 20.0)]);
        let b = IntervalSet::from_spans([(3.0, 12.0), (15.0, 25.0)]);
        let c = a.intersect(&b);
        assert_eq!(c.spans(), &[(3.0, 5.0), (10.0, 12.0), (15.0, 20.0)]);
    }

    #[test]
    fn subtract_splits_interval() {
        let a = IntervalSet::from_interval(0.0, 10.0);
        let b = IntervalSet::from_spans([(2.0, 3.0), (8.0, 20.0)]);
        let c = a.subtract(&b);
        assert_eq!(c.spans(), &[(0.0, 2.0), (3.0, 8.0)]);
    }

    #[test]
    fn subtract_everything_is_empty() {
        let a = IntervalSet::from_spans([(1.0, 2.0), (3.0, 4.0)]);
        let b = IntervalSet::from_interval(0.0, 5.0);
        assert!(a.subtract(&b).is_empty());
    }

    #[test]
    fn subtract_nothing_is_identity() {
        let a = IntervalSet::from_spans([(1.0, 2.0), (3.0, 4.0)]);
        assert_eq!(a.subtract(&IntervalSet::empty()), a);
    }

    #[test]
    fn union_merges_touching() {
        let a = IntervalSet::from_interval(0.0, 1.0);
        let b = IntervalSet::from_interval(1.0, 2.0);
        assert_eq!(a.union(&b).spans(), &[(0.0, 2.0)]);
    }

    #[test]
    fn shift_and_clamp() {
        let a = IntervalSet::from_interval(0.0, 10.0).shift(-4.0);
        assert_eq!(a.spans(), &[(-4.0, 6.0)]);
        assert_eq!(a.clamp(0.0, 100.0).spans(), &[(0.0, 6.0)]);
    }

    #[test]
    fn measure_sums_spans() {
        let a = IntervalSet::from_spans([(0.0, 1.0), (5.0, 7.5)]);
        assert!((a.measure() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn collect_from_iterator() {
        let s: IntervalSet = [(0.0, 1.0), (2.0, 3.0)].into_iter().collect();
        assert_eq!(s.spans().len(), 2);
    }
}
