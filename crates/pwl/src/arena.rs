//! Scratch arena for PWL segment storage — see [`SegmentArena`].

use crate::function::{coalesce_in_place, zip_cells};
use crate::{Pwl, Segment, EPS};

/// Upper bound on retained free buffers — past this, recycled buffers
/// are simply dropped so a pathological peak cannot pin memory forever.
const MAX_FREE: usize = 4096;

/// A free list of segment buffers plus fused, allocation-free PWL
/// operations.
///
/// The MSRI dynamic program builds and discards millions of short-lived
/// [`Pwl`] values: every wire traversal and every join pair produces a
/// handful of shifted/clamped/maxed temporaries whose backing `Vec`s
/// would otherwise go through the global allocator each time. A
/// `SegmentArena` keeps a free list of segment buffers and exposes
/// **fused** operations that produce each result in a single pass over
/// the input, writing into a recycled buffer.
///
/// Every fused operation is **bit-identical** to the composition of the
/// corresponding [`Pwl`] primitives — it performs exactly the same
/// floating-point operations in exactly the same order, only the
/// intermediate allocations disappear. The unit tests assert equality
/// with `==` (exact segment comparison), not a tolerance; the batch
/// engine's determinism guarantee (parallel runs bit-identical to
/// sequential) builds on this property.
///
/// Not thread-safe by design: each worker thread owns one arena (the
/// batch engine creates one per worker).
///
/// # Examples
///
/// ```
/// use msrnet_pwl::{Pwl, SegmentArena};
///
/// let mut arena = SegmentArena::new();
/// let f = Pwl::linear(1.0, 2.0, 0.0, 10.0);
///
/// // Fused shift + add-linear + clamp, equal to the composed pipeline.
/// let fused = arena.shift_linear_clamp(&f, 1.0, 0.5, 3.0, 0.0, 8.0);
/// let composed = f.shifted_arg(1.0).add_linear(0.5, 3.0).clamp_domain(0.0, 8.0);
/// assert_eq!(fused.segments(), composed.segments());
///
/// // Returning a value to the arena lets the next operation reuse its
/// // allocation.
/// arena.recycle(fused);
/// let _g = arena.shift_clamp(&f, 2.0, 0.0, 8.0);
/// assert!(arena.reused() >= 1);
/// ```
#[derive(Debug, Default)]
pub struct SegmentArena {
    free: Vec<Vec<Segment>>,
    taken: u64,
    reused: u64,
}

/// A free-list level captured by [`SegmentArena::checkpoint`].
#[derive(Clone, Copy, Debug)]
pub struct ArenaCheckpoint {
    free_len: usize,
}

impl SegmentArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        SegmentArena::default()
    }

    /// Total buffer requests served.
    pub fn taken(&self) -> u64 {
        self.taken
    }

    /// Buffer requests served from the free list (no allocation).
    pub fn reused(&self) -> u64 {
        self.reused
    }

    /// Buffers currently parked on the free list.
    pub fn free_buffers(&self) -> usize {
        self.free.len()
    }

    /// Records the arena's current free-list level so a later
    /// [`SegmentArena::restore`] can cap it back. Long-lived sessions
    /// (the incremental optimizer runs many queries against one arena)
    /// checkpoint after their steady-state warm-up and restore after
    /// each query: cached candidate sets own their segments outright, so
    /// trimming the free list never invalidates them — it only bounds
    /// how much scratch memory a pathological query leaves behind.
    pub fn checkpoint(&self) -> ArenaCheckpoint {
        ArenaCheckpoint {
            free_len: self.free.len(),
        }
    }

    /// Drops free buffers in excess of `cp`'s level. Buffers handed out
    /// or recycled since the checkpoint are unaffected beyond that cap;
    /// the `taken`/`reused` counters keep running.
    pub fn restore(&mut self, cp: &ArenaCheckpoint) {
        self.free.truncate(cp.free_len);
    }

    /// Returns a `Pwl`'s backing storage to the free list.
    pub fn recycle(&mut self, f: Pwl) {
        self.recycle_vec(f.into_segments());
    }

    /// Returns a raw segment buffer to the free list.
    pub fn recycle_vec(&mut self, buf: Vec<Segment>) {
        if buf.capacity() > 0 && self.free.len() < MAX_FREE {
            self.free.push(buf);
        }
    }

    /// Pops a cleared buffer with at least `cap_hint` capacity,
    /// allocating only when the free list is empty.
    fn buffer(&mut self, cap_hint: usize) -> Vec<Segment> {
        self.taken += 1;
        match self.free.pop() {
            Some(mut b) => {
                self.reused += 1;
                b.clear();
                b.reserve(cap_hint);
                b
            }
            None => Vec::with_capacity(cap_hint),
        }
    }

    /// Fused `f.shifted_arg(dx).add_linear(c0, slope).clamp_domain(lo, hi)`
    /// — the wire-traversal (*Augment*) arrival update — in one pass.
    pub fn shift_linear_clamp(
        &mut self,
        f: &Pwl,
        dx: f64,
        c0: f64,
        slope: f64,
        lo: f64,
        hi: f64,
    ) -> Pwl {
        let mut out = self.buffer(f.segments().len());
        for s in f.segments() {
            // Exactly `shifted_arg`:
            let sh = Segment::new(s.x0 - dx, s.x1 - dx, s.y0, s.slope);
            // Exactly `add_linear` (the -∞ plateau passes through):
            let ln = if sh.y0 == f64::NEG_INFINITY {
                sh
            } else {
                Segment::new(sh.x0, sh.x1, sh.y0 + c0 + slope * sh.x0, sh.slope + slope)
            };
            // Exactly `clamp_domain`:
            if let Some(r) = ln.restricted(lo, hi) {
                out.push(r);
            }
        }
        coalesce_in_place(&mut out);
        Pwl::from_raw(out)
    }

    /// Fused `f.shifted_arg(dx).clamp_domain(lo, hi)` — the join-step
    /// re-basing of a sibling's characteristic — in one pass.
    pub fn shift_clamp(&mut self, f: &Pwl, dx: f64, lo: f64, hi: f64) -> Pwl {
        let mut out = self.buffer(f.segments().len());
        for s in f.segments() {
            let sh = Segment::new(s.x0 - dx, s.x1 - dx, s.y0, s.slope);
            if let Some(r) = sh.restricted(lo, hi) {
                out.push(r);
            }
        }
        coalesce_in_place(&mut out);
        Pwl::from_raw(out)
    }

    /// Arena-backed [`Pwl::max`]: identical result, recycled buffer.
    pub fn max(&mut self, a: &Pwl, b: &Pwl) -> Pwl {
        let mut out = self.buffer(a.segments().len() + b.segments().len());
        for (lo, hi, sa, sb) in zip_cells(a, b) {
            let ya0 = sa.value_at(lo);
            let yb0 = sb.value_at(lo);
            if ya0 == f64::NEG_INFINITY {
                out.push(Segment::new(lo, hi, yb0, sb.slope));
                continue;
            }
            if yb0 == f64::NEG_INFINITY {
                out.push(Segment::new(lo, hi, ya0, sa.slope));
                continue;
            }
            let dy0 = ya0 - yb0;
            let ds = sa.slope - sb.slope;
            let cross = if ds.abs() > EPS {
                let x = lo - dy0 / ds;
                (x > lo + EPS && x < hi - EPS).then_some(x)
            } else {
                None
            };
            match cross {
                Some(x) => {
                    let (first, second) = if dy0 > 0.0 { (sa, sb) } else { (sb, sa) };
                    out.push(Segment::new(lo, x, first.value_at(lo), first.slope));
                    out.push(Segment::new(x, hi, second.value_at(x), second.slope));
                }
                None => {
                    let mid = 0.5 * (lo + hi);
                    let win = if sa.value_at(mid) >= sb.value_at(mid) {
                        sa
                    } else {
                        sb
                    };
                    out.push(Segment::new(lo, hi, win.value_at(lo), win.slope));
                }
            }
        }
        // `Pwl::max` finishes with `from_segments`; cells are emitted in
        // ascending order, so the sort there is the identity and
        // `from_sorted_segments` produces the identical result.
        Pwl::from_sorted_segments(out)
    }

    /// Arena-backed [`Pwl::add_scalar`]: identical result, recycled
    /// buffer.
    pub fn add_scalar(&mut self, f: &Pwl, c: f64) -> Pwl {
        debug_assert!(c.is_finite() || c == f64::NEG_INFINITY);
        let mut out = self.buffer(f.segments().len());
        for s in f.segments() {
            out.push(Segment::new(s.x0, s.x1, s.y0 + c, s.slope));
        }
        // `add_scalar` does not coalesce; neither do we.
        Pwl::from_raw(out)
    }

    /// Arena-backed [`Pwl::linear`].
    pub fn linear(&mut self, y_at_lo: f64, slope: f64, lo: f64, hi: f64) -> Pwl {
        let mut out = self.buffer(1);
        out.push(Segment::new(lo, hi, y_at_lo, slope));
        Pwl::from_raw(out)
    }

    /// Arena-backed [`Pwl::constant`].
    pub fn constant(&mut self, y: f64, lo: f64, hi: f64) -> Pwl {
        self.linear(y, 0.0, lo, hi)
    }

    /// Arena-backed [`Pwl::neg_inf`].
    pub fn neg_inf(&mut self, lo: f64, hi: f64) -> Pwl {
        self.constant(f64::NEG_INFINITY, lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrnet_rng::{Rng, SeedableRng, SplitMix64};

    /// Random continuous-ish PWL on [0, 10] with occasional -∞ plateaus.
    fn arb_pwl(rng: &mut SplitMix64) -> Pwl {
        let n = rng.gen_range(1..6usize);
        let mut segs = Vec::new();
        let mut x = 0.0;
        for _ in 0..n {
            let w = rng.gen_range(0.5..3.0f64);
            let y = if rng.gen_bool(0.15) {
                f64::NEG_INFINITY
            } else {
                rng.gen_range(-50.0..50.0f64)
            };
            let slope = rng.gen_range(-5.0..5.0f64);
            segs.push(Segment::new(x, x + w, y, slope));
            x += w;
        }
        Pwl::from_segments(segs)
    }

    #[test]
    fn fused_shift_linear_clamp_is_bit_identical() {
        let mut rng = SplitMix64::seed_from_u64(70);
        let mut arena = SegmentArena::new();
        for _ in 0..256 {
            let f = arb_pwl(&mut rng);
            let dx = rng.gen_range(-3.0..3.0f64);
            let c0 = rng.gen_range(-10.0..10.0f64);
            let slope = rng.gen_range(-4.0..4.0f64);
            let lo = rng.gen_range(-2.0..2.0f64);
            let hi = lo + rng.gen_range(0.0..12.0f64);
            let fused = arena.shift_linear_clamp(&f, dx, c0, slope, lo, hi);
            let composed = f.shifted_arg(dx).add_linear(c0, slope).clamp_domain(lo, hi);
            assert_eq!(fused.segments(), composed.segments(), "f = {f}");
            arena.recycle(fused);
        }
        assert!(arena.reused() > 0, "free list is exercised");
    }

    #[test]
    fn checkpoint_restore_caps_the_free_list() {
        let mut rng = SplitMix64::seed_from_u64(72);
        let mut arena = SegmentArena::new();
        // Warm up with a couple of parked buffers.
        for _ in 0..2 {
            let f = arb_pwl(&mut rng);
            arena.recycle(f);
        }
        let cp = arena.checkpoint();
        let level = arena.free_buffers();
        // A query leaves extra scratch behind...
        for _ in 0..8 {
            let f = arb_pwl(&mut rng);
            arena.recycle(f);
        }
        assert!(arena.free_buffers() > level);
        // ...restore trims back to the checkpoint, not below.
        arena.restore(&cp);
        assert_eq!(arena.free_buffers(), level);
        arena.restore(&cp);
        assert_eq!(arena.free_buffers(), level);
        // Restoring does not break reuse: the surviving buffers still
        // serve requests, and operations after restore stay correct.
        let f = arb_pwl(&mut rng);
        let fused = arena.shift_clamp(&f, 1.0, 0.0, 8.0);
        let composed = f.shifted_arg(1.0).clamp_domain(0.0, 8.0);
        assert_eq!(fused.segments(), composed.segments());
        assert!(arena.reused() > 0);
    }

    #[test]
    fn fused_shift_clamp_is_bit_identical() {
        let mut rng = SplitMix64::seed_from_u64(71);
        let mut arena = SegmentArena::new();
        for _ in 0..256 {
            let f = arb_pwl(&mut rng);
            let dx = rng.gen_range(-3.0..3.0f64);
            let lo = rng.gen_range(-2.0..2.0f64);
            let hi = lo + rng.gen_range(0.0..12.0f64);
            let fused = arena.shift_clamp(&f, dx, lo, hi);
            let composed = f.shifted_arg(dx).clamp_domain(lo, hi);
            assert_eq!(fused.segments(), composed.segments(), "f = {f}");
            arena.recycle(fused);
        }
    }

    #[test]
    fn arena_max_and_add_scalar_are_bit_identical() {
        let mut rng = SplitMix64::seed_from_u64(72);
        let mut arena = SegmentArena::new();
        for _ in 0..256 {
            let a = arb_pwl(&mut rng);
            let b = arb_pwl(&mut rng);
            let m = arena.max(&a, &b);
            assert_eq!(m.segments(), a.max(&b).segments(), "a = {a}, b = {b}");
            let c = rng.gen_range(-20.0..20.0f64);
            let s = arena.add_scalar(&a, c);
            assert_eq!(s.segments(), a.add_scalar(c).segments());
            arena.recycle(m);
            arena.recycle(s);
        }
    }

    #[test]
    fn constructors_match_pwl_constructors() {
        let mut arena = SegmentArena::new();
        assert_eq!(
            arena.linear(3.0, 2.0, 0.0, 5.0).segments(),
            Pwl::linear(3.0, 2.0, 0.0, 5.0).segments()
        );
        assert_eq!(
            arena.constant(7.0, 1.0, 4.0).segments(),
            Pwl::constant(7.0, 1.0, 4.0).segments()
        );
        assert_eq!(
            arena.neg_inf(0.0, 2.0).segments(),
            Pwl::neg_inf(0.0, 2.0).segments()
        );
    }

    #[test]
    fn recycling_reuses_allocations() {
        let mut arena = SegmentArena::new();
        let f = Pwl::linear(0.0, 1.0, 0.0, 10.0);
        let g = arena.shift_clamp(&f, 1.0, 0.0, 10.0);
        assert_eq!(arena.taken(), 1);
        assert_eq!(arena.reused(), 0);
        arena.recycle(g);
        assert_eq!(arena.free_buffers(), 1);
        let _h = arena.shift_clamp(&f, 2.0, 0.0, 10.0);
        assert_eq!(arena.taken(), 2);
        assert_eq!(arena.reused(), 1);
        assert_eq!(arena.free_buffers(), 0);
    }
}
