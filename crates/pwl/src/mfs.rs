//! Minimal functional subset (MFS) computation — dominance pruning over
//! tuples of scalars and PWL functions (paper §IV-D, Definition 4.3 and
//! the divide-and-conquer algorithm of Fig. 4), plus a cost-bucketed
//! sorted-sweep engine ([`mfs_bucketed`]) that front-loads cheap scalar
//! predicates before any PWL comparison, in the spirit of Li & Shi's
//! sorted-candidate buffer-insertion pruning.

use std::cmp::Ordering;

use crate::{IntervalSet, Pwl};

/// A candidate in a functional-dominance problem: a payload plus the
/// dominance coordinates — some scalar dimensions and some PWL dimensions,
/// all to be *minimized*.
///
/// In the repeater-insertion DP the scalars are (cost, capacitance,
/// delay-to-internal-sinks) and the PWLs are (arrival `Y`, internal
/// diameter `D`); the payload is the trace used to reconstruct the
/// repeater assignment.
///
/// The candidate's *validity domain* starts as the intersection of its PWL
/// domains and shrinks as pruning proves it suboptimal on regions of the
/// external-capacitance axis.
///
/// # Examples
///
/// ```
/// use msrnet_pwl::{mfs_naive, FuncPoint, Pwl};
///
/// let cheap_slow = FuncPoint::new("a", vec![1.0], vec![Pwl::constant(9.0, 0.0, 1.0)]);
/// let costly_fast = FuncPoint::new("b", vec![2.0], vec![Pwl::constant(5.0, 0.0, 1.0)]);
/// let costly_slow = FuncPoint::new("c", vec![2.0], vec![Pwl::constant(9.0, 0.0, 1.0)]);
/// let kept = mfs_naive(vec![cheap_slow, costly_fast, costly_slow]);
/// let names: Vec<_> = kept.iter().map(|p| p.payload).collect();
/// assert_eq!(names, vec!["a", "b"]); // "c" is dominated by both
/// ```
#[derive(Clone, Debug)]
pub struct FuncPoint<T> {
    /// Caller data carried through pruning (e.g., a DP trace id).
    pub payload: T,
    /// Scalar dimensions, minimized.
    pub scalars: Vec<f64>,
    /// PWL dimensions, minimized pointwise; kept restricted to the
    /// validity domain.
    pub pwls: Vec<Pwl>,
    domain: IntervalSet,
}

impl<T> FuncPoint<T> {
    /// Creates a candidate; its initial validity domain is the
    /// intersection of the PWL domains (the whole line if there are no
    /// PWL dimensions, making this a plain vector-dominance point).
    pub fn new(payload: T, scalars: Vec<f64>, pwls: Vec<Pwl>) -> Self {
        let domain = pwls
            .iter()
            .map(Pwl::domain)
            .reduce(|a, b| a.intersect(&b))
            .unwrap_or_else(|| IntervalSet::from_interval(f64::NEG_INFINITY, f64::INFINITY));
        let mut fp = FuncPoint {
            payload,
            scalars,
            pwls,
            domain,
        };
        fp.sync_pwls();
        fp
    }

    /// The current validity domain (where this candidate is not yet proven
    /// suboptimal).
    pub fn domain(&self) -> &IntervalSet {
        &self.domain
    }

    /// Whether any validity region remains.
    pub fn is_valid(&self) -> bool {
        !self.domain.is_empty()
    }

    /// Removes `region` from the validity domain, restricting all PWLs.
    pub fn invalidate(&mut self, region: &IntervalSet) {
        if region.is_empty() {
            return;
        }
        self.domain = self.domain.subtract(region);
        self.sync_pwls();
    }

    fn sync_pwls(&mut self) {
        for p in &mut self.pwls {
            *p = p.restrict(&self.domain);
        }
    }

    /// Whether every scalar of `self` is ≤ the corresponding scalar of
    /// `other` (a necessary condition for dominance anywhere).
    fn scalars_le(&self, other: &Self) -> bool {
        debug_assert_eq!(self.scalars.len(), other.scalars.len());
        self.scalars
            .iter()
            .zip(&other.scalars)
            .all(|(a, b)| a <= b)
    }

    /// The region of the axis where `self` dominates `other` in **every**
    /// dimension (scalars and PWLs), intersected with both validity
    /// domains. Empty if the scalars already fail.
    ///
    /// Exposed so that callers can build custom pruning strategies (e.g.
    /// the whole-domain-only ablation in `msrnet-core`).
    pub fn dominance_region(&self, other: &Self) -> IntervalSet {
        if !self.scalars_le(other) {
            return IntervalSet::empty();
        }
        debug_assert_eq!(self.pwls.len(), other.pwls.len());
        let mut region = self.domain.intersect(&other.domain);
        for (a, b) in self.pwls.iter().zip(&other.pwls) {
            if region.is_empty() {
                break;
            }
            region = region.intersect(&a.le_regions(b));
        }
        region
    }
}

/// Prunes the ordered pair: first `a` prunes `b` (non-strict dominance),
/// then `b` prunes `a` against `b`'s *updated* domain. The two-step order
/// guarantees that ties never annihilate both candidates.
fn prune_pair<T>(a: &mut FuncPoint<T>, b: &mut FuncPoint<T>) {
    if !a.is_valid() || !b.is_valid() {
        return;
    }
    let r = a.dominance_region(b);
    b.invalidate(&r);
    if !b.is_valid() {
        return;
    }
    let r = b.dominance_region(a);
    a.invalidate(&r);
}

/// Computes the minimal functional subset by pairwise pruning
/// (`O(n²)` pair comparisons). Candidates proven suboptimal everywhere are
/// dropped; survivors keep only the regions where they may matter.
///
/// The result preserves optimality: for every point `x` of the original
/// domains and every removed candidate, some surviving candidate defined
/// at `x` is at least as good in every dimension.
pub fn mfs_naive<T>(mut items: Vec<FuncPoint<T>>) -> Vec<FuncPoint<T>> {
    pairwise(&mut items);
    items.retain(FuncPoint::is_valid);
    items
}

fn pairwise<T>(items: &mut [FuncPoint<T>]) {
    for j in 1..items.len() {
        let (left, right) = items.split_at_mut(j);
        let b = &mut right[0];
        for a in left.iter_mut() {
            prune_pair(a, b);
            if !b.is_valid() {
                break;
            }
        }
    }
}

/// Counters describing one sorted-sweep MFS run ([`mfs_sorted_sweep`]):
/// how many candidates were eliminated by the cheap summary predicate
/// alone (no PWL region computation) versus by the exact region-wise
/// comparisons.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MfsCounts {
    /// Candidates fully eliminated by the scalar/summary predicate,
    /// before any `dominance_region` call.
    pub scalar_killed: u64,
    /// Candidates fully eliminated by exact PWL region pruning.
    pub pwl_killed: u64,
    /// Subset of `scalar_killed` where the `eps`-relaxation was
    /// *load-bearing*: the summary predicate fails at `eps = 0` for the
    /// same pair, so discarding the candidate consumed one `(1+eps)`
    /// factor of the approximation budget. Always 0 when `eps = 0`.
    pub relaxed_killed: u64,
}

/// Cached O(1)-comparable summary of a candidate: bounding span of its
/// validity domain and per-PWL-dimension value range. Recomputed only
/// when the candidate's domain shrinks.
struct Summary {
    dom_lo: f64,
    dom_hi: f64,
    /// Whether the validity domain is one contiguous span (required for
    /// the summary to certify full-domain coverage of another candidate).
    single_span: bool,
    /// Per-PWL-dimension minimum value over the current domain.
    lo: Vec<f64>,
    /// Per-PWL-dimension maximum value over the current domain.
    hi: Vec<f64>,
}

fn summarize<T>(fp: &FuncPoint<T>) -> Summary {
    let spans = fp.domain().spans();
    Summary {
        dom_lo: spans.first().map_or(f64::INFINITY, |s| s.0),
        dom_hi: spans.last().map_or(f64::NEG_INFINITY, |s| s.1),
        single_span: spans.len() == 1,
        lo: fp
            .pwls
            .iter()
            .map(|p| p.min_value().unwrap_or(f64::INFINITY))
            .collect(),
        hi: fp
            .pwls
            .iter()
            .map(|p| p.max_value().unwrap_or(f64::NEG_INFINITY))
            .collect(),
    }
}

/// `survivor ≤ victim + eps·|victim|`, with exact fallback where the
/// slack is not finite.
///
/// The slack is measured against the **victim** — the candidate being
/// discarded — which is exactly how the [`mfs_approximate`] guarantee is
/// stated ("within `eps·|p.scalar[k]|` of the *discarded* candidate `p`").
/// The threshold map `g(t) = t + eps·|t|` is strictly increasing in `t`
/// for `eps < 1` (`g'(t) = 1 ± eps > 0`), which is what lets a summary
/// comparison against the victim's *minimum* value certify the pointwise
/// guarantee over the victim's whole domain: if
/// `max_x s(x) ≤ g(min_x p(x))`, then for every `x`,
/// `s(x) ≤ g(min p) ≤ g(p(x))` by monotonicity. It also makes the
/// single-step (1+eps) coverage argument compose with later *exact*
/// invalidations of the survivor (see [`mfs_approximate`]).
fn relaxed_le(survivor: f64, victim: f64, eps: f64) -> bool {
    // msrnet-allow: float-eq eps == 0.0 selects the exact comparison path bit-identically
    if eps == 0.0 {
        return survivor <= victim;
    }
    let slack = eps * victim.abs();
    if slack.is_finite() {
        survivor <= victim + slack
    } else {
        survivor <= victim
    }
}

/// Sufficient (never speculative) predicate: `a` dominates `b` over
/// *all* of `b`'s remaining domain, established from summaries alone.
/// With `eps > 0` the comparisons are relaxed by a relative `eps`
/// measured against `b` — the candidate that will be **discarded** if
/// the predicate holds — trading exactness for coalescing
/// near-duplicates while keeping the [`mfs_approximate`] guarantee
/// statable in terms of the discarded candidate's own values.
fn summary_kills<T>(
    a: &FuncPoint<T>,
    sa: &Summary,
    b: &FuncPoint<T>,
    sb: &Summary,
    eps: f64,
) -> bool {
    if !sa.single_span || sa.dom_lo > sb.dom_lo || sa.dom_hi < sb.dom_hi {
        return false;
    }
    let scalars_ok = a
        .scalars
        .iter()
        .zip(&b.scalars)
        .all(|(x, y)| relaxed_le(*x, *y, eps));
    scalars_ok
        && sa
            .hi
            .iter()
            .zip(&sb.lo)
            .all(|(ah, bl)| relaxed_le(*ah, *bl, eps))
}

/// Necessary condition for `a.dominance_region(b)` to be non-empty,
/// checked from summaries in O(dims) — skips the expensive `le_regions`
/// intersection for hopeless pairs.
fn may_dominate<T>(a: &FuncPoint<T>, sa: &Summary, b: &FuncPoint<T>, sb: &Summary) -> bool {
    a.scalars_le(b)
        && sa.dom_lo <= sb.dom_hi
        && sb.dom_lo <= sa.dom_hi
        && sa.lo.iter().zip(&sb.hi).all(|(al, bh)| *al <= *bh)
}

/// Cost-bucketed sorted-sweep MFS: sorts candidates lexicographically by
/// their scalars with `total_cmp`, eliminates summary-dominated
/// candidates with cheap O(dims) predicates, and runs the exact PWL
/// `dominance_region` comparisons only on pairs the summaries cannot
/// decide. Produces the same optimal envelopes as [`mfs_naive`].
///
/// Sorting makes cross-bucket pruning one-directional: a candidate can
/// only be region-pruned by candidates of smaller-or-equal first scalar
/// ("cost"), so the reverse `dominance_region` is attempted only within
/// a bucket of equal cost. Note that comparisons are *not* restricted to
/// adjacent cost levels — a level-`i` candidate can dominate a
/// level-`i+2` candidate even when level `i+1` offers no coverage, so an
/// adjacent-only sweep would keep dominated candidates alive; the cheap
/// summary prefilters are what keep the full sweep fast.
pub fn mfs_bucketed<T>(items: Vec<FuncPoint<T>>) -> Vec<FuncPoint<T>> {
    mfs_sorted_sweep(items, 0.0).0
}

/// Approximate MFS with a documented (1+eps) guarantee: in addition to
/// exact region pruning, coalesces candidates whose scalars and PWL
/// envelopes are within a relative `eps` of a kept candidate.
///
/// Guarantee (for `0 ≤ eps < 1`): for every discarded candidate `p` and
/// every point `x` of `p`'s domain, some survivor `s` is defined at `x`
/// with `s.scalar[k] ≤ p.scalar[k] + eps·|p.scalar[k]|` for every scalar
/// and `s.pwl[d](x) ≤ p.pwl[d](x) + eps·|p.pwl[d](x)|` for every PWL
/// dimension — i.e. within a factor `(1+eps)` for non-negative values.
/// The slack is measured against the *discarded* candidate (see
/// `relaxed_le`): the relaxed summary predicate checks
/// `max_x s ≤ min_x p + eps·|min_x p|`, and because `t ↦ t + eps·|t|`
/// is increasing for `eps < 1`, `min_x p` is the hardest point — the
/// pointwise bound follows over all of `p`'s domain.
///
/// Relaxed kills are never chained *within one sweep*: a candidate is
/// only ever relaxed-killed during its own sweep round, before it has
/// absorbed anyone in the forward direction, so a relaxed killer can
/// later be displaced only by an **exactly** better candidate — the
/// error never compounds inside a single pruning pass. Across repeated
/// passes (e.g. once per DP step) each pass can add at most one fresh
/// `(1+eps)` factor to any coverage chain; callers that need the
/// end-to-end budget can count the chain depth exactly with
/// [`mfs_sorted_sweep_with`]'s kill callback (the repeater-insertion DP
/// threads this into its relaxation ledger). With `eps = 0` this is
/// exactly [`mfs_bucketed`] and the result's envelopes equal
/// [`mfs_naive`]'s.
///
/// # Panics
///
/// Panics if `eps` is not in `[0, 1)` or is NaN.
pub fn mfs_approximate<T>(items: Vec<FuncPoint<T>>, eps: f64) -> Vec<FuncPoint<T>> {
    assert!(
        (0.0..1.0).contains(&eps),
        "eps must be in [0, 1), got {eps}"
    );
    mfs_sorted_sweep(items, eps).0
}

/// The engine behind [`mfs_bucketed`] / [`mfs_approximate`], returning
/// elimination counters so callers (the DP's pruning statistics) can
/// attribute kills to the scalar presweep vs the PWL comparisons.
///
/// `eps = 0` is exact; see [`mfs_approximate`] for the `eps > 0`
/// semantics.
pub fn mfs_sorted_sweep<T>(
    items: Vec<FuncPoint<T>>,
    eps: f64,
) -> (Vec<FuncPoint<T>>, MfsCounts) {
    mfs_sorted_sweep_with(items, eps, &mut |_, _, _| {})
}

/// [`mfs_sorted_sweep`] with an observer invoked on every invalidation
/// event: `on_kill(&mut survivor.payload, &victim.payload, relaxed)`.
///
/// `relaxed` is `true` only for summary kills where the `eps`-slack was
/// load-bearing (the same pair fails the exact predicate); every region
/// invalidation — full or partial — reports `relaxed = false` because
/// [`FuncPoint::dominance_region`] is exact. The callback fires *before*
/// the victim's domain is restricted, so the victim payload still
/// reflects its pre-kill state. This is the hook the repeater-insertion
/// DP uses to thread its per-candidate relaxation ledger: transferring
/// `max(survivor.relax, victim.relax + relaxed as u32)` onto the
/// survivor at each event yields an upper bound on the depth of any
/// relaxed coverage chain, hence a machine-checkable `(1+eps)^depth`
/// end-to-end budget.
pub fn mfs_sorted_sweep_with<T>(
    mut items: Vec<FuncPoint<T>>,
    eps: f64,
    on_kill: &mut dyn FnMut(&mut T, &T, bool),
) -> (Vec<FuncPoint<T>>, MfsCounts) {
    let mut counts = MfsCounts::default();
    // Lexicographic sort on all scalars; total_cmp keeps the order total
    // (and deterministic) even if a caller feeds NaN scalars. The sort
    // is stable, so exact ties keep their generation order and the
    // forward sweep's "earlier index wins ties" rule is well defined.
    items.sort_by(|a, b| {
        a.scalars
            .iter()
            .zip(&b.scalars)
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or(Ordering::Equal)
    });
    let mut summaries: Vec<Summary> = items.iter().map(summarize).collect();
    for j in 1..items.len() {
        if !items.get(j).is_some_and(|it| it.is_valid()) {
            continue;
        }
        for i in 0..j {
            if !items.get(i).is_some_and(|it| it.is_valid()) {
                continue;
            }
            let (head, tail) = items.split_at_mut(j);
            let a = &mut head[i];
            let b = &mut tail[0];
            // Cheapest first: full elimination from summaries alone.
            if summary_kills(a, &summaries[i], b, &summaries[j], eps) {
                let relaxed =
                    eps > 0.0 && !summary_kills(a, &summaries[i], b, &summaries[j], 0.0);
                on_kill(&mut a.payload, &b.payload, relaxed);
                let whole = b.domain().clone();
                b.invalidate(&whole);
                counts.scalar_killed += 1;
                if relaxed {
                    counts.relaxed_killed += 1;
                }
                break;
            }
            // Exact region-wise pruning, gated on the necessary-condition
            // prefilter. Forward direction first (a's cost ≤ b's cost by
            // the sort), then — as in `prune_pair` — the reverse against
            // b's *updated* domain, possible only on an exact cost tie.
            if may_dominate(a, &summaries[i], b, &summaries[j]) {
                let r = a.dominance_region(b);
                if !r.is_empty() {
                    on_kill(&mut a.payload, &b.payload, false);
                    b.invalidate(&r);
                    if !b.is_valid() {
                        counts.pwl_killed += 1;
                        break;
                    }
                    summaries[j] = summarize(b);
                }
            }
            if a.scalars.first() == b.scalars.first()
                && may_dominate(b, &summaries[j], a, &summaries[i])
            {
                let r = b.dominance_region(a);
                if !r.is_empty() {
                    on_kill(&mut b.payload, &a.payload, false);
                    a.invalidate(&r);
                    if !a.is_valid() {
                        counts.pwl_killed += 1;
                    } else {
                        summaries[i] = summarize(a);
                    }
                }
            }
        }
    }
    items.retain(FuncPoint::is_valid);
    (items, counts)
}

/// Computes the minimal functional subset by the paper's
/// divide-and-conquer scheme (Fig. 4): split, recurse, then cross-prune
/// the two surviving halves.
///
/// Worst-case pair comparisons remain `O(n²)`, but when many candidates
/// die deep in the recursion (typical after a `JoinSets` product, per the
/// paper) far fewer cross-comparisons are performed.
///
/// `leaf_threshold` is the subproblem size below which the naive pairwise
/// method is used; values around 8 work well.
pub fn mfs_divide_conquer<T>(
    items: Vec<FuncPoint<T>>,
    leaf_threshold: usize,
) -> Vec<FuncPoint<T>> {
    let threshold = leaf_threshold.max(2);
    if items.len() <= threshold {
        return mfs_naive(items);
    }
    let mid = items.len() / 2;
    let mut items = items;
    let right_half = items.split_off(mid);
    let mut left = mfs_divide_conquer(items, threshold);
    let mut right = mfs_divide_conquer(right_half, threshold);
    for a in &mut left {
        for b in &mut right {
            prune_pair(a, b);
            if !a.is_valid() {
                break;
            }
        }
    }
    left.retain(FuncPoint::is_valid);
    right.retain(FuncPoint::is_valid);
    left.append(&mut right);
    left
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Segment;

    fn fp(name: &'static str, scalars: &[f64], pwls: Vec<Pwl>) -> FuncPoint<&'static str> {
        FuncPoint::new(name, scalars.to_vec(), pwls)
    }

    #[test]
    fn scalar_only_dominance() {
        // Pure vector dominance: (1,1) dominates (2,2); (0,3) incomparable.
        let items = vec![
            fp("a", &[1.0, 1.0], vec![]),
            fp("b", &[2.0, 2.0], vec![]),
            fp("c", &[0.0, 3.0], vec![]),
        ];
        let kept = mfs_naive(items);
        let names: Vec<_> = kept.iter().map(|p| p.payload).collect();
        assert_eq!(names, vec!["a", "c"]);
    }

    #[test]
    fn identical_items_keep_exactly_one() {
        let mk = || fp("x", &[1.0], vec![Pwl::constant(2.0, 0.0, 10.0)]);
        let kept = mfs_naive(vec![mk(), mk(), mk()]);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn partial_region_pruning_splits_domain() {
        // f = x on [0,10]; g = 5. Equal scalars, so each loses where the
        // other is lower: f keeps [0,5], g keeps [5,10] (one keeps the tie
        // point).
        let items = vec![
            fp("f", &[1.0], vec![Pwl::linear(0.0, 1.0, 0.0, 10.0)]),
            fp("g", &[1.0], vec![Pwl::constant(5.0, 0.0, 10.0)]),
        ];
        let kept = mfs_naive(items);
        assert_eq!(kept.len(), 2);
        let f = kept.iter().find(|p| p.payload == "f").unwrap();
        let g = kept.iter().find(|p| p.payload == "g").unwrap();
        assert!(f.domain().contains(2.0));
        assert!(!f.domain().contains(7.0));
        assert!(g.domain().contains(7.0));
        assert!(!g.domain().contains(2.0));
    }

    #[test]
    fn scalar_advantage_blocks_pwl_pruning() {
        // g is pointwise worse in the PWL but cheaper: nothing is pruned.
        let items = vec![
            fp("f", &[2.0], vec![Pwl::constant(1.0, 0.0, 10.0)]),
            fp("g", &[1.0], vec![Pwl::constant(9.0, 0.0, 10.0)]),
        ];
        let kept = mfs_naive(items);
        assert_eq!(kept.len(), 2);
        for p in &kept {
            assert_eq!(p.domain().measure(), 10.0);
        }
    }

    #[test]
    fn two_pwl_dimensions_must_both_dominate() {
        // a beats b in dim0 everywhere, but loses in dim1 on x > 5.
        let items = vec![
            fp(
                "a",
                &[1.0],
                vec![
                    Pwl::constant(0.0, 0.0, 10.0),
                    Pwl::linear(0.0, 1.0, 0.0, 10.0),
                ],
            ),
            fp(
                "b",
                &[1.0],
                vec![
                    Pwl::constant(1.0, 0.0, 10.0),
                    Pwl::constant(5.0, 0.0, 10.0),
                ],
            ),
        ];
        let kept = mfs_naive(items);
        let b = kept.iter().find(|p| p.payload == "b").unwrap();
        // b survives only where a's dim1 exceeds 5.
        assert!(!b.domain().contains(3.0));
        assert!(b.domain().contains(8.0));
    }

    #[test]
    fn fully_dominated_is_dropped() {
        let items = vec![
            fp("good", &[1.0], vec![Pwl::constant(1.0, 0.0, 10.0)]),
            fp("bad", &[2.0], vec![Pwl::constant(2.0, 0.0, 10.0)]),
        ];
        let kept = mfs_naive(items);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].payload, "good");
    }

    #[test]
    fn disjoint_domains_do_not_interact() {
        let items = vec![
            fp("l", &[1.0], vec![Pwl::constant(1.0, 0.0, 4.0)]),
            fp("r", &[9.0], vec![Pwl::constant(9.0, 6.0, 10.0)]),
        ];
        let kept = mfs_naive(items);
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn divide_conquer_matches_naive_on_random_mix() {
        // Deterministic pseudo-random candidates; compare survivor
        // coverage of the two algorithms at sample points.
        let mut items_a = Vec::new();
        let mut seed = 12345u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / ((1u64 << 31) as f64)
        };
        for i in 0..40 {
            let cost = (next() * 10.0).round();
            let y0 = next() * 100.0;
            let slope = next() * 20.0;
            let pwl = Pwl::linear(y0, slope, 0.0, 10.0);
            items_a.push(FuncPoint::new(i, vec![cost], vec![pwl]));
        }
        let items_b = items_a.clone();
        let naive = mfs_naive(items_a);
        let dc = mfs_divide_conquer(items_b, 4);
        // Both must provide, at every sample x, the same best achievable
        // (cost, value) frontier.
        for step in 0..=20 {
            let x = step as f64 * 0.5;
            let frontier = |kept: &[FuncPoint<i32>]| {
                let mut pts: Vec<(f64, f64)> = kept
                    .iter()
                    .filter(|p| p.domain().contains(x))
                    .map(|p| (p.scalars[0], p.pwls[0].eval(x).unwrap()))
                    .collect();
                pts.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
                pts
            };
            let fa = frontier(&naive);
            let fb = frontier(&dc);
            // The minimum value achievable at each cost must agree.
            let best = |pts: &[(f64, f64)]| {
                pts.iter().fold(f64::INFINITY, |m, &(_, v)| m.min(v))
            };
            assert!((best(&fa) - best(&fb)).abs() < 1e-6, "x={x}");
        }
    }

    #[test]
    fn bucketed_sweep_matches_naive_on_basic_cases() {
        // Re-run the simple dominance scenarios through the sorted sweep.
        let items = vec![
            fp("a", &[1.0, 1.0], vec![]),
            fp("b", &[2.0, 2.0], vec![]),
            fp("c", &[0.0, 3.0], vec![]),
        ];
        let (kept, counts) = mfs_sorted_sweep(items, 0.0);
        let mut names: Vec<_> = kept.iter().map(|p| p.payload).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "c"]);
        assert_eq!(counts.scalar_killed, 1, "b dies on the summary predicate");

        let mk = || fp("x", &[1.0], vec![Pwl::constant(2.0, 0.0, 10.0)]);
        assert_eq!(mfs_bucketed(vec![mk(), mk(), mk()]).len(), 1);
    }

    #[test]
    fn bucketed_sweep_crosses_non_adjacent_cost_levels() {
        // Cost level 1 dominates level 3; the intermediate level 2
        // candidate lives on a disjoint domain and covers nothing — an
        // adjacent-level-only sweep would miss the kill.
        let items = vec![
            fp("lvl1", &[1.0], vec![Pwl::constant(1.0, 0.0, 10.0)]),
            fp("lvl2", &[2.0], vec![Pwl::constant(0.5, 20.0, 30.0)]),
            fp("lvl3", &[3.0], vec![Pwl::constant(5.0, 0.0, 10.0)]),
        ];
        let kept = mfs_bucketed(items);
        let mut names: Vec<_> = kept.iter().map(|p| p.payload).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["lvl1", "lvl2"]);
    }

    #[test]
    fn summary_predicate_respects_split_domains() {
        // The would-be dominator has a hole in its domain, so the cheap
        // predicate must not certify full coverage; region pruning then
        // removes only the covered parts.
        let split = FuncPoint::new(
            "split",
            vec![1.0],
            vec![Pwl::from_segments(vec![
                Segment::new(0.0, 4.0, 1.0, 0.0),
                Segment::new(6.0, 10.0, 1.0, 0.0),
            ])],
        );
        let whole = fp("whole", &[2.0], vec![Pwl::constant(5.0, 0.0, 10.0)]);
        let (kept, counts) = mfs_sorted_sweep(vec![split, whole], 0.0);
        assert_eq!(counts.scalar_killed, 0);
        assert_eq!(kept.len(), 2);
        let whole = kept.iter().find(|p| p.payload == "whole").unwrap();
        assert!(whole.domain().contains(5.0), "survives inside the hole");
        assert!(!whole.domain().contains(2.0));
        assert!(!whole.domain().contains(8.0));
    }

    #[test]
    fn approximate_zero_eps_is_exact_and_relaxed_eps_coalesces() {
        // Incomparable pair: one is cheaper, the other faster — but only
        // by 0.4% in each dimension.
        let cheap_slow = fp("cheap_slow", &[1.0], vec![Pwl::constant(100.4, 0.0, 10.0)]);
        let costly_fast = fp("costly_fast", &[1.004], vec![Pwl::constant(100.0, 0.0, 10.0)]);
        let exact = mfs_approximate(vec![cheap_slow.clone(), costly_fast.clone()], 0.0);
        assert_eq!(exact.len(), 2, "eps = 0 keeps incomparable candidates");
        let coalesced = mfs_approximate(vec![cheap_slow, costly_fast], 0.01);
        assert_eq!(coalesced.len(), 1, "1% slack absorbs the near-duplicate");
        assert_eq!(coalesced[0].payload, "cheap_slow", "earlier in sort order wins");
    }

    #[test]
    #[should_panic(expected = "eps must be in [0, 1)")]
    fn approximate_rejects_out_of_range_eps() {
        let _ = mfs_approximate(vec![fp("a", &[1.0], vec![])], 1.5);
    }

    #[test]
    fn relaxed_le_handles_non_finite_thresholds() {
        assert!(relaxed_le(f64::NEG_INFINITY, f64::NEG_INFINITY, 0.1));
        assert!(!relaxed_le(0.0, f64::NEG_INFINITY, 0.1));
        assert!(relaxed_le(-10.0, -9.999, 0.1), "negative values relax too");
        assert!(!relaxed_le(-9.0, -10.0, 0.01));
    }

    #[test]
    fn relaxed_le_slack_is_measured_against_the_victim() {
        // The documented guarantee relaxes by eps·|victim| — the second
        // argument, the candidate being discarded. Pin pairs where
        // |survivor| and |victim| diverge so swapping the slack base
        // would flip the verdict.
        //
        // |victim| = 100 ≫ |survivor| = 1: slack 10 admits the kill.
        assert!(relaxed_le(105.0, 100.0, 0.1));
        // Slack from the survivor (0.1·|105| = 10.5) would also admit it,
        // but at |survivor| ≪ slack-needed the distinction bites:
        // survivor 1.0 vs victim 0.5 needs slack 0.5; eps·|victim| gives
        // only 0.05 → rejected, while eps·|survivor| would give 0.1 —
        // still rejected; push the asymmetry until only the wrong base
        // would accept:
        assert!(!relaxed_le(1.0, 0.5, 0.1), "eps·|victim| = 0.05 is not enough");
        assert!(relaxed_le(0.54, 0.5, 0.1));
        // Survivor far larger than victim: eps·|survivor| would wrongly
        // accept 10 ≤ 1 + 0.1·10; eps·|victim| correctly rejects.
        assert!(!relaxed_le(10.0, 1.0, 0.1));
    }

    #[test]
    fn relaxed_le_sign_change_boundary() {
        // Around t = 0 the threshold map g(t) = t + eps·|t| changes slope
        // from (1−eps) to (1+eps) but stays monotone; g(0) = 0 exactly.
        assert!(relaxed_le(0.0, 0.0, 0.1), "zero victim gives zero slack");
        assert!(!relaxed_le(1e-300, 0.0, 0.1));
        // Negative victim: g(−1) = −1 + 0.1 = −0.9 — the relaxation
        // *raises* the threshold toward zero (factor (1−eps) in
        // magnitude), it never loosens past the sign change.
        assert!(relaxed_le(-0.9, -1.0, 0.1));
        assert!(!relaxed_le(-0.89, -1.0, 0.1));
        // Survivor and victim straddling zero: a positive survivor can
        // never relaxed-beat a negative victim of larger magnitude.
        assert!(!relaxed_le(0.5, -0.5, 0.99));
        assert!(relaxed_le(-0.5, 0.5, 0.0));
        // Monotonicity of g across the sign change (the property the
        // whole-domain summary argument rests on): g(victim_lo) ≤
        // g(victim_hi) whenever victim_lo ≤ victim_hi.
        let g = |t: f64, eps: f64| t + eps * t.abs();
        for eps in [0.0, 0.01, 0.5, 0.99] {
            let pts = [-2.0, -1.0, -1e-9, 0.0, 1e-9, 1.0, 2.0];
            for w in pts.windows(2) {
                assert!(g(w[0], eps) <= g(w[1], eps), "g not monotone at eps={eps}");
            }
        }
    }

    #[test]
    fn sweep_callback_reports_relaxed_and_exact_kills() {
        // "worse" is exactly dominated by "base"; "near" survives at
        // eps = 0 but is coalesced (relaxed kill) at eps = 0.01.
        let mk = |name: &'static str, cost: f64, v: f64| {
            fp(name, &[cost], vec![Pwl::constant(v, 0.0, 10.0)])
        };
        let items = || vec![mk("base", 1.0, 100.0), mk("near", 1.004, 99.9), mk("worse", 2.0, 150.0)];

        let mut events: Vec<(&'static str, &'static str, bool)> = Vec::new();
        let (kept, counts) =
            mfs_sorted_sweep_with(items(), 0.01, &mut |s, v, relaxed| {
                events.push((*s, *v, relaxed));
            });
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].payload, "base");
        assert_eq!(counts.relaxed_killed, 1);
        assert!(events.contains(&(("base"), ("near"), true)), "events: {events:?}");
        assert!(events.contains(&(("base"), ("worse"), false)), "events: {events:?}");

        // Exact sweep: same exact kill, no relaxed events, counter 0.
        let mut exact_events: Vec<bool> = Vec::new();
        let (kept0, counts0) =
            mfs_sorted_sweep_with(items(), 0.0, &mut |_, _, relaxed| exact_events.push(relaxed));
        assert_eq!(kept0.len(), 2);
        assert_eq!(counts0.relaxed_killed, 0);
        assert!(exact_events.iter().all(|r| !r));
    }

    #[test]
    fn approximate_coverage_holds_across_sign_change() {
        // PWL values crossing zero: the (1+eps) guarantee is the additive
        // eps·|p(x)| bound, which at negative values shrinks toward g(t)
        // = (1−eps)·t. Check every discarded candidate is covered within
        // the documented slack at sampled points.
        let mut items = Vec::new();
        let mut seed = 4242u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / ((1u64 << 31) as f64)
        };
        for i in 0..24 {
            let cost = (next() * 3.0).round();
            let y0 = next() * 20.0 - 10.0; // straddles zero
            let slope = next() * 4.0 - 2.0;
            items.push(FuncPoint::new(i, vec![cost], vec![Pwl::linear(y0, slope, 0.0, 6.0)]));
        }
        let eps = 0.05;
        let originals = items.clone();
        let kept = mfs_approximate(items, eps);
        for step in 0..=12 {
            let x = step as f64 * 0.5;
            for orig in &originals {
                let Some(v) = orig.pwls[0].eval(x) else { continue };
                let covered = kept.iter().any(|k| {
                    k.domain().contains(x)
                        && k.scalars[0] <= orig.scalars[0] + eps * orig.scalars[0].abs() + 1e-12
                        && k.pwls[0]
                            .eval(x)
                            .is_some_and(|kv| kv <= v + eps * v.abs() + 1e-9)
                });
                assert!(covered, "candidate {} uncovered at x={x}", orig.payload);
            }
        }
    }

    #[test]
    fn coverage_invariant_holds() {
        // For every x and every dropped candidate, a survivor dominates.
        let mut items = Vec::new();
        let mut seed = 999u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / ((1u64 << 31) as f64)
        };
        for i in 0..30 {
            let cost = (next() * 4.0).round();
            let y0 = next() * 50.0;
            let slope = next() * 10.0;
            items.push(FuncPoint::new(i, vec![cost], vec![Pwl::linear(y0, slope, 0.0, 8.0)]));
        }
        let originals = items.clone();
        let kept = mfs_divide_conquer(items, 4);
        for step in 0..=16 {
            let x = step as f64 * 0.5;
            for orig in &originals {
                let Some(v) = orig.pwls[0].eval(x) else { continue };
                let covered = kept.iter().any(|k| {
                    k.domain().contains(x)
                        && k.scalars[0] <= orig.scalars[0]
                        && k.pwls[0].eval(x).is_some_and(|kv| kv <= v + 1e-9)
                });
                assert!(covered, "candidate {} uncovered at x={x}", orig.payload);
            }
        }
    }
}
