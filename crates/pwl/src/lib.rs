//! Piece-wise linear (PWL) function machinery for multisource timing
//! optimization.
//!
//! Lillis & Cheng (TCAD'99, §IV) characterize a subsolution of the
//! multisource repeater-insertion problem by three scalars and two
//! *functions of the external capacitance* `c_E`: the arrival time at the
//! subtree root from internal sources, and the internal augmented
//! RC-diameter. Under the Elmore model both are piece-wise linear in `c_E`
//! (slopes are accumulated upstream resistances), and the whole dynamic
//! program reduces to a handful of PWL primitives (paper Eq. 3):
//!
//! * pointwise **Max** of two PWLs (critical-source selection),
//! * **AddScalar** (intrinsic delays, downstream delays),
//! * **AddLinear** (wire delay `R_w · (C_w/2 + c_E)` adds a line),
//! * **Shift** of the argument (added sibling/wire capacitance shifts the
//!   external capacitance seen by a subtree),
//! * **Evaluate** at a known `c_E` (a repeater decouples, fixing `c_E` to
//!   its input capacitance).
//!
//! On top of the function algebra, this crate implements the paper's
//! **minimal functional subset** (MFS, Definition 4.3): dominance pruning
//! where each candidate is a tuple of scalars and PWLs, and a candidate is
//! discarded *on the region of `c_E`* where some other candidate is at
//! least as good in every dimension. Both the naive pairwise algorithm and
//! the paper's divide-and-conquer scheme (Fig. 4) are provided.
//!
//! # Conventions
//!
//! * A [`Pwl`] is a sorted list of non-overlapping closed segments; gaps in
//!   the domain mean *undefined*, which the optimization interprets as
//!   "pruned / +∞" (never better than any defined value).
//! * Segment values may be `-∞` (used for "no source in this subtree");
//!   such segments always carry slope 0.
//! * All domains live on the capacitance axis `c_E ≥ 0` and are typically
//!   clamped to `[0, C_total]` for the net being optimized.
//!
//! # Examples
//!
//! ```
//! use msrnet_pwl::Pwl;
//!
//! // Arrival from source u: 10 + 12·c_E; from source w: 16 + 7·c_E.
//! let from_u = Pwl::linear(10.0, 12.0, 0.0, 10.0);
//! let from_w = Pwl::linear(16.0, 7.0, 0.0, 10.0);
//! let arrival = from_u.max(&from_w);
//! // w dominates for small external load; u for large (paper Fig. 3c,
//! // with the crossover where the two lines meet).
//! assert_eq!(arrival.eval(0.0), Some(16.0));
//! assert_eq!(arrival.eval(5.0), Some(70.0));
//! assert_eq!(arrival.segments().len(), 2);
//! ```

#![warn(missing_docs)]

mod arena;
mod function;
mod interval;
mod mfs;
mod segment;

pub use arena::{ArenaCheckpoint, SegmentArena};
pub use function::{lower_envelope, upper_envelope, Pwl};
pub use interval::IntervalSet;
pub use mfs::{
    mfs_approximate, mfs_bucketed, mfs_divide_conquer, mfs_naive, mfs_sorted_sweep,
    mfs_sorted_sweep_with, FuncPoint,
    MfsCounts,
};
pub use segment::Segment;

/// Comparison tolerance used throughout the PWL algebra, in the units of
/// the function values (picoseconds in `msrnet`).
///
/// Two values within `EPS` of each other are considered equal when merging
/// collinear segments and when computing crossing points; dominance checks
/// use exact comparisons so that ties are broken deterministically by the
/// two-pass pruning order.
pub const EPS: f64 = 1e-9;
