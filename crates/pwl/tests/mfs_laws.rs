//! Seeded dominance laws for the minimal-functional-subset pruning.
//!
//! The DP's correctness rests on one property of `mfs_naive` /
//! `mfs_divide_conquer` (paper §IV-D): pruning may only remove a
//! candidate where some *surviving* candidate is at least as good in
//! every dimension. In particular a candidate that is strictly best for
//! some external capacitance `c_E` must survive with `c_E` still in its
//! validity domain. These tests check that law on seeded random
//! families of scalar+PWL candidates, and that both pruning strategies
//! expose identical optimal envelopes.

use msrnet_pwl::{
    mfs_approximate, mfs_bucketed, mfs_divide_conquer, mfs_naive, FuncPoint, Pwl, Segment,
};
use msrnet_rng::{Rng, SeedableRng, SplitMix64};

const DOMAIN: (f64, f64) = (0.0, 10.0);
/// Interpolation slack: restriction may re-split segments, perturbing
/// evaluated values by an ulp or two.
const EPS: f64 = 1e-9;

/// A random piecewise-linear function over a random sub-interval of the
/// test domain, with a couple of breakpoints.
fn random_pwl(rng: &mut SplitMix64) -> Pwl {
    let lo = rng.gen_range(DOMAIN.0..DOMAIN.1 - 1.0);
    let hi = rng.gen_range(lo + 0.5..DOMAIN.1);
    let pieces = rng.gen_range(1..4u32);
    let mut segs = Vec::new();
    let mut x = lo;
    let mut y = rng.gen_range(0.0..50.0f64);
    for i in 0..pieces {
        let next = if i + 1 == pieces {
            hi
        } else {
            rng.gen_range(x..hi)
        };
        if next <= x {
            continue;
        }
        let slope = rng.gen_range(-6.0..6.0f64);
        segs.push(Segment::new(x, next, y, slope));
        y += slope * (next - x);
        x = next;
    }
    Pwl::from_segments(segs)
}

fn random_family(seed: u64) -> Vec<FuncPoint<usize>> {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let n = rng.gen_range(2..18usize);
    let scalar_dims = rng.gen_range(1..3usize);
    let pwl_dims = rng.gen_range(1..3usize);
    (0..n)
        .map(|i| {
            let scalars = (0..scalar_dims)
                .map(|_| rng.gen_range(0.0..10.0f64))
                .collect();
            let pwls = (0..pwl_dims).map(|_| random_pwl(&mut rng)).collect();
            FuncPoint::new(i, scalars, pwls)
        })
        .collect()
}

/// Sample points covering the test domain densely enough to hit every
/// random segment, nudged off round values to avoid breakpoint ties.
fn sample_points() -> Vec<f64> {
    (0..400)
        .map(|i| DOMAIN.0 + (DOMAIN.1 - DOMAIN.0) * (i as f64 + 0.437) / 400.0)
        .collect()
}

/// True when `s` is at least as good as `orig` at `x` in every scalar
/// and every PWL dimension (both defined at `x`).
fn weakly_dominates_at(s: &FuncPoint<usize>, orig: &FuncPoint<usize>, x: f64) -> bool {
    if !s.domain().contains(x) {
        return false;
    }
    let scalars_ok = s
        .scalars
        .iter()
        .zip(&orig.scalars)
        .all(|(a, b)| *a <= *b + EPS);
    if !scalars_ok {
        return false;
    }
    s.pwls.iter().zip(&orig.pwls).all(|(fa, fb)| {
        match (fa.eval(x), fb.eval(x)) {
            (Some(ya), Some(yb)) => ya <= yb + EPS,
            // `orig` undefined at x: nothing to beat.
            (_, None) => true,
            (None, Some(_)) => false,
        }
    })
}

/// The core law: wherever an original candidate was defined, some
/// survivor is at least as good in every dimension — so no point that
/// is strictly best for some `c_E` is ever removed.
fn assert_covered(originals: &[FuncPoint<usize>], kept: &[FuncPoint<usize>], seed: u64) {
    for x in sample_points() {
        for orig in originals {
            if !orig.domain().contains(x) || orig.pwls.iter().any(|f| f.eval(x).is_none()) {
                continue;
            }
            assert!(
                kept.iter().any(|s| weakly_dominates_at(s, orig, x)),
                "seed {seed}: candidate {} at x={x} lost without a \
                 dominating survivor",
                orig.payload
            );
        }
    }
}

#[test]
fn pruning_never_removes_a_point_strictly_best_somewhere() {
    for seed in 0..60u64 {
        let originals = random_family(seed);
        let kept = mfs_naive(originals.clone());
        assert!(!kept.is_empty() || originals.iter().all(|p| !p.is_valid()));
        assert_covered(&originals, &kept, seed);
    }
}

#[test]
fn divide_and_conquer_satisfies_the_same_law() {
    for seed in 60..120u64 {
        let originals = random_family(seed);
        for threshold in [2, 4, 8] {
            let kept = mfs_divide_conquer(originals.clone(), threshold);
            assert_covered(&originals, &kept, seed);
        }
    }
}

#[test]
fn strategies_expose_identical_optimal_envelopes() {
    // The surviving sets may differ in how ties are carried, but the
    // pointwise optimum over survivors is the problem's answer and must
    // not depend on the pruning strategy.
    for seed in 120..170u64 {
        let originals = random_family(seed);
        let naive = mfs_naive(originals.clone());
        let dc = mfs_divide_conquer(originals, 4);
        for x in sample_points() {
            let envelope = |kept: &[FuncPoint<usize>]| -> Option<f64> {
                kept.iter()
                    .filter(|s| s.domain().contains(x))
                    .filter_map(|s| s.pwls[0].eval(x))
                    .min_by(f64::total_cmp)
            };
            let (a, b) = (envelope(&naive), envelope(&dc));
            match (a, b) {
                (Some(a), Some(b)) => assert!(
                    (a - b).abs() <= EPS,
                    "seed {seed}: envelopes diverge at x={x}: {a} vs {b}"
                ),
                (None, None) => {}
                _ => panic!("seed {seed}: envelope defined for one strategy only at x={x}"),
            }
        }
    }
}

#[test]
fn bucketed_sweep_satisfies_the_coverage_law() {
    for seed in 0..60u64 {
        let originals = random_family(seed);
        let kept = mfs_bucketed(originals.clone());
        assert_covered(&originals, &kept, seed);
        let kept0 = mfs_approximate(originals.clone(), 0.0);
        assert_covered(&originals, &kept0, seed);
    }
}

#[test]
fn bucketed_and_exact_approximate_match_the_naive_envelope() {
    // Tie representatives may differ between sweep orders, but the
    // pointwise optimum over survivors must be identical to naive MFS
    // for the exact variants (bucketed, and approximate at eps = 0).
    for seed in 120..170u64 {
        let originals = random_family(seed);
        let naive = mfs_naive(originals.clone());
        let bucketed = mfs_bucketed(originals.clone());
        let approx0 = mfs_approximate(originals, 0.0);
        for x in sample_points() {
            let envelope = |kept: &[FuncPoint<usize>]| -> Option<f64> {
                kept.iter()
                    .filter(|s| s.domain().contains(x))
                    .filter_map(|s| s.pwls[0].eval(x))
                    .min_by(f64::total_cmp)
            };
            let n = envelope(&naive);
            for (label, kept) in [("bucketed", &bucketed), ("approx0", &approx0)] {
                match (n, envelope(kept)) {
                    (Some(a), Some(b)) => assert!(
                        (a - b).abs() <= EPS,
                        "seed {seed}: {label} envelope diverges at x={x}: {a} vs {b}"
                    ),
                    (None, None) => {}
                    _ => panic!(
                        "seed {seed}: {label} envelope defined differently from naive at x={x}"
                    ),
                }
            }
        }
    }
}

#[test]
fn approximate_sweep_satisfies_the_relaxed_coverage_law() {
    // The (1+eps) guarantee: wherever an original candidate was defined,
    // some survivor is within a (1+eps) relative factor of it in every
    // scalar and PWL dimension.
    const APPROX_EPS: f64 = 0.05;
    let relaxed = |a: f64, b: f64| a <= b + APPROX_EPS * b.abs() + EPS;
    for seed in 200..260u64 {
        let originals = random_family(seed);
        let kept = mfs_approximate(originals.clone(), APPROX_EPS);
        for x in sample_points() {
            for orig in &originals {
                if !orig.domain().contains(x) || orig.pwls.iter().any(|f| f.eval(x).is_none()) {
                    continue;
                }
                let covered = kept.iter().any(|s| {
                    s.domain().contains(x)
                        && s.scalars
                            .iter()
                            .zip(&orig.scalars)
                            .all(|(a, b)| relaxed(*a, *b))
                        && s.pwls.iter().zip(&orig.pwls).all(|(fa, fb)| {
                            match (fa.eval(x), fb.eval(x)) {
                                (Some(ya), Some(yb)) => relaxed(ya, yb),
                                (_, None) => true,
                                (None, Some(_)) => false,
                            }
                        })
                });
                assert!(
                    covered,
                    "seed {seed}: candidate {} at x={x} lost without a \
                     (1+eps)-dominating survivor",
                    orig.payload
                );
            }
        }
    }
}

#[test]
fn pruning_is_idempotent() {
    for seed in 170..200u64 {
        let kept = mfs_naive(random_family(seed));
        let names: Vec<usize> = kept.iter().map(|p| p.payload).collect();
        let again = mfs_naive(kept);
        let names2: Vec<usize> = again.iter().map(|p| p.payload).collect();
        assert_eq!(names, names2, "seed {seed}: second pruning pass changed the set");
    }
}
