//! Algebraic laws of [`msrnet_pwl::IntervalSet`] under property-based
//! testing — the validity-domain arithmetic beneath MFS pruning must be
//! a faithful set algebra or pruning silently loses or resurrects
//! solution regions.

use msrnet_pwl::IntervalSet;
use proptest::prelude::*;

/// Strategy: a set of up to 6 spans with endpoints on a coarse lattice
/// (exact arithmetic, no epsilon ambiguity).
fn arb_set() -> impl Strategy<Value = IntervalSet> {
    prop::collection::vec((0u8..100, 1u8..30), 0..6).prop_map(|spans| {
        IntervalSet::from_spans(
            spans
                .into_iter()
                .map(|(lo, len)| (lo as f64, (lo + len) as f64)),
        )
    })
}

/// Sample lattice covering all endpoints.
fn samples() -> Vec<f64> {
    (0..=262).map(|i| i as f64 * 0.5).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn union_is_pointwise_or(a in arb_set(), b in arb_set()) {
        let u = a.union(&b);
        for x in samples() {
            prop_assert_eq!(u.contains(x), a.contains(x) || b.contains(x), "x={}", x);
        }
    }

    #[test]
    fn intersection_is_pointwise_and(a in arb_set(), b in arb_set()) {
        let i = a.intersect(&b);
        for x in samples() {
            prop_assert_eq!(i.contains(x), a.contains(x) && b.contains(x), "x={}", x);
        }
    }

    #[test]
    fn subtraction_is_pointwise_and_not(a in arb_set(), b in arb_set()) {
        let d = a.subtract(&b);
        for x in samples() {
            // Boundary points of removed spans may stay as closed-set
            // endpoints; only check strictly interior points.
            let on_boundary = b
                .spans()
                .iter()
                .any(|&(lo, hi)| (x - lo).abs() < 0.25 || (x - hi).abs() < 0.25);
            if on_boundary {
                continue;
            }
            prop_assert_eq!(d.contains(x), a.contains(x) && !b.contains(x), "x={}", x);
        }
    }

    #[test]
    fn operations_are_commutative_and_idempotent(a in arb_set(), b in arb_set()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
        prop_assert_eq!(a.intersect(&b), b.intersect(&a));
        prop_assert_eq!(a.union(&a), a.clone());
        prop_assert_eq!(a.intersect(&a), a.clone());
        prop_assert!(a.subtract(&a).is_empty());
    }

    #[test]
    fn measures_are_consistent(a in arb_set(), b in arb_set()) {
        // |A| + |B| = |A ∪ B| + |A ∩ B| (inclusion–exclusion).
        let lhs = a.measure() + b.measure();
        let rhs = a.union(&b).measure() + a.intersect(&b).measure();
        prop_assert!((lhs - rhs).abs() < 1e-9, "{} vs {}", lhs, rhs);
        // |A \ B| = |A| − |A ∩ B|.
        let diff = a.subtract(&b).measure();
        let expect = a.measure() - a.intersect(&b).measure();
        prop_assert!((diff - expect).abs() < 1e-9);
    }

    #[test]
    fn normalization_invariants(a in arb_set(), b in arb_set()) {
        // Every produced set keeps sorted, disjoint spans.
        for set in [a.union(&b), a.intersect(&b), a.subtract(&b)] {
            for w in set.spans().windows(2) {
                prop_assert!(w[0].1 < w[1].0, "overlapping or touching spans survived");
            }
            for &(lo, hi) in set.spans() {
                prop_assert!(lo <= hi);
            }
        }
    }

    #[test]
    fn shift_preserves_measure_and_membership(a in arb_set(), dx in -50.0..50.0f64) {
        let s = a.shift(dx);
        prop_assert!((s.measure() - a.measure()).abs() < 1e-9);
        for x in samples() {
            prop_assert_eq!(s.contains(x + dx), a.contains(x));
        }
    }

    #[test]
    fn clamp_is_intersection_with_interval(a in arb_set(), lo in 0.0..60.0f64, len in 0.0..60.0f64) {
        let hi = lo + len;
        let clamped = a.clamp(lo, hi);
        let manual = a.intersect(&IntervalSet::from_interval(lo, hi));
        prop_assert_eq!(clamped, manual);
    }

    #[test]
    fn min_max_bound_the_set(a in arb_set()) {
        match (a.min(), a.max()) {
            (Some(lo), Some(hi)) => {
                prop_assert!(lo <= hi);
                prop_assert!(a.contains(lo));
                prop_assert!(a.contains(hi));
                prop_assert!(!a.contains(lo - 1.0));
                prop_assert!(!a.contains(hi + 1.0));
            }
            (None, None) => prop_assert!(a.is_empty()),
            _ => prop_assert!(false, "min/max disagree about emptiness"),
        }
    }
}
