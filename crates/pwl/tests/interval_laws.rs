//! Algebraic laws of [`msrnet_pwl::IntervalSet`] under seeded
//! randomized testing — the validity-domain arithmetic beneath MFS
//! pruning must be a faithful set algebra or pruning silently loses or
//! resurrects solution regions.

use msrnet_pwl::IntervalSet;
use msrnet_rng::{Rng, SeedableRng, SplitMix64};

const CASES: usize = 192;

/// A set of up to 6 spans with endpoints on a coarse lattice (exact
/// arithmetic, no epsilon ambiguity).
fn arb_set(rng: &mut SplitMix64) -> IntervalSet {
    let n = rng.gen_range(0..6usize);
    IntervalSet::from_spans((0..n).map(|_| {
        let lo = rng.gen_range(0..100i32) as f64;
        let len = rng.gen_range(1..30i32) as f64;
        (lo, lo + len)
    }))
}

/// Sample lattice covering all endpoints.
fn samples() -> Vec<f64> {
    (0..=262).map(|i| i as f64 * 0.5).collect()
}

#[test]
fn union_is_pointwise_or() {
    let mut rng = SplitMix64::seed_from_u64(20);
    for _ in 0..CASES {
        let a = arb_set(&mut rng);
        let b = arb_set(&mut rng);
        let u = a.union(&b);
        for x in samples() {
            assert_eq!(u.contains(x), a.contains(x) || b.contains(x), "x={x}");
        }
    }
}

#[test]
fn intersection_is_pointwise_and() {
    let mut rng = SplitMix64::seed_from_u64(21);
    for _ in 0..CASES {
        let a = arb_set(&mut rng);
        let b = arb_set(&mut rng);
        let i = a.intersect(&b);
        for x in samples() {
            assert_eq!(i.contains(x), a.contains(x) && b.contains(x), "x={x}");
        }
    }
}

#[test]
fn subtraction_is_pointwise_and_not() {
    let mut rng = SplitMix64::seed_from_u64(22);
    for _ in 0..CASES {
        let a = arb_set(&mut rng);
        let b = arb_set(&mut rng);
        let d = a.subtract(&b);
        for x in samples() {
            // Boundary points of removed spans may stay as closed-set
            // endpoints; only check strictly interior points.
            let on_boundary = b
                .spans()
                .iter()
                .any(|&(lo, hi)| (x - lo).abs() < 0.25 || (x - hi).abs() < 0.25);
            if on_boundary {
                continue;
            }
            assert_eq!(d.contains(x), a.contains(x) && !b.contains(x), "x={x}");
        }
    }
}

#[test]
fn operations_are_commutative_and_idempotent() {
    let mut rng = SplitMix64::seed_from_u64(23);
    for _ in 0..CASES {
        let a = arb_set(&mut rng);
        let b = arb_set(&mut rng);
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.intersect(&b), b.intersect(&a));
        assert_eq!(a.union(&a), a.clone());
        assert_eq!(a.intersect(&a), a.clone());
        assert!(a.subtract(&a).is_empty());
    }
}

#[test]
fn measures_are_consistent() {
    let mut rng = SplitMix64::seed_from_u64(24);
    for _ in 0..CASES {
        let a = arb_set(&mut rng);
        let b = arb_set(&mut rng);
        // |A| + |B| = |A ∪ B| + |A ∩ B| (inclusion–exclusion).
        let lhs = a.measure() + b.measure();
        let rhs = a.union(&b).measure() + a.intersect(&b).measure();
        assert!((lhs - rhs).abs() < 1e-9, "{lhs} vs {rhs}");
        // |A \ B| = |A| − |A ∩ B|.
        let diff = a.subtract(&b).measure();
        let expect = a.measure() - a.intersect(&b).measure();
        assert!((diff - expect).abs() < 1e-9);
    }
}

#[test]
fn normalization_invariants() {
    let mut rng = SplitMix64::seed_from_u64(25);
    for _ in 0..CASES {
        let a = arb_set(&mut rng);
        let b = arb_set(&mut rng);
        // Every produced set keeps sorted, disjoint spans.
        for set in [a.union(&b), a.intersect(&b), a.subtract(&b)] {
            for w in set.spans().windows(2) {
                assert!(w[0].1 < w[1].0, "overlapping or touching spans survived");
            }
            for &(lo, hi) in set.spans() {
                assert!(lo <= hi);
            }
        }
    }
}

#[test]
fn shift_preserves_measure_and_membership() {
    let mut rng = SplitMix64::seed_from_u64(26);
    for _ in 0..CASES {
        let a = arb_set(&mut rng);
        let dx = rng.gen_range(-50.0..50.0f64);
        let s = a.shift(dx);
        assert!((s.measure() - a.measure()).abs() < 1e-9);
        for x in samples() {
            assert_eq!(s.contains(x + dx), a.contains(x));
        }
    }
}

#[test]
fn clamp_is_intersection_with_interval() {
    let mut rng = SplitMix64::seed_from_u64(27);
    for _ in 0..CASES {
        let a = arb_set(&mut rng);
        let lo = rng.gen_range(0.0..60.0f64);
        let hi = lo + rng.gen_range(0.0..60.0f64);
        let clamped = a.clamp(lo, hi);
        let manual = a.intersect(&IntervalSet::from_interval(lo, hi));
        assert_eq!(clamped, manual);
    }
}

#[test]
fn min_max_bound_the_set() {
    let mut rng = SplitMix64::seed_from_u64(28);
    for _ in 0..CASES {
        let a = arb_set(&mut rng);
        match (a.min(), a.max()) {
            (Some(lo), Some(hi)) => {
                assert!(lo <= hi);
                assert!(a.contains(lo));
                assert!(a.contains(hi));
                assert!(!a.contains(lo - 1.0));
                assert!(!a.contains(hi + 1.0));
            }
            (None, None) => assert!(a.is_empty()),
            _ => panic!("min/max disagree about emptiness"),
        }
    }
}
