//! Randomized property tests of the PWL algebra (paper Eq. 3) and the
//! MFS pruning invariants (paper Definition 4.3), driven by a seeded
//! in-tree generator so every run checks the same cases.

use msrnet_pwl::{
    lower_envelope, mfs_divide_conquer, mfs_naive, upper_envelope, FuncPoint, Pwl, Segment,
};
use msrnet_rng::{Rng, SeedableRng, SplitMix64};

const CASES: usize = 128;

/// A random **continuous** PWL with `1..=max_segs` contiguous segments
/// on `[0, 10]`, finite values. Continuity matches the function class
/// the optimizer actually produces (maxima and affine images of
/// continuous functions); jump discontinuities would make one-sided
/// limits at breakpoints observable and the pointwise properties below
/// ill-posed.
fn arb_pwl(rng: &mut SplitMix64, max_segs: usize) -> Pwl {
    let k = rng.gen_range(1..=max_segs);
    let mut segs = Vec::with_capacity(k);
    let width = 10.0 / k as f64;
    let mut y = rng.gen_range(-100.0..100.0f64);
    for i in 0..k {
        let x0 = i as f64 * width;
        let slope = rng.gen_range(-20.0..20.0f64);
        segs.push(Segment::new(x0, x0 + width, y, slope));
        y += slope * width;
    }
    Pwl::from_segments(segs)
}

/// Sample points covering the domain including segment boundaries.
fn samples() -> Vec<f64> {
    (0..=40).map(|i| i as f64 * 0.25).collect()
}

#[test]
fn max_is_pointwise_max() {
    let mut rng = SplitMix64::seed_from_u64(10);
    for _ in 0..CASES {
        let f = arb_pwl(&mut rng, 6);
        let g = arb_pwl(&mut rng, 6);
        let m = f.max(&g);
        for x in samples() {
            match (f.eval(x), g.eval(x)) {
                (Some(a), Some(b)) => {
                    let expect = a.max(b);
                    let got = m.eval(x).expect("defined on common domain");
                    assert!((got - expect).abs() < 1e-6, "x={x}: {got} vs {expect}");
                }
                _ => assert!(m.eval(x).is_none()),
            }
        }
    }
}

#[test]
fn max_is_commutative_and_idempotent() {
    let mut rng = SplitMix64::seed_from_u64(11);
    for _ in 0..CASES {
        let f = arb_pwl(&mut rng, 5);
        let g = arb_pwl(&mut rng, 5);
        let ab = f.max(&g);
        let ba = g.max(&f);
        for x in samples() {
            assert_eq!(ab.eval(x).is_some(), ba.eval(x).is_some());
            if let (Some(a), Some(b)) = (ab.eval(x), ba.eval(x)) {
                assert!((a - b).abs() < 1e-6);
            }
            if let (Some(a), Some(b)) = (f.max(&f).eval(x), f.eval(x)) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn add_scalar_then_linear_compose() {
    let mut rng = SplitMix64::seed_from_u64(12);
    for _ in 0..CASES {
        let f = arb_pwl(&mut rng, 5);
        let c = rng.gen_range(-50.0..50.0f64);
        let s = rng.gen_range(-10.0..10.0f64);
        let g = f.add_scalar(c).add_linear(0.0, s);
        for x in samples() {
            if let Some(v) = f.eval(x) {
                let got = g.eval(x).expect("same domain");
                assert!((got - (v + c + s * x)).abs() < 1e-6);
            }
        }
    }
}

#[test]
fn shift_arg_translates() {
    let mut rng = SplitMix64::seed_from_u64(13);
    for _ in 0..CASES {
        let f = arb_pwl(&mut rng, 5);
        let dx = rng.gen_range(0.0..5.0f64);
        let g = f.shifted_arg(dx);
        for x in samples() {
            let expect = f.eval(x + dx);
            let got = g.eval(x);
            match (expect, got) {
                (Some(a), Some(b)) => assert!((a - b).abs() < 1e-6),
                // Tolerance at boundaries may disagree by EPS; accept
                // one-sided misses only within EPS of an endpoint.
                (None, None) => {}
                _ => {
                    let near_boundary = f
                        .segments()
                        .iter()
                        .any(|s| (s.x0 - (x + dx)).abs() < 1e-6 || (s.x1 - (x + dx)).abs() < 1e-6);
                    assert!(near_boundary, "shift mismatch at x={x}, dx={dx}");
                }
            }
        }
    }
}

#[test]
fn clamp_domain_restricts() {
    let mut rng = SplitMix64::seed_from_u64(14);
    for _ in 0..CASES {
        let f = arb_pwl(&mut rng, 6);
        let lo = rng.gen_range(0.0..5.0f64);
        let hi = lo + rng.gen_range(0.0..5.0f64);
        let g = f.clamp_domain(lo, hi);
        for x in samples() {
            if x < lo - 1e-9 || x > hi + 1e-9 {
                assert!(g.eval(x).is_none() || (x - lo).abs() < 1e-6 || (x - hi).abs() < 1e-6);
            } else if let Some(v) = g.eval(x) {
                let orig = f.eval(x).expect("clamp is a restriction");
                assert!((v - orig).abs() < 1e-6);
            }
        }
    }
}

#[test]
fn le_regions_sound() {
    let mut rng = SplitMix64::seed_from_u64(15);
    for _ in 0..CASES {
        let f = arb_pwl(&mut rng, 6);
        let g = arb_pwl(&mut rng, 6);
        let region = f.le_regions(&g);
        for x in samples() {
            if let (Some(a), Some(b)) = (f.eval(x), g.eval(x)) {
                if region.contains(x) {
                    // Region points genuinely satisfy f ≤ g (with
                    // crossing-point tolerance).
                    assert!(a <= b + 1e-6, "x={x}: {a} > {b}");
                } else {
                    // Strictly-below points must be in the region.
                    assert!(a >= b - 1e-6, "x={x}: {a} < {b} but not in region");
                }
            }
        }
    }
}

#[test]
fn envelope_matches_fold() {
    let mut rng = SplitMix64::seed_from_u64(16);
    for _ in 0..CASES {
        let n = rng.gen_range(1..5usize);
        let fs: Vec<Pwl> = (0..n).map(|_| arb_pwl(&mut rng, 4)).collect();
        let env = upper_envelope(&fs);
        for x in samples() {
            let all: Option<Vec<f64>> = fs.iter().map(|f| f.eval(x)).collect();
            match all {
                Some(vs) => {
                    let expect = vs.into_iter().fold(f64::NEG_INFINITY, f64::max);
                    let got = env.eval(x).expect("defined where all defined");
                    assert!((got - expect).abs() < 1e-6);
                }
                None => assert!(env.eval(x).is_none()),
            }
        }
    }
}

#[test]
fn min_is_pointwise_min_and_duals_max() {
    let mut rng = SplitMix64::seed_from_u64(17);
    for _ in 0..CASES {
        let f = arb_pwl(&mut rng, 6);
        let g = arb_pwl(&mut rng, 6);
        let mn = f.min(&g);
        let mx = f.max(&g);
        for x in samples() {
            if let (Some(a), Some(b)) = (f.eval(x), g.eval(x)) {
                let lo = mn.eval(x).expect("common domain");
                let hi = mx.eval(x).expect("common domain");
                assert!((lo - a.min(b)).abs() < 1e-6);
                // min + max = f + g pointwise.
                assert!(((lo + hi) - (a + b)).abs() < 1e-6);
            }
        }
        let env = lower_envelope(&[f.clone(), g.clone()]);
        for x in samples() {
            assert_eq!(env.eval(x).is_some(), mn.eval(x).is_some());
        }
    }
}

#[test]
fn min_max_value_bound_all_samples() {
    let mut rng = SplitMix64::seed_from_u64(18);
    for _ in 0..CASES {
        let f = arb_pwl(&mut rng, 6);
        let lo = f.min_value().expect("nonempty");
        let hi = f.max_value().expect("nonempty");
        for x in samples() {
            if let Some(v) = f.eval(x) {
                assert!(v >= lo - 1e-9 && v <= hi + 1e-9);
            }
        }
    }
}

#[test]
fn mfs_preserves_coverage() {
    let mut rng = SplitMix64::seed_from_u64(19);
    for _ in 0..CASES {
        // Build candidates with a cost scalar and one PWL; MFS must keep,
        // for every (x, candidate), a survivor at least as good.
        let n = rng.gen_range(2..12usize);
        let originals: Vec<FuncPoint<usize>> = (0..n)
            .map(|i| {
                let cost = rng.gen_range(0..5i32) as f64;
                let pwl = arb_pwl(&mut rng, 4);
                FuncPoint::new(i, vec![cost], vec![pwl])
            })
            .collect();
        let kept_naive = mfs_naive(originals.clone());
        let kept_dc = mfs_divide_conquer(originals.clone(), 3);
        for kept in [&kept_naive, &kept_dc] {
            for orig in &originals {
                for x in samples() {
                    let Some(v) = orig.pwls[0].eval(x) else { continue };
                    let covered = kept.iter().any(|k| {
                        k.domain().contains(x)
                            && k.scalars[0] <= orig.scalars[0]
                            && k.pwls[0].eval(x).is_some_and(|kv| kv <= v + 1e-6)
                    });
                    assert!(covered, "({}, {x}) uncovered", orig.payload);
                }
            }
        }
        // Both algorithms achieve the same pointwise optimum per cost.
        for x in samples() {
            for budget in 0..5 {
                let best = |kept: &[FuncPoint<usize>]| {
                    kept.iter()
                        .filter(|k| k.scalars[0] <= budget as f64 && k.domain().contains(x))
                        .filter_map(|k| k.pwls[0].eval(x))
                        .fold(f64::INFINITY, f64::min)
                };
                let a = best(&kept_naive);
                let b = best(&kept_dc);
                if a.is_finite() || b.is_finite() {
                    assert!((a - b).abs() < 1e-6, "x={x} budget={budget}: {a} vs {b}");
                }
            }
        }
    }
}
