//! The `.msr` plain-text net interchange format.
//!
//! A line-oriented format carrying everything the optimizer needs: the
//! technology, the vertices (terminals with timing parameters, Steiner
//! points, insertion points), the wires, and a repeater library.
//!
//! ```text
//! # comment
//! tech 0.03 0.00035
//! terminal t0 100 200 arrival=0 downstream=0 cap=0.05 res=180 intrinsic=0
//! terminal t1 900 200 arrival=- downstream=55 cap=0.05 res=0
//! steiner s0 500 200
//! insertion p0 300 200
//! wire t0 p0
//! wire p0 s0 length=210
//! wire s0 t1 res_scale=0.5 cap_scale=2
//! repeater rep1x a2b=50,180 b2a=50,180 cap=0.05,0.05 cost=2
//! repeater irep a2b=25,180 b2a=25,180 cap=0.025,0.025 cost=1 inverting
//! ```
//!
//! * `arrival=-` / `downstream=-` mean "not a source" / "not a sink"
//!   (`−∞` in the model, paper §II).
//! * `wire` length defaults to the rectilinear distance of its
//!   endpoints; `res_scale`/`cap_scale` carry wire-width scaling.
//! * Names must be unique; wires refer to names.

use std::collections::BTreeMap;
use std::fmt;

use msrnet_geom::Point;
use msrnet_rctree::{
    DriveParams, Net, NetBuilder, Repeater, Technology, Terminal, VertexId, VertexKind,
};

/// A parsed `.msr` file: the net plus its repeater library.
#[derive(Clone, Debug)]
pub struct NetFile {
    /// The validated net.
    pub net: Net,
    /// The repeater library, in file order.
    pub library: Vec<Repeater>,
    /// Vertex names, indexed by [`VertexId`].
    pub names: Vec<String>,
}

/// A parse failure with its 1-based line number.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseNetError {
    /// 1-based line where the problem was found (0 for file-level
    /// problems).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseNetError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        ParseNetError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "net file: {}", self.message)
        } else {
            write!(f, "net file line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseNetError {}

/// Parses the `.msr` text format.
///
/// # Errors
///
/// Returns a [`ParseNetError`] naming the offending line for syntax
/// problems, unknown vertex references, duplicate names, or a net that
/// fails validation.
pub fn parse_net_file(text: &str) -> Result<NetFile, ParseNetError> {
    let mut builder: Option<NetBuilder> = None;
    let mut ids: BTreeMap<String, VertexId> = BTreeMap::new();
    let mut names: Vec<String> = Vec::new();
    let mut library: Vec<Repeater> = Vec::new();
    // Wire-width scaling can only be applied once the builder has been
    // consumed, so remember (edge, res_scale, cap_scale) until then.
    let mut deferred: Vec<(msrnet_rctree::EdgeId, f64, f64)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut words = line.split_whitespace();
        let Some(keyword) = words.next() else {
            continue;
        };
        let rest: Vec<&str> = words.collect();
        match keyword {
            "tech" => {
                let [r, c] = positional::<2>(lineno, &rest)?;
                let r = parse_num(lineno, r)?;
                let c = parse_num(lineno, c)?;
                if r < 0.0 || c < 0.0 {
                    return Err(ParseNetError::new(lineno, "negative technology value"));
                }
                builder = Some(NetBuilder::new(Technology::new(r, c)));
            }
            "terminal" | "steiner" | "insertion" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| ParseNetError::new(lineno, "`tech` must come first"))?;
                if rest.len() < 3 {
                    return Err(ParseNetError::new(lineno, "expected: name x y ..."));
                }
                let name = rest[0].to_owned();
                if ids.contains_key(&name) {
                    return Err(ParseNetError::new(lineno, format!("duplicate name `{name}`")));
                }
                let x = parse_num(lineno, rest[1])?;
                let y = parse_num(lineno, rest[2])?;
                let pos = Point::new(x, y);
                let vid = match keyword {
                    "terminal" => {
                        let kv = keyvals(lineno, &rest[3..])?;
                        let term = Terminal {
                            arrival: opt_num(lineno, &kv, "arrival")?,
                            downstream: opt_num(lineno, &kv, "downstream")?,
                            cap: req_num(lineno, &kv, "cap")?,
                            drive_res: kv
                                .get("res")
                                .map(|v| parse_num(lineno, v))
                                .transpose()?
                                .unwrap_or(0.0),
                            drive_intrinsic: kv
                                .get("intrinsic")
                                .map(|v| parse_num(lineno, v))
                                .transpose()?
                                .unwrap_or(0.0),
                        };
                        b.terminal(pos, term)
                    }
                    "steiner" => b.steiner(pos),
                    _ => b.insertion_point(pos),
                };
                ids.insert(name.clone(), vid);
                debug_assert_eq!(names.len(), vid.0);
                names.push(name);
            }
            "wire" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| ParseNetError::new(lineno, "`tech` must come first"))?;
                if rest.len() < 2 {
                    return Err(ParseNetError::new(lineno, "expected: wire a b ..."));
                }
                let a = *ids
                    .get(rest[0])
                    .ok_or_else(|| ParseNetError::new(lineno, format!("unknown vertex `{}`", rest[0])))?;
                let bb = *ids
                    .get(rest[1])
                    .ok_or_else(|| ParseNetError::new(lineno, format!("unknown vertex `{}`", rest[1])))?;
                let kv = keyvals(lineno, &rest[2..])?;
                let e = match kv.get("length") {
                    Some(v) => {
                        let len = parse_num(lineno, v)?;
                        if !(len.is_finite() && len >= 0.0) {
                            return Err(ParseNetError::new(lineno, "invalid wire length"));
                        }
                        b.wire_with_length(a, bb, len)
                    }
                    None => b.wire(a, bb),
                };
                let rs = kv
                    .get("res_scale")
                    .map(|v| parse_num(lineno, v))
                    .transpose()?
                    .unwrap_or(1.0);
                let cs = kv
                    .get("cap_scale")
                    .map(|v| parse_num(lineno, v))
                    .transpose()?
                    .unwrap_or(1.0);
                // msrnet-allow: float-eq 1.0 is the exact parsed default; scaling is skipped only for bit-exact unit factors
                if rs != 1.0 || cs != 1.0 {
                    deferred.push((e, rs, cs));
                }
            }
            "repeater" => {
                let kv = keyvals(lineno, &rest[1..])?;
                if rest.is_empty() {
                    return Err(ParseNetError::new(lineno, "expected: repeater name ..."));
                }
                let name = rest[0];
                let (a2b_int, a2b_res) = pair(lineno, &kv, "a2b")?;
                let (b2a_int, b2a_res) = pair(lineno, &kv, "b2a")?;
                let (cap_a, cap_b) = pair(lineno, &kv, "cap")?;
                let cost = req_num(lineno, &kv, "cost")?;
                let inverting = rest.contains(&"inverting");
                let mut rep = Repeater {
                    name: name.to_owned(),
                    a_to_b: DriveParams {
                        intrinsic: a2b_int,
                        out_res: a2b_res,
                    },
                    b_to_a: DriveParams {
                        intrinsic: b2a_int,
                        out_res: b2a_res,
                    },
                    cap_a,
                    cap_b,
                    cost,
                    inverting: false,
                };
                if inverting {
                    rep = rep.inverting();
                }
                library.push(rep);
            }
            other => {
                return Err(ParseNetError::new(
                    lineno,
                    format!("unknown keyword `{other}`"),
                ));
            }
        }
    }
    let builder = builder.ok_or_else(|| ParseNetError::new(0, "missing `tech` line"))?;
    let mut net = builder
        .build()
        .map_err(|e| ParseNetError::new(0, format!("invalid net: {e}")))?;
    for (e, rs, cs) in deferred {
        net.topology.set_edge_scaling(e, rs, cs);
    }
    Ok(NetFile { net, library, names })
}

fn positional<'a, const N: usize>(
    line: usize,
    rest: &[&'a str],
) -> Result<[&'a str; N], ParseNetError> {
    let Some(head) = rest.get(..N) else {
        return Err(ParseNetError::new(line, format!("expected {N} values")));
    };
    let mut out = [""; N];
    out.copy_from_slice(head);
    Ok(out)
}

fn keyvals<'a>(
    line: usize,
    rest: &[&'a str],
) -> Result<BTreeMap<&'a str, &'a str>, ParseNetError> {
    let mut kv = BTreeMap::new();
    for w in rest {
        if let Some((k, v)) = w.split_once('=') {
            if kv.insert(k, v).is_some() {
                return Err(ParseNetError::new(line, format!("duplicate key `{k}`")));
            }
        } else if *w != "inverting" {
            return Err(ParseNetError::new(line, format!("expected key=value, got `{w}`")));
        }
    }
    Ok(kv)
}

fn parse_num(line: usize, s: &str) -> Result<f64, ParseNetError> {
    s.parse::<f64>()
        .map_err(|_| ParseNetError::new(line, format!("invalid number `{s}`")))
}

/// `key=-` means −∞ (non-source / non-sink); missing key means 0.
fn opt_num(
    line: usize,
    kv: &BTreeMap<&str, &str>,
    key: &str,
) -> Result<f64, ParseNetError> {
    match kv.get(key) {
        None => Ok(0.0),
        Some(&"-") => Ok(f64::NEG_INFINITY),
        Some(v) => parse_num(line, v),
    }
}

fn req_num(line: usize, kv: &BTreeMap<&str, &str>, key: &str) -> Result<f64, ParseNetError> {
    match kv.get(key) {
        None => Err(ParseNetError::new(line, format!("missing `{key}=`"))),
        Some(v) => parse_num(line, v),
    }
}

fn pair(
    line: usize,
    kv: &BTreeMap<&str, &str>,
    key: &str,
) -> Result<(f64, f64), ParseNetError> {
    let raw = kv
        .get(key)
        .ok_or_else(|| ParseNetError::new(line, format!("missing `{key}=`")))?;
    let (a, b) = raw
        .split_once(',')
        .ok_or_else(|| ParseNetError::new(line, format!("`{key}` needs two comma-separated values")))?;
    Ok((parse_num(line, a)?, parse_num(line, b)?))
}

/// Serializes a net and repeater library as `.msr` text.
///
/// Vertex names are `t<i>` for terminals, `s<i>` for Steiner points and
/// `p<i>` for insertion points; the output round-trips through
/// [`parse_net_file`].
pub fn write_net_file(net: &Net, library: &[Repeater]) -> String {
    let mut out = String::new();
    out.push_str("# msrnet net file\n");
    out.push_str(&format!(
        "tech {} {}\n",
        net.tech.unit_res, net.tech.unit_cap
    ));
    let mut names: Vec<String> = Vec::with_capacity(net.topology.vertex_count());
    let mut counters = (0usize, 0usize, 0usize);
    for v in net.topology.vertices() {
        let pos = net.topology.position(v);
        match net.topology.kind(v) {
            VertexKind::Terminal(t) => {
                let name = format!("t{}", counters.0);
                counters.0 += 1;
                let term = net.terminal(t);
                let fmt_inf = |x: f64| {
                    if x == f64::NEG_INFINITY {
                        "-".to_owned()
                    } else {
                        format!("{x}")
                    }
                };
                out.push_str(&format!(
                    "terminal {name} {} {} arrival={} downstream={} cap={} res={} intrinsic={}\n",
                    pos.x,
                    pos.y,
                    fmt_inf(term.arrival),
                    fmt_inf(term.downstream),
                    term.cap,
                    term.drive_res,
                    term.drive_intrinsic
                ));
                names.push(name);
            }
            VertexKind::Steiner => {
                let name = format!("s{}", counters.1);
                counters.1 += 1;
                out.push_str(&format!("steiner {name} {} {}\n", pos.x, pos.y));
                names.push(name);
            }
            VertexKind::InsertionPoint => {
                let name = format!("p{}", counters.2);
                counters.2 += 1;
                out.push_str(&format!("insertion {name} {} {}\n", pos.x, pos.y));
                names.push(name);
            }
        }
    }
    for e in net.topology.edges() {
        let (a, b) = net.topology.endpoints(e);
        let (rs, cs) = net.topology.edge_scaling(e);
        out.push_str(&format!(
            "wire {} {} length={}",
            names[a.0],
            names[b.0],
            net.topology.length(e)
        ));
        // msrnet-allow: float-eq exactly-1.0 factors are omitted so output round-trips bit-identically
        if rs != 1.0 {
            out.push_str(&format!(" res_scale={rs}"));
        }
        // msrnet-allow: float-eq exactly-1.0 factors are omitted so output round-trips bit-identically
        if cs != 1.0 {
            out.push_str(&format!(" cap_scale={cs}"));
        }
        out.push('\n');
    }
    for rep in library {
        out.push_str(&format!(
            "repeater {} a2b={},{} b2a={},{} cap={},{} cost={}{}\n",
            rep.name.replace(' ', "_"),
            rep.a_to_b.intrinsic,
            rep.a_to_b.out_res,
            rep.b_to_a.intrinsic,
            rep.b_to_a.out_res,
            rep.cap_a,
            rep.cap_b,
            rep.cost,
            if rep.inverting { " inverting" } else { "" }
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrnet_rctree::TerminalId;

    const SAMPLE: &str = "\
# a three-terminal net
tech 0.03 0.00035
terminal t0 0 0 arrival=0 downstream=0 cap=0.05 res=180
terminal t1 8000 0 arrival=- downstream=55 cap=0.05
steiner s0 4000 0
insertion p0 2000 0
wire t0 p0
wire p0 s0
wire s0 t1 res_scale=0.5 cap_scale=2
terminal t2 4000 3000 arrival=120 downstream=0 cap=0.07 res=90 intrinsic=10
wire s0 t2
repeater rep1x a2b=50,180 b2a=50,180 cap=0.05,0.05 cost=2
repeater irep a2b=25,90 b2a=30,95 cap=0.025,0.03 cost=1 inverting
";

    #[test]
    fn parses_the_sample() {
        let f = parse_net_file(SAMPLE).expect("parse");
        assert_eq!(f.net.topology.terminal_count(), 3);
        assert_eq!(f.net.topology.vertex_count(), 5);
        assert_eq!(f.net.topology.edge_count(), 4);
        assert_eq!(f.library.len(), 2);
        // Roles decoded from `-`.
        let t1 = f.net.terminal(TerminalId(1));
        assert!(!t1.is_source() && t1.is_sink());
        assert_eq!(t1.downstream, 55.0);
        let t2 = f.net.terminal(TerminalId(2));
        assert_eq!(t2.arrival, 120.0);
        assert_eq!(t2.drive_intrinsic, 10.0);
        // Wire scaling decoded.
        let e = f
            .net
            .topology
            .edges()
            .find(|&e| f.net.topology.edge_scaling(e) != (1.0, 1.0))
            .expect("scaled wire present");
        assert_eq!(f.net.topology.edge_scaling(e), (0.5, 2.0));
        // Repeater flags decoded.
        assert!(!f.library[0].inverting);
        assert!(f.library[1].inverting);
        assert_eq!(f.library[1].b_to_a.out_res, 95.0);
        // Default wire length is the rectilinear distance.
        let first = msrnet_rctree::EdgeId(0);
        assert_eq!(f.net.topology.length(first), 2000.0);
    }

    #[test]
    fn roundtrips_through_writer() {
        let f = parse_net_file(SAMPLE).expect("parse");
        let text = write_net_file(&f.net, &f.library);
        let g = parse_net_file(&text).expect("reparse");
        assert_eq!(
            f.net.topology.vertex_count(),
            g.net.topology.vertex_count()
        );
        assert_eq!(f.net.topology.edge_count(), g.net.topology.edge_count());
        assert_eq!(f.library, g.library);
        for t in f.net.terminal_ids() {
            assert_eq!(f.net.terminal(t), g.net.terminal(t));
        }
        for e in f.net.topology.edges() {
            assert_eq!(f.net.topology.length(e), g.net.topology.length(e));
            assert_eq!(
                f.net.topology.edge_scaling(e),
                g.net.topology.edge_scaling(e)
            );
        }
    }

    #[test]
    fn reports_line_numbers() {
        let bad = "tech 0.03 0.00035\nterminal t0 0 0 cap=0.05\nwire t0 missing\n";
        let err = parse_net_file(bad).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("missing"));
    }

    #[test]
    fn rejects_duplicate_names() {
        let bad = "tech 1 1\nterminal a 0 0 cap=1\nterminal a 1 1 cap=1\n";
        let err = parse_net_file(bad).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn rejects_unknown_keyword() {
        let bad = "tech 1 1\nfrobnicate x\n";
        let err = parse_net_file(bad).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_missing_tech() {
        let bad = "terminal t0 0 0 cap=1\n";
        assert!(parse_net_file(bad).is_err());
    }

    #[test]
    fn rejects_invalid_tree() {
        let bad = "tech 1 1\nterminal a 0 0 cap=1 res=1\nterminal b 9 0 cap=1\n";
        let err = parse_net_file(bad).unwrap_err();
        assert_eq!(err.line, 0);
        assert!(err.message.contains("tree"));
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "\n# hi\ntech 1 1\n  \nterminal a 0 0 cap=1 res=1 # inline\nterminal b 5 0 cap=1\nwire a b\n";
        let f = parse_net_file(text).expect("parse");
        assert_eq!(f.net.topology.terminal_count(), 2);
    }
}
