//! Workload generation for the paper's experiments (§VI).
//!
//! Provides the technology preset standing in for the paper's Table I
//! (see `DESIGN.md` for the substitution note), terminal factories
//! matching the experimental assumptions (previous-stage resistance
//! 400 Ω, subsequent-stage capacitance 0.2 pF, every terminal both source
//! and sink, `AT = q = 0` so the unaugmented RC-diameter is measured),
//! driver-sizing menus built from sized buffers, and random net
//! generators over the 1 cm × 1 cm grid.
//!
//! Beyond the paper's experiments, these generators seed the
//! differential-verification harness (`msrnet-verify`): its regime grid
//! draws random Steiner and clustered topologies from [`ExperimentNet`]
//! and then perturbs them toward adversarial geometry (zero-length
//! edges, duplicate points, extreme R/C corners).
//!
//! # Examples
//!
//! ```
//! use msrnet_netgen::{table1, ExperimentNet};
//! use msrnet_rng::SeedableRng;
//!
//! let params = table1();
//! let mut rng = msrnet_rng::rngs::StdRng::seed_from_u64(1);
//! let exp = ExperimentNet::random(&mut rng, 10, &params)?;
//! let net = exp.with_insertion_points(800.0);
//! assert_eq!(net.topology.terminal_count(), 10);
//! assert!(net.topology.insertion_point_count() > 0);
//! # Ok::<(), msrnet_rctree::BuildNetError>(())
//! ```
//!
//! The crate also owns the plain-text `.msr` net interchange format
//! ([`mod@format`]) so every consumer of net files — the CLI, the resident
//! session server (`msrnet-service`), and tests — parses and writes
//! through one implementation.

pub mod format;

use msrnet_core::{TerminalOption, TerminalOptions};
use msrnet_geom::Point;
use msrnet_rctree::{
    Buffer, BuildNetError, Net, Repeater, Technology, Terminal, TerminalId,
};
use msrnet_rng::Rng;

/// The technology parameters used by every experiment — the stand-in for
/// the paper's Table I (values representative of mid-1990s sub-micron
/// processes; the paper's exact numbers are not legible in the source
/// text, and all reported results are normalized ratios).
#[derive(Clone, Debug)]
pub struct TechParams {
    /// Wire parasitics: 0.03 Ω/µm and 0.35 fF/µm.
    pub tech: Technology,
    /// The 1X buffer: 50 ps intrinsic, 180 Ω output, 0.05 pF input,
    /// cost 1. `kX` variants follow the paper's sizing rule
    /// ([`Buffer::scaled`]).
    pub buf_1x: Buffer,
    /// Resistance of the logic stage driving each terminal's input
    /// buffer: 400 Ω (paper §VI).
    pub prev_stage_res: f64,
    /// Capacitance each terminal's output buffer must drive: 0.2 pF
    /// (paper §VI).
    pub next_stage_cap: f64,
    /// Side of the placement grid: 1 cm = 10 000 µm (paper §VI).
    pub grid: f64,
}

/// Returns the experiment technology (see [`TechParams`]).
pub fn table1() -> TechParams {
    TechParams {
        tech: Technology::new(0.03, 0.000_35),
        buf_1x: Buffer::new("1X", 50.0, 180.0, 0.05, 1.0),
        prev_stage_res: 400.0,
        next_stage_cap: 0.2,
        grid: 10_000.0,
    }
}

impl TechParams {
    /// A bidirectional terminal with `AT = q = 0` (the unaugmented
    /// RC-diameter setting of §VI): the bus sees the 1X receiver's input
    /// capacitance and is driven through the 1X driver's resistance.
    pub fn bidirectional_terminal(&self) -> Terminal {
        Terminal::bidirectional(0.0, 0.0, self.buf_1x.in_cap, self.buf_1x.out_res)
    }

    /// The bidirectional repeater built from a pair of `kX` buffers.
    pub fn repeater(&self, k: f64) -> Repeater {
        let b = self.buf_1x.scaled(k);
        Repeater::from_buffer_pair(&format!("rep{k}X"), &b, &b)
    }

    /// The terminal-driver option for an `(input kX, output mX)` buffer
    /// pair: the input buffer loads the previous stage and drives the
    /// bus; the output buffer loads the bus and drives the next stage.
    pub fn driver_option(&self, k_in: f64, k_out: f64) -> TerminalOption {
        let din = self.buf_1x.scaled(k_in);
        let dout = self.buf_1x.scaled(k_out);
        TerminalOption {
            name: format!("{k_in}X/{k_out}X"),
            cost: din.cost + dout.cost,
            arrival_extra: din.intrinsic + self.prev_stage_res * din.in_cap,
            drive_res: din.out_res,
            cap: dout.in_cap,
            downstream_extra: dout.intrinsic + dout.out_res * self.next_stage_cap,
        }
    }

    /// The fixed 1X/1X driver menu used by the repeater-insertion
    /// experiments (cost 2 per terminal, so the min-cost solution's cost
    /// is the total driver area, as Table II's normalization requires).
    pub fn fixed_driver_menu(&self, net: &Net) -> TerminalOptions {
        let opt = self.driver_option(1.0, 1.0);
        TerminalOptions::new(vec![vec![opt]; net.terminals.len()])
    }

    /// The driver-sizing menus of §VI: every `(kX in, mX out)` pair with
    /// `k, m ∈ sizes` — the paper's "library of 9 terminal drivers" uses
    /// `sizes = [2, 3, 4]` plus the 1X baseline, i.e. `[1, 2, 3, 4]`.
    pub fn sizing_menu(&self, net: &Net, sizes: &[f64]) -> TerminalOptions {
        let menu: Vec<TerminalOption> = sizes
            .iter()
            .flat_map(|&k| sizes.iter().map(move |&m| (k, m)))
            .map(|(k, m)| self.driver_option(k, m))
            .collect();
        TerminalOptions::new(vec![menu; net.terminals.len()])
    }
}

/// A generated experiment net, before insertion-point subdivision.
#[derive(Clone, Debug)]
pub struct ExperimentNet {
    /// The normalized net (terminals are leaves), no insertion points.
    pub net: Net,
}

impl ExperimentNet {
    /// Random `n`-terminal net on the `grid × grid` placement area with
    /// integer coordinates, Steiner-routed and normalized. All terminals
    /// are bidirectional with `AT = q = 0`.
    ///
    /// # Errors
    ///
    /// Propagates net-construction failures (not expected for random
    /// point sets).
    pub fn random<R: Rng>(
        rng: &mut R,
        n: usize,
        params: &TechParams,
    ) -> Result<Self, BuildNetError> {
        let term = params.bidirectional_terminal();
        let pts = random_points(rng, n, params.grid);
        let terms: Vec<(Point, Terminal)> = pts.into_iter().map(|p| (p, term)).collect();
        let net = msrnet_steiner::build_net(params.tech, &terms)?.normalized();
        Ok(ExperimentNet { net })
    }

    /// Like [`ExperimentNet::random`] but routed with a plain rectilinear
    /// MST (no 1-Steiner refinement). Intended for large scaling
    /// experiments where the `O(n²)`-per-candidate Steiner refinement
    /// would dominate; topology quality is slightly worse but valid.
    pub fn random_mst<R: Rng>(
        rng: &mut R,
        n: usize,
        params: &TechParams,
    ) -> Result<Self, BuildNetError> {
        use msrnet_rctree::NetBuilder;
        let term = params.bidirectional_terminal();
        let pts = random_points(rng, n, params.grid);
        let mut builder = NetBuilder::new(params.tech);
        let ids: Vec<_> = pts
            .iter()
            .map(|&p| builder.terminal(p, term))
            .collect();
        for (a, b) in msrnet_steiner::rectilinear_mst(&pts) {
            builder.wire(ids[a], ids[b]);
        }
        let net = builder.build()?.normalized();
        Ok(ExperimentNet { net })
    }

    /// Random net with an asymmetric role distribution: the first
    /// `n_sources` terminals can drive (and also receive); the rest are
    /// pure sinks (paper §VII names asymmetric source/sink distributions
    /// as a study direction).
    pub fn random_asymmetric<R: Rng>(
        rng: &mut R,
        n: usize,
        n_sources: usize,
        params: &TechParams,
    ) -> Result<Self, BuildNetError> {
        assert!(n_sources >= 1 && n_sources <= n);
        let pts = random_points(rng, n, params.grid);
        let terms: Vec<(Point, Terminal)> = pts
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let t = if i < n_sources {
                    params.bidirectional_terminal()
                } else {
                    Terminal::sink_only(0.0, params.buf_1x.in_cap)
                };
                (p, t)
            })
            .collect();
        let net = msrnet_steiner::build_net(params.tech, &terms)?.normalized();
        Ok(ExperimentNet { net })
    }

    /// Subdivides wires so insertion points are at most `spacing` µm
    /// apart (≥ 1 per wire), returning the optimization-ready net.
    pub fn with_insertion_points(&self, spacing: f64) -> Net {
        self.net.with_insertion_points(spacing)
    }

    /// A terminal id that can act as a source, usable as the DP root.
    pub fn source_terminal(&self) -> TerminalId {
        self.net
            .terminal_ids()
            .find(|&t| self.net.terminal(t).is_source())
            // msrnet-allow: panic generated nets always carry exactly one source terminal
            .expect("validated nets have a source")
    }
}

impl ExperimentNet {
    /// Random net whose terminals cluster into two distant blocks (e.g.
    /// a core-to-cache bus): `n_left` terminals in the left tenth of the
    /// die, the rest in the right tenth. Long inter-block wire dominated
    /// nets are where repeater insertion shines brightest.
    pub fn random_clustered<R: Rng>(
        rng: &mut R,
        n_left: usize,
        n_right: usize,
        params: &TechParams,
    ) -> Result<Self, BuildNetError> {
        assert!(n_left >= 1 && n_right >= 1);
        let term = params.bidirectional_terminal();
        let band = params.grid * 0.1;
        let mut pts: Vec<Point> = Vec::with_capacity(n_left + n_right);
        while pts.len() < n_left {
            let p = Point::new(
                rng.gen_range(0..=(band as i64)) as f64,
                rng.gen_range(0..=(params.grid as i64)) as f64,
            );
            if !pts.contains(&p) {
                pts.push(p);
            }
        }
        while pts.len() < n_left + n_right {
            let p = Point::new(
                params.grid - rng.gen_range(0..=(band as i64)) as f64,
                rng.gen_range(0..=(params.grid as i64)) as f64,
            );
            if !pts.contains(&p) {
                pts.push(p);
            }
        }
        let terms: Vec<(Point, Terminal)> = pts.into_iter().map(|p| (p, term)).collect();
        let net = msrnet_steiner::build_net(params.tech, &terms)?.normalized();
        Ok(ExperimentNet { net })
    }
}

impl ExperimentNet {
    /// Random region-local net with explicit unidirectional roles — the
    /// chip regime's building block (`msrnet-timing` assembles designs
    /// from many such nets, each confined to its own placement region).
    ///
    /// The first `n_sources` terminals are pure drivers (`AT = 0`,
    /// driven through the 1X buffer's output resistance); the remaining
    /// `n − n_sources` are pure sinks (`q = 0`, 1X receiver load). All
    /// pins sit on distinct integer coordinates inside the `span × span`
    /// box whose lower-left corner is `origin`.
    ///
    /// # Panics
    ///
    /// Panics if `n_sources` is zero or not less than `n` (a net needs
    /// at least one driver and one sink).
    ///
    /// # Errors
    ///
    /// Propagates net-construction failures (not expected for random
    /// point sets).
    pub fn random_in_region<R: Rng>(
        rng: &mut R,
        n: usize,
        n_sources: usize,
        params: &TechParams,
        origin: Point,
        span: f64,
    ) -> Result<Self, BuildNetError> {
        assert!(n_sources >= 1 && n_sources < n);
        let pts = random_points_in(rng, n, origin, span);
        let terms: Vec<(Point, Terminal)> = pts
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let t = if i < n_sources {
                    Terminal::source_only(0.0, params.buf_1x.in_cap, params.buf_1x.out_res)
                } else {
                    Terminal::sink_only(0.0, params.buf_1x.in_cap)
                };
                (p, t)
            })
            .collect();
        let net = msrnet_steiner::build_net(params.tech, &terms)?.normalized();
        Ok(ExperimentNet { net })
    }
}

/// `n` distinct random integer-coordinate points inside the
/// `span × span` box whose lower-left corner is `origin`.
pub fn random_points_in<R: Rng>(rng: &mut R, n: usize, origin: Point, span: f64) -> Vec<Point> {
    let s = (span as i64).max(n as i64);
    let mut pts: Vec<Point> = Vec::with_capacity(n);
    while pts.len() < n {
        let p = Point::new(
            origin.x + rng.gen_range(0..=s) as f64,
            origin.y + rng.gen_range(0..=s) as f64,
        );
        if !pts.contains(&p) {
            pts.push(p);
        }
    }
    pts
}

/// A net size drawn from the skewed (power-law-like) distribution of
/// real designs: mostly 2–3-pin nets, with a thin tail reaching
/// `max_pins` (high-fanout control or clock-like nets). Implemented as
/// `2 + ⌊(max_pins − 2) · u³⌋` for uniform `u` — the cube concentrates
/// mass at the small end while keeping every size reachable.
pub fn skewed_net_size<R: Rng>(rng: &mut R, max_pins: usize) -> usize {
    let max_pins = max_pins.max(2);
    let u = rng.gen_range(0.0..1.0f64);
    let extra = ((max_pins - 2) as f64 * u * u * u) as usize;
    (2 + extra).min(max_pins)
}

/// `n` distinct random integer-coordinate points on `[0, grid]²`.
pub fn random_points<R: Rng>(rng: &mut R, n: usize, grid: f64) -> Vec<Point> {
    let g = grid as i64;
    let mut pts: Vec<Point> = Vec::with_capacity(n);
    while pts.len() < n {
        let p = Point::new(rng.gen_range(0..=g) as f64, rng.gen_range(0..=g) as f64);
        if !pts.contains(&p) {
            pts.push(p);
        }
    }
    pts
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrnet_rng::rngs::StdRng;
    use msrnet_rng::SeedableRng;

    #[test]
    fn table1_values_are_sane() {
        let p = table1();
        assert_eq!(p.tech.wire_res(10_000.0), 300.0);
        assert!((p.tech.wire_cap(10_000.0) - 3.5).abs() < 1e-12);
        assert_eq!(p.buf_1x.cost, 1.0);
        assert_eq!(p.grid, 10_000.0);
    }

    #[test]
    fn driver_option_scaling_rules() {
        let p = table1();
        let o11 = p.driver_option(1.0, 1.0);
        assert_eq!(o11.cost, 2.0);
        assert!((o11.arrival_extra - (50.0 + 400.0 * 0.05)).abs() < 1e-12);
        assert!((o11.downstream_extra - (50.0 + 180.0 * 0.2)).abs() < 1e-12);
        let o42 = p.driver_option(4.0, 2.0);
        assert_eq!(o42.cost, 6.0);
        assert_eq!(o42.drive_res, 45.0);
        assert!((o42.cap - 0.1).abs() < 1e-12);
        // Bigger input buffer loads the previous stage more.
        assert!(o42.arrival_extra > o11.arrival_extra);
        // Bigger output buffer drives the next stage faster.
        assert!(o42.downstream_extra < o11.downstream_extra);
    }

    #[test]
    fn sizing_menu_has_all_pairs() {
        let p = table1();
        let mut rng = StdRng::seed_from_u64(3);
        let exp = ExperimentNet::random(&mut rng, 5, &p).unwrap();
        let menus = p.sizing_menu(&exp.net, &[1.0, 2.0, 3.0, 4.0]);
        for t in exp.net.terminal_ids() {
            assert_eq!(menus.for_terminal(t).len(), 16);
        }
    }

    #[test]
    fn random_nets_are_valid_and_leaf_normalized() {
        let p = table1();
        let mut rng = StdRng::seed_from_u64(11);
        for n in [5, 10, 20] {
            let exp = ExperimentNet::random(&mut rng, n, &p).unwrap();
            assert!(exp.net.check().is_ok());
            assert_eq!(exp.net.topology.terminal_count(), n);
            for t in exp.net.terminal_ids() {
                let v = exp.net.topology.terminal_vertex(t);
                assert_eq!(exp.net.topology.degree(v), 1);
            }
            let sub = exp.with_insertion_points(800.0);
            assert!(sub.check().is_ok());
            for e in sub.topology.edges() {
                assert!(sub.topology.length(e) <= 800.0 + 1e-9);
            }
        }
    }

    #[test]
    fn random_points_are_distinct_and_in_grid() {
        let mut rng = StdRng::seed_from_u64(5);
        let pts = random_points(&mut rng, 50, 10_000.0);
        assert_eq!(pts.len(), 50);
        for (i, a) in pts.iter().enumerate() {
            assert!(a.x >= 0.0 && a.x <= 10_000.0 && a.y >= 0.0 && a.y <= 10_000.0);
            for b in &pts[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn asymmetric_nets_have_requested_roles() {
        let p = table1();
        let mut rng = StdRng::seed_from_u64(6);
        let exp = ExperimentNet::random_asymmetric(&mut rng, 8, 2, &p).unwrap();
        let sources = exp
            .net
            .terminal_ids()
            .filter(|&t| exp.net.terminal(t).is_source())
            .count();
        let sinks = exp
            .net
            .terminal_ids()
            .filter(|&t| exp.net.terminal(t).is_sink())
            .count();
        assert_eq!(sources, 2);
        assert_eq!(sinks, 8);
        assert!(exp.source_terminal().0 < 2);
    }

    #[test]
    fn clustered_nets_split_into_bands() {
        let p = table1();
        let mut rng = StdRng::seed_from_u64(9);
        let exp = ExperimentNet::random_clustered(&mut rng, 3, 4, &p).unwrap();
        assert!(exp.net.check().is_ok());
        assert_eq!(exp.net.topology.terminal_count(), 7);
        let band = p.grid * 0.1;
        let mut left = 0;
        let mut right = 0;
        for t in exp.net.terminal_ids() {
            let v = exp.net.topology.terminal_vertex(t);
            let x = exp.net.topology.position(v).x;
            if x <= band {
                left += 1;
            } else if x >= p.grid - band {
                right += 1;
            }
        }
        assert_eq!(left, 3);
        assert_eq!(right, 4);
        // The bus crosses the die: wirelength at least 80% of the grid.
        assert!(exp.net.topology.total_wirelength() >= p.grid * 0.8);
    }

    #[test]
    fn repeater_from_params_is_symmetric_pair() {
        let p = table1();
        let r = p.repeater(1.0);
        assert!(r.is_symmetric());
        assert_eq!(r.cost, 2.0);
        let r3 = p.repeater(3.0);
        assert_eq!(r3.cost, 6.0);
        assert_eq!(r3.a_to_b.out_res, 60.0);
    }
}
