//! Optimality verification of the repeater-insertion dynamic program
//! (paper Theorem 4.1): on small instances the DP's trade-off frontier
//! must coincide exactly with brute-force enumeration over every
//! repeater assignment, orientation, and driver choice.

use msrnet_core::exhaustive::{apply_terminal_choices, exhaustive_frontier};
use msrnet_core::{
    ard::ard_linear, optimize, MsriOptions, PruningStrategy, TerminalOption, TerminalOptions,
};
use msrnet_geom::Point;
use msrnet_rctree::{
    Buffer, Net, NetBuilder, Repeater, Technology, Terminal, TerminalId,
};
use msrnet_rng::rngs::StdRng;
use msrnet_rng::{Rng, SeedableRng};

fn tech() -> Technology {
    Technology::new(0.03, 0.00035)
}

fn buf1x() -> Buffer {
    Buffer::new("1X", 50.0, 180.0, 0.05, 1.0)
}

fn sym_lib() -> Vec<Repeater> {
    let b = buf1x();
    vec![Repeater::from_buffer_pair("rep1x", &b, &b)]
}

fn asym_lib() -> Vec<Repeater> {
    let fwd = buf1x();
    let bwd = buf1x().scaled(2.0);
    vec![Repeater::from_buffer_pair("rep-asym", &fwd, &bwd)]
}

/// A random small multiterminal net with insertion points, built on a
/// random Steiner-ish chain/star mix. Terminal roles are mixed:
/// bidirectional, source-only and sink-only (terminal 0 is always
/// bidirectional so a root and a feasible pair exist).
fn random_net(rng: &mut StdRng, n_terms: usize, spacing: f64) -> Net {
    let mut b = NetBuilder::new(tech());
    let mut vids = Vec::new();
    for i in 0..n_terms {
        let p = Point::new(
            rng.gen_range(0..8000) as f64,
            rng.gen_range(0..8000) as f64,
        );
        let at = if rng.gen_bool(0.5) {
            rng.gen_range(0..200) as f64
        } else {
            0.0
        };
        let q = if rng.gen_bool(0.5) {
            rng.gen_range(0..200) as f64
        } else {
            0.0
        };
        let term = match if i == 0 { 0 } else { rng.gen_range(0..4) } {
            1 => Terminal::source_only(at, 0.05, 180.0),
            2 => Terminal::sink_only(q, 0.05),
            _ => Terminal::bidirectional(at, q, 0.05, 180.0),
        };
        vids.push(b.terminal(p, term));
    }
    // Random tree over the terminals (connect i to a random earlier one
    // through a steiner midpoint occasionally).
    for i in 1..n_terms {
        let j = rng.gen_range(0..i);
        b.wire(vids[i], vids[j]);
    }
    let net = b.build().unwrap().normalized();
    net.with_insertion_points(spacing)
}

fn frontiers_match(
    net: &Net,
    root: TerminalId,
    lib: &[Repeater],
    opts: &TerminalOptions,
    label: &str,
) {
    let curve = optimize(net, root, lib, opts, &MsriOptions::default()).expect("optimize");
    let oracle = exhaustive_frontier(net, root, lib, opts);
    assert_eq!(
        curve.len(),
        oracle.len(),
        "{label}: frontier sizes differ\nDP: {:?}\noracle: {:?}",
        curve
            .points()
            .iter()
            .map(|p| (p.cost, p.ard))
            .collect::<Vec<_>>(),
        oracle.iter().map(|p| (p.cost, p.ard)).collect::<Vec<_>>(),
    );
    for (p, o) in curve.points().iter().zip(&oracle) {
        assert!(
            (p.cost - o.cost).abs() < 1e-6 && (p.ard - o.ard).abs() < 1e-6,
            "{label}: point mismatch: DP ({}, {}) vs oracle ({}, {})",
            p.cost,
            p.ard,
            o.cost,
            o.ard
        );
    }
    // Every DP point must be *realizable*: re-evaluating its concrete
    // assignment with the independent ARD engine reproduces its claim.
    let rooted = net.rooted_at_terminal(root);
    for p in curve.points() {
        let (scenario, opt_cost) = apply_terminal_choices(net, opts, &p.terminal_choices);
        let report = ard_linear(&scenario, &rooted, lib, &p.assignment);
        assert!(
            (report.ard - p.ard).abs() < 1e-6,
            "{label}: materialized ARD {} != claimed {}",
            report.ard,
            p.ard
        );
        let total_cost = opt_cost + p.assignment.total_cost(lib);
        assert!(
            (total_cost - p.cost).abs() < 1e-9,
            "{label}: materialized cost {} != claimed {}",
            total_cost,
            p.cost
        );
    }
}

#[test]
fn dp_matches_exhaustive_on_random_nets_symmetric_lib() {
    let mut rng = StdRng::seed_from_u64(7);
    let lib = sym_lib();
    for trial in 0..12 {
        let n = 3 + trial % 3;
        let net = random_net(&mut rng, n, 4000.0);
        if net.topology.insertion_point_count() > 10 {
            continue;
        }
        let opts = TerminalOptions::defaults(&net);
        frontiers_match(&net, TerminalId(0), &lib, &opts, &format!("sym trial {trial}"));
    }
}

#[test]
fn dp_matches_exhaustive_with_asymmetric_repeater() {
    let mut rng = StdRng::seed_from_u64(1234);
    let lib = asym_lib();
    for trial in 0..8 {
        let net = random_net(&mut rng, 3, 5000.0);
        if net.topology.insertion_point_count() > 8 {
            continue;
        }
        let opts = TerminalOptions::defaults(&net);
        frontiers_match(
            &net,
            TerminalId(0),
            &lib,
            &opts,
            &format!("asym trial {trial}"),
        );
    }
}

#[test]
fn dp_matches_exhaustive_with_two_repeater_library() {
    let mut rng = StdRng::seed_from_u64(99);
    let b = buf1x();
    let lib = vec![
        Repeater::from_buffer_pair("rep1x", &b, &b),
        Repeater::from_buffer_pair("rep3x", &b.scaled(3.0), &b.scaled(3.0)),
    ];
    for trial in 0..6 {
        let net = random_net(&mut rng, 3, 5000.0);
        if net.topology.insertion_point_count() > 6 {
            continue;
        }
        let opts = TerminalOptions::defaults(&net);
        frontiers_match(
            &net,
            TerminalId(0),
            &lib,
            &opts,
            &format!("two-lib trial {trial}"),
        );
    }
}

#[test]
fn dp_matches_exhaustive_for_driver_sizing() {
    // Sizing mode: no repeaters, per-terminal driver menus {1X, 2X, 4X}.
    let mut rng = StdRng::seed_from_u64(5);
    for trial in 0..6 {
        let net = random_net(&mut rng, 3, 1e9); // effectively no subdivision
        let mut opts = TerminalOptions::defaults(&net);
        for t in net.terminal_ids() {
            let base = &net.terminals[t.0];
            let menu = [1.0, 2.0, 4.0]
                .iter()
                .map(|&k| TerminalOption {
                    name: format!("{k}X"),
                    cost: 2.0 * k,
                    arrival_extra: 400.0 * 0.05 * k + 50.0,
                    drive_res: base.drive_res / k,
                    cap: base.cap * k,
                    downstream_extra: 50.0 + (180.0 / k) * 0.2,
                })
                .collect();
            opts.set(t, menu);
        }
        frontiers_match(&net, TerminalId(0), &[], &opts, &format!("sizing trial {trial}"));
    }
}

#[test]
fn cap_bound_regression_large_repeater_near_small_outside() {
    // Regression: the PWL domain clamp must reserve headroom for the
    // repeater's child-side input capacitance. Here the source hangs off
    // a short stub, so the capacitance outside the main subtree
    // (≈0.1 pF) is smaller than the 3X repeater's side cap (0.15 pF);
    // a too-tight clamp silently skipped the single-3X optimum.
    let mut b = NetBuilder::new(tech());
    let src = b.terminal(
        Point::new(0.0, 0.0),
        Terminal::source_only(0.0, 0.05, 180.0),
    );
    let ip0 = b.insertion_point(Point::new(135.0, 0.0));
    let s = b.steiner(Point::new(270.0, 0.0));
    let ip1 = b.insertion_point(Point::new(270.0 + 1490.0, 0.0));
    let snk1 = b.terminal(
        Point::new(270.0 + 2980.0, 0.0),
        Terminal::sink_only(0.0, 0.05),
    );
    let snk2 = b.terminal(Point::new(270.0, 50.0), Terminal::sink_only(0.0, 0.05));
    b.wire(src, ip0);
    b.wire(ip0, s);
    b.wire(s, ip1);
    b.wire(ip1, snk1);
    b.wire(s, snk2);
    let net = b.build().unwrap();
    let b3 = buf1x().scaled(3.0);
    let lib = vec![Repeater::from_buffer_pair("rep3x", &b3, &b3)];
    let opts = TerminalOptions::defaults(&net);
    frontiers_match(&net, TerminalId(0), &lib, &opts, "cap-bound regression");
}

#[test]
fn frontier_is_root_invariant() {
    let mut rng = StdRng::seed_from_u64(4242);
    let lib = sym_lib();
    for _ in 0..5 {
        let net = random_net(&mut rng, 4, 4000.0);
        let opts = TerminalOptions::defaults(&net);
        let base = optimize(&net, TerminalId(0), &lib, &opts, &MsriOptions::default()).unwrap();
        for root in 1..4 {
            let other = optimize(
                &net,
                TerminalId(root),
                &lib,
                &opts,
                &MsriOptions::default(),
            )
            .unwrap();
            assert_eq!(base.len(), other.len(), "root {root}");
            for (a, b) in base.points().iter().zip(other.points()) {
                assert!((a.cost - b.cost).abs() < 1e-6);
                assert!((a.ard - b.ard).abs() < 1e-6, "{} vs {}", a.ard, b.ard);
            }
        }
    }
}

#[test]
fn pruning_strategies_agree() {
    let mut rng = StdRng::seed_from_u64(31337);
    let lib = sym_lib();
    for _ in 0..4 {
        let net = random_net(&mut rng, 4, 3000.0);
        let opts = TerminalOptions::defaults(&net);
        let mut curves = Vec::new();
        for strategy in [
            PruningStrategy::DivideConquer,
            PruningStrategy::Naive,
            PruningStrategy::Bucketed,
            PruningStrategy::WholeDomainOnly,
            PruningStrategy::Approximate { eps: 0.0 },
        ] {
            let o = MsriOptions {
                pruning: strategy,
                ..MsriOptions::default()
            };
            curves.push(optimize(&net, TerminalId(0), &lib, &opts, &o).unwrap());
        }
        for c in &curves[1..] {
            assert_eq!(curves[0].len(), c.len());
            for (a, b) in curves[0].points().iter().zip(c.points()) {
                assert!((a.cost - b.cost).abs() < 1e-6);
                assert!((a.ard - b.ard).abs() < 1e-6);
            }
        }
    }
}

#[test]
fn min_cost_meeting_respects_spec() {
    let mut rng = StdRng::seed_from_u64(2);
    let net = random_net(&mut rng, 4, 2500.0);
    let lib = sym_lib();
    let opts = TerminalOptions::defaults(&net);
    let curve = optimize(&net, TerminalId(0), &lib, &opts, &MsriOptions::default()).unwrap();
    // Unachievable spec.
    assert!(curve.min_cost_meeting(curve.best_ard().ard - 1.0).is_none());
    // Looser specs cost no more.
    let mut last_cost = f64::INFINITY;
    let lo = curve.best_ard().ard;
    let hi = curve.min_cost().ard;
    for k in 0..=10 {
        let spec = lo + (hi - lo) * k as f64 / 10.0;
        if let Some(p) = curve.min_cost_meeting(spec) {
            assert!(p.ard <= spec + 1e-9);
            assert!(p.cost <= last_cost + 1e-9);
            last_cost = p.cost;
        }
    }
}

#[test]
fn unbuffered_point_matches_plain_ard() {
    // The min-cost end of the curve with zero-cost defaults is the bare
    // net: its ARD equals a direct evaluation with no repeaters.
    let mut rng = StdRng::seed_from_u64(77);
    let net = random_net(&mut rng, 5, 3000.0);
    let lib = sym_lib();
    let opts = TerminalOptions::defaults(&net);
    let curve = optimize(&net, TerminalId(0), &lib, &opts, &MsriOptions::default()).unwrap();
    let rooted = net.rooted_at_terminal(TerminalId(0));
    let bare = ard_linear(
        &net,
        &rooted,
        &lib,
        &msrnet_rctree::Assignment::empty(net.topology.vertex_count()),
    );
    let min = curve.min_cost();
    assert_eq!(min.assignment.placed_count(), 0);
    assert!((min.ard - bare.ard).abs() < 1e-6);
}
