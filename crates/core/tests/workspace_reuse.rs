//! The workspace entry point must be bit-identical to the plain one,
//! including when one workspace is reused across many nets — recycled
//! arena buffers must never leak state between runs. This is the
//! property the parallel batch engine's determinism guarantee rests on.

use msrnet_core::{optimize, optimize_in, MsriOptions, MsriWorkspace, TerminalOptions};
use msrnet_geom::Point;
use msrnet_rctree::{Buffer, Net, NetBuilder, Repeater, Technology, Terminal, TerminalId};
use msrnet_rng::{Rng, SeedableRng, SplitMix64};

/// A random multi-terminal star/chain net with insertion points.
fn random_net(rng: &mut SplitMix64) -> Net {
    let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
    let n = rng.gen_range(3..7usize);
    let mut prev = b.terminal(
        Point::new(0.0, 0.0),
        Terminal::bidirectional(0.0, 0.0, 0.05, 180.0),
    );
    for i in 1..n {
        let x = 3000.0 * i as f64;
        let y = rng.gen_range(-1000.0..1000.0f64);
        let ip = b.insertion_point(Point::new(x - 1500.0, y * 0.5));
        b.wire(prev, ip);
        let t = if rng.gen_bool(0.3) {
            Terminal::sink_only(rng.gen_range(0.0..50.0f64), 0.05)
        } else {
            Terminal::bidirectional(rng.gen_range(0.0..30.0f64), 0.0, 0.05, 180.0)
        };
        let v = b.terminal(Point::new(x, y), t);
        b.wire(ip, v);
        prev = v;
    }
    b.build().expect("chain nets are valid").normalized()
}

#[test]
fn reused_workspace_is_bit_identical_to_fresh_runs() {
    let mut rng = SplitMix64::seed_from_u64(80);
    let buf = Buffer::new("1X", 50.0, 180.0, 0.05, 1.0);
    let lib = [Repeater::from_buffer_pair("rep", &buf, &buf)];
    let options = MsriOptions::default();
    let mut ws = MsriWorkspace::new();
    for _ in 0..16 {
        let net = random_net(&mut rng);
        let drivers = TerminalOptions::defaults(&net);
        let fresh = optimize(&net, TerminalId(0), &lib, &drivers, &options)
            .expect("chain nets optimize");
        let reused = optimize_in(&net, TerminalId(0), &lib, &drivers, &options, &mut ws)
            .expect("chain nets optimize");
        assert_eq!(fresh.points().len(), reused.points().len());
        for (a, b) in fresh.points().iter().zip(reused.points()) {
            // Exact float equality on purpose: the arena path must
            // perform the identical operations.
            assert_eq!(a.cost.to_bits(), b.cost.to_bits());
            assert_eq!(a.ard.to_bits(), b.ard.to_bits());
            assert_eq!(a.terminal_choices, b.terminal_choices);
        }
    }
    // The workspace must actually be exercising the free list by now.
    assert!(ws.arena().reused() > 0, "arena reuse is active");
}
