//! ARD oracle agreement on degenerate nets.
//!
//! The `msrnet-cli verify` harness cross-checks `ard_linear` against
//! `ard_naive` on generated instances; these tests pin the degenerate
//! corners of that pair explicitly — the smallest nets where the linear
//! sweep's bookkeeping (top-two merges, local terminal roles) could
//! plausibly diverge from the brute-force definition.

use msrnet_core::ard::{ard_linear, ard_naive};
use msrnet_core::{optimize, MsriError, MsriOptions, TerminalOptions};
use msrnet_geom::Point;
use msrnet_rctree::{Assignment, NetBuilder, Technology, Terminal, TerminalId};

fn tech() -> Technology {
    Technology::new(0.03, 0.000_35)
}

#[test]
fn two_terminal_zero_insertion_point_net_agrees() {
    let mut b = NetBuilder::new(tech());
    let a = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(12.0, 80.0, 0.05, 180.0));
    let c = b.terminal(Point::new(1500.0, 0.0), Terminal::bidirectional(45.0, 70.0, 0.09, 120.0));
    b.wire_with_length(a, c, 1500.0);
    let net = b.build().expect("valid two-terminal net");

    let asg = Assignment::empty(net.topology.vertex_count());
    for root in net.terminal_ids() {
        let rooted = net.rooted_at_terminal(root);
        let fast = ard_linear(&net, &rooted, &[], &asg);
        let slow = ard_naive(&net, &rooted, &[], &asg);
        assert!(fast.ard.is_finite(), "two sources and two sinks must pair");
        assert!(
            (fast.ard - slow.ard).abs() <= 1e-9 * slow.ard.abs(),
            "root {root:?}: linear {} vs naive {}",
            fast.ard,
            slow.ard
        );
        assert_eq!(fast.critical, slow.critical, "root {root:?}");
    }

    // With no insertion points the DP has a single (empty) frontier
    // point whose ARD is the bare net's.
    let rooted = net.rooted_at_terminal(TerminalId(0));
    let bare = ard_linear(&net, &rooted, &[], &asg);
    let curve = optimize(
        &net,
        TerminalId(0),
        &[],
        &TerminalOptions::defaults(&net),
        &MsriOptions::default(),
    )
    .expect("two-terminal net optimizes");
    let best = curve
        .points()
        .iter()
        .map(|p| p.ard)
        .fold(f64::INFINITY, f64::min);
    assert!(
        (best - bare.ard).abs() <= 1e-9 * bare.ard.abs(),
        "frontier {best} vs bare ARD {}",
        bare.ard
    );
}

#[test]
fn single_terminal_net_rejected_everywhere() {
    let mut b = NetBuilder::new(tech());
    b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(5.0, 50.0, 0.05, 180.0));
    let net = b.build().expect("single-terminal net is a valid net");

    // No distinct source/sink pair exists: both ARD sweeps must agree
    // on -inf with no critical pair…
    let rooted = net.rooted_at_terminal(TerminalId(0));
    let asg = Assignment::empty(net.topology.vertex_count());
    let fast = ard_linear(&net, &rooted, &[], &asg);
    let slow = ard_naive(&net, &rooted, &[], &asg);
    assert_eq!(fast.ard, f64::NEG_INFINITY);
    assert_eq!(slow.ard, f64::NEG_INFINITY);
    assert_eq!(fast.critical, None);
    assert_eq!(slow.critical, None);

    // …and the DP must reject instead of panicking on a root with no
    // child subtree (regression: used to index `children[0]` blindly).
    let err = optimize(
        &net,
        TerminalId(0),
        &[],
        &TerminalOptions::defaults(&net),
        &MsriOptions::default(),
    )
    .expect_err("no feasible source/sink pair");
    assert_eq!(err, MsriError::NoFeasiblePair);
}

#[test]
fn directional_two_terminal_net_agrees() {
    // One pure source driving one pure sink: exactly one ordered pair,
    // so both sweeps must report it — and rooting at either end (the
    // sink root exercises the arrival/delay split at a leaf root).
    let mut b = NetBuilder::new(tech());
    let s = b.terminal(Point::new(0.0, 0.0), Terminal::source_only(30.0, 0.06, 150.0));
    let t = b.terminal(Point::new(900.0, 0.0), Terminal::sink_only(40.0, 0.11));
    b.wire_with_length(s, t, 900.0);
    let net = b.build().expect("valid source/sink net");

    let asg = Assignment::empty(net.topology.vertex_count());
    for root in net.terminal_ids() {
        let rooted = net.rooted_at_terminal(root);
        let fast = ard_linear(&net, &rooted, &[], &asg);
        let slow = ard_naive(&net, &rooted, &[], &asg);
        assert!(fast.ard.is_finite());
        assert!((fast.ard - slow.ard).abs() <= 1e-9 * slow.ard.abs());
        assert_eq!(fast.critical, Some((TerminalId(0), TerminalId(1))));
        assert_eq!(fast.critical, slow.critical);
    }
}
