//! ARD oracle agreement on degenerate nets.
//!
//! The `msrnet-cli verify` harness cross-checks `ard_linear` against
//! `ard_naive` on generated instances; these tests pin the degenerate
//! corners of that pair explicitly — the smallest nets where the linear
//! sweep's bookkeeping (top-two merges, local terminal roles) could
//! plausibly diverge from the brute-force definition.

use msrnet_core::ard::{ard_linear, ard_naive};
use msrnet_core::{optimize, MsriError, MsriOptions, PruningStrategy, TerminalOptions};
use msrnet_geom::Point;
use msrnet_rctree::{
    Assignment, Buffer, Net, NetBuilder, Repeater, Technology, Terminal, TerminalId,
};

fn tech() -> Technology {
    Technology::new(0.03, 0.000_35)
}

/// The asymmetric multi-cost library from the verify regime grid
/// (three distinct cost denominations whose pairwise sums stay
/// distinct) — the Pareto-explosion regime that used to be gated out of
/// DP cross-checks as `dp_intractable` at high insertion-point counts.
fn multi_cost_asym_lib() -> Vec<Repeater> {
    let b1 = Buffer::new("1X", 50.0, 180.0, 0.05, 1.0);
    let b2 = b1.scaled(2.0);
    let b4 = b1.scaled(4.0);
    vec![
        Repeater::from_buffer_pair("asym_s", &b1, &b2),
        Repeater::from_buffer_pair("rep2x", &b2, &b2),
        Repeater::from_buffer_pair("asym_l", &b2, &b4),
    ]
}

/// `src —ip×n— snk` chain: every internal vertex is an insertion point,
/// so the candidate-set growth is driven purely by the library.
fn chain_net(n_ips: usize, seg: f64) -> Net {
    let mut b = NetBuilder::new(tech());
    let src = b.terminal(
        Point::new(0.0, 0.0),
        Terminal::bidirectional(12.0, 80.0, 0.05, 180.0),
    );
    let mut prev = src;
    let mut x = 0.0;
    for _ in 0..n_ips {
        x += seg;
        let ip = b.insertion_point(Point::new(x, 0.0));
        b.wire_with_length(prev, ip, seg);
        prev = ip;
    }
    x += seg;
    let snk = b.terminal(
        Point::new(x, 0.0),
        Terminal::bidirectional(45.0, 70.0, 0.09, 120.0),
    );
    b.wire_with_length(prev, snk, seg);
    b.build().expect("valid chain net")
}

/// Star with a central Steiner vertex and three legs of two insertion
/// points each — the joins at the center exercise the pre-materialization
/// join cutoffs on every pruning strategy.
fn star_net(seg: f64) -> Net {
    let mut b = NetBuilder::new(tech());
    let center = b.steiner(Point::new(0.0, 0.0));
    let dirs = [(1.0, 0.0), (-1.0, 0.0), (0.0, 1.0)];
    for (leg, (dx, dy)) in dirs.iter().enumerate() {
        let ip1 = b.insertion_point(Point::new(dx * seg, dy * seg));
        let ip2 = b.insertion_point(Point::new(dx * 2.0 * seg, dy * 2.0 * seg));
        let term = if leg == 0 {
            Terminal::bidirectional(10.0, 60.0, 0.05, 180.0)
        } else {
            Terminal::bidirectional(0.0, 40.0 + 15.0 * leg as f64, 0.07, 150.0)
        };
        let t = b.terminal(Point::new(dx * 3.0 * seg, dy * 3.0 * seg), term);
        b.wire_with_length(center, ip1, seg);
        b.wire_with_length(ip1, ip2, seg);
        b.wire_with_length(ip2, t, seg);
    }
    b.build().expect("valid star net")
}

/// All pruning strategies that must reproduce the exact frontier
/// bit-for-bit (Approximate at eps = 0 included — its relaxation is the
/// identity there).
const EXACT_STRATEGIES: [PruningStrategy; 5] = [
    PruningStrategy::DivideConquer,
    PruningStrategy::Naive,
    PruningStrategy::Bucketed,
    PruningStrategy::WholeDomainOnly,
    PruningStrategy::Approximate { eps: 0.0 },
];

fn assert_strategies_agree(net: &Net, lib: &[Repeater], allow_inverting: bool, label: &str) {
    let opts = TerminalOptions::defaults(net);
    let mut curves = Vec::new();
    for strategy in EXACT_STRATEGIES {
        let o = MsriOptions {
            pruning: strategy,
            allow_inverting,
            ..MsriOptions::default()
        };
        curves.push((
            strategy,
            optimize(net, TerminalId(0), lib, &opts, &o)
                .unwrap_or_else(|e| panic!("{label}: {strategy:?} failed: {e:?}")),
        ));
    }
    let (_, base) = &curves[0];
    assert!(base.len() > 1, "{label}: expected a non-trivial frontier");
    for (strategy, c) in &curves[1..] {
        assert_eq!(
            base.len(),
            c.len(),
            "{label}: {strategy:?} frontier size {} vs {}",
            c.len(),
            base.len()
        );
        for (a, b) in base.points().iter().zip(c.points()) {
            assert!(
                (a.cost - b.cost).abs() < 1e-9 && (a.ard - b.ard).abs() < 1e-9,
                "{label}: {strategy:?} point ({}, {}) vs ({}, {})",
                b.cost,
                b.ard,
                a.cost,
                a.ard
            );
        }
    }
}

#[test]
fn two_terminal_zero_insertion_point_net_agrees() {
    let mut b = NetBuilder::new(tech());
    let a = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(12.0, 80.0, 0.05, 180.0));
    let c = b.terminal(Point::new(1500.0, 0.0), Terminal::bidirectional(45.0, 70.0, 0.09, 120.0));
    b.wire_with_length(a, c, 1500.0);
    let net = b.build().expect("valid two-terminal net");

    let asg = Assignment::empty(net.topology.vertex_count());
    for root in net.terminal_ids() {
        let rooted = net.rooted_at_terminal(root);
        let fast = ard_linear(&net, &rooted, &[], &asg);
        let slow = ard_naive(&net, &rooted, &[], &asg);
        assert!(fast.ard.is_finite(), "two sources and two sinks must pair");
        assert!(
            (fast.ard - slow.ard).abs() <= 1e-9 * slow.ard.abs(),
            "root {root:?}: linear {} vs naive {}",
            fast.ard,
            slow.ard
        );
        assert_eq!(fast.critical, slow.critical, "root {root:?}");
    }

    // With no insertion points the DP has a single (empty) frontier
    // point whose ARD is the bare net's.
    let rooted = net.rooted_at_terminal(TerminalId(0));
    let bare = ard_linear(&net, &rooted, &[], &asg);
    let curve = optimize(
        &net,
        TerminalId(0),
        &[],
        &TerminalOptions::defaults(&net),
        &MsriOptions::default(),
    )
    .expect("two-terminal net optimizes");
    let best = curve
        .points()
        .iter()
        .map(|p| p.ard)
        .fold(f64::INFINITY, f64::min);
    assert!(
        (best - bare.ard).abs() <= 1e-9 * bare.ard.abs(),
        "frontier {best} vs bare ARD {}",
        bare.ard
    );
}

#[test]
fn single_terminal_net_rejected_everywhere() {
    let mut b = NetBuilder::new(tech());
    b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(5.0, 50.0, 0.05, 180.0));
    let net = b.build().expect("single-terminal net is a valid net");

    // No distinct source/sink pair exists: both ARD sweeps must agree
    // on -inf with no critical pair…
    let rooted = net.rooted_at_terminal(TerminalId(0));
    let asg = Assignment::empty(net.topology.vertex_count());
    let fast = ard_linear(&net, &rooted, &[], &asg);
    let slow = ard_naive(&net, &rooted, &[], &asg);
    assert_eq!(fast.ard, f64::NEG_INFINITY);
    assert_eq!(slow.ard, f64::NEG_INFINITY);
    assert_eq!(fast.critical, None);
    assert_eq!(slow.critical, None);

    // …and the DP must reject instead of panicking on a root with no
    // child subtree (regression: used to index `children[0]` blindly).
    let err = optimize(
        &net,
        TerminalId(0),
        &[],
        &TerminalOptions::defaults(&net),
        &MsriOptions::default(),
    )
    .expect_err("no feasible source/sink pair");
    assert_eq!(err, MsriError::NoFeasiblePair);
}

#[test]
fn directional_two_terminal_net_agrees() {
    // One pure source driving one pure sink: exactly one ordered pair,
    // so both sweeps must report it — and rooting at either end (the
    // sink root exercises the arrival/delay split at a leaf root).
    let mut b = NetBuilder::new(tech());
    let s = b.terminal(Point::new(0.0, 0.0), Terminal::source_only(30.0, 0.06, 150.0));
    let t = b.terminal(Point::new(900.0, 0.0), Terminal::sink_only(40.0, 0.11));
    b.wire_with_length(s, t, 900.0);
    let net = b.build().expect("valid source/sink net");

    let asg = Assignment::empty(net.topology.vertex_count());
    for root in net.terminal_ids() {
        let rooted = net.rooted_at_terminal(root);
        let fast = ard_linear(&net, &rooted, &[], &asg);
        let slow = ard_naive(&net, &rooted, &[], &asg);
        assert!(fast.ard.is_finite());
        assert!((fast.ard - slow.ard).abs() <= 1e-9 * slow.ard.abs());
        assert_eq!(fast.critical, Some((TerminalId(0), TerminalId(1))));
        assert_eq!(fast.critical, slow.critical);
    }
}

#[test]
fn high_insertion_point_multicost_chain_strategies_and_oracles_agree() {
    // A 10-insertion-point chain under the three-cost asymmetric library
    // puts the DP estimate well past the old `dp_intractable` gate
    // ((10+1)^4 ≈ 1.5e4); the bucketed sweep and join cutoffs are what
    // make it cheap. Every exact strategy must agree bit-for-bit, and
    // each frontier point must be realizable under BOTH independent ARD
    // oracles — the cross-check the verify harness used to skip here.
    let net = chain_net(10, 700.0);
    let lib = multi_cost_asym_lib();
    assert_strategies_agree(&net, &lib, false, "multicost chain");

    let opts = TerminalOptions::defaults(&net);
    let curve = optimize(
        &net,
        TerminalId(0),
        &lib,
        &opts,
        &MsriOptions::default(),
    )
    .expect("multicost chain optimizes");
    let rooted = net.rooted_at_terminal(TerminalId(0));
    for p in curve.points() {
        let fast = ard_linear(&net, &rooted, &lib, &p.assignment);
        let slow = ard_naive(&net, &rooted, &lib, &p.assignment);
        assert!(
            (fast.ard - p.ard).abs() <= 1e-6,
            "linear ARD {} != claimed {}",
            fast.ard,
            p.ard
        );
        assert!(
            (fast.ard - slow.ard).abs() <= 1e-9 * slow.ard.abs().max(1.0),
            "oracles diverge on buffered net: {} vs {}",
            fast.ard,
            slow.ard
        );
        assert_eq!(fast.critical, slow.critical);
    }
}

#[test]
fn inverting_asymmetric_star_strategies_agree() {
    // Joins at the star center under an inverting asymmetric pair: the
    // parity dimension doubles the candidate classes and the join-time
    // cutoffs must respect it. All exact strategies, same frontier.
    let b1 = Buffer::new("1X", 50.0, 180.0, 0.05, 1.0);
    let b3 = b1.scaled(3.0);
    let lib = vec![
        Repeater::from_buffer_pair("asym", &b1, &b3),
        Repeater::from_buffer_pair("iasym", &b3, &b1).inverting(),
    ];
    assert_strategies_agree(&star_net(900.0), &lib, true, "inverting star");
}
