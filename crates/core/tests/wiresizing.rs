//! Verification of simultaneous repeater insertion and discrete wire
//! sizing (paper §VII: "there is no fundamental reason why the basic
//! techniques introduced here cannot be utilized to solve other
//! optimization problems in multisource nets such as wire sizing").
//!
//! Every trade-off point is checked against brute-force enumeration over
//! wire widths × repeater assignments × driver options, and re-verified
//! by applying the choices to the net and evaluating with the
//! independent linear-time ARD engine.

use msrnet_core::exhaustive::{
    apply_terminal_choices, apply_wire_choices, exhaustive_frontier_with_wires,
};
use msrnet_core::{
    ard::ard_linear, optimize, optimize_with_wires, MsriOptions, TerminalOptions, WireOption,
};
use msrnet_geom::Point;
use msrnet_rctree::{
    Buffer, Net, NetBuilder, Repeater, Technology, Terminal, TerminalId,
};
use msrnet_rng::rngs::StdRng;
use msrnet_rng::{Rng, SeedableRng};

fn tech() -> Technology {
    Technology::new(0.03, 0.00035)
}

fn buf1x() -> Buffer {
    Buffer::new("1X", 50.0, 180.0, 0.05, 1.0)
}

fn widths() -> Vec<WireOption> {
    vec![
        WireOption::unit(),
        WireOption::width("2W", 2.0, 0.0005),
        WireOption::width("4W", 4.0, 0.0015),
    ]
}

fn random_net(rng: &mut StdRng, n_terms: usize, spacing: f64) -> Net {
    let mut b = NetBuilder::new(tech());
    let mut vids = Vec::new();
    for i in 0..n_terms {
        let p = Point::new(rng.gen_range(0..8000) as f64, rng.gen_range(0..8000) as f64);
        let term = match if i == 0 { 0 } else { rng.gen_range(0..3) } {
            1 => Terminal::source_only(0.0, 0.05, 180.0),
            2 => Terminal::sink_only(0.0, 0.05),
            _ => Terminal::bidirectional(0.0, 0.0, 0.05, 180.0),
        };
        vids.push(b.terminal(p, term));
    }
    for i in 1..n_terms {
        let j = rng.gen_range(0..i);
        b.wire(vids[i], vids[j]);
    }
    b.build().unwrap().normalized().with_insertion_points(spacing)
}

fn check(net: &Net, lib: &[Repeater], wires: &[WireOption], label: &str) {
    let opts = TerminalOptions::defaults(net);
    let curve = optimize_with_wires(
        net,
        TerminalId(0),
        lib,
        &opts,
        wires,
        &MsriOptions::default(),
    )
    .expect("optimize");
    let oracle = exhaustive_frontier_with_wires(net, TerminalId(0), lib, &opts, wires);
    assert_eq!(
        curve.len(),
        oracle.len(),
        "{label}: sizes differ\nDP: {:?}\nEX: {:?}",
        curve.points().iter().map(|p| (p.cost, p.ard)).collect::<Vec<_>>(),
        oracle.iter().map(|p| (p.cost, p.ard)).collect::<Vec<_>>()
    );
    for (p, o) in curve.points().iter().zip(&oracle) {
        assert!(
            (p.cost - o.cost).abs() < 1e-6 && (p.ard - o.ard).abs() < 1e-6,
            "{label}: ({}, {}) vs ({}, {})",
            p.cost,
            p.ard,
            o.cost,
            o.ard
        );
    }
    // Realizability: apply driver + wire choices, re-evaluate.
    let rooted = net.rooted_at_terminal(TerminalId(0));
    for p in curve.points() {
        let (scenario, opt_cost) = apply_terminal_choices(net, &opts, &p.terminal_choices);
        let (scenario, wire_cost) = apply_wire_choices(&scenario, wires, &p.wire_choices);
        let report = ard_linear(&scenario, &rooted, lib, &p.assignment);
        assert!(
            (report.ard - p.ard).abs() < 1e-6,
            "{label}: materialized {} != claimed {}",
            report.ard,
            p.ard
        );
        let cost = opt_cost + wire_cost + p.assignment.total_cost(lib);
        assert!((cost - p.cost).abs() < 1e-6, "{label}: cost {} != {}", cost, p.cost);
    }
}

#[test]
fn wire_sizing_alone_matches_exhaustive_on_two_pin_line() {
    // 2 terminals, 1 insertion point → 2 edges... after subdivision the
    // edge count is small enough for full enumeration.
    let mut b = NetBuilder::new(tech());
    let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
    let ip = b.insertion_point(Point::new(4000.0, 0.0));
    let t1 = b.terminal(Point::new(8000.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
    b.wire(t0, ip);
    b.wire(ip, t1);
    let net = b.build().unwrap();
    check(&net, &[], &widths(), "two-pin sizing only");
}

#[test]
fn simultaneous_wires_and_repeaters_match_exhaustive() {
    let mut b = NetBuilder::new(tech());
    let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
    let ip0 = b.insertion_point(Point::new(3000.0, 0.0));
    let ip1 = b.insertion_point(Point::new(6000.0, 0.0));
    let t1 = b.terminal(Point::new(9000.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
    b.wire(t0, ip0);
    b.wire(ip0, ip1);
    b.wire(ip1, t1);
    let net = b.build().unwrap();
    let blib = [Repeater::from_buffer_pair("rep", &buf1x(), &buf1x())];
    check(&net, &blib, &widths(), "line wires+repeaters");
}

#[test]
fn random_small_nets_with_sizing_match_exhaustive() {
    let mut rng = StdRng::seed_from_u64(2024);
    let blib = [Repeater::from_buffer_pair("rep", &buf1x(), &buf1x())];
    let two = [WireOption::unit(), WireOption::width("3W", 3.0, 0.001)];
    let mut checked = 0;
    for trial in 0..20 {
        let net = random_net(&mut rng, 3, 6000.0);
        // Keep the joint search space tractable for the oracle.
        let sized_edges = net
            .topology
            .edges()
            .filter(|&e| net.topology.length(e) > 0.0)
            .count();
        if sized_edges > 8 || net.topology.insertion_point_count() > 5 {
            continue;
        }
        check(&net, &blib, &two, &format!("random sizing trial {trial}"));
        checked += 1;
    }
    assert!(checked >= 3, "too few instances exercised ({checked})");
}

#[test]
fn unit_option_reduces_to_plain_optimize() {
    let mut rng = StdRng::seed_from_u64(9);
    let net = random_net(&mut rng, 4, 2500.0);
    let blib = [Repeater::from_buffer_pair("rep", &buf1x(), &buf1x())];
    let opts = TerminalOptions::defaults(&net);
    let plain = optimize(&net, TerminalId(0), &blib, &opts, &MsriOptions::default()).unwrap();
    let unit = optimize_with_wires(
        &net,
        TerminalId(0),
        &blib,
        &opts,
        &[WireOption::unit()],
        &MsriOptions::default(),
    )
    .unwrap();
    assert_eq!(plain.len(), unit.len());
    for (a, b) in plain.points().iter().zip(unit.points()) {
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.ard, b.ard);
        assert!(b.wire_choices.iter().all(|&w| w == 0));
    }
}

#[test]
fn free_wider_wires_never_hurt() {
    // With zero-cost width options the best ARD can only improve.
    let mut rng = StdRng::seed_from_u64(31);
    let net = random_net(&mut rng, 4, 3000.0);
    let blib = [Repeater::from_buffer_pair("rep", &buf1x(), &buf1x())];
    let opts = TerminalOptions::defaults(&net);
    let free = [WireOption::unit(), WireOption::width("2W", 2.0, 0.0)];
    let base = optimize(&net, TerminalId(0), &blib, &opts, &MsriOptions::default()).unwrap();
    let sized = optimize_with_wires(
        &net,
        TerminalId(0),
        &blib,
        &opts,
        &free,
        &MsriOptions::default(),
    )
    .unwrap();
    assert!(sized.best_ard().ard <= base.best_ard().ard + 1e-9);
    assert!(sized.min_cost().ard <= base.min_cost().ard + 1e-9);
}
