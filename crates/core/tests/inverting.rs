//! Verification of the inverting-repeater extension (paper §V: "An
//! extension allowing the use of inverters as repeaters is possible and
//! straightforward").
//!
//! The optimizer tracks signal parity per subtree; a solution is
//! polarity-feasible iff every terminal-to-terminal path crosses an even
//! number of inverters. The exhaustive oracle enforces the same
//! constraint independently, so frontier equality proves both the parity
//! bookkeeping and optimality.

use msrnet_core::exhaustive::{exhaustive_frontier, polarity_feasible};
use msrnet_core::{optimize, MsriError, MsriOptions, TerminalOptions};
use msrnet_geom::Point;
use msrnet_rctree::{
    Assignment, Buffer, Net, NetBuilder, Orientation, Repeater, Technology, Terminal, TerminalId,
};
use msrnet_rng::rngs::StdRng;
use msrnet_rng::{Rng, SeedableRng};

fn tech() -> Technology {
    Technology::new(0.03, 0.00035)
}

/// An inverter is roughly half a buffer: half the intrinsic delay, half
/// the input capacitance, half the cost, same drive.
fn inverter() -> Buffer {
    Buffer::new("inv1x", 25.0, 180.0, 0.025, 0.5)
}

fn inverting_repeater() -> Repeater {
    let i = inverter();
    Repeater::from_buffer_pair("irep", &i, &i).inverting()
}

fn buffer_repeater() -> Repeater {
    let b = Buffer::new("1X", 50.0, 180.0, 0.05, 1.0);
    Repeater::from_buffer_pair("rep", &b, &b)
}

fn random_net(rng: &mut StdRng, n_terms: usize, spacing: f64) -> Net {
    let mut b = NetBuilder::new(tech());
    let mut vids = Vec::new();
    for _ in 0..n_terms {
        let p = Point::new(rng.gen_range(0..8000) as f64, rng.gen_range(0..8000) as f64);
        vids.push(b.terminal(p, Terminal::bidirectional(0.0, 0.0, 0.05, 180.0)));
    }
    for i in 1..n_terms {
        let j = rng.gen_range(0..i);
        b.wire(vids[i], vids[j]);
    }
    b.build().unwrap().normalized().with_insertion_points(spacing)
}

#[test]
fn inverting_repeater_requires_opt_in() {
    let mut rng = StdRng::seed_from_u64(1);
    let net = random_net(&mut rng, 3, 5000.0);
    let lib = [inverting_repeater()];
    let err = optimize(
        &net,
        TerminalId(0),
        &lib,
        &TerminalOptions::defaults(&net),
        &MsriOptions::default(),
    )
    .unwrap_err();
    assert_eq!(err, MsriError::InvertingDisallowed);
}

#[test]
fn polarity_feasibility_oracle() {
    // A chain t0 — ip0 — ip1 — t1: one inverter is infeasible, two are
    // feasible, and non-inverting repeaters never constrain.
    let mut b = NetBuilder::new(tech());
    let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
    let ip0 = b.insertion_point(Point::new(3000.0, 0.0));
    let ip1 = b.insertion_point(Point::new(6000.0, 0.0));
    let t1 = b.terminal(Point::new(9000.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
    b.wire(t0, ip0);
    b.wire(ip0, ip1);
    b.wire(ip1, t1);
    let net = b.build().unwrap();
    let lib = [inverting_repeater(), buffer_repeater()];

    let empty = Assignment::empty(net.topology.vertex_count());
    assert!(polarity_feasible(&net, &lib, &empty));

    let mut one_inv = empty.clone();
    one_inv.place(ip0, 0, Orientation::AFacesParent);
    assert!(!polarity_feasible(&net, &lib, &one_inv));

    let mut two_inv = one_inv.clone();
    two_inv.place(ip1, 0, Orientation::AFacesParent);
    assert!(polarity_feasible(&net, &lib, &two_inv));

    let mut mixed = empty.clone();
    mixed.place(ip0, 1, Orientation::AFacesParent);
    assert!(polarity_feasible(&net, &lib, &mixed));
    mixed.place(ip1, 0, Orientation::AFacesParent);
    assert!(!polarity_feasible(&net, &lib, &mixed));
}

#[test]
fn dp_matches_exhaustive_with_inverters_on_a_chain() {
    let mut b = NetBuilder::new(tech());
    let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
    let mut prev = t0;
    for i in 1..=4 {
        let ip = b.insertion_point(Point::new(2000.0 * i as f64, 0.0));
        b.wire(prev, ip);
        prev = ip;
    }
    let t1 = b.terminal(Point::new(10_000.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
    b.wire(prev, t1);
    let net = b.build().unwrap();
    check_inverting_frontiers(&net, "chain");
}

#[test]
fn dp_matches_exhaustive_with_inverters_on_random_nets() {
    let mut rng = StdRng::seed_from_u64(77);
    for trial in 0..8 {
        let net = random_net(&mut rng, 3, 4000.0);
        if net.topology.insertion_point_count() > 7 {
            continue;
        }
        check_inverting_frontiers(&net, &format!("trial {trial}"));
    }
}

fn check_inverting_frontiers(net: &Net, label: &str) {
    let lib = [inverting_repeater(), buffer_repeater()];
    let opts = TerminalOptions::defaults(net);
    let options = MsriOptions {
        allow_inverting: true,
        ..MsriOptions::default()
    };
    let curve = optimize(net, TerminalId(0), &lib, &opts, &options).expect("optimize");
    let oracle = exhaustive_frontier(net, TerminalId(0), &lib, &opts);
    assert_eq!(
        curve.len(),
        oracle.len(),
        "{label}: frontier sizes differ\nDP: {:?}\nEX: {:?}",
        curve.points().iter().map(|p| (p.cost, p.ard)).collect::<Vec<_>>(),
        oracle.iter().map(|p| (p.cost, p.ard)).collect::<Vec<_>>()
    );
    for (p, o) in curve.points().iter().zip(&oracle) {
        assert!(
            (p.cost - o.cost).abs() < 1e-9 && (p.ard - o.ard).abs() < 1e-6,
            "{label}: ({}, {}) vs ({}, {})",
            p.cost,
            p.ard,
            o.cost,
            o.ard
        );
    }
    // Every DP solution must itself be polarity feasible.
    for p in curve.points() {
        assert!(
            polarity_feasible(net, &lib, &p.assignment),
            "{label}: DP emitted a polarity-breaking assignment"
        );
    }
}

#[test]
fn inverter_pairs_beat_buffers_when_cheaper() {
    // On a long two-pin line, two half-cost inverters bracket the same
    // decoupling as one buffer pair at equal cost but less intrinsic
    // delay; the frontier should exploit them.
    let mut b = NetBuilder::new(tech());
    let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
    let mut prev = t0;
    for i in 1..=6 {
        let ip = b.insertion_point(Point::new(1500.0 * i as f64, 0.0));
        b.wire(prev, ip);
        prev = ip;
    }
    let t1 = b.terminal(Point::new(10_500.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
    b.wire(prev, t1);
    let net = b.build().unwrap();

    let opts = TerminalOptions::defaults(&net);
    let options = MsriOptions {
        allow_inverting: true,
        ..MsriOptions::default()
    };
    let both = optimize(
        &net,
        TerminalId(0),
        &[inverting_repeater(), buffer_repeater()],
        &opts,
        &options,
    )
    .expect("optimize");
    let buffers_only = optimize(
        &net,
        TerminalId(0),
        &[buffer_repeater()],
        &opts,
        &MsriOptions::default(),
    )
    .expect("optimize");
    // With inverters available the frontier is at least as good
    // everywhere.
    for bp in buffers_only.points() {
        let better = both.min_cost_meeting(bp.ard).expect("achievable");
        assert!(better.cost <= bp.cost + 1e-9);
    }
    // And some solution actually uses inverters.
    let uses_inverters = both.points().iter().any(|p| {
        p.assignment
            .placements()
            .any(|(_, pl)| pl.repeater == 0)
    });
    assert!(uses_inverters, "inverters should appear on the frontier");
}
