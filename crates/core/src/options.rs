//! Configuration of the repeater-insertion optimizer: per-terminal driver
//! options (which subsume discrete driver sizing, paper §V) and pruning
//! strategy knobs.

use std::fmt;

use msrnet_rctree::{BuildNetError, Net, Terminal, TerminalId};

/// One way of implementing a terminal's driver/receiver pair.
///
/// The paper's driver-sizing experiment (§VI) builds terminal drivers
/// from sized buffer pairs: the input buffer's size trades its own input
/// capacitance (loading the previous logic stage) against bus drive
/// strength; the output buffer's size trades bus load against the delay
/// of driving the next stage. A `TerminalOption` captures the net effect:
///
/// * `arrival_extra` — added to `AT` (previous-stage resistance × driver
///   input capacitance, plus the driver's intrinsic delay);
/// * `drive_res` — output resistance seen by the bus when sourcing;
/// * `cap` — capacitance presented to the bus (receiver input);
/// * `downstream_extra` — added to `q` (receiver intrinsic plus its
///   resistance × next-stage capacitance);
/// * `cost` — in equivalent 1X buffers.
///
/// Plain repeater insertion uses a single default option per terminal
/// ([`TerminalOptions::defaults`]); driver sizing enumerates several.
#[derive(Clone, Debug, PartialEq)]
pub struct TerminalOption {
    /// Human-readable label (e.g. `"2X/3X"`).
    pub name: String,
    /// Cost in equivalent 1X buffers.
    pub cost: f64,
    /// Delay added to the terminal's arrival time, ps.
    pub arrival_extra: f64,
    /// Output resistance when sourcing, Ω.
    pub drive_res: f64,
    /// Capacitance presented to the bus, pF.
    pub cap: f64,
    /// Delay added to the terminal's downstream delay, ps.
    pub downstream_extra: f64,
}

impl TerminalOption {
    /// The identity option: exactly the electrical values already on the
    /// [`Terminal`], at the given cost.
    pub fn from_terminal(term: &Terminal, cost: f64) -> Self {
        TerminalOption {
            name: "default".to_owned(),
            cost,
            arrival_extra: term.drive_intrinsic,
            drive_res: term.drive_res,
            cap: term.cap,
            downstream_extra: 0.0,
        }
    }
}

impl fmt::Display for TerminalOption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (cost={})", self.name, self.cost)
    }
}

/// The per-terminal driver menus the optimizer chooses from.
///
/// # Examples
///
/// ```
/// use msrnet_geom::Point;
/// use msrnet_core::TerminalOptions;
/// use msrnet_rctree::{NetBuilder, Technology, Terminal};
///
/// let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
/// let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
/// let t1 = b.terminal(Point::new(100.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
/// b.wire(t0, t1);
/// let net = b.build()?;
/// let opts = TerminalOptions::defaults_with_cost(&net, 2.0);
/// assert_eq!(opts.for_terminal(msrnet_rctree::TerminalId(0)).len(), 1);
/// # Ok::<(), msrnet_rctree::BuildNetError>(())
/// ```
#[derive(Clone, Debug)]
pub struct TerminalOptions {
    menus: Vec<Vec<TerminalOption>>,
}

impl TerminalOptions {
    /// One zero-cost identity option per terminal.
    pub fn defaults(net: &Net) -> Self {
        TerminalOptions::defaults_with_cost(net, 0.0)
    }

    /// One identity option per terminal at a fixed cost (used when driver
    /// area should be counted, e.g. paper Table II normalizes against a
    /// min-cost solution whose 1X drivers are not free).
    pub fn defaults_with_cost(net: &Net, cost: f64) -> Self {
        TerminalOptions {
            menus: net
                .terminals
                .iter()
                .map(|t| vec![TerminalOption::from_terminal(t, cost)])
                .collect(),
        }
    }

    /// Explicit menus, indexed by [`TerminalId`].
    pub fn new(menus: Vec<Vec<TerminalOption>>) -> Self {
        TerminalOptions { menus }
    }

    /// The menu for terminal `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn for_terminal(&self, t: TerminalId) -> &[TerminalOption] {
        &self.menus[t.0]
    }

    /// Replaces the menu for terminal `t`.
    pub fn set(&mut self, t: TerminalId, menu: Vec<TerminalOption>) {
        self.menus[t.0] = menu;
    }

    /// Appends the menu for a newly added terminal (whose id is the
    /// previous [`TerminalOptions::len`]), mirroring
    /// `Net::add_terminal`'s append-only id assignment.
    pub fn push(&mut self, menu: Vec<TerminalOption>) {
        self.menus.push(menu);
    }

    /// Removes terminal `t`'s menu by `swap_remove`, mirroring the id
    /// compaction of `Net::remove_terminal` (the last terminal's menu
    /// takes slot `t`).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn swap_remove(&mut self, t: TerminalId) {
        self.menus.swap_remove(t.0);
    }

    /// Number of terminals covered.
    pub fn len(&self) -> usize {
        self.menus.len()
    }

    /// Whether no terminal is covered.
    pub fn is_empty(&self) -> bool {
        self.menus.is_empty()
    }

    /// The largest bus capacitance any option presents (used to bound PWL
    /// domains).
    pub fn max_cap(&self) -> f64 {
        self.menus
            .iter()
            .flatten()
            .map(|o| o.cap)
            .fold(0.0, f64::max)
    }
}

/// A discrete wire-width choice for simultaneous wire sizing
/// (paper §VII names wire sizing as solvable by the same techniques; this
/// follows the discrete formulation of Lillis et al. JSSC'96).
///
/// A wire of width `w` (relative to the technology's unit wire) has
/// `res_scale = 1/w`, `cap_scale ≈ w` (area capacitance; fold fringe into
/// the scale if needed) and costs `cost_per_um · length` — area cost in
/// the same 1X-buffer-equivalent currency as repeaters.
///
/// # Examples
///
/// ```
/// use msrnet_core::WireOption;
///
/// let unit = WireOption::unit();
/// assert_eq!(unit.res_scale, 1.0);
/// let double = WireOption::width("2W", 2.0, 0.0005);
/// assert_eq!(double.res_scale, 0.5);
/// assert_eq!(double.cap_scale, 2.0);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct WireOption {
    /// Human-readable label (e.g. `"2W"`).
    pub name: String,
    /// Multiplier on the unit wire resistance.
    pub res_scale: f64,
    /// Multiplier on the unit wire capacitance.
    pub cap_scale: f64,
    /// Cost per µm of wire at this width.
    pub cost_per_um: f64,
}

impl WireOption {
    /// The unit-width wire at zero cost — the implicit choice when wire
    /// sizing is not requested.
    pub fn unit() -> Self {
        WireOption {
            name: "1W".to_owned(),
            res_scale: 1.0,
            cap_scale: 1.0,
            cost_per_um: 0.0,
        }
    }

    /// A wire of `width` × unit width: resistance divides by the width,
    /// capacitance multiplies by it.
    ///
    /// # Panics
    ///
    /// Panics if `width` is not strictly positive.
    pub fn width(name: &str, width: f64, cost_per_um: f64) -> Self {
        assert!(width.is_finite() && width > 0.0, "width must be positive");
        WireOption {
            name: name.to_owned(),
            res_scale: 1.0 / width,
            cap_scale: width,
            cost_per_um,
        }
    }
}

impl Default for WireOption {
    fn default() -> Self {
        WireOption::unit()
    }
}

/// How the solution sets are pruned between dynamic-programming steps.
///
/// `DivideConquer`, `Naive`, `Bucketed` and `WholeDomainOnly` are exact:
/// they produce identical trade-off curves. `Approximate` trades a
/// bounded relative error for smaller candidate sets; with `eps = 0.0`
/// it too is exact.
// No `Eq`: `Approximate` carries an `f64`.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum PruningStrategy {
    /// The paper's divide-and-conquer MFS (Fig. 4) — the default.
    #[default]
    DivideConquer,
    /// Naive pairwise MFS (`O(n²)` comparisons, same result).
    Naive,
    /// Cost-bucketed sorted-sweep MFS ([`msrnet_pwl::mfs_bucketed`]):
    /// candidates are sorted by `(cost, cap, …)` with `total_cmp` and
    /// scalar/summary-dominated ones are eliminated before any PWL
    /// region comparison (Li–Shi-style predicate ordering). Exact —
    /// same frontiers as the default.
    Bucketed,
    /// Ablation: discard a candidate only when another dominates it over
    /// its **whole** remaining domain; no partial-region invalidation.
    /// Correct but weaker — kept to quantify the value of functional
    /// (region-wise) pruning.
    WholeDomainOnly,
    /// Bucketed sweep plus eps-relative coalescing
    /// ([`msrnet_pwl::mfs_approximate`]): candidates within a relative
    /// `eps` of a kept candidate in every dimension are dropped, with a
    /// (1+eps) coverage guarantee on the resulting frontier. `eps` must
    /// be in `[0, 1)`; `eps = 0.0` is exact.
    Approximate {
        /// Relative coalescing tolerance, in `[0, 1)`.
        eps: f64,
    },
}

impl PruningStrategy {
    /// Parses the canonical spelling used by every entry point (CLI
    /// flags, batch job specs, the service protocol):
    /// `divide-conquer`, `naive`, `bucketed`, `whole-domain`, or
    /// `approx:EPS` with `EPS` a finite float in `[0, 1)`.
    ///
    /// This is the single parser all surfaces share, so a strategy
    /// round-trips unchanged through [`fmt::Display`] regardless of
    /// which layer carried it.
    pub fn parse(s: &str) -> Result<Self, String> {
        if let Some(eps) = s.strip_prefix("approx:") {
            let eps: f64 = eps
                .parse()
                .map_err(|_| format!("invalid approx eps: {eps}"))?;
            if !eps.is_finite() || !(0.0..1.0).contains(&eps) {
                return Err(format!("approx eps must be in [0, 1), got {eps}"));
            }
            return Ok(PruningStrategy::Approximate { eps });
        }
        match s {
            "divide-conquer" => Ok(PruningStrategy::DivideConquer),
            "naive" => Ok(PruningStrategy::Naive),
            "bucketed" => Ok(PruningStrategy::Bucketed),
            "whole-domain" => Ok(PruningStrategy::WholeDomainOnly),
            _ => Err(format!(
                "unknown pruning strategy '{s}' \
                 (expected divide-conquer, naive, bucketed, whole-domain, or approx:EPS)"
            )),
        }
    }

    /// The `eps` of [`PruningStrategy::Approximate`], 0 otherwise — the
    /// per-step relative slack entering the `(1+eps)^L` budget.
    pub fn eps(&self) -> f64 {
        match self {
            PruningStrategy::Approximate { eps } => *eps,
            _ => 0.0,
        }
    }

    /// Whether pruning is exact (bit-identical frontiers across all
    /// exact strategies). `approx:0` counts as exact.
    pub fn is_exact(&self) -> bool {
        // msrnet-allow: float-eq eps == 0.0 is the documented exact-path sentinel
        self.eps() == 0.0
    }
}

impl fmt::Display for PruningStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PruningStrategy::DivideConquer => write!(f, "divide-conquer"),
            PruningStrategy::Naive => write!(f, "naive"),
            PruningStrategy::Bucketed => write!(f, "bucketed"),
            PruningStrategy::WholeDomainOnly => write!(f, "whole-domain"),
            PruningStrategy::Approximate { eps } => write!(f, "approx:{eps}"),
        }
    }
}

/// Optimizer knobs.
#[derive(Clone, Copy, Debug)]
pub struct MsriOptions {
    /// Pruning strategy between DP steps.
    pub pruning: PruningStrategy,
    /// Subproblem size below which divide-and-conquer MFS switches to the
    /// pairwise method.
    pub mfs_leaf_threshold: usize,
    /// Allow signal-inverting repeaters (paper §V extension). When any
    /// library repeater is marked inverting, candidates track signal
    /// parity and the root enforces non-inverted end-to-end polarity.
    pub allow_inverting: bool,
    /// Predictive pruning (Li & Shi style): reject candidates *before*
    /// the join product and repeater extension steps materialize them,
    /// using drive-strength-ordered library pre-bounds. Exact — rejected
    /// candidates are whole-domain-dominated by already-materialized
    /// ones, so every exact strategy's frontier is bit-identical with
    /// this on or off. Default on; the off switch exists for the
    /// soundness property tests and the ablation bench.
    pub predictive: bool,
    /// Additive slack subtracted from every predictive pre-bound
    /// comparison. **Must be 0.0 for sound results.** A positive value
    /// deliberately loosens the bounds into unsoundness; it exists only
    /// so the verify harness's injected-bug drill can prove it catches
    /// a broken bound term. Hidden from the public surface.
    #[doc(hidden)]
    pub prebound_slack: f64,
}

impl Default for MsriOptions {
    fn default() -> Self {
        MsriOptions {
            pruning: PruningStrategy::DivideConquer,
            mfs_leaf_threshold: 8,
            allow_inverting: false,
            predictive: true,
            prebound_slack: 0.0,
        }
    }
}

/// Errors from the repeater-insertion optimizer.
#[derive(Clone, Debug, PartialEq)]
pub enum MsriError {
    /// The net failed structural validation.
    Net(BuildNetError),
    /// A terminal other than the root is not a leaf — run
    /// [`Net::normalized`] first.
    TerminalNotLeaf(TerminalId),
    /// The chosen root terminal is not a leaf of the topology.
    RootNotLeaf(TerminalId),
    /// A terminal has an empty option menu.
    NoOptions(TerminalId),
    /// No distinct source/sink terminal pair exists, so the ARD is
    /// undefined.
    NoFeasiblePair,
    /// An inverting repeater was used but `allow_inverting` is off.
    InvertingDisallowed,
}

impl fmt::Display for MsriError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsriError::Net(e) => write!(f, "invalid net: {e}"),
            MsriError::TerminalNotLeaf(t) => {
                write!(f, "terminal {t} is not a leaf; normalize the net first")
            }
            MsriError::RootNotLeaf(t) => write!(f, "root terminal {t} is not a leaf"),
            MsriError::NoOptions(t) => write!(f, "terminal {t} has no driver options"),
            MsriError::NoFeasiblePair => {
                write!(f, "no distinct source/sink pair; the ARD is undefined")
            }
            MsriError::InvertingDisallowed => {
                write!(f, "library contains an inverting repeater but inverting repeaters are disabled")
            }
        }
    }
}

impl std::error::Error for MsriError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MsriError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BuildNetError> for MsriError {
    fn from(e: BuildNetError) -> Self {
        MsriError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrnet_geom::Point;
    use msrnet_rctree::{NetBuilder, Technology};

    fn small_net() -> Net {
        let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
        let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
        let t1 = b.terminal(Point::new(10.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.07, 200.0));
        b.wire(t0, t1);
        b.build().unwrap()
    }

    #[test]
    fn defaults_mirror_terminal_parameters() {
        let net = small_net();
        let opts = TerminalOptions::defaults(&net);
        assert_eq!(opts.len(), 2);
        let o = &opts.for_terminal(TerminalId(1))[0];
        assert_eq!(o.cap, 0.07);
        assert_eq!(o.drive_res, 200.0);
        assert_eq!(o.cost, 0.0);
        assert!((opts.max_cap() - 0.07).abs() < 1e-12);
    }

    #[test]
    fn menus_can_be_replaced() {
        let net = small_net();
        let mut opts = TerminalOptions::defaults(&net);
        let t = TerminalId(0);
        let mut bigger = opts.for_terminal(t)[0].clone();
        bigger.name = "2X".into();
        bigger.cost = 2.0;
        bigger.drive_res /= 2.0;
        opts.set(t, vec![opts.for_terminal(t)[0].clone(), bigger]);
        assert_eq!(opts.for_terminal(t).len(), 2);
        assert_eq!(opts.for_terminal(t)[1].name, "2X");
    }

    #[test]
    fn error_display_is_informative() {
        let e = MsriError::TerminalNotLeaf(TerminalId(4));
        assert!(format!("{e}").contains("t4"));
        let e = MsriError::Net(BuildNetError::NotATree);
        assert!(format!("{e}").contains("tree"));
    }

    #[test]
    fn default_options_use_divide_and_conquer() {
        let o = MsriOptions::default();
        assert_eq!(o.pruning, PruningStrategy::DivideConquer);
        assert!(o.mfs_leaf_threshold >= 2);
        assert!(!o.allow_inverting);
        assert!(o.predictive);
        assert_eq!(o.prebound_slack, 0.0);
    }

    #[test]
    fn pruning_strategy_parse_display_round_trip() {
        let all = [
            PruningStrategy::DivideConquer,
            PruningStrategy::Naive,
            PruningStrategy::Bucketed,
            PruningStrategy::WholeDomainOnly,
            PruningStrategy::Approximate { eps: 0.05 },
            PruningStrategy::Approximate { eps: 0.0 },
        ];
        for s in all {
            let text = s.to_string();
            assert_eq!(PruningStrategy::parse(&text), Ok(s), "round-trip {text}");
        }
        assert_eq!(PruningStrategy::parse("approx:0.25"), Ok(PruningStrategy::Approximate { eps: 0.25 }));
    }

    #[test]
    fn pruning_strategy_parse_rejects_garbage() {
        assert!(PruningStrategy::parse("fancy").is_err());
        assert!(PruningStrategy::parse("approx:").is_err());
        assert!(PruningStrategy::parse("approx:nan").unwrap_err().contains("[0, 1)"));
        assert!(PruningStrategy::parse("approx:1.0").is_err());
        assert!(PruningStrategy::parse("approx:-0.1").is_err());
        assert!(PruningStrategy::parse("approx:inf").is_err());
    }

    #[test]
    fn pruning_strategy_eps_and_exactness() {
        assert_eq!(PruningStrategy::DivideConquer.eps(), 0.0);
        assert_eq!(PruningStrategy::Approximate { eps: 0.1 }.eps(), 0.1);
        assert!(PruningStrategy::Bucketed.is_exact());
        assert!(PruningStrategy::Approximate { eps: 0.0 }.is_exact());
        assert!(!PruningStrategy::Approximate { eps: 0.1 }.is_exact());
    }
}
