//! Exhaustive-enumeration baseline for verifying the dynamic program.
//!
//! Enumerates **every** combination of per-terminal driver options and
//! per-insertion-point repeater choices (including both orientations of
//! asymmetric repeaters), evaluates each with the linear-time ARD
//! algorithm, and returns the exact Pareto frontier. Exponential — use
//! only on small nets; the optimality theorem (paper Theorem 4.1) is
//! checked by comparing this frontier with [`crate::optimize`]'s.

use msrnet_rctree::{Assignment, Net, Orientation, Repeater, TerminalId, VertexId};

use crate::ard::ard_linear;
use crate::options::{TerminalOptions, WireOption};

/// Whether a fixed assignment preserves signal polarity: every
/// terminal-to-terminal path must cross an even number of inverting
/// repeaters, which holds iff all terminals have the same inversion
/// parity toward an arbitrary reference terminal.
///
/// Assignments without inverting repeaters are always feasible.
pub fn polarity_feasible(net: &Net, library: &[Repeater], assignment: &Assignment) -> bool {
    if !assignment
        .placements()
        // msrnet-allow: panic placements index the library they were solved against
        .any(|(_, p)| library[p.repeater].inverting)
    {
        return true;
    }
    // parity[u] = number of inverting repeaters crossed on the path from
    // the reference terminal to u, mod 2. A repeater at an intermediate
    // vertex `v` is crossed when the walk passes *through* v (repeaters
    // sit only on degree-2 insertion points, never on terminals).
    let start = net.topology.terminal_vertex(TerminalId(0));
    let n = net.topology.vertex_count();
    let mut parity = vec![false; n];
    let mut seen = vec![false; n];
    seen[start.0] = true;
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        let crosses_v = v != start
            && assignment
                .at(v)
                // msrnet-allow: panic placements index the library they were solved against
                .is_some_and(|p| library[p.repeater].inverting);
        for &(u, _) in net.topology.neighbors(v) {
            if !seen[u.0] {
                seen[u.0] = true;
                parity[u.0] = parity[v.0] ^ crosses_v;
                stack.push(u);
            }
        }
    }
    let reference = parity[start.0];
    net.terminal_ids().all(|t| {
        let v = net.topology.terminal_vertex(t);
        parity[v.0] == reference
    })
}

/// One enumerated solution.
#[derive(Clone, Debug)]
pub struct ExhaustivePoint {
    /// Total cost (drivers + repeaters + wire area).
    pub cost: f64,
    /// The resulting ARD, ps.
    pub ard: f64,
    /// The repeater placement.
    pub assignment: Assignment,
    /// Per-terminal driver option indices.
    pub terminal_choices: Vec<usize>,
    /// Per-edge wire-width option indices (all zero without wire sizing).
    pub wire_choices: Vec<usize>,
}

/// Applies per-edge wire-width choices to a copy of `net` (composing
/// with any scaling already on the topology), returning the modified net
/// and the total wire-area cost.
///
/// # Panics
///
/// Panics if `choices` has the wrong length or indexes outside
/// `wire_options`.
pub fn apply_wire_choices(
    net: &Net,
    wire_options: &[WireOption],
    choices: &[usize],
) -> (Net, f64) {
    assert_eq!(choices.len(), net.topology.edge_count());
    let mut scenario = net.clone();
    let mut cost = 0.0;
    for e in net.topology.edges() {
        // msrnet-allow: panic choices.len() is asserted above; each choice indexes the menu it enumerated
        let w = &wire_options[choices[e.0]];
        let (rs, cs) = net.topology.edge_scaling(e);
        scenario
            .topology
            .set_edge_scaling(e, rs * w.res_scale, cs * w.cap_scale);
        cost += w.cost_per_um * net.topology.length(e);
    }
    (scenario, cost)
}

/// Computes the exact (cost, ARD) Pareto frontier by brute force.
///
/// Terminal options alter the terminals' electrical values, so the net is
/// re-evaluated per combination. The frontier is sorted by ascending cost
/// with strictly descending ARD, matching
/// [`crate::TradeoffCurve::points`].
///
/// Infeasible evaluations (no distinct source/sink pair) are skipped.
///
/// # Panics
///
/// Panics if the search space exceeds 20 million evaluations — this is a
/// verification oracle for small nets, not an optimizer.
pub fn exhaustive_frontier(
    net: &Net,
    root: TerminalId,
    library: &[Repeater],
    term_opts: &TerminalOptions,
) -> Vec<ExhaustivePoint> {
    exhaustive_frontier_with_wires(net, root, library, term_opts, &[WireOption::unit()])
}

/// [`exhaustive_frontier`] extended with per-edge wire-width enumeration,
/// the oracle for [`crate::optimize_with_wires`].
///
/// # Panics
///
/// Panics if the search space exceeds 20 million evaluations.
pub fn exhaustive_frontier_with_wires(
    net: &Net,
    root: TerminalId,
    library: &[Repeater],
    term_opts: &TerminalOptions,
    wire_options: &[WireOption],
) -> Vec<ExhaustivePoint> {
    assert!(!wire_options.is_empty());
    let sizing = wire_options.len() > 1;
    if !sizing {
        return exhaustive_repeaters_and_drivers(net, root, library, term_opts);
    }
    // Outer loop over wire choices; each is a rescaled net evaluated by
    // the repeater/driver enumeration.
    let sized_edges: Vec<usize> = net
        .topology
        .edges()
        .filter(|&e| net.topology.length(e) > 0.0)
        .map(|e| e.0)
        .collect();
    let combos = (wire_options.len() as f64).powi(sized_edges.len() as i32);
    assert!(combos <= 1e5, "wire search space too large ({combos})");
    let mut all: Vec<ExhaustivePoint> = Vec::new();
    let mut idx = vec![0usize; sized_edges.len()];
    let radices = vec![wire_options.len(); sized_edges.len()];
    loop {
        let mut wire_choices = vec![0usize; net.topology.edge_count()];
        for (k, &e) in sized_edges.iter().enumerate() {
            wire_choices[e] = idx[k];
        }
        let (scenario, wire_cost) = apply_wire_choices(net, wire_options, &wire_choices);
        let mut pts = exhaustive_repeaters_and_drivers(&scenario, root, library, term_opts);
        for p in &mut pts {
            p.cost += wire_cost;
            p.wire_choices = wire_choices.clone();
        }
        all.extend(pts);
        if !increment(&mut idx, &radices) {
            break;
        }
    }
    pareto(all)
}

fn exhaustive_repeaters_and_drivers(
    net: &Net,
    root: TerminalId,
    library: &[Repeater],
    term_opts: &TerminalOptions,
) -> Vec<ExhaustivePoint> {
    let insertion_points: Vec<VertexId> = net.topology.insertion_points().collect();
    // Per-slot choices: None or (repeater, orientation).
    let mut slot_choices: Vec<Option<(usize, Orientation)>> = vec![None];
    for (ri, rep) in library.iter().enumerate() {
        slot_choices.push(Some((ri, Orientation::AFacesParent)));
        if !rep.is_symmetric() {
            slot_choices.push(Some((ri, Orientation::BFacesParent)));
        }
    }
    let menu_sizes: Vec<usize> = net
        .terminal_ids()
        .map(|t| term_opts.for_terminal(t).len())
        .collect();
    let assignments = (slot_choices.len() as f64).powi(insertion_points.len() as i32);
    let drivers: f64 = menu_sizes.iter().map(|&m| m as f64).product();
    assert!(
        assignments * drivers <= 2e7,
        "exhaustive search space too large ({assignments} x {drivers})"
    );

    let rooted = net.rooted_at_terminal(root);
    let mut results: Vec<ExhaustivePoint> = Vec::new();
    let mut slot_idx = vec![0usize; insertion_points.len()];
    loop {
        // Build the assignment for the current slot indices.
        let mut assignment = Assignment::empty(net.topology.vertex_count());
        let mut rep_cost = 0.0;
        for (k, &v) in insertion_points.iter().enumerate() {
            if let Some((ri, o)) = slot_choices[slot_idx[k]] {
                assignment.place(v, ri, o);
                // msrnet-allow: panic ri enumerates this library's indices
                rep_cost += library[ri].cost;
            }
        }
        // Inverting repeaters: skip polarity-breaking assignments.
        if !polarity_feasible(net, library, &assignment) {
            let radices = vec![slot_choices.len(); insertion_points.len()];
            if !increment(&mut slot_idx, &radices) {
                break;
            }
            continue;
        }
        // Enumerate driver menus on top.
        let mut choice = vec![0usize; menu_sizes.len()];
        loop {
            let (scenario, opt_cost) = apply_terminal_choices(net, term_opts, &choice);
            let report = ard_linear(&scenario, &rooted, library, &assignment);
            if report.ard > f64::NEG_INFINITY {
                results.push(ExhaustivePoint {
                    cost: rep_cost + opt_cost,
                    ard: report.ard,
                    assignment: assignment.clone(),
                    terminal_choices: choice.clone(),
                    wire_choices: vec![0; net.topology.edge_count()],
                });
            }
            if !increment(&mut choice, &menu_sizes) {
                break;
            }
        }
        let radices = vec![slot_choices.len(); insertion_points.len()];
        if !increment(&mut slot_idx, &radices) {
            break;
        }
    }
    pareto(results)
}

/// Applies per-terminal driver choices to a copy of `net`, returning the
/// modified net and the total option cost.
///
/// Each chosen [`crate::TerminalOption`] replaces the terminal's bus
/// capacitance, drive resistance and driver intrinsic delay, and extends
/// its downstream delay — exactly the electrical interpretation the
/// optimizer uses, so a trade-off point can be re-verified with
/// [`ard_linear`] on the returned net.
///
/// # Panics
///
/// Panics if `choices` has the wrong length or indexes outside a menu.
pub fn apply_terminal_choices(
    net: &Net,
    term_opts: &TerminalOptions,
    choices: &[usize],
) -> (Net, f64) {
    assert_eq!(choices.len(), net.terminals.len());
    let mut scenario = net.clone();
    let mut cost = 0.0;
    for t in net.terminal_ids() {
        // msrnet-allow: panic choices.len() is asserted above; each choice indexes the menu it enumerated
        let o = &term_opts.for_terminal(t)[choices[t.0]];
        cost += o.cost;
        let term = &mut scenario.terminals[t.0];
        term.cap = o.cap;
        term.drive_res = o.drive_res;
        term.drive_intrinsic = o.arrival_extra;
        if term.is_sink() {
            term.downstream += o.downstream_extra;
        }
    }
    (scenario, cost)
}

/// Mixed-radix increment; returns `false` on wrap-around.
fn increment(digits: &mut [usize], radices: &[usize]) -> bool {
    for (d, &r) in digits.iter_mut().zip(radices) {
        *d += 1;
        if *d < r {
            return true;
        }
        *d = 0;
    }
    false
}

fn pareto(mut pts: Vec<ExhaustivePoint>) -> Vec<ExhaustivePoint> {
    pts.sort_by(|a, b| a.cost.total_cmp(&b.cost).then(a.ard.total_cmp(&b.ard)));
    let mut out: Vec<ExhaustivePoint> = Vec::new();
    for p in pts {
        match out.last() {
            Some(last) if p.ard >= last.ard - 1e-12 => {}
            _ => out.push(p),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrnet_geom::Point;
    use msrnet_rctree::{Buffer, NetBuilder, Technology, Terminal};

    #[test]
    fn two_pin_with_one_insertion_point() {
        let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
        let t0 = b.terminal(
            Point::new(0.0, 0.0),
            Terminal::bidirectional(0.0, 0.0, 0.05, 180.0),
        );
        let ip = b.insertion_point(Point::new(4000.0, 0.0));
        let t1 = b.terminal(
            Point::new(8000.0, 0.0),
            Terminal::bidirectional(0.0, 0.0, 0.05, 180.0),
        );
        b.wire(t0, ip);
        b.wire(ip, t1);
        let net = b.build().unwrap();
        let buf = Buffer::new("1X", 50.0, 180.0, 0.05, 1.0);
        let lib = [Repeater::from_buffer_pair("r", &buf, &buf)];
        let opts = TerminalOptions::defaults(&net);
        let frontier = exhaustive_frontier(&net, TerminalId(0), &lib, &opts);
        // Two candidate solutions (repeater or not); both are Pareto
        // optimal iff the repeater helps.
        assert!(!frontier.is_empty());
        assert!(frontier.len() <= 2);
        // Frontier is sorted and strictly improving.
        for w in frontier.windows(2) {
            assert!(w[0].cost < w[1].cost);
            assert!(w[0].ard > w[1].ard);
        }
    }

    #[test]
    fn increment_wraps_correctly() {
        let mut d = vec![0, 0];
        let r = vec![2, 2];
        let mut seen = 1;
        while increment(&mut d, &r) {
            seen += 1;
        }
        assert_eq!(seen, 4);
        assert_eq!(d, vec![0, 0]);
    }
}
