//! Optimal multisource repeater insertion (MSRI) — the paper's §IV
//! dynamic program.
//!
//! The tree is processed bottom-up. A subsolution for the subtree rooted
//! at `v` (measured at `v`'s parent-side pin) is characterized by three
//! scalars and two piece-wise linear functions of the external
//! capacitance `c_E` (paper §IV-B):
//!
//! * `cost` — repeaters and drivers spent inside the subtree;
//! * `cap` — capacitance the subtree presents upward;
//! * `d_sinks` — worst augmented delay from the pin to internal sinks;
//! * `Y(c_E)` — worst augmented arrival at the pin from internal sources;
//! * `D(c_E)` — worst augmented diameter among internal pairs.
//!
//! The DP steps are exactly the paper's subroutines: `LeafSolutions`
//! (Fig. 6), `Augment` over a wire (Fig. 10), `JoinSets` at a branch
//! (Fig. 7), `RepeaterSolutions` at an insertion point (Fig. 8) and
//! `RootSolutions` (Fig. 9), with minimal-functional-subset pruning
//! between steps (§IV-D). The result is the full cost-vs-ARD trade-off
//! curve, from which "min cost subject to `ARD ≤ spec`" (Problem 2.1) is
//! read off directly.

use msrnet_pwl::{
    mfs_divide_conquer, mfs_naive, mfs_sorted_sweep_with, FuncPoint, Pwl, SegmentArena,
};
use msrnet_rctree::{
    Assignment, Net, Orientation, Repeater, Rooted, StructuralRemap, TerminalId, VertexId,
    VertexKind,
};

use crate::options::{MsriError, MsriOptions, PruningStrategy, TerminalOptions, WireOption};
use crate::tradeoff::{TradeoffCurve, TradeoffPoint};

const COST: usize = 0;
const CAP: usize = 1;
const DSINKS: usize = 2;
const ARR: usize = 0;
const DIA: usize = 1;

/// Per-candidate bookkeeping carried through pruning.
#[derive(Clone, Copy, Debug)]
struct Meta {
    trace: u32,
    /// Signal parity (number of inverting repeaters between any internal
    /// terminal and the pin, mod 2). Only meaningful when inverting
    /// repeaters are enabled; always `false` otherwise.
    parity: bool,
    /// Relaxation ledger: an upper bound on the depth of any chain of
    /// eps-relaxed kills this candidate stands in for. A candidate with
    /// ledger `L` covers every candidate it (transitively) displaced
    /// within a factor `(1+eps)^L` in each non-negative dimension. Under
    /// exact strategies every ledger stays 0. Maintained by the sorted
    /// sweep's kill callback and propagated structurally: joins take the
    /// max of the sides, augment/repeater extensions inherit, and every
    /// champion-based predictive kill is gated on the killer's ledger
    /// covering the victim's — so the root-set maximum
    /// ([`MsriStats::relax_ledger`]) is an honest end-to-end exponent.
    relax: u32,
}

type Cand = FuncPoint<Meta>;

/// Back-pointers for reconstructing the repeater assignment of a
/// surviving candidate.
#[derive(Clone, Copy, Debug)]
enum TraceNode {
    Leaf {
        terminal: TerminalId,
        option: usize,
    },
    Join {
        left: u32,
        right: u32,
    },
    Repeater {
        child: u32,
        vertex: VertexId,
        repeater: usize,
        orientation: Orientation,
    },
    /// A wire-width choice on the parent edge of `vertex` (only recorded
    /// when wire sizing is enabled).
    Wire {
        child: u32,
        edge: msrnet_rctree::EdgeId,
        option: usize,
    },
    /// An empty subtree (a leaf that is not a terminal).
    Empty,
}

/// Counters describing one optimizer run — used by the ablation benches
/// to compare pruning strategies and surfaced as `msrnet-cli optimize
/// --stats` JSON.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MsriStats {
    /// Candidates generated across all DP steps.
    pub generated: u64,
    /// Candidates surviving all prunes, summed over steps.
    pub surviving: u64,
    /// Largest candidate set observed after any prune.
    pub max_set_size: usize,
    /// Largest number of PWL segments observed on a single candidate.
    pub max_segments: usize,
    /// Number of prune invocations.
    pub prunes: u64,
    /// Per-step counters for `LeafSolutions` (Fig. 6).
    pub leaf: StepStats,
    /// Per-step counters for `Augment` (Fig. 10).
    pub augment: StepStats,
    /// Per-step counters for `JoinSets` (Fig. 7), including the
    /// pre-materialization cutoffs (counted as `scalar_pruned`).
    pub join: StepStats,
    /// Per-step counters for `RepeaterSolutions` (Fig. 8).
    pub repeater: StepStats,
    /// Kills where the `approx:EPS` relaxation was load-bearing (the
    /// exact predicate would have kept the candidate). Always 0 under
    /// exact strategies.
    pub relaxed_kills: u64,
    /// Maximum relaxation-ledger value over the candidates that reached
    /// `RootSolutions` — the exponent `L` of the end-to-end
    /// `(1+eps)^L` error budget reported by
    /// [`MsriStats::budget_factor`]. Always 0 under exact strategies.
    pub relax_ledger: u32,
}

impl MsriStats {
    fn step_mut(&mut self, step: Step) -> &mut StepStats {
        match step {
            Step::Leaf => &mut self.leaf,
            Step::Augment => &mut self.augment,
            Step::Join => &mut self.join,
            Step::Repeater => &mut self.repeater,
        }
    }

    /// The machine-checked worst-case end-to-end error factor of an
    /// `approx:eps` run: `(1+eps)^L` with `L` the maximum relaxation
    /// ledger over the candidates entering `RootSolutions`. Every
    /// reported frontier value is within this factor of the exact
    /// frontier's (for the non-negative delay/cost dimensions; see
    /// ALGORITHMS.md, "the (1+eps) ledger"). Exactly 1.0 whenever no
    /// relaxed kill contributed to the surviving frontier — in
    /// particular under every exact strategy.
    pub fn budget_factor(&self, eps: f64) -> f64 {
        (1.0 + eps).powi(self.relax_ledger as i32)
    }

    /// Largest candidate set entering any prune, across all DP steps —
    /// the memory high-water mark of the run.
    pub fn peak_set(&self) -> usize {
        self.leaf
            .peak_set
            .max(self.augment.peak_set)
            .max(self.join.peak_set)
            .max(self.repeater.peak_set)
    }
}

/// Per-subroutine pruning counters: one row per DP step in
/// [`MsriStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepStats {
    /// Candidates materialized by this step.
    pub generated: u64,
    /// Candidates eliminated by cheap scalar predicates: `JoinSets`'
    /// pre-materialization cutoffs (empty shifted domain, champion
    /// dominance) plus the sorted sweep's whole-domain summary kills
    /// under the bucketed/approximate strategies.
    pub scalar_pruned: u64,
    /// Candidates fully eliminated during pruning by exact PWL region
    /// comparisons (including any whose validity domain was already
    /// empty when the prune ran).
    pub pwl_pruned: u64,
    /// Candidates rejected individually by a predictive pre-bound
    /// *before* materialization (no PWL built, no trace pushed, not
    /// counted in `generated`): repeater extensions whose full-domain
    /// line is endpoint-dominated by an already-materialized champion.
    pub prebound_rejected: u64,
    /// Candidates skipped *wholesale* by a predictive pre-bound: whole
    /// join rows and whole per-candidate repeater fan-outs whose
    /// optimistic floors (strongest-remaining-repeater / sibling-set
    /// envelope) are dominated by a champion. An upper bound on the
    /// materializable candidates avoided — some members of a skipped
    /// group would have failed cheaper tests anyway.
    pub materialized_avoided: u64,
    /// Largest candidate set entering a prune of this step.
    pub peak_set: usize,
}

/// DP subroutine tag for attributing per-step statistics.
#[derive(Clone, Copy, Debug)]
enum Step {
    Leaf,
    Augment,
    Join,
    Repeater,
}

/// Conservative summary of a strong `JoinSets` survivor with one
/// contiguous validity span, used to kill dominated products before they
/// are materialized. All fields are upper bounds over the whole span, so
/// a champion whose span covers a product's bounding span and whose
/// ceilings sit below the product's floors dominates that product
/// everywhere it could be defined.
#[derive(Clone, Copy, Debug)]
struct Champion {
    parity: bool,
    cost: f64,
    cap: f64,
    d_sinks: f64,
    dom_lo: f64,
    dom_hi: f64,
    y_hi: f64,
    d_hi: f64,
    /// Relaxation ledger of the candidate behind this champion. A
    /// champion may absorb a victim only when its own ledger already
    /// covers the victim's bound (`relax >= victim bound`) — otherwise
    /// the kill is skipped so [`MsriStats::relax_ledger`] stays an upper
    /// bound. Always 0 under exact strategies, where the gate is
    /// trivially satisfied and pruning is bit-identical to a gateless
    /// run.
    relax: u32,
}

/// Pre-computed library envelope for predictive (bound-before-
/// materialize) pruning, in the spirit of Li & Shi's O(bn²) buffer
/// insertion: the repeater (repeater, orientation) combinations ordered
/// by upstream drive strength once per solver run, plus per-dimension
/// optimistic minima over the whole library. At an insertion point the
/// "strongest remaining repeater" bound for a not-yet-enumerated
/// candidate collapses to these envelope minima, giving O(1) floors for
/// every dimension of any extension the candidate could produce.
#[derive(Clone, Debug)]
struct LibPrebounds {
    /// `(library index, orientation)` pairs sorted by ascending upstream
    /// output resistance (strongest driver first), ties broken by
    /// library order for determinism.
    drive_order: Vec<(usize, Orientation)>,
    /// Minimum repeater cost.
    min_cost: f64,
    /// Minimum parent-side input capacitance.
    min_cap_parent: f64,
    /// Minimum downstream intrinsic delay.
    min_down_intrinsic: f64,
    /// Minimum downstream output resistance.
    min_down_res: f64,
    /// Minimum upstream intrinsic delay.
    min_up_intrinsic: f64,
    /// Minimum upstream output resistance (the strongest driver's).
    min_up_res: f64,
    /// `Some(flag)` when every library repeater shares one `inverting`
    /// value — the precondition for the whole-fan-out skip, whose
    /// champion comparison needs a single known extension parity.
    uniform_inverting: Option<bool>,
}

/// A materialized buffered candidate of the current `RepeaterSolutions`
/// call, summarized for O(1) exact dominance tests against prospective
/// extensions. Every buffered candidate lives on the full domain
/// `[0, B]` with a *linear* arrival (endpoints `y0`/`y_b`) and a
/// *constant* diameter `d`, so endpoint comparisons decide pointwise
/// dominance exactly — no conservatism, hence bit-identical frontiers.
#[derive(Clone, Copy, Debug)]
struct RepChampion {
    parity: bool,
    cost: f64,
    cap: f64,
    d_sinks: f64,
    y0: f64,
    y_b: f64,
    d: f64,
    /// Ledger gate, as in [`Champion::relax`].
    relax: u32,
}

impl LibPrebounds {
    fn new(library: &[Repeater]) -> Self {
        let mut drive_order = Vec::new();
        let mut env = LibPrebounds {
            drive_order: Vec::new(),
            min_cost: f64::INFINITY,
            min_cap_parent: f64::INFINITY,
            min_down_intrinsic: f64::INFINITY,
            min_down_res: f64::INFINITY,
            min_up_intrinsic: f64::INFINITY,
            min_up_res: f64::INFINITY,
            uniform_inverting: None,
        };
        for (ri, rep) in library.iter().enumerate() {
            let orientations: &[Orientation] = if rep.is_symmetric() {
                &[Orientation::AFacesParent]
            } else {
                &Orientation::BOTH
            };
            for &o in orientations {
                let down = rep.downstream_drive(o);
                let up = rep.upstream_drive(o);
                env.min_cost = env.min_cost.min(rep.cost);
                env.min_cap_parent = env.min_cap_parent.min(rep.cap_facing_parent(o));
                env.min_down_intrinsic = env.min_down_intrinsic.min(down.intrinsic);
                env.min_down_res = env.min_down_res.min(down.out_res);
                env.min_up_intrinsic = env.min_up_intrinsic.min(up.intrinsic);
                env.min_up_res = env.min_up_res.min(up.out_res);
                drive_order.push((ri, o));
            }
            env.uniform_inverting = match env.uniform_inverting {
                None if ri == 0 => Some(rep.inverting),
                Some(flag) if flag == rep.inverting => Some(flag),
                _ => None,
            };
        }
        drive_order.sort_by(|a, b| {
            let ra = library[a.0].upstream_drive(a.1).out_res; // msrnet-allow: panic drive_order enumerates this library's indices
            let rb = library[b.0].upstream_drive(b.1).out_res;
            ra.total_cmp(&rb)
        });
        env.drive_order = drive_order;
        env
    }

    /// Number of `(repeater, orientation)` combinations an insertion
    /// point fans a candidate out to.
    fn combos(&self) -> usize {
        self.drive_order.len()
    }
}

/// Solves Problem 2.1 for `net`: returns the Pareto trade-off between
/// total cost (drivers + repeaters) and ARD over all assignments and
/// orientations of `library` repeaters to the insertion points, and all
/// per-terminal driver options.
///
/// Requirements: the net must be valid ([`Net::check`]), every terminal
/// must be a leaf ([`Net::normalized`]), and `root` names the terminal to
/// root the recursion at (any terminal works; the result is
/// root-invariant).
///
/// # Errors
///
/// See [`MsriError`].
///
/// # Examples
///
/// ```
/// use msrnet_geom::Point;
/// use msrnet_core::{optimize, MsriOptions, TerminalOptions};
/// use msrnet_rctree::{Buffer, NetBuilder, Repeater, Technology, Terminal, TerminalId};
///
/// let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
/// let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
/// let ip = b.insertion_point(Point::new(4000.0, 0.0));
/// let t1 = b.terminal(Point::new(8000.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
/// b.wire(t0, ip);
/// b.wire(ip, t1);
/// let net = b.build()?;
///
/// let buf = Buffer::new("1X", 50.0, 180.0, 0.05, 1.0);
/// let lib = [Repeater::from_buffer_pair("rep", &buf, &buf)];
/// let curve = optimize(
///     &net,
///     TerminalId(0),
///     &lib,
///     &TerminalOptions::defaults(&net),
///     &MsriOptions::default(),
/// )?;
/// // Spending a repeater must help this 8 mm bus.
/// assert!(curve.best_ard().ard < curve.min_cost().ard);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn optimize(
    net: &Net,
    root: TerminalId,
    library: &[Repeater],
    term_opts: &TerminalOptions,
    options: &MsriOptions,
) -> Result<TradeoffCurve, MsriError> {
    optimize_with_wires(net, root, library, term_opts, &[WireOption::unit()], options)
}

/// Reusable scratch state for [`optimize_in`]: a segment arena whose
/// buffers are recycled across the DP's PWL operations *and across
/// nets*.
///
/// The hot DP loop (`Augment`, `JoinSets`) produces a handful of
/// short-lived PWL temporaries per candidate pair; with a workspace
/// those run through [`SegmentArena`]'s fused, allocation-free
/// operations instead of the global allocator. Results are
/// **bit-identical** to [`optimize`] — the fused operations replicate
/// the composed primitives' floating-point operation order exactly.
///
/// A workspace is single-threaded by design; the batch engine creates
/// one per worker thread.
///
/// # Examples
///
/// ```
/// use msrnet_core::MsriWorkspace;
///
/// let mut ws = MsriWorkspace::new();
/// // ... run optimize_in(&net, ..., &mut ws) for many nets ...
/// assert_eq!(ws.arena().reused(), 0); // nothing recycled yet
/// ```
#[derive(Debug, Default)]
pub struct MsriWorkspace {
    arena: SegmentArena,
}

impl MsriWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        MsriWorkspace::default()
    }

    /// The underlying arena (for allocation-reuse diagnostics).
    pub fn arena(&self) -> &SegmentArena {
        &self.arena
    }

    /// Records the arena's free-list level — see
    /// [`SegmentArena::checkpoint`]. Long-lived sessions checkpoint
    /// after warm-up and [`MsriWorkspace::arena_restore`] after each
    /// query so scratch memory stays bounded.
    pub fn arena_checkpoint(&self) -> msrnet_pwl::ArenaCheckpoint {
        self.arena.checkpoint()
    }

    /// Trims the arena free list back to a checkpointed level.
    pub fn arena_restore(&mut self, cp: &msrnet_pwl::ArenaCheckpoint) {
        self.arena.restore(cp);
    }
}

/// Like [`optimize`], but reusing `workspace` scratch memory — the entry
/// point for high-throughput multi-net runs. Results are bit-identical
/// to [`optimize`].
///
/// # Errors
///
/// See [`MsriError`].
pub fn optimize_in(
    net: &Net,
    root: TerminalId,
    library: &[Repeater],
    term_opts: &TerminalOptions,
    options: &MsriOptions,
    workspace: &mut MsriWorkspace,
) -> Result<TradeoffCurve, MsriError> {
    optimize_with_wires_in(
        net,
        root,
        library,
        term_opts,
        &[WireOption::unit()],
        options,
        workspace,
    )
}

/// Like [`optimize`], additionally choosing a wire width for **every**
/// edge from `wire_options` (simultaneous repeater insertion and
/// discrete wire sizing — the paper's §VII extension).
///
/// With a single unit option this is exactly [`optimize`]. Wire costs are
/// `cost_per_um · length`, in the same currency as repeater costs; the
/// chosen widths are reported per edge in
/// [`crate::TradeoffPoint::wire_choices`].
///
/// # Errors
///
/// See [`MsriError`]; additionally `wire_options` must be non-empty.
pub fn optimize_with_wires(
    net: &Net,
    root: TerminalId,
    library: &[Repeater],
    term_opts: &TerminalOptions,
    wire_options: &[WireOption],
    options: &MsriOptions,
) -> Result<TradeoffCurve, MsriError> {
    let mut workspace = MsriWorkspace::new();
    optimize_with_wires_in(
        net,
        root,
        library,
        term_opts,
        wire_options,
        options,
        &mut workspace,
    )
}

/// Like [`optimize_with_wires`], reusing `workspace` scratch memory.
/// Results are bit-identical to [`optimize_with_wires`].
///
/// # Errors
///
/// See [`MsriError`]; additionally `wire_options` must be non-empty.
pub fn optimize_with_wires_in(
    net: &Net,
    root: TerminalId,
    library: &[Repeater],
    term_opts: &TerminalOptions,
    wire_options: &[WireOption],
    options: &MsriOptions,
    workspace: &mut MsriWorkspace,
) -> Result<TradeoffCurve, MsriError> {
    validate(net, root, library, term_opts, wire_options, options)?;
    let rooted = net.rooted_at_terminal(root);
    let mut trace = Vec::new();
    let mut solver = Solver {
        net,
        rooted: &rooted,
        library,
        term_opts,
        wire_options,
        options,
        trace: &mut trace,
        cap_bound: cap_bound(net, library, term_opts, wire_options),
        stats: MsriStats::default(),
        arena: &mut workspace.arena,
        prebounds: LibPrebounds::new(library),
    };
    solver.run(root)
}

/// Structural validation shared by every optimizer entry point.
fn validate(
    net: &Net,
    root: TerminalId,
    library: &[Repeater],
    term_opts: &TerminalOptions,
    wire_options: &[WireOption],
    options: &MsriOptions,
) -> Result<(), MsriError> {
    assert!(!wire_options.is_empty(), "at least one wire option required");
    net.check()?;
    if !options.allow_inverting && library.iter().any(|r| r.inverting) {
        return Err(MsriError::InvertingDisallowed);
    }
    for t in net.terminal_ids() {
        if term_opts.for_terminal(t).is_empty() {
            return Err(MsriError::NoOptions(t));
        }
        let v = net.topology.terminal_vertex(t);
        if net.topology.degree(v) > 1 {
            return Err(if t == root {
                MsriError::RootNotLeaf(t)
            } else {
                MsriError::TerminalNotLeaf(t)
            });
        }
    }
    Ok(())
}

/// Per-subtree DP state retained across [`optimize_incremental`] calls:
/// one cached candidate set per processed vertex plus the append-only
/// back-pointer log those candidates reference.
///
/// The cache is opaque — candidates and trace nodes are implementation
/// details — and is valid only for a fixed
/// `(topology shape, root, library, options, cap_bound)` configuration:
/// callers must mark every vertex whose subtree inputs changed as dirty
/// (see [`optimize_incremental`]) and [`DpCache::clear`] the cache
/// outright when the library, root, options or bound change.
#[derive(Debug, Default)]
pub struct DpCache {
    sets: Vec<Option<Vec<Cand>>>,
    trace: Vec<TraceNode>,
}

impl DpCache {
    /// Creates an empty (cold) cache.
    pub fn new() -> Self {
        DpCache::default()
    }

    /// Drops every cached subtree solution and back-pointer; the next
    /// [`optimize_incremental`] call recomputes everything.
    pub fn clear(&mut self) {
        self.sets.clear();
        self.trace.clear();
    }

    /// Number of vertices currently holding a cached candidate set.
    pub fn cached_subtrees(&self) -> usize {
        self.sets.iter().filter(|s| s.is_some()).count()
    }

    /// Length of the append-only back-pointer log. Grows monotonically
    /// across recomputes (old entries stay valid for reused subtrees)
    /// until [`DpCache::clear`] — long edit sessions should clear
    /// periodically if memory matters more than warm starts.
    pub fn trace_len(&self) -> usize {
        self.trace.len()
    }

    /// Grows the per-vertex table to `n` slots, appending cold (`None`)
    /// entries and leaving every cached set untouched — the cache
    /// counterpart of an *append-only* structural edit (new vertices get
    /// the new ids, nothing renumbers), which would otherwise trip the
    /// size guard in [`optimize_incremental`] and dump the whole cache.
    /// Shrinking is not supported here; see
    /// [`DpCache::structural_remove_vertex`].
    pub fn grow(&mut self, n: usize) {
        if self.sets.len() < n {
            self.sets.resize_with(n, || None);
        }
    }

    /// Applies a `swap_remove`-style structural removal to the cache:
    /// drops (and recycles) the removed vertex's cached set, compacts
    /// the per-vertex table with the same swap, and rewrites the moved
    /// vertex/edge/terminal ids throughout the back-pointer log so
    /// surviving candidates keep reconstructing correctly.
    ///
    /// Trace entries that referenced the *removed* elements become
    /// garbage, but they are unreachable: only ancestors of a removed
    /// leaf (or spliced insertion point) can hold candidates built over
    /// it, and the caller must dirty that root path, so those sets are
    /// dropped and recomputed before any reconstruction touches them.
    ///
    /// # Panics
    ///
    /// Panics if `removed` is outside the cache's table (callers grow or
    /// populate the cache before removing; a cold cache is a no-op via
    /// the empty check).
    pub fn structural_remove_vertex(
        &mut self,
        removed: VertexId,
        remap: &StructuralRemap,
        workspace: &mut MsriWorkspace,
    ) {
        if self.sets.is_empty() {
            // Cold cache: nothing references any id; drop stale
            // back-pointers too.
            self.trace.clear();
            return;
        }
        if let Some(old) = self.sets[removed.0].take() {
            for c in old {
                for p in c.pwls {
                    workspace.arena.recycle(p);
                }
            }
        }
        self.sets.swap_remove(removed.0);
        let (vertex, edge, terminal) = (remap.vertex, remap.edge, remap.terminal);
        if vertex.is_none() && edge.is_none() && terminal.is_none() {
            return; // pure pops: no id moved, the log is untouched
        }
        for node in &mut self.trace {
            match node {
                TraceNode::Leaf { terminal: t, .. } => {
                    if let Some((old, new)) = terminal {
                        if *t == old {
                            *t = new;
                        }
                    }
                }
                TraceNode::Repeater { vertex: v, .. } => {
                    if let Some((old, new)) = vertex {
                        if *v == old {
                            *v = new;
                        }
                    }
                }
                TraceNode::Wire { edge: e, .. } => {
                    if let Some((old, new)) = edge {
                        if *e == old {
                            *e = new;
                        }
                    }
                }
                TraceNode::Join { .. } | TraceNode::Empty => {}
            }
        }
    }
}

/// Node-visit counters for one [`optimize_incremental`] call — the
/// machine-independent evidence that an edit recomputed only its dirty
/// root path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecomputeStats {
    /// Non-root vertices walked by the postorder sweep (always the full
    /// vertex count minus one: the walk itself is `O(n)` but cheap).
    pub nodes_visited: usize,
    /// Vertices whose candidate set was rebuilt this call.
    pub nodes_recomputed: usize,
    /// Vertices served verbatim from the cache.
    pub nodes_reused: usize,
}

/// The exact PWL domain bound `[0, B]` that [`optimize`] derives from a
/// configuration — exposed so incremental sessions can fix one bound
/// with headroom up front and hand it to every [`optimize_incremental`]
/// call (results are only comparable bit-for-bit under equal bounds).
pub fn required_cap_bound(
    net: &Net,
    library: &[Repeater],
    term_opts: &TerminalOptions,
    wire_options: &[WireOption],
) -> f64 {
    cap_bound(net, library, term_opts, wire_options)
}

/// Like [`optimize_with_wires_in`], but reusing per-subtree candidate
/// sets cached in `cache` from a previous call: a vertex is recomputed
/// only when `dirty[v]` is set, its cache entry is missing, or one of
/// its children was recomputed this call — so an edit whose dirty set is
/// one leaf-to-root path costs `O(depth × frontier)` instead of a full
/// re-run.
///
/// `cap_bound` must be at least [`required_cap_bound`] for the current
/// configuration and must be held **fixed** across every call sharing
/// `cache`: the bound shapes every PWL domain and hence every pruning
/// decision, so mixing bounds silently invalidates cached sets. Under a
/// fixed bound the result is **bit-identical** to a from-scratch call
/// with an empty cache (every subtree set is a deterministic function of
/// its subtree inputs and the bound).
///
/// Callers are responsible for dirty-marking every vertex whose subtree
/// content changed — for a point edit that is the edited vertex plus all
/// its ancestors (the engine additionally propagates staleness upward
/// from any recomputed child, so an under-marked *interior* vertex is
/// caught, but an unmarked *edited* vertex is not).
///
/// # Errors
///
/// See [`MsriError`].
///
/// # Panics
///
/// Panics if `cap_bound` is not strictly positive and finite.
#[allow(clippy::too_many_arguments)]
pub fn optimize_incremental(
    net: &Net,
    root: TerminalId,
    library: &[Repeater],
    term_opts: &TerminalOptions,
    wire_options: &[WireOption],
    options: &MsriOptions,
    cap_bound: f64,
    dirty: &[bool],
    cache: &mut DpCache,
    workspace: &mut MsriWorkspace,
) -> Result<(TradeoffCurve, RecomputeStats), MsriError> {
    assert!(
        cap_bound.is_finite() && cap_bound > 0.0,
        "cap_bound must be positive and finite"
    );
    debug_assert!(
        cap_bound >= required_cap_bound(net, library, term_opts, wire_options),
        "cap_bound below the configuration's required PWL domain bound"
    );
    validate(net, root, library, term_opts, wire_options, options)?;
    let rooted = net.rooted_at_terminal(root);
    let n = net.topology.vertex_count();
    if cache.sets.len() != n {
        cache.clear();
        cache.sets.resize_with(n, || None);
    }
    let DpCache { sets, trace } = cache;
    let mut solver = Solver {
        net,
        rooted: &rooted,
        library,
        term_opts,
        wire_options,
        options,
        trace,
        cap_bound,
        stats: MsriStats::default(),
        arena: &mut workspace.arena,
        prebounds: LibPrebounds::new(library),
    };
    let root_v = rooted.root();
    let mut stats = RecomputeStats::default();
    let mut fresh = vec![false; n];
    for v in rooted.postorder() {
        if v == root_v {
            break; // handled by RootSolutions below
        }
        stats.nodes_visited += 1;
        let stale = dirty.get(v.0).copied().unwrap_or(true)
            || sets[v.0].is_none()
            || rooted.children(v).iter().any(|u| fresh[u.0]);
        if !stale {
            stats.nodes_reused += 1;
            continue;
        }
        // The replaced set's buffers feed the recomputation instead of
        // the allocator.
        if let Some(old) = sets[v.0].take() {
            for c in old {
                for p in c.pwls {
                    solver.arena.recycle(p);
                }
            }
        }
        let set = solver.solutions_at(v, &mut |u| {
            // msrnet-allow: panic post-order traversal caches every child before its parent
            sets[u.0].as_ref().expect("child cached").clone()
        });
        sets[v.0] = Some(set);
        fresh[v.0] = true;
        stats.nodes_recomputed += 1;
    }

    // RootSolutions always re-evaluates (it is cheap: one pass over the
    // root child's frontier), cloning so the cache keeps its entry.
    let children = rooted.children(root_v);
    if children.is_empty() {
        return Err(MsriError::NoFeasiblePair);
    }
    debug_assert_eq!(children.len(), 1, "leaf root has one child");
    let child = children[0];
    // msrnet-allow: panic the post-order loop above filled every non-root slot
    let below = sets[child.0].as_ref().expect("child processed").clone();
    let at_root = solver.augment(below, child);
    let evals = solver.root_solutions(at_root, root);
    let curve = solver.finish(evals, root)?;
    Ok((curve, stats))
}

/// Upper bound for the PWL domain clamp `[0, B]`.
///
/// Subtlety: every `Augment`/`JoinSets` shifts a candidate's domain down
/// by the capacitance accumulated beneath it (at most the whole net), and
/// `RepeaterSolutions` later *evaluates* the candidate at the repeater's
/// child-side input capacitance — which can exceed the physically
/// remaining outside capacitance, because the repeater's own input cap
/// **replaces** the outside world. The bound therefore reserves headroom
/// for the largest decoupling cap *in addition to* the whole net:
/// `B = C_wire + Σ max terminal caps + max repeater-side cap`, so after
/// any shift the domain still covers every evaluation point.
fn cap_bound(
    net: &Net,
    library: &[Repeater],
    term_opts: &TerminalOptions,
    wire_options: &[WireOption],
) -> f64 {
    let lib_max = library
        .iter()
        .map(|r| r.cap_a.max(r.cap_b))
        .fold(0.0, f64::max);
    let wire_scale_max = wire_options
        .iter()
        .map(|w| w.cap_scale)
        .fold(1.0, f64::max);
    let terms_max_sum: f64 = (0..term_opts.len())
        .map(|i| {
            term_opts
                .for_terminal(TerminalId(i))
                .iter()
                .map(|o| o.cap)
                .fold(0.0, f64::max)
        })
        .sum();
    (net.total_wire_cap() * wire_scale_max + terms_max_sum + lib_max) * (1.0 + 1e-9) + 1e-9
}

/// Incremental-pruning block size for the product-generating steps
/// (JoinSets and RepeaterSolutions). MFS pruning is confluent —
/// dominated candidates may be discarded at any time without changing
/// the final subset — so these steps prune mid-generation whenever the
/// working set reaches `2 * BLOCK_LIMIT`, bounding peak memory instead
/// of materializing whole products.
const BLOCK_LIMIT: usize = 8192;

struct Solver<'a> {
    net: &'a Net,
    rooted: &'a Rooted,
    library: &'a [Repeater],
    term_opts: &'a TerminalOptions,
    wire_options: &'a [WireOption],
    options: &'a MsriOptions,
    trace: &'a mut Vec<TraceNode>,
    cap_bound: f64,
    stats: MsriStats,
    arena: &'a mut SegmentArena,
    /// Drive-strength-ordered library envelope, computed once per run.
    prebounds: LibPrebounds,
}

impl Solver<'_> {
    fn run(&mut self, root: TerminalId) -> Result<TradeoffCurve, MsriError> {
        let n = self.net.topology.vertex_count();
        let root_v = self.rooted.root();
        let mut sets: Vec<Option<Vec<Cand>>> = (0..n).map(|_| None).collect();

        for v in self.rooted.postorder() {
            if v == root_v {
                break; // handled by RootSolutions below
            }
            let set = self.solutions_at(v, &mut |u| {
                // msrnet-allow: panic post-order traversal fills every child slot before its parent
                sets[u.0].take().expect("child processed")
            });
            sets[v.0] = Some(set);
        }

        // The root is a leaf terminal with exactly one child subtree — or
        // none at all when the net is a single terminal, which has no
        // distinct source/sink pair and therefore no defined ARD.
        let children = self.rooted.children(root_v);
        if children.is_empty() {
            return Err(MsriError::NoFeasiblePair);
        }
        debug_assert_eq!(children.len(), 1, "leaf root has one child");
        let child = children[0];
        // msrnet-allow: panic the post-order loop above filled every non-root slot
        let below = sets[child.0].take().expect("child processed");
        let at_root = self.augment(below, child);
        let evals = self.root_solutions(at_root, root);
        self.finish(evals, root)
    }

    /// Candidate set for the subtree at `v`, measured at `v`'s
    /// parent-side pin.
    ///
    /// Child sets are obtained through `fetch`, which either hands over
    /// ownership (the from-scratch path takes them out of its scratch
    /// table) or clones a cached copy (the incremental path keeps the
    /// cache entry alive); either way the returned `Vec` is consumed
    /// here and its PWL buffers recycled into the arena.
    fn solutions_at(
        &mut self,
        v: VertexId,
        fetch: &mut dyn FnMut(VertexId) -> Vec<Cand>,
    ) -> Vec<Cand> {
        let children: Vec<VertexId> = self.rooted.children(v).to_vec();
        match self.net.topology.kind(v) {
            VertexKind::Terminal(t) => {
                debug_assert!(children.is_empty(), "terminals are leaves (validated)");
                self.leaf_solutions(t)
            }
            VertexKind::Steiner | VertexKind::InsertionPoint if children.is_empty() => {
                // Degenerate leaf Steiner point: empty subtree.
                let trace = self.push_trace(TraceNode::Empty);
                let arrival = self.arena.neg_inf(0.0, self.cap_bound);
                let diameter = self.arena.neg_inf(0.0, self.cap_bound);
                vec![self.candidate(
                    Step::Leaf,
                    trace,
                    false,
                    0,
                    0.0,
                    0.0,
                    f64::NEG_INFINITY,
                    arrival,
                    diameter,
                )]
            }
            VertexKind::Steiner => {
                let mut acc: Option<Vec<Cand>> = None;
                for &u in &children {
                    let su = fetch(u);
                    let au = self.augment(su, u);
                    acc = Some(match acc {
                        None => au,
                        Some(prev) => {
                            let joined = self.join(prev, au);
                            self.prune(joined, Step::Join)
                        }
                    });
                }
                // msrnet-allow: panic Steiner vertices have degree >= 2, so at least one child
                acc.expect("at least one child")
            }
            VertexKind::InsertionPoint => {
                debug_assert_eq!(children.len(), 1, "insertion points are degree 2");
                let su = fetch(children[0]);
                let au = self.augment(su, children[0]);
                let buffered = self.repeater_solutions(au, v);
                self.prune(buffered, Step::Repeater)
            }
        }
    }

    fn push_trace(&mut self, node: TraceNode) -> u32 {
        let id = self.trace.len() as u32;
        self.trace.push(node);
        id
    }

    #[allow(clippy::too_many_arguments)]
    fn candidate(
        &mut self,
        step: Step,
        trace: u32,
        parity: bool,
        relax: u32,
        cost: f64,
        cap: f64,
        d_sinks: f64,
        arrival: Pwl,
        diameter: Pwl,
    ) -> Cand {
        self.stats.generated += 1;
        self.stats.step_mut(step).generated += 1;
        let segs = arrival.segments().len() + diameter.segments().len();
        self.stats.max_segments = self.stats.max_segments.max(segs);
        FuncPoint::new(
            Meta { trace, parity, relax },
            vec![cost, cap, d_sinks],
            vec![arrival, diameter],
        )
    }

    /// Paper Fig. 6: one candidate per driver option of the leaf
    /// terminal.
    fn leaf_solutions(&mut self, t: TerminalId) -> Vec<Cand> {
        let term = *self.net.terminal(t);
        let b = self.cap_bound;
        let menu: Vec<_> = self.term_opts.for_terminal(t).to_vec();
        let mut out = Vec::with_capacity(menu.len());
        for (oi, o) in menu.iter().enumerate() {
            let trace = self.push_trace(TraceNode::Leaf {
                terminal: t,
                option: oi,
            });
            let arrival = if term.is_source() {
                // AT + driver intrinsic/loading + r·(own cap + c_E).
                self.arena.linear(
                    term.arrival + o.arrival_extra + o.drive_res * o.cap,
                    o.drive_res,
                    0.0,
                    b,
                )
            } else {
                self.arena.neg_inf(0.0, b)
            };
            let d_sinks = if term.is_sink() {
                term.downstream + o.downstream_extra
            } else {
                f64::NEG_INFINITY
            };
            let diameter = self.arena.neg_inf(0.0, b);
            out.push(self.candidate(
                Step::Leaf,
                trace,
                false,
                0,
                o.cost,
                o.cap,
                d_sinks,
                arrival,
                diameter,
            ));
        }
        self.prune(out, Step::Leaf)
    }

    /// Paper Fig. 10: extend candidates at `v` through `v`'s parent wire,
    /// enumerating wire-width options when wire sizing is enabled.
    fn augment(&mut self, set: Vec<Cand>, v: VertexId) -> Vec<Cand> {
        // msrnet-allow: panic augment is only called on children, which always have a parent edge
        let e = self.rooted.parent_edge(v).expect("non-root vertex");
        let len = self.net.topology.length(e);
        let base_r = self.net.edge_res(e);
        let base_c = self.net.edge_cap(e);
        let sizing = self.wire_options.len() > 1 && len > 0.0;
        // msrnet-allow: float-eq exact-zero parasitics make augmenting the identity; any nonzero value must augment
        if !sizing && base_r == 0.0 && base_c == 0.0 {
            return set;
        }
        let b = self.cap_bound;
        let n_opts = if sizing { self.wire_options.len() } else { 1 };
        let mut out = Vec::with_capacity(set.len() * n_opts);
        for cand in set {
            for oi in 0..n_opts {
                let w = &self.wire_options[oi];
                let r = base_r * w.res_scale;
                let c = base_c * w.cap_scale;
                let cost = cand.scalars[COST] + if sizing { w.cost_per_um * len } else { 0.0 };
                let cap = cand.scalars[CAP] + c;
                let d_sinks = r * (0.5 * c + cand.scalars[CAP]) + cand.scalars[DSINKS];
                let arrival = self
                    .arena
                    .shift_linear_clamp(&cand.pwls[ARR], c, r * 0.5 * c, r, 0.0, b);
                let diameter = self.arena.shift_clamp(&cand.pwls[DIA], c, 0.0, b);
                let trace = if sizing {
                    self.push_trace(TraceNode::Wire {
                        child: cand.payload.trace,
                        edge: e,
                        option: oi,
                    })
                } else {
                    cand.payload.trace
                };
                out.push(self.candidate(
                    Step::Augment,
                    trace,
                    cand.payload.parity,
                    cand.payload.relax,
                    cost,
                    cap,
                    d_sinks,
                    arrival,
                    diameter,
                ));
            }
            // The input candidate is consumed: its PWL buffers feed the
            // next operations instead of the allocator.
            for p in cand.pwls {
                self.arena.recycle(p);
            }
        }
        if sizing {
            self.prune(out, Step::Augment)
        } else {
            out
        }
    }

    /// Paper Fig. 7: the product of two sibling candidate sets at a
    /// branch vertex.
    ///
    /// Large products are pruned incrementally in blocks rather than
    /// materialized whole: the minimal functional subset is confluent
    /// (dominated candidates may be discarded at any time without
    /// affecting the final subset), so interleaving pruning with
    /// generation preserves exactness while bounding memory — combined
    /// driver-sizing × wire-sizing × repeater runs would otherwise
    /// materialize products with billions of entries.
    ///
    /// Two exact pre-materialization cutoffs kill hopeless products
    /// before any PWL work happens:
    ///
    /// 1. **Empty shifted domain.** The product's PWLs live on the
    ///    intersection of each side's domain shifted down by the sibling
    ///    capacitance, clamped to `[0, cap_bound]`. When the bounding
    ///    spans alone prove that intersection empty, the product would be
    ///    born with no validity domain and could never reach the root —
    ///    skipping it is exactly equivalent to materializing and later
    ///    discarding it.
    /// 2. **Champion dominance.** A bounded pool of recent single-span
    ///    survivors ([`Champion`]) is compared against the product's
    ///    *optimistic lower bounds*: `arrival ≥ max` of the side floors,
    ///    `diameter ≥ max` of the side floors and the cross terms
    ///    `Y_floor + d_sinks`. A champion whose span covers the product's
    ///    bounding span and whose scalars and value *ceilings* sit at or
    ///    below those floors dominates the product over its entire
    ///    domain, so by confluence the product may be dropped. Champions
    ///    are generated earlier than any product they kill, so the
    ///    stable (cost, cap) prune order would have kept the champion on
    ///    exact ties too — the final subset is unchanged.
    fn join(&mut self, left: Vec<Cand>, right: Vec<Cand>) -> Vec<Cand> {
        const CHAMPION_CAP: usize = 24;
        let b = self.cap_bound;
        let mut out = Vec::with_capacity((left.len() * right.len()).min(2 * BLOCK_LIMIT));
        let inverting = self.options.allow_inverting;
        // Per-side summaries, computed once: domain bounding span and
        // value floors of each PWL. `[dom_lo, dom_hi, y_floor, d_floor]`;
        // an invalid side summarizes to `[+∞, -∞, +∞, +∞]`, which fails
        // the domain test below for every product it appears in.
        let info = |c: &Cand| -> [f64; 4] {
            let spans = c.domain().spans();
            [
                spans.first().map_or(f64::INFINITY, |s| s.0),
                spans.last().map_or(f64::NEG_INFINITY, |s| s.1),
                c.pwls[ARR].min_value().unwrap_or(f64::INFINITY),
                c.pwls[DIA].min_value().unwrap_or(f64::INFINITY),
            ]
        };
        let l_info: Vec<[f64; 4]> = left.iter().map(info).collect();
        let r_info: Vec<[f64; 4]> = right.iter().map(info).collect();
        // Predictive row pre-bounds: aggregate envelope of the whole
        // right set, so an entire left row (|right| products) can be
        // rejected with O(1) work *before* any product is formed. The
        // envelope floors are sound lower bounds for every product of
        // the row, so a champion dominating the floors dominates every
        // product — an exact whole-row generalization of the per-product
        // cutoffs below. Gated off under inverting libraries (parity
        // makes the per-product skip accounting non-uniform) and when
        // predictive pruning is disabled.
        let row_skip = self.options.predictive && !inverting && !right.is_empty();
        let slack = self.options.prebound_slack;
        let mut r_cap_min = f64::INFINITY;
        let mut r_cap_max = f64::NEG_INFINITY;
        let mut r_cost_min = f64::INFINITY;
        let mut r_ds_min = f64::INFINITY;
        let mut r_lo_min = f64::INFINITY;
        let mut r_hi_max = f64::NEG_INFINITY;
        let mut r_y_min = f64::INFINITY;
        let mut r_d_min = f64::INFINITY;
        let mut r_relax_max = 0u32;
        if row_skip {
            for (r, ri) in right.iter().zip(&r_info) {
                r_cap_min = r_cap_min.min(r.scalars[CAP]);
                r_cap_max = r_cap_max.max(r.scalars[CAP]);
                r_cost_min = r_cost_min.min(r.scalars[COST]);
                r_ds_min = r_ds_min.min(r.scalars[DSINKS]);
                r_lo_min = r_lo_min.min(ri[0]);
                r_hi_max = r_hi_max.max(ri[1]);
                r_y_min = r_y_min.min(ri[2]);
                r_d_min = r_d_min.min(ri[3]);
                r_relax_max = r_relax_max.max(r.payload.relax);
            }
        }
        let mut champs: Vec<Champion> = Vec::new();
        // High-water mark for block pruning, checked per product (a
        // single left row can be tens of thousands of products wide).
        // Rearmed at survivors + BLOCK_LIMIT so every prune is amortized
        // over at least BLOCK_LIMIT fresh candidates even when the
        // survivor floor itself exceeds the block size.
        let mut next_prune = 2 * BLOCK_LIMIT;
        for (l, li) in left.iter().zip(&l_info) {
            if row_skip {
                // Whole-row cutoff 1: every product of this row has an
                // empty shifted domain. Counted exactly as the
                // per-product cutoff would have counted it.
                if li[1] - r_cap_min < 0.0
                    || r_hi_max - l.scalars[CAP] < 0.0
                    || li[0] - r_cap_max > b
                    || r_lo_min - l.scalars[CAP] > b
                {
                    self.stats.join.scalar_pruned += right.len() as u64;
                    continue;
                }
                // Whole-row champion dominance over the row's envelope
                // floors. `r_y_min = +∞` (all rights invalid) is handled
                // by the guard — the cross terms would otherwise mix
                // infinities into a NaN.
                if li[1] >= li[0] && r_y_min < f64::INFINITY {
                    let row_cost = l.scalars[COST] + r_cost_min;
                    let row_cap = l.scalars[CAP] + r_cap_min;
                    let row_ds = l.scalars[DSINKS].max(r_ds_min);
                    let row_dom_lo = (li[0] - r_cap_max)
                        .max(r_lo_min - l.scalars[CAP])
                        .max(0.0);
                    let row_dom_hi = (li[1] - r_cap_min)
                        .min(r_hi_max - l.scalars[CAP])
                        .min(b);
                    let row_y = li[2].max(r_y_min);
                    let row_d = li[3]
                        .max(r_d_min)
                        .max(li[2] + r_ds_min)
                        .max(r_y_min + l.scalars[DSINKS]);
                    let row_relax = l.payload.relax.max(r_relax_max);
                    if let Some(k) = champs.iter().position(|c| {
                        !c.parity
                            && c.relax >= row_relax
                            && c.cost <= row_cost + slack
                            && c.cap <= row_cap + slack
                            && c.d_sinks <= row_ds + slack
                            && c.dom_lo <= row_dom_lo + slack
                            && c.dom_hi >= row_dom_hi - slack
                            && c.y_hi <= row_y + slack
                            && c.d_hi <= row_d + slack
                    }) {
                        champs[..=k].rotate_right(1);
                        self.stats.join.materialized_avoided += right.len() as u64;
                        continue;
                    }
                }
            }
            for (r, ri) in right.iter().zip(&r_info) {
                if out.len() >= next_prune {
                    out = self.prune(out, Step::Join);
                    next_prune = out.len() + BLOCK_LIMIT;
                }
                // Inverting-repeater extension: every internal terminal
                // must agree on polarity at the junction.
                let mut parity = false;
                if inverting {
                    let l_has_terms = has_terminals(l);
                    let r_has_terms = has_terminals(r);
                    if l.payload.parity != r.payload.parity && l_has_terms && r_has_terms {
                        continue;
                    }
                    parity = if l_has_terms {
                        l.payload.parity
                    } else {
                        r.payload.parity
                    };
                }
                let cost = l.scalars[COST] + r.scalars[COST];
                let cap = l.scalars[CAP] + r.scalars[CAP];
                let d_sinks = l.scalars[DSINKS].max(r.scalars[DSINKS]);
                // Cutoff 1: bounding span of the product's shifted,
                // clamped validity domain.
                let dom_lo = (li[0] - r.scalars[CAP])
                    .max(ri[0] - l.scalars[CAP])
                    .max(0.0);
                let dom_hi = (li[1] - r.scalars[CAP])
                    .min(ri[1] - l.scalars[CAP])
                    .min(b);
                if dom_hi < dom_lo {
                    self.stats.join.scalar_pruned += 1;
                    continue;
                }
                // Cutoff 2: optimistic lower bounds on the product's
                // arrival and diameter anywhere in its domain. (The
                // +∞ floors of invalid sides cannot reach this point, so
                // the cross terms never mix infinities into a NaN.)
                let y_floor = li[2].max(ri[2]);
                let d_floor = li[3]
                    .max(ri[3])
                    .max(li[2] + r.scalars[DSINKS])
                    .max(ri[2] + l.scalars[DSINKS]);
                let relax = l.payload.relax.max(r.payload.relax);
                if let Some(k) = champs.iter().position(|c| {
                    c.parity == parity
                        && c.relax >= relax
                        && c.cost <= cost
                        && c.cap <= cap
                        && c.d_sinks <= d_sinks
                        && c.dom_lo <= dom_lo
                        && c.dom_hi >= dom_hi
                        && c.y_hi <= y_floor
                        && c.d_hi <= d_floor
                }) {
                    // Move-to-front: a champion that kills tends to kill
                    // again for neighbouring products.
                    champs[..=k].rotate_right(1);
                    self.stats.join.scalar_pruned += 1;
                    continue;
                }
                let yl = self.arena.shift_clamp(&l.pwls[ARR], r.scalars[CAP], 0.0, b);
                let yr = self.arena.shift_clamp(&r.pwls[ARR], l.scalars[CAP], 0.0, b);
                let dl = self.arena.shift_clamp(&l.pwls[DIA], r.scalars[CAP], 0.0, b);
                let dr = self.arena.shift_clamp(&r.pwls[DIA], l.scalars[CAP], 0.0, b);
                let arrival = self.arena.max(&yl, &yr);
                // Internal pairs: within either side, or crossing the
                // junction in both directions.
                let d0 = self.arena.max(&dl, &dr);
                let cross_l = self.arena.add_scalar(&yl, r.scalars[DSINKS]);
                let d1 = self.arena.max(&d0, &cross_l);
                let cross_r = self.arena.add_scalar(&yr, l.scalars[DSINKS]);
                let diameter = self.arena.max(&d1, &cross_r);
                for t in [yl, yr, dl, dr, d0, cross_l, d1, cross_r] {
                    self.arena.recycle(t);
                }
                let trace = self.push_trace(TraceNode::Join {
                    left: l.payload.trace,
                    right: r.payload.trace,
                });
                let cand = self.candidate(
                    Step::Join,
                    trace,
                    parity,
                    relax,
                    cost,
                    cap,
                    d_sinks,
                    arrival,
                    diameter,
                );
                // Single-span products feed the champion pool (split
                // domains cannot certify whole-domain coverage cheaply).
                let spans = cand.domain().spans();
                if let [span] = spans {
                    if champs.len() == CHAMPION_CAP {
                        champs.pop();
                    }
                    champs.insert(
                        0,
                        Champion {
                            parity,
                            cost,
                            cap,
                            d_sinks,
                            dom_lo: span.0,
                            dom_hi: span.1,
                            y_hi: cand.pwls[ARR].max_value().unwrap_or(f64::INFINITY),
                            d_hi: cand.pwls[DIA].max_value().unwrap_or(f64::INFINITY),
                            relax,
                        },
                    );
                }
                out.push(cand);
            }
        }
        // Both input sets are fully consumed at this point.
        for c in left.into_iter().chain(right) {
            for p in c.pwls {
                self.arena.recycle(p);
            }
        }
        out
    }

    /// Paper Fig. 8: at an insertion point, keep the unbuffered candidate
    /// and add one candidate per (repeater, orientation).
    ///
    /// A repeater decouples: the subtree below now sees exactly the
    /// repeater's child-side input capacitance, so `Y` and `D` are
    /// *evaluated* there — `D` becomes a constant and `Y` a fresh line
    /// whose slope is the upstream output resistance.
    ///
    /// Like [`Solver::join`], the buffered candidates are pruned
    /// incrementally in blocks: under multi-size libraries this step
    /// multiplies the incoming set by `1 + orientations·|library|`, and
    /// on asymmetric multi-cost regimes that product — not the join —
    /// is where the peak candidate set used to live.
    fn repeater_solutions(&mut self, set: Vec<Cand>, v: VertexId) -> Vec<Cand> {
        const REP_CHAMPION_CAP: usize = 24;
        let b = self.cap_bound;
        let mut out: Vec<Cand> = Vec::with_capacity(
            (set.len() * (1 + 2 * self.library.len())).min(2 * BLOCK_LIMIT + set.len()),
        );
        let mut next_prune = 2 * BLOCK_LIMIT;
        // Predictive pre-bounds (Li & Shi style): already-materialized
        // buffered candidates act as champions; prospective extensions
        // whose exact line endpoints they dominate are rejected *before*
        // any PWL is built or trace pushed, and whole per-candidate
        // fan-outs are skipped when the drive-strength envelope floors —
        // the best any remaining repeater could possibly achieve for
        // this candidate — are already dominated.
        let predictive = self.options.predictive && self.prebounds.combos() > 0;
        let slack = self.options.prebound_slack;
        let combos = self.prebounds.combos() as u64;
        let env_min_cost = self.prebounds.min_cost;
        let env_min_cap = self.prebounds.min_cap_parent;
        let env_min_down_int = self.prebounds.min_down_intrinsic;
        let env_min_down_res = self.prebounds.min_down_res;
        let env_min_up_int = self.prebounds.min_up_intrinsic;
        let env_min_up_res = self.prebounds.min_up_res;
        let env_uniform_inv = self.prebounds.uniform_inverting;
        let mut champs: Vec<RepChampion> = Vec::new();
        for cand in &set {
            if out.len() >= next_prune {
                out = self.prune(out, Step::Repeater);
                next_prune = out.len() + BLOCK_LIMIT;
            }
            if predictive {
                // Whole-fan-out skip. Sound only when every extension's
                // parity is known up front (uniform library inverting
                // flag). An empty-domain candidate fans out to nothing;
                // fall through so the combo loop's eval check keeps the
                // accounting identical to the non-predictive path.
                if let (Some(inv), Some(arr_min), Some(dia_min)) = (
                    env_uniform_inv,
                    cand.pwls[ARR].min_value(),
                    cand.pwls[DIA].min_value(),
                ) {
                    let parity = cand.payload.parity ^ inv;
                    let f_cost = cand.scalars[COST] + env_min_cost;
                    let f_ds =
                        env_min_down_int + env_min_down_res * cand.scalars[CAP] + cand.scalars[DSINKS];
                    let f_y0 = arr_min + env_min_up_int;
                    let f_yb = f_y0 + env_min_up_res * b;
                    if let Some(k) = champs.iter().position(|c| {
                        c.parity == parity
                            && c.relax >= cand.payload.relax
                            && c.cost <= f_cost + slack
                            && c.cap <= env_min_cap + slack
                            && c.d_sinks <= f_ds + slack
                            && c.y0 <= f_y0 + slack
                            && c.y_b <= f_yb + slack
                            && c.d <= dia_min + slack
                    }) {
                        champs[..=k].rotate_right(1);
                        self.stats.repeater.materialized_avoided += combos;
                        continue;
                    }
                }
            }
            for (ri, rep) in self.library.iter().enumerate() {
                let orientations: &[Orientation] = if rep.is_symmetric() {
                    &[Orientation::AFacesParent]
                } else {
                    &Orientation::BOTH
                };
                for &o in orientations {
                    let cc = rep.cap_facing_child(o);
                    let cp = rep.cap_facing_parent(o);
                    // The decoupled subtree sees c_E = cc exactly; a
                    // candidate pruned at that point is covered by
                    // another candidate, so skipping is safe.
                    let (Some(y_at), Some(d_at)) =
                        (cand.pwls[ARR].eval(cc), cand.pwls[DIA].eval(cc))
                    else {
                        continue;
                    };
                    let down = rep.downstream_drive(o);
                    let up = rep.upstream_drive(o);
                    let cost = cand.scalars[COST] + rep.cost;
                    let d_sinks = if cand.scalars[DSINKS] > f64::NEG_INFINITY {
                        down.intrinsic + down.out_res * cand.scalars[CAP] + cand.scalars[DSINKS]
                    } else {
                        f64::NEG_INFINITY
                    };
                    let parity = cand.payload.parity ^ rep.inverting;
                    // The extension's exact shape is known before it is
                    // built: a line from y0 to y_b over [0, B] plus a
                    // constant diameter (−∞ propagates through the
                    // endpoint arithmetic unchanged).
                    let e_y0 = y_at + up.intrinsic;
                    let e_yb = e_y0 + up.out_res * b;
                    if predictive {
                        if let Some(k) = champs.iter().position(|c| {
                            c.parity == parity
                                && c.relax >= cand.payload.relax
                                && c.cost <= cost + slack
                                && c.cap <= cp + slack
                                && c.d_sinks <= d_sinks + slack
                                && c.y0 <= e_y0 + slack
                                && c.y_b <= e_yb + slack
                                && c.d <= d_at + slack
                        }) {
                            champs[..=k].rotate_right(1);
                            self.stats.repeater.prebound_rejected += 1;
                            continue;
                        }
                    }
                    let arrival = if y_at > f64::NEG_INFINITY {
                        self.arena.linear(y_at + up.intrinsic, up.out_res, 0.0, b)
                    } else {
                        self.arena.neg_inf(0.0, b)
                    };
                    let diameter = self.arena.constant(d_at, 0.0, b);
                    let trace = self.push_trace(TraceNode::Repeater {
                        child: cand.payload.trace,
                        vertex: v,
                        repeater: ri,
                        orientation: o,
                    });
                    if predictive {
                        if champs.len() == REP_CHAMPION_CAP {
                            champs.pop();
                        }
                        champs.insert(
                            0,
                            RepChampion {
                                parity,
                                cost,
                                cap: cp,
                                d_sinks,
                                y0: e_y0,
                                y_b: e_yb,
                                d: d_at,
                                relax: cand.payload.relax,
                            },
                        );
                    }
                    out.push(self.candidate(
                        Step::Repeater,
                        trace,
                        parity,
                        cand.payload.relax,
                        cost,
                        cp,
                        d_sinks,
                        arrival,
                        diameter,
                    ));
                }
            }
        }
        // Merging the unbuffered passthroughs can stack a full block on
        // top of the buffered survivors; pre-prune so the caller's final
        // prune stays within the same peak bound as the blocks above.
        if out.len() + set.len() > 2 * BLOCK_LIMIT {
            out = self.prune(out, Step::Repeater);
        }
        out.extend(set);
        out
    }

    /// Paper Fig. 9: close the recursion at the root terminal, producing
    /// (cost, ARD) evaluations.
    fn root_solutions(&mut self, set: Vec<Cand>, root: TerminalId) -> Vec<RootEval> {
        let term = *self.net.terminal(root);
        let menu: Vec<_> = self.term_opts.for_terminal(root).to_vec();
        let mut out = Vec::with_capacity(set.len() * menu.len());
        for cand in &set {
            // Inverting-repeater extension: end-to-end polarity must be
            // preserved between the root and internal terminals.
            if cand.payload.parity && has_terminals(cand) {
                continue;
            }
            for (oi, o) in menu.iter().enumerate() {
                let (Some(d_int), Some(y)) = (
                    cand.pwls[DIA].eval(o.cap),
                    cand.pwls[ARR].eval(o.cap),
                ) else {
                    continue;
                };
                let mut ard = d_int;
                if term.is_sink() && y > f64::NEG_INFINITY {
                    ard = ard.max(y + term.downstream + o.downstream_extra);
                }
                if term.is_source() && cand.scalars[DSINKS] > f64::NEG_INFINITY {
                    ard = ard.max(
                        term.arrival
                            + o.arrival_extra
                            + o.drive_res * (o.cap + cand.scalars[CAP])
                            + cand.scalars[DSINKS],
                    );
                }
                // Any candidate contributing a root evaluation folds its
                // relaxation ledger into the reported end-to-end budget.
                self.stats.relax_ledger = self.stats.relax_ledger.max(cand.payload.relax);
                out.push(RootEval {
                    cost: cand.scalars[COST] + o.cost,
                    ard,
                    trace: cand.payload.trace,
                    root_option: oi,
                });
            }
        }
        out
    }

    fn finish(&mut self, mut evals: Vec<RootEval>, root: TerminalId) -> Result<TradeoffCurve, MsriError> {
        evals.retain(|e| e.ard > f64::NEG_INFINITY);
        if evals.is_empty() {
            return Err(MsriError::NoFeasiblePair);
        }
        // Pareto sweep: ascending cost, strictly improving ARD.
        evals.sort_by(|a, b| {
            a.cost
                .total_cmp(&b.cost)
                .then_with(|| a.ard.total_cmp(&b.ard))
        });
        let mut frontier: Vec<RootEval> = Vec::new();
        for e in evals {
            match frontier.last() {
                Some(last) if e.ard >= last.ard - 1e-12 => {}
                _ => frontier.push(e),
            }
        }
        let points = frontier
            .into_iter()
            .map(|e| {
                let (assignment, terminal_choices, wire_choices) =
                    self.materialize(e.trace, e.root_option, root);
                TradeoffPoint {
                    cost: e.cost,
                    ard: e.ard,
                    assignment,
                    terminal_choices,
                    wire_choices,
                }
            })
            .collect();
        Ok(TradeoffCurve::new(points, self.stats))
    }

    /// Reconstructs the concrete assignment and driver choices of a
    /// surviving candidate by walking its trace.
    fn materialize(
        &self,
        trace: u32,
        root_option: usize,
        root: TerminalId,
    ) -> (Assignment, Vec<usize>, Vec<usize>) {
        let mut assignment = Assignment::empty(self.net.topology.vertex_count());
        let mut choices = vec![0usize; self.net.terminals.len()];
        let mut wires = vec![0usize; self.net.topology.edge_count()];
        choices[root.0] = root_option;
        let mut stack = vec![trace];
        while let Some(id) = stack.pop() {
            match self.trace[id as usize] {
                TraceNode::Leaf { terminal, option } => choices[terminal.0] = option,
                TraceNode::Join { left, right } => {
                    stack.push(left);
                    stack.push(right);
                }
                TraceNode::Repeater {
                    child,
                    vertex,
                    repeater,
                    orientation,
                } => {
                    assignment.place(vertex, repeater, orientation);
                    stack.push(child);
                }
                TraceNode::Wire { child, edge, option } => {
                    wires[edge.0] = option;
                    stack.push(child);
                }
                TraceNode::Empty => {}
            }
        }
        (assignment, choices, wires)
    }

    /// Minimal-functional-subset pruning between DP steps.
    fn prune(&mut self, mut set: Vec<Cand>, step: Step) -> Vec<Cand> {
        self.stats.prunes += 1;
        let before = set.len();
        {
            let st = self.stats.step_mut(step);
            st.peak_set = st.peak_set.max(before);
        }
        // Cheap locality: similar costs/caps cluster, which lets the
        // divide-and-conquer kill candidates deep in the recursion
        // (paper §V organizational note).
        set.sort_by(|a, b| {
            a.scalars[COST]
                .total_cmp(&b.scalars[COST])
                .then_with(|| a.scalars[CAP].total_cmp(&b.scalars[CAP]))
        });
        // Inverting-repeater extension: candidates of different parity
        // are incomparable; prune within each class.
        let (kept, scalar_killed) = if self.options.allow_inverting {
            let (even, odd): (Vec<Cand>, Vec<Cand>) =
                set.into_iter().partition(|c| !c.payload.parity);
            let (mut kept, ke) = self.prune_class(even);
            let (odd_kept, ko) = self.prune_class(odd);
            kept.extend(odd_kept);
            (kept, ke + ko)
        } else {
            self.prune_class(set)
        };
        let st = self.stats.step_mut(step);
        st.scalar_pruned += scalar_killed;
        st.pwl_pruned += (before - kept.len()) as u64 - scalar_killed;
        self.stats.surviving += kept.len() as u64;
        self.stats.max_set_size = self.stats.max_set_size.max(kept.len());
        kept
    }

    /// Dispatches one parity class to the configured MFS; returns the
    /// survivors and how many candidates the strategy eliminated with
    /// cheap scalar/summary predicates (zero for strategies that only do
    /// full PWL comparisons).
    fn prune_class(&mut self, set: Vec<Cand>) -> (Vec<Cand>, u64) {
        match self.options.pruning {
            PruningStrategy::DivideConquer => (
                mfs_divide_conquer(set, self.options.mfs_leaf_threshold),
                0,
            ),
            PruningStrategy::Naive => (mfs_naive(set), 0),
            PruningStrategy::Bucketed => {
                let (kept, counts) = mfs_sorted_sweep_with(set, 0.0, &mut |s, v, relaxed| {
                    s.relax = s.relax.max(v.relax + u32::from(relaxed));
                });
                (kept, counts.scalar_killed)
            }
            PruningStrategy::WholeDomainOnly => (whole_domain_prune(set), 0),
            PruningStrategy::Approximate { eps } => {
                let (kept, counts) = mfs_sorted_sweep_with(set, eps, &mut |s, v, relaxed| {
                    s.relax = s.relax.max(v.relax + u32::from(relaxed));
                });
                self.stats.relaxed_kills += counts.relaxed_killed;
                (kept, counts.scalar_killed)
            }
        }
    }
}

/// Whether a candidate's subtree contains at least one terminal (its
/// arrival or sink-delay characteristic is not identically `-∞`).
fn has_terminals(c: &Cand) -> bool {
    c.scalars[DSINKS] > f64::NEG_INFINITY
        || c.pwls[ARR].max_value().is_some_and(|v| v > f64::NEG_INFINITY)
}

/// Ablation pruning: discard a candidate only when a single other
/// candidate dominates it over its entire remaining domain.
fn whole_domain_prune(set: Vec<Cand>) -> Vec<Cand> {
    let n = set.len();
    let mut dead = vec![false; n];
    for i in 0..n {
        for j in 0..n {
            if i == j || dead[i] || dead[j] {
                continue;
            }
            // Ties kill the later index only: (i, j) is visited with
            // i < j before (j, i), so identical candidates keep one
            // representative.
            let region = set[i].dominance_region(&set[j]); // msrnet-allow: panic i, j < n = set.len() by loop bounds
            if region.measure() >= set[j].domain().measure() - 1e-12 {
                dead[j] = true;
            }
        }
    }
    set.into_iter()
        .zip(dead)
        .filter_map(|(c, d)| (!d).then_some(c))
        .collect()
}

#[derive(Clone, Copy, Debug)]
struct RootEval {
    cost: f64,
    ard: f64,
    trace: u32,
    root_option: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrnet_geom::Point;
    use msrnet_rctree::{Buffer, NetBuilder, Technology, Terminal};

    /// A fixture exposing the private DP steps on a small concrete net:
    /// t0 —(len 2)— ip —(len 2)— s —(len 2)— t1, plus s —(len 2)— t2,
    /// with unit wire parasitics so every wire has R = 2, C = 2.
    struct Fix {
        net: Net,
        rooted: Rooted,
        library: Vec<Repeater>,
        term_opts: TerminalOptions,
        wire_options: Vec<WireOption>,
        options: MsriOptions,
        ip: VertexId,
        t1_v: VertexId,
        workspace: MsriWorkspace,
        trace: Vec<TraceNode>,
    }

    impl Fix {
        fn new() -> Self {
            let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
            let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(0.0, 0.0, 1.0, 3.0));
            let ip = b.insertion_point(Point::new(2.0, 0.0));
            let s = b.steiner(Point::new(4.0, 0.0));
            let t1 = b.terminal(Point::new(6.0, 0.0), Terminal::bidirectional(5.0, 7.0, 1.0, 3.0));
            let t2 = b.terminal(Point::new(4.0, 2.0), Terminal::sink_only(11.0, 1.0));
            b.wire(t0, ip);
            b.wire(ip, s);
            b.wire(s, t1);
            b.wire(s, t2);
            let net = b.build().unwrap();
            let rooted = net.rooted_at_terminal(TerminalId(0));
            let buf = Buffer::new("1X", 10.0, 4.0, 0.5, 1.0);
            let library = vec![Repeater::from_buffer_pair("rep", &buf, &buf)];
            let term_opts = TerminalOptions::defaults(&net);
            Fix {
                t1_v: net.topology.terminal_vertex(TerminalId(1)),
                net,
                rooted,
                library,
                term_opts,
                wire_options: vec![WireOption::unit()],
                options: MsriOptions::default(),
                ip,
                workspace: MsriWorkspace::new(),
                trace: Vec::new(),
            }
        }

        fn solver(&mut self) -> Solver<'_> {
            Solver {
                net: &self.net,
                rooted: &self.rooted,
                library: &self.library,
                term_opts: &self.term_opts,
                wire_options: &self.wire_options,
                options: &self.options,
                trace: &mut self.trace,
                cap_bound: cap_bound(&self.net, &self.library, &self.term_opts, &self.wire_options),
                stats: MsriStats::default(),
                arena: &mut self.workspace.arena,
                prebounds: LibPrebounds::new(&self.library),
            }
        }
    }

    #[test]
    fn leaf_solutions_encode_fig6() {
        let mut fix = Fix::new();
        let mut s = fix.solver();
        // t1: bidirectional, AT = 5, q = 7, cap 1, drive 3 Ω.
        let set = s.leaf_solutions(TerminalId(1));
        assert_eq!(set.len(), 1);
        let c = &set[0];
        assert_eq!(c.scalars[COST], 0.0);
        assert_eq!(c.scalars[CAP], 1.0);
        assert_eq!(c.scalars[DSINKS], 7.0);
        // Y(c_E) = AT + r·(own cap + c_E) = 5 + 3·1 + 3·c_E.
        assert_eq!(c.pwls[ARR].eval(0.0), Some(8.0));
        assert_eq!(c.pwls[ARR].eval(2.0), Some(14.0));
        // No internal pairs yet.
        assert_eq!(c.pwls[DIA].eval(1.0), Some(f64::NEG_INFINITY));

        // t2: sink-only — arrival is -∞, d_sinks is its q.
        let set = s.leaf_solutions(TerminalId(2));
        let c = &set[0];
        assert_eq!(c.scalars[DSINKS], 11.0);
        assert_eq!(c.pwls[ARR].eval(0.0), Some(f64::NEG_INFINITY));
    }

    #[test]
    fn augment_applies_fig10_formulas() {
        let mut fix = Fix::new();
        let t1_v = fix.t1_v;
        let mut s = fix.solver();
        let set = s.leaf_solutions(TerminalId(1));
        // t1's parent wire has length 2: R = 2, C = 2.
        let out = s.augment(set, t1_v);
        assert_eq!(out.len(), 1);
        let c = &out[0];
        assert_eq!(c.scalars[CAP], 3.0); // 1 + 2
        // d' = R(C/2 + cap) + q = 2(1 + 1) + 7 = 11.
        assert_eq!(c.scalars[DSINKS], 11.0);
        // Y'(x) = Y(x + 2) + 2(1 + x) = [5 + 3(1 + x + 2)] + 2 + 2x
        //       = 16 + 5x.
        assert_eq!(c.pwls[ARR].eval(0.0), Some(16.0));
        assert_eq!(c.pwls[ARR].eval(1.0), Some(21.0));
    }

    #[test]
    fn join_applies_fig7_formulas() {
        let mut fix = Fix::new();
        let mut s = fix.solver();
        // Hand-crafted siblings at a junction.
        let t_left = s.push_trace(TraceNode::Empty);
        let t_right = s.push_trace(TraceNode::Empty);
        let b = s.cap_bound;
        let left = s.candidate(
            Step::Leaf, t_left, false, 0, 1.0, 2.0, 10.0,
            Pwl::linear(4.0, 1.0, 0.0, b), // Y_l = 4 + x
            Pwl::neg_inf(0.0, b),
        );
        let right = s.candidate(
            Step::Leaf, t_right, false, 0, 2.0, 3.0, 20.0,
            Pwl::linear(30.0, 2.0, 0.0, b), // Y_r = 30 + 2x
            Pwl::neg_inf(0.0, b),
        );
        let joined = s.join(vec![left], vec![right]);
        assert_eq!(joined.len(), 1);
        let c = &joined[0];
        assert_eq!(c.scalars[COST], 3.0);
        assert_eq!(c.scalars[CAP], 5.0);
        assert_eq!(c.scalars[DSINKS], 20.0);
        // Y(x) = max(Y_l(x + 3), Y_r(x + 2)) = max(7 + x, 34 + 2x) = 34 + 2x.
        assert_eq!(c.pwls[ARR].eval(0.0), Some(34.0));
        // D(x) = max(D_l, D_r, Y_l(x+3) + 20, Y_r(x+2) + 10)
        //      = max(27 + x, 44 + 2x) = 44 + 2x.
        assert_eq!(c.pwls[DIA].eval(0.0), Some(44.0));
        assert_eq!(c.pwls[DIA].eval(1.0), Some(46.0));
    }

    #[test]
    fn repeater_solutions_decouple_per_fig8() {
        let mut fix = Fix::new();
        let ip = fix.ip;
        let mut s = fix.solver();
        let t = s.push_trace(TraceNode::Empty);
        let b = s.cap_bound;
        let cand = s.candidate(
            Step::Leaf, t, false, 0, 0.0, 4.0, 9.0,
            Pwl::linear(6.0, 2.0, 0.0, b),  // Y(x) = 6 + 2x
            Pwl::linear(12.0, 1.0, 0.0, b), // D(x) = 12 + x
        );
        let out = s.repeater_solutions(vec![cand], ip);
        // One unbuffered passthrough + one buffered (symmetric repeater,
        // single orientation).
        assert_eq!(out.len(), 2);
        let buffered = out
            .iter()
            .find(|c| c.scalars[COST] > 0.0)
            .expect("buffered candidate present");
        // Repeater: intrinsic 10, out res 4, side cap 0.5, cost 2.
        assert_eq!(buffered.scalars[COST], 2.0);
        assert_eq!(buffered.scalars[CAP], 0.5);
        // d' = 10 + 4·4 + 9 = 35.
        assert_eq!(buffered.scalars[DSINKS], 35.0);
        // Y' = Y(0.5) + 10 + 4x = 7 + 10 + 4x = 17 + 4x.
        assert_eq!(buffered.pwls[ARR].eval(0.0), Some(17.0));
        assert_eq!(buffered.pwls[ARR].eval(1.0), Some(21.0));
        // D' = D(0.5) = 12.5, constant — "completely determined".
        assert_eq!(buffered.pwls[DIA].eval(0.0), Some(12.5));
        assert_eq!(buffered.pwls[DIA].eval(3.0), Some(12.5));
    }

    #[test]
    fn repeater_solutions_skip_pruned_evaluation_points() {
        let mut fix = Fix::new();
        let ip = fix.ip;
        let mut s = fix.solver();
        let t = s.push_trace(TraceNode::Empty);
        let b = s.cap_bound;
        // Candidate valid only for c_E ≥ 1, but the repeater's child-side
        // cap is 0.5: the buffered version must be skipped.
        let cand = s.candidate(
            Step::Leaf, t, false, 0, 0.0, 4.0, 9.0,
            Pwl::linear(6.0, 2.0, 1.0, b),
            Pwl::linear(12.0, 1.0, 1.0, b),
        );
        let out = s.repeater_solutions(vec![cand], ip);
        assert_eq!(out.len(), 1, "only the passthrough survives");
        assert_eq!(out[0].scalars[COST], 0.0);
    }

    /// Bit-level frontier equality: point count, cost/ARD bit patterns,
    /// and the full materialized configuration of every point.
    fn curves_bit_eq(a: &TradeoffCurve, b: &TradeoffCurve) -> bool {
        a.points().len() == b.points().len()
            && a.points().iter().zip(b.points()).all(|(p, q)| {
                p.cost.to_bits() == q.cost.to_bits()
                    && p.ard.to_bits() == q.ard.to_bits()
                    && p.assignment == q.assignment
                    && p.terminal_choices == q.terminal_choices
                    && p.wire_choices == q.wire_choices
            })
    }

    #[test]
    fn incremental_cold_cache_matches_optimize_bit_for_bit() {
        let fix = Fix::new();
        let n = fix.net.topology.vertex_count();
        let bound =
            required_cap_bound(&fix.net, &fix.library, &fix.term_opts, &fix.wire_options);
        let mut ws = MsriWorkspace::new();
        let mut cache = DpCache::new();
        let (inc, stats) = optimize_incremental(
            &fix.net,
            TerminalId(0),
            &fix.library,
            &fix.term_opts,
            &fix.wire_options,
            &fix.options,
            bound,
            &vec![true; n],
            &mut cache,
            &mut ws,
        )
        .unwrap();
        assert_eq!(stats.nodes_visited, n - 1);
        assert_eq!(stats.nodes_recomputed, n - 1);
        assert_eq!(stats.nodes_reused, 0);
        assert_eq!(cache.cached_subtrees(), n - 1);

        let plain = optimize_with_wires_in(
            &fix.net,
            TerminalId(0),
            &fix.library,
            &fix.term_opts,
            &fix.wire_options,
            &fix.options,
            &mut MsriWorkspace::new(),
        )
        .unwrap();
        assert!(curves_bit_eq(&inc, &plain), "cold incremental ≡ optimize");

        // Warm cache, nothing dirty: every node is reused, same answer.
        let (warm, stats) = optimize_incremental(
            &fix.net,
            TerminalId(0),
            &fix.library,
            &fix.term_opts,
            &fix.wire_options,
            &fix.options,
            bound,
            &vec![false; n],
            &mut cache,
            &mut ws,
        )
        .unwrap();
        assert_eq!(stats.nodes_recomputed, 0);
        assert_eq!(stats.nodes_reused, n - 1);
        assert!(curves_bit_eq(&warm, &plain), "warm reuse ≡ optimize");
    }

    #[test]
    fn incremental_dirty_path_recomputes_only_the_path() {
        let fix = Fix::new();
        let n = fix.net.topology.vertex_count();
        let bound =
            required_cap_bound(&fix.net, &fix.library, &fix.term_opts, &fix.wire_options);
        let mut ws = MsriWorkspace::new();
        let mut cache = DpCache::new();
        let run = |net: &Net, dirty: &[bool], cache: &mut DpCache, ws: &mut MsriWorkspace| {
            optimize_incremental(
                net,
                TerminalId(0),
                &fix.library,
                &fix.term_opts,
                &fix.wire_options,
                &fix.options,
                bound,
                dirty,
                cache,
                ws,
            )
            .unwrap()
        };
        run(&fix.net, &vec![true; n], &mut cache, &mut ws);

        // Edit t1's arrival and dirty exactly its root path
        // (t1 → steiner → insertion point; the root itself never caches).
        let mut net2 = fix.net.clone();
        net2.terminals[1].arrival = 42.0;
        let mut dirty = vec![false; n];
        let mut v = Some(fix.t1_v);
        while let Some(u) = v {
            dirty[u.0] = true;
            v = fix.rooted.parent(u);
        }
        let (inc, stats) = run(&net2, &dirty, &mut cache, &mut ws);
        assert_eq!(stats.nodes_recomputed, 3, "t1, steiner, ip only");
        assert_eq!(stats.nodes_reused, n - 1 - 3);

        // Oracle: from-scratch with an empty cache under the same bound.
        let (scratch, _) = run(&net2, &vec![true; n], &mut DpCache::new(), &mut ws);
        assert!(curves_bit_eq(&inc, &scratch), "dirty-path ≡ from-scratch");
    }

    #[test]
    fn required_cap_bound_matches_internal_bound() {
        let fix = Fix::new();
        assert_eq!(
            required_cap_bound(&fix.net, &fix.library, &fix.term_opts, &fix.wire_options),
            cap_bound(&fix.net, &fix.library, &fix.term_opts, &fix.wire_options),
        );
    }

    #[test]
    fn cap_bound_reserves_decoupling_headroom() {
        let fix = Fix::new();
        let b = cap_bound(&fix.net, &fix.library, &fix.term_opts, &fix.wire_options);
        // Whole-net cap: wires 8 + terminals 3 = 11; repeater side 0.5.
        assert!(b >= 11.0 + 0.5);
        // Wire sizing raises the bound with the largest cap scale.
        let wide = vec![WireOption::unit(), WireOption::width("3W", 3.0, 0.0)];
        let b3 = cap_bound(&fix.net, &fix.library, &fix.term_opts, &wide);
        assert!(b3 >= 24.0 + 3.0 + 0.5);
    }

    /// A multi-size, multi-cost library (including an asymmetric pair, so
    /// both orientations are enumerated) where the candidate explosion is
    /// big enough for predictive pruning to have work to do.
    fn rich_library() -> Vec<Repeater> {
        let small = Buffer::new("1X", 12.0, 6.0, 0.4, 1.0);
        let mid = Buffer::new("2X", 10.0, 3.0, 0.7, 2.0);
        let big = Buffer::new("4X", 8.0, 1.5, 1.2, 4.0);
        vec![
            Repeater::from_buffer_pair("r1", &small, &small),
            Repeater::from_buffer_pair("r2", &mid, &mid),
            Repeater::from_buffer_pair("r4", &big, &big),
            Repeater::from_buffer_pair("rasym", &mid, &small),
        ]
    }

    /// A deeper net than [`Fix`]'s: a chain of three insertion points
    /// before the branch, so candidate sets actually grow step over step
    /// and pre-bounds have something to reject.
    fn chain_net() -> Net {
        let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
        let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(0.0, 0.0, 1.0, 3.0));
        let ip1 = b.insertion_point(Point::new(2.0, 0.0));
        let ip2 = b.insertion_point(Point::new(4.0, 0.0));
        let ip3 = b.insertion_point(Point::new(6.0, 0.0));
        let s = b.steiner(Point::new(8.0, 0.0));
        let t1 = b.terminal(Point::new(10.0, 0.0), Terminal::bidirectional(5.0, 7.0, 1.0, 3.0));
        let t2 = b.terminal(Point::new(8.0, 2.0), Terminal::sink_only(11.0, 1.0));
        b.wire(t0, ip1);
        b.wire(ip1, ip2);
        b.wire(ip2, ip3);
        b.wire(ip3, s);
        b.wire(s, t1);
        b.wire(s, t2);
        b.build().unwrap()
    }

    fn run_net(net: &Net, library: &[Repeater], options: &MsriOptions) -> TradeoffCurve {
        let term_opts = TerminalOptions::defaults(net);
        optimize_with_wires_in(
            net,
            TerminalId(0),
            library,
            &term_opts,
            &[WireOption::unit()],
            options,
            &mut MsriWorkspace::new(),
        )
        .unwrap()
    }

    fn run_fix(library: &[Repeater], options: &MsriOptions) -> TradeoffCurve {
        let fix = Fix::new();
        optimize_with_wires_in(
            &fix.net,
            TerminalId(0),
            library,
            &fix.term_opts,
            &fix.wire_options,
            options,
            &mut MsriWorkspace::new(),
        )
        .unwrap()
    }

    #[test]
    fn predictive_pruning_is_bit_identical_under_every_exact_strategy() {
        let net = chain_net();
        let library = rich_library();
        let strategies = [
            PruningStrategy::DivideConquer,
            PruningStrategy::Naive,
            PruningStrategy::Bucketed,
            PruningStrategy::WholeDomainOnly,
        ];
        let mut any_rejected = false;
        for strat in strategies {
            let on = MsriOptions {
                pruning: strat,
                predictive: true,
                ..MsriOptions::default()
            };
            let off = MsriOptions {
                predictive: false,
                ..on
            };
            let c_on = run_net(&net, &library, &on);
            let c_off = run_net(&net, &library, &off);
            assert!(
                curves_bit_eq(&c_on, &c_off),
                "predictive pruning changed the frontier under {strat:?}"
            );
            let s_on = c_on.stats();
            let s_off = c_off.stats();
            assert_eq!(s_off.repeater.prebound_rejected, 0);
            assert_eq!(s_off.repeater.materialized_avoided, 0);
            assert_eq!(s_off.join.materialized_avoided, 0);
            // Exact runs accumulate no relaxation budget either way.
            assert_eq!(s_on.relax_ledger, 0);
            assert_eq!(s_on.relaxed_kills, 0);
            assert_eq!(s_on.budget_factor(strat.eps()), 1.0);
            any_rejected |= s_on.repeater.prebound_rejected > 0
                || s_on.repeater.materialized_avoided > 0
                || s_on.join.materialized_avoided > 0;
            assert!(
                s_on.generated <= s_off.generated,
                "predictive must never materialize more candidates"
            );
        }
        assert!(any_rejected, "pre-bounds never fired on the rich library");
    }

    #[test]
    fn approx_frontier_stays_within_the_reported_budget() {
        let net = chain_net();
        let library = rich_library();
        let exact = run_net(&net, &library, &MsriOptions::default());
        for eps in [0.01, 0.05, 0.25] {
            let opts = MsriOptions {
                pruning: PruningStrategy::Approximate { eps },
                ..MsriOptions::default()
            };
            let approx = run_net(&net, &library, &opts);
            let factor = approx.stats().budget_factor(eps);
            assert!(factor >= 1.0);
            // Coverage: every exact frontier point is matched by an approx
            // point within the machine-reported (1+eps)^L budget on both
            // axes.
            for p in exact.points() {
                let covered = approx.points().iter().any(|q| {
                    q.cost <= p.cost * factor + 1e-9 && q.ard <= p.ard * factor + 1e-9
                });
                assert!(
                    covered,
                    "exact point (cost {}, ard {}) not covered within factor {factor} at eps {eps}",
                    p.cost, p.ard
                );
            }
        }
    }

    #[test]
    fn exact_budget_factor_is_exactly_one() {
        let library = rich_library();
        let curve = run_fix(&library, &MsriOptions::default());
        let stats = curve.stats();
        assert_eq!(stats.relax_ledger, 0);
        assert_eq!(stats.budget_factor(0.0), 1.0);
    }

    #[test]
    fn prebound_slack_drill_knob_is_observable() {
        // The injected-bug drill: a loosened pre-bound rejects candidates
        // that survive exact MFS, which must be observable as a smaller
        // materialized count (and, here, a worse frontier).
        let net = chain_net();
        let library = rich_library();
        let sound = run_net(&net, &library, &MsriOptions::default());
        let opts = MsriOptions {
            prebound_slack: 1e12,
            ..MsriOptions::default()
        };
        let broken = run_net(&net, &library, &opts);
        assert!(
            broken.stats().generated < sound.stats().generated,
            "a huge slack must reject candidates pre-materialization"
        );
        assert!(
            !curves_bit_eq(&sound, &broken),
            "the drill knob must corrupt the frontier so verify can catch it"
        );
    }

    #[test]
    fn lib_prebounds_cover_the_generation_envelope() {
        let library = rich_library();
        let pb = LibPrebounds::new(&library);
        // 3 symmetric repeaters contribute 1 combo each, the asymmetric
        // one contributes both orientations.
        assert_eq!(pb.combos(), 5);
        assert_eq!(pb.drive_order.len(), 5);
        assert_eq!(pb.uniform_inverting, Some(false));
        // Envelope minima match the cheapest/strongest entries.
        assert_eq!(pb.min_cost, 2.0); // r1 = two 1X buffers
        assert_eq!(pb.min_cap_parent, 0.4);
        assert_eq!(pb.min_down_res, 1.5);
        assert_eq!(pb.min_up_res, 1.5);
        // Strongest drive (lowest upstream out_res) sorts first.
        let (ri, o) = pb.drive_order[0];
        assert_eq!(library[ri].upstream_drive(o).out_res, 1.5);
        // Mixed inverting flags disable the uniform fan-out skip.
        let mut mixed = rich_library();
        mixed.push(
            Repeater::from_buffer_pair("inv", &Buffer::new("i", 9.0, 2.0, 0.5, 1.5), &Buffer::new("i", 9.0, 2.0, 0.5, 1.5))
                .inverting(),
        );
        assert_eq!(LibPrebounds::new(&mixed).uniform_inverting, None);
    }

    #[test]
    fn inverting_repeaters_stay_bit_identical_under_predictive() {
        let mut library = rich_library();
        library.push(
            Repeater::from_buffer_pair(
                "inv",
                &Buffer::new("i", 9.0, 2.0, 0.5, 1.5),
                &Buffer::new("i", 9.0, 2.0, 0.5, 1.5),
            )
            .inverting(),
        );
        let on = MsriOptions {
            allow_inverting: true,
            predictive: true,
            ..MsriOptions::default()
        };
        let off = MsriOptions {
            predictive: false,
            ..on
        };
        let net = chain_net();
        let c_on = run_net(&net, &library, &on);
        let c_off = run_net(&net, &library, &off);
        assert!(curves_bit_eq(&c_on, &c_off), "inverting + predictive diverged");
    }
}
