//! Optimal multisource repeater insertion (MSRI) — the paper's §IV
//! dynamic program.
//!
//! The tree is processed bottom-up. A subsolution for the subtree rooted
//! at `v` (measured at `v`'s parent-side pin) is characterized by three
//! scalars and two piece-wise linear functions of the external
//! capacitance `c_E` (paper §IV-B):
//!
//! * `cost` — repeaters and drivers spent inside the subtree;
//! * `cap` — capacitance the subtree presents upward;
//! * `d_sinks` — worst augmented delay from the pin to internal sinks;
//! * `Y(c_E)` — worst augmented arrival at the pin from internal sources;
//! * `D(c_E)` — worst augmented diameter among internal pairs.
//!
//! The DP steps are exactly the paper's subroutines: `LeafSolutions`
//! (Fig. 6), `Augment` over a wire (Fig. 10), `JoinSets` at a branch
//! (Fig. 7), `RepeaterSolutions` at an insertion point (Fig. 8) and
//! `RootSolutions` (Fig. 9), with minimal-functional-subset pruning
//! between steps (§IV-D). The result is the full cost-vs-ARD trade-off
//! curve, from which "min cost subject to `ARD ≤ spec`" (Problem 2.1) is
//! read off directly.

use msrnet_pwl::{mfs_divide_conquer, mfs_naive, FuncPoint, Pwl, SegmentArena};
use msrnet_rctree::{
    Assignment, Net, Orientation, Repeater, Rooted, TerminalId, VertexId, VertexKind,
};

use crate::options::{MsriError, MsriOptions, PruningStrategy, TerminalOptions, WireOption};
use crate::tradeoff::{TradeoffCurve, TradeoffPoint};

const COST: usize = 0;
const CAP: usize = 1;
const DSINKS: usize = 2;
const ARR: usize = 0;
const DIA: usize = 1;

/// Per-candidate bookkeeping carried through pruning.
#[derive(Clone, Copy, Debug)]
struct Meta {
    trace: u32,
    /// Signal parity (number of inverting repeaters between any internal
    /// terminal and the pin, mod 2). Only meaningful when inverting
    /// repeaters are enabled; always `false` otherwise.
    parity: bool,
}

type Cand = FuncPoint<Meta>;

/// Back-pointers for reconstructing the repeater assignment of a
/// surviving candidate.
#[derive(Clone, Copy, Debug)]
enum TraceNode {
    Leaf {
        terminal: TerminalId,
        option: usize,
    },
    Join {
        left: u32,
        right: u32,
    },
    Repeater {
        child: u32,
        vertex: VertexId,
        repeater: usize,
        orientation: Orientation,
    },
    /// A wire-width choice on the parent edge of `vertex` (only recorded
    /// when wire sizing is enabled).
    Wire {
        child: u32,
        edge: msrnet_rctree::EdgeId,
        option: usize,
    },
    /// An empty subtree (a leaf that is not a terminal).
    Empty,
}

/// Counters describing one optimizer run — used by the ablation benches
/// to compare pruning strategies.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MsriStats {
    /// Candidates generated across all DP steps.
    pub generated: u64,
    /// Candidates surviving all prunes, summed over steps.
    pub surviving: u64,
    /// Largest candidate set observed after any prune.
    pub max_set_size: usize,
    /// Largest number of PWL segments observed on a single candidate.
    pub max_segments: usize,
    /// Number of prune invocations.
    pub prunes: u64,
}

/// Solves Problem 2.1 for `net`: returns the Pareto trade-off between
/// total cost (drivers + repeaters) and ARD over all assignments and
/// orientations of `library` repeaters to the insertion points, and all
/// per-terminal driver options.
///
/// Requirements: the net must be valid ([`Net::check`]), every terminal
/// must be a leaf ([`Net::normalized`]), and `root` names the terminal to
/// root the recursion at (any terminal works; the result is
/// root-invariant).
///
/// # Errors
///
/// See [`MsriError`].
///
/// # Examples
///
/// ```
/// use msrnet_geom::Point;
/// use msrnet_core::{optimize, MsriOptions, TerminalOptions};
/// use msrnet_rctree::{Buffer, NetBuilder, Repeater, Technology, Terminal, TerminalId};
///
/// let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
/// let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
/// let ip = b.insertion_point(Point::new(4000.0, 0.0));
/// let t1 = b.terminal(Point::new(8000.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
/// b.wire(t0, ip);
/// b.wire(ip, t1);
/// let net = b.build()?;
///
/// let buf = Buffer::new("1X", 50.0, 180.0, 0.05, 1.0);
/// let lib = [Repeater::from_buffer_pair("rep", &buf, &buf)];
/// let curve = optimize(
///     &net,
///     TerminalId(0),
///     &lib,
///     &TerminalOptions::defaults(&net),
///     &MsriOptions::default(),
/// )?;
/// // Spending a repeater must help this 8 mm bus.
/// assert!(curve.best_ard().ard < curve.min_cost().ard);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn optimize(
    net: &Net,
    root: TerminalId,
    library: &[Repeater],
    term_opts: &TerminalOptions,
    options: &MsriOptions,
) -> Result<TradeoffCurve, MsriError> {
    optimize_with_wires(net, root, library, term_opts, &[WireOption::unit()], options)
}

/// Reusable scratch state for [`optimize_in`]: a segment arena whose
/// buffers are recycled across the DP's PWL operations *and across
/// nets*.
///
/// The hot DP loop (`Augment`, `JoinSets`) produces a handful of
/// short-lived PWL temporaries per candidate pair; with a workspace
/// those run through [`SegmentArena`]'s fused, allocation-free
/// operations instead of the global allocator. Results are
/// **bit-identical** to [`optimize`] — the fused operations replicate
/// the composed primitives' floating-point operation order exactly.
///
/// A workspace is single-threaded by design; the batch engine creates
/// one per worker thread.
///
/// # Examples
///
/// ```
/// use msrnet_core::MsriWorkspace;
///
/// let mut ws = MsriWorkspace::new();
/// // ... run optimize_in(&net, ..., &mut ws) for many nets ...
/// assert_eq!(ws.arena().reused(), 0); // nothing recycled yet
/// ```
#[derive(Debug, Default)]
pub struct MsriWorkspace {
    arena: SegmentArena,
}

impl MsriWorkspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        MsriWorkspace::default()
    }

    /// The underlying arena (for allocation-reuse diagnostics).
    pub fn arena(&self) -> &SegmentArena {
        &self.arena
    }
}

/// Like [`optimize`], but reusing `workspace` scratch memory — the entry
/// point for high-throughput multi-net runs. Results are bit-identical
/// to [`optimize`].
///
/// # Errors
///
/// See [`MsriError`].
pub fn optimize_in(
    net: &Net,
    root: TerminalId,
    library: &[Repeater],
    term_opts: &TerminalOptions,
    options: &MsriOptions,
    workspace: &mut MsriWorkspace,
) -> Result<TradeoffCurve, MsriError> {
    optimize_with_wires_in(
        net,
        root,
        library,
        term_opts,
        &[WireOption::unit()],
        options,
        workspace,
    )
}

/// Like [`optimize`], additionally choosing a wire width for **every**
/// edge from `wire_options` (simultaneous repeater insertion and
/// discrete wire sizing — the paper's §VII extension).
///
/// With a single unit option this is exactly [`optimize`]. Wire costs are
/// `cost_per_um · length`, in the same currency as repeater costs; the
/// chosen widths are reported per edge in
/// [`crate::TradeoffPoint::wire_choices`].
///
/// # Errors
///
/// See [`MsriError`]; additionally `wire_options` must be non-empty.
pub fn optimize_with_wires(
    net: &Net,
    root: TerminalId,
    library: &[Repeater],
    term_opts: &TerminalOptions,
    wire_options: &[WireOption],
    options: &MsriOptions,
) -> Result<TradeoffCurve, MsriError> {
    let mut workspace = MsriWorkspace::new();
    optimize_with_wires_in(
        net,
        root,
        library,
        term_opts,
        wire_options,
        options,
        &mut workspace,
    )
}

/// Like [`optimize_with_wires`], reusing `workspace` scratch memory.
/// Results are bit-identical to [`optimize_with_wires`].
///
/// # Errors
///
/// See [`MsriError`]; additionally `wire_options` must be non-empty.
pub fn optimize_with_wires_in(
    net: &Net,
    root: TerminalId,
    library: &[Repeater],
    term_opts: &TerminalOptions,
    wire_options: &[WireOption],
    options: &MsriOptions,
    workspace: &mut MsriWorkspace,
) -> Result<TradeoffCurve, MsriError> {
    assert!(!wire_options.is_empty(), "at least one wire option required");
    net.check()?;
    if !options.allow_inverting && library.iter().any(|r| r.inverting) {
        return Err(MsriError::InvertingDisallowed);
    }
    for t in net.terminal_ids() {
        if term_opts.for_terminal(t).is_empty() {
            return Err(MsriError::NoOptions(t));
        }
        let v = net.topology.terminal_vertex(t);
        if net.topology.degree(v) > 1 {
            return Err(if t == root {
                MsriError::RootNotLeaf(t)
            } else {
                MsriError::TerminalNotLeaf(t)
            });
        }
    }
    let rooted = net.rooted_at_terminal(root);
    let mut solver = Solver {
        net,
        rooted: &rooted,
        library,
        term_opts,
        wire_options,
        options,
        trace: Vec::new(),
        cap_bound: cap_bound(net, library, term_opts, wire_options),
        stats: MsriStats::default(),
        arena: &mut workspace.arena,
    };
    solver.run(root)
}

/// Upper bound for the PWL domain clamp `[0, B]`.
///
/// Subtlety: every `Augment`/`JoinSets` shifts a candidate's domain down
/// by the capacitance accumulated beneath it (at most the whole net), and
/// `RepeaterSolutions` later *evaluates* the candidate at the repeater's
/// child-side input capacitance — which can exceed the physically
/// remaining outside capacitance, because the repeater's own input cap
/// **replaces** the outside world. The bound therefore reserves headroom
/// for the largest decoupling cap *in addition to* the whole net:
/// `B = C_wire + Σ max terminal caps + max repeater-side cap`, so after
/// any shift the domain still covers every evaluation point.
fn cap_bound(
    net: &Net,
    library: &[Repeater],
    term_opts: &TerminalOptions,
    wire_options: &[WireOption],
) -> f64 {
    let lib_max = library
        .iter()
        .map(|r| r.cap_a.max(r.cap_b))
        .fold(0.0, f64::max);
    let wire_scale_max = wire_options
        .iter()
        .map(|w| w.cap_scale)
        .fold(1.0, f64::max);
    let terms_max_sum: f64 = (0..term_opts.len())
        .map(|i| {
            term_opts
                .for_terminal(TerminalId(i))
                .iter()
                .map(|o| o.cap)
                .fold(0.0, f64::max)
        })
        .sum();
    (net.total_wire_cap() * wire_scale_max + terms_max_sum + lib_max) * (1.0 + 1e-9) + 1e-9
}

struct Solver<'a> {
    net: &'a Net,
    rooted: &'a Rooted,
    library: &'a [Repeater],
    term_opts: &'a TerminalOptions,
    wire_options: &'a [WireOption],
    options: &'a MsriOptions,
    trace: Vec<TraceNode>,
    cap_bound: f64,
    stats: MsriStats,
    arena: &'a mut SegmentArena,
}

impl Solver<'_> {
    fn run(&mut self, root: TerminalId) -> Result<TradeoffCurve, MsriError> {
        let n = self.net.topology.vertex_count();
        let root_v = self.rooted.root();
        let mut sets: Vec<Option<Vec<Cand>>> = (0..n).map(|_| None).collect();

        for v in self.rooted.postorder() {
            if v == root_v {
                break; // handled by RootSolutions below
            }
            let set = self.solutions_at(v, &mut sets);
            sets[v.0] = Some(set);
        }

        // The root is a leaf terminal with exactly one child subtree — or
        // none at all when the net is a single terminal, which has no
        // distinct source/sink pair and therefore no defined ARD.
        let children = self.rooted.children(root_v);
        if children.is_empty() {
            return Err(MsriError::NoFeasiblePair);
        }
        debug_assert_eq!(children.len(), 1, "leaf root has one child");
        let child = children[0];
        let below = sets[child.0].take().expect("child processed");
        let at_root = self.augment(below, child);
        let evals = self.root_solutions(at_root, root);
        self.finish(evals, root)
    }

    /// Candidate set for the subtree at `v`, measured at `v`'s
    /// parent-side pin.
    fn solutions_at(&mut self, v: VertexId, sets: &mut [Option<Vec<Cand>>]) -> Vec<Cand> {
        let children: Vec<VertexId> = self.rooted.children(v).to_vec();
        match self.net.topology.kind(v) {
            VertexKind::Terminal(t) => {
                debug_assert!(children.is_empty(), "terminals are leaves (validated)");
                self.leaf_solutions(t)
            }
            VertexKind::Steiner | VertexKind::InsertionPoint if children.is_empty() => {
                // Degenerate leaf Steiner point: empty subtree.
                let trace = self.push_trace(TraceNode::Empty);
                let arrival = self.arena.neg_inf(0.0, self.cap_bound);
                let diameter = self.arena.neg_inf(0.0, self.cap_bound);
                vec![self.candidate(trace, false, 0.0, 0.0, f64::NEG_INFINITY, arrival, diameter)]
            }
            VertexKind::Steiner => {
                let mut acc: Option<Vec<Cand>> = None;
                for &u in &children {
                    let su = sets[u.0].take().expect("child processed");
                    let au = self.augment(su, u);
                    acc = Some(match acc {
                        None => au,
                        Some(prev) => {
                            let joined = self.join(prev, au);
                            self.prune(joined)
                        }
                    });
                }
                acc.expect("at least one child")
            }
            VertexKind::InsertionPoint => {
                debug_assert_eq!(children.len(), 1, "insertion points are degree 2");
                let su = sets[children[0].0].take().expect("child processed");
                let au = self.augment(su, children[0]);
                let buffered = self.repeater_solutions(au, v);
                self.prune(buffered)
            }
        }
    }

    fn push_trace(&mut self, node: TraceNode) -> u32 {
        let id = self.trace.len() as u32;
        self.trace.push(node);
        id
    }

    #[allow(clippy::too_many_arguments)]
    fn candidate(
        &mut self,
        trace: u32,
        parity: bool,
        cost: f64,
        cap: f64,
        d_sinks: f64,
        arrival: Pwl,
        diameter: Pwl,
    ) -> Cand {
        self.stats.generated += 1;
        let segs = arrival.segments().len() + diameter.segments().len();
        self.stats.max_segments = self.stats.max_segments.max(segs);
        FuncPoint::new(
            Meta { trace, parity },
            vec![cost, cap, d_sinks],
            vec![arrival, diameter],
        )
    }

    /// Paper Fig. 6: one candidate per driver option of the leaf
    /// terminal.
    fn leaf_solutions(&mut self, t: TerminalId) -> Vec<Cand> {
        let term = self.net.terminal(t).clone();
        let b = self.cap_bound;
        let menu: Vec<_> = self.term_opts.for_terminal(t).to_vec();
        let mut out = Vec::with_capacity(menu.len());
        for (oi, o) in menu.iter().enumerate() {
            let trace = self.push_trace(TraceNode::Leaf {
                terminal: t,
                option: oi,
            });
            let arrival = if term.is_source() {
                // AT + driver intrinsic/loading + r·(own cap + c_E).
                self.arena.linear(
                    term.arrival + o.arrival_extra + o.drive_res * o.cap,
                    o.drive_res,
                    0.0,
                    b,
                )
            } else {
                self.arena.neg_inf(0.0, b)
            };
            let d_sinks = if term.is_sink() {
                term.downstream + o.downstream_extra
            } else {
                f64::NEG_INFINITY
            };
            let diameter = self.arena.neg_inf(0.0, b);
            out.push(self.candidate(trace, false, o.cost, o.cap, d_sinks, arrival, diameter));
        }
        self.prune(out)
    }

    /// Paper Fig. 10: extend candidates at `v` through `v`'s parent wire,
    /// enumerating wire-width options when wire sizing is enabled.
    fn augment(&mut self, set: Vec<Cand>, v: VertexId) -> Vec<Cand> {
        let e = self.rooted.parent_edge(v).expect("non-root vertex");
        let len = self.net.topology.length(e);
        let base_r = self.net.edge_res(e);
        let base_c = self.net.edge_cap(e);
        let sizing = self.wire_options.len() > 1 && len > 0.0;
        if !sizing && base_r == 0.0 && base_c == 0.0 {
            return set;
        }
        let b = self.cap_bound;
        let n_opts = if sizing { self.wire_options.len() } else { 1 };
        let mut out = Vec::with_capacity(set.len() * n_opts);
        for cand in set {
            for oi in 0..n_opts {
                let w = &self.wire_options[oi];
                let r = base_r * w.res_scale;
                let c = base_c * w.cap_scale;
                let cost = cand.scalars[COST] + if sizing { w.cost_per_um * len } else { 0.0 };
                let cap = cand.scalars[CAP] + c;
                let d_sinks = r * (0.5 * c + cand.scalars[CAP]) + cand.scalars[DSINKS];
                let arrival = self
                    .arena
                    .shift_linear_clamp(&cand.pwls[ARR], c, r * 0.5 * c, r, 0.0, b);
                let diameter = self.arena.shift_clamp(&cand.pwls[DIA], c, 0.0, b);
                let trace = if sizing {
                    self.push_trace(TraceNode::Wire {
                        child: cand.payload.trace,
                        edge: e,
                        option: oi,
                    })
                } else {
                    cand.payload.trace
                };
                out.push(self.candidate(
                    trace,
                    cand.payload.parity,
                    cost,
                    cap,
                    d_sinks,
                    arrival,
                    diameter,
                ));
            }
            // The input candidate is consumed: its PWL buffers feed the
            // next operations instead of the allocator.
            for p in cand.pwls {
                self.arena.recycle(p);
            }
        }
        if sizing {
            self.prune(out)
        } else {
            out
        }
    }

    /// Paper Fig. 7: the product of two sibling candidate sets at a
    /// branch vertex.
    ///
    /// Large products are pruned incrementally in blocks rather than
    /// materialized whole: the minimal functional subset is confluent
    /// (dominated candidates may be discarded at any time without
    /// affecting the final subset), so interleaving pruning with
    /// generation preserves exactness while bounding memory — combined
    /// driver-sizing × wire-sizing × repeater runs would otherwise
    /// materialize products with billions of entries.
    fn join(&mut self, left: Vec<Cand>, right: Vec<Cand>) -> Vec<Cand> {
        const BLOCK_LIMIT: usize = 8192;
        let b = self.cap_bound;
        let mut out = Vec::with_capacity((left.len() * right.len()).min(2 * BLOCK_LIMIT));
        let inverting = self.options.allow_inverting;
        for l in &left {
            if out.len() >= 2 * BLOCK_LIMIT {
                out = self.prune(out);
            }
            for r in &right {
                // Inverting-repeater extension: every internal terminal
                // must agree on polarity at the junction.
                let mut parity = false;
                if inverting {
                    let l_has_terms = has_terminals(l);
                    let r_has_terms = has_terminals(r);
                    if l.payload.parity != r.payload.parity && l_has_terms && r_has_terms {
                        continue;
                    }
                    parity = if l_has_terms {
                        l.payload.parity
                    } else {
                        r.payload.parity
                    };
                }
                let cost = l.scalars[COST] + r.scalars[COST];
                let cap = l.scalars[CAP] + r.scalars[CAP];
                let d_sinks = l.scalars[DSINKS].max(r.scalars[DSINKS]);
                let yl = self.arena.shift_clamp(&l.pwls[ARR], r.scalars[CAP], 0.0, b);
                let yr = self.arena.shift_clamp(&r.pwls[ARR], l.scalars[CAP], 0.0, b);
                let dl = self.arena.shift_clamp(&l.pwls[DIA], r.scalars[CAP], 0.0, b);
                let dr = self.arena.shift_clamp(&r.pwls[DIA], l.scalars[CAP], 0.0, b);
                let arrival = self.arena.max(&yl, &yr);
                // Internal pairs: within either side, or crossing the
                // junction in both directions.
                let d0 = self.arena.max(&dl, &dr);
                let cross_l = self.arena.add_scalar(&yl, r.scalars[DSINKS]);
                let d1 = self.arena.max(&d0, &cross_l);
                let cross_r = self.arena.add_scalar(&yr, l.scalars[DSINKS]);
                let diameter = self.arena.max(&d1, &cross_r);
                for t in [yl, yr, dl, dr, d0, cross_l, d1, cross_r] {
                    self.arena.recycle(t);
                }
                let trace = self.push_trace(TraceNode::Join {
                    left: l.payload.trace,
                    right: r.payload.trace,
                });
                out.push(self.candidate(trace, parity, cost, cap, d_sinks, arrival, diameter));
            }
        }
        // Both input sets are fully consumed at this point.
        for c in left.into_iter().chain(right) {
            for p in c.pwls {
                self.arena.recycle(p);
            }
        }
        out
    }

    /// Paper Fig. 8: at an insertion point, keep the unbuffered candidate
    /// and add one candidate per (repeater, orientation).
    ///
    /// A repeater decouples: the subtree below now sees exactly the
    /// repeater's child-side input capacitance, so `Y` and `D` are
    /// *evaluated* there — `D` becomes a constant and `Y` a fresh line
    /// whose slope is the upstream output resistance.
    fn repeater_solutions(&mut self, set: Vec<Cand>, v: VertexId) -> Vec<Cand> {
        let b = self.cap_bound;
        let mut out: Vec<Cand> = Vec::with_capacity(set.len() * (1 + 2 * self.library.len()));
        for cand in &set {
            for (ri, rep) in self.library.iter().enumerate() {
                let orientations: &[Orientation] = if rep.is_symmetric() {
                    &[Orientation::AFacesParent]
                } else {
                    &Orientation::BOTH
                };
                for &o in orientations {
                    let cc = rep.cap_facing_child(o);
                    let cp = rep.cap_facing_parent(o);
                    // The decoupled subtree sees c_E = cc exactly; a
                    // candidate pruned at that point is covered by
                    // another candidate, so skipping is safe.
                    let (Some(y_at), Some(d_at)) =
                        (cand.pwls[ARR].eval(cc), cand.pwls[DIA].eval(cc))
                    else {
                        continue;
                    };
                    let down = rep.downstream_drive(o);
                    let up = rep.upstream_drive(o);
                    let cost = cand.scalars[COST] + rep.cost;
                    let d_sinks = if cand.scalars[DSINKS] > f64::NEG_INFINITY {
                        down.intrinsic + down.out_res * cand.scalars[CAP] + cand.scalars[DSINKS]
                    } else {
                        f64::NEG_INFINITY
                    };
                    let arrival = if y_at > f64::NEG_INFINITY {
                        self.arena.linear(y_at + up.intrinsic, up.out_res, 0.0, b)
                    } else {
                        self.arena.neg_inf(0.0, b)
                    };
                    let diameter = self.arena.constant(d_at, 0.0, b);
                    let parity = cand.payload.parity ^ rep.inverting;
                    let trace = self.push_trace(TraceNode::Repeater {
                        child: cand.payload.trace,
                        vertex: v,
                        repeater: ri,
                        orientation: o,
                    });
                    out.push(self.candidate(trace, parity, cost, cp, d_sinks, arrival, diameter));
                }
            }
        }
        out.extend(set);
        out
    }

    /// Paper Fig. 9: close the recursion at the root terminal, producing
    /// (cost, ARD) evaluations.
    fn root_solutions(&mut self, set: Vec<Cand>, root: TerminalId) -> Vec<RootEval> {
        let term = self.net.terminal(root).clone();
        let menu: Vec<_> = self.term_opts.for_terminal(root).to_vec();
        let mut out = Vec::with_capacity(set.len() * menu.len());
        for cand in &set {
            // Inverting-repeater extension: end-to-end polarity must be
            // preserved between the root and internal terminals.
            if cand.payload.parity && has_terminals(cand) {
                continue;
            }
            for (oi, o) in menu.iter().enumerate() {
                let (Some(d_int), Some(y)) = (
                    cand.pwls[DIA].eval(o.cap),
                    cand.pwls[ARR].eval(o.cap),
                ) else {
                    continue;
                };
                let mut ard = d_int;
                if term.is_sink() && y > f64::NEG_INFINITY {
                    ard = ard.max(y + term.downstream + o.downstream_extra);
                }
                if term.is_source() && cand.scalars[DSINKS] > f64::NEG_INFINITY {
                    ard = ard.max(
                        term.arrival
                            + o.arrival_extra
                            + o.drive_res * (o.cap + cand.scalars[CAP])
                            + cand.scalars[DSINKS],
                    );
                }
                out.push(RootEval {
                    cost: cand.scalars[COST] + o.cost,
                    ard,
                    trace: cand.payload.trace,
                    root_option: oi,
                });
            }
        }
        out
    }

    fn finish(&mut self, mut evals: Vec<RootEval>, root: TerminalId) -> Result<TradeoffCurve, MsriError> {
        evals.retain(|e| e.ard > f64::NEG_INFINITY);
        if evals.is_empty() {
            return Err(MsriError::NoFeasiblePair);
        }
        // Pareto sweep: ascending cost, strictly improving ARD.
        evals.sort_by(|a, b| {
            a.cost
                .total_cmp(&b.cost)
                .then_with(|| a.ard.total_cmp(&b.ard))
        });
        let mut frontier: Vec<RootEval> = Vec::new();
        for e in evals {
            match frontier.last() {
                Some(last) if e.ard >= last.ard - 1e-12 => {}
                _ => frontier.push(e),
            }
        }
        let points = frontier
            .into_iter()
            .map(|e| {
                let (assignment, terminal_choices, wire_choices) =
                    self.materialize(e.trace, e.root_option, root);
                TradeoffPoint {
                    cost: e.cost,
                    ard: e.ard,
                    assignment,
                    terminal_choices,
                    wire_choices,
                }
            })
            .collect();
        Ok(TradeoffCurve::new(points, self.stats))
    }

    /// Reconstructs the concrete assignment and driver choices of a
    /// surviving candidate by walking its trace.
    fn materialize(
        &self,
        trace: u32,
        root_option: usize,
        root: TerminalId,
    ) -> (Assignment, Vec<usize>, Vec<usize>) {
        let mut assignment = Assignment::empty(self.net.topology.vertex_count());
        let mut choices = vec![0usize; self.net.terminals.len()];
        let mut wires = vec![0usize; self.net.topology.edge_count()];
        choices[root.0] = root_option;
        let mut stack = vec![trace];
        while let Some(id) = stack.pop() {
            match self.trace[id as usize] {
                TraceNode::Leaf { terminal, option } => choices[terminal.0] = option,
                TraceNode::Join { left, right } => {
                    stack.push(left);
                    stack.push(right);
                }
                TraceNode::Repeater {
                    child,
                    vertex,
                    repeater,
                    orientation,
                } => {
                    assignment.place(vertex, repeater, orientation);
                    stack.push(child);
                }
                TraceNode::Wire { child, edge, option } => {
                    wires[edge.0] = option;
                    stack.push(child);
                }
                TraceNode::Empty => {}
            }
        }
        (assignment, choices, wires)
    }

    /// Minimal-functional-subset pruning between DP steps.
    fn prune(&mut self, mut set: Vec<Cand>) -> Vec<Cand> {
        self.stats.prunes += 1;
        // Cheap locality: similar costs/caps cluster, which lets the
        // divide-and-conquer kill candidates deep in the recursion
        // (paper §V organizational note).
        set.sort_by(|a, b| {
            a.scalars[COST]
                .total_cmp(&b.scalars[COST])
                .then_with(|| a.scalars[CAP].total_cmp(&b.scalars[CAP]))
        });
        // Inverting-repeater extension: candidates of different parity
        // are incomparable; prune within each class.
        let kept = if self.options.allow_inverting {
            let (even, odd): (Vec<Cand>, Vec<Cand>) =
                set.into_iter().partition(|c| !c.payload.parity);
            let mut kept = self.prune_class(even);
            kept.extend(self.prune_class(odd));
            kept
        } else {
            self.prune_class(set)
        };
        self.stats.surviving += kept.len() as u64;
        self.stats.max_set_size = self.stats.max_set_size.max(kept.len());
        kept
    }

    fn prune_class(&mut self, set: Vec<Cand>) -> Vec<Cand> {
        match self.options.pruning {
            PruningStrategy::DivideConquer => {
                mfs_divide_conquer(set, self.options.mfs_leaf_threshold)
            }
            PruningStrategy::Naive => mfs_naive(set),
            PruningStrategy::WholeDomainOnly => whole_domain_prune(set),
        }
    }
}

/// Whether a candidate's subtree contains at least one terminal (its
/// arrival or sink-delay characteristic is not identically `-∞`).
fn has_terminals(c: &Cand) -> bool {
    c.scalars[DSINKS] > f64::NEG_INFINITY
        || c.pwls[ARR].max_value().is_some_and(|v| v > f64::NEG_INFINITY)
}

/// Ablation pruning: discard a candidate only when a single other
/// candidate dominates it over its entire remaining domain.
fn whole_domain_prune(set: Vec<Cand>) -> Vec<Cand> {
    let n = set.len();
    let mut dead = vec![false; n];
    for i in 0..n {
        for j in 0..n {
            if i == j || dead[i] || dead[j] {
                continue;
            }
            // Ties kill the later index only: (i, j) is visited with
            // i < j before (j, i), so identical candidates keep one
            // representative.
            let region = set[i].dominance_region(&set[j]);
            if region.measure() >= set[j].domain().measure() - 1e-12 {
                dead[j] = true;
            }
        }
    }
    set.into_iter()
        .zip(dead)
        .filter_map(|(c, d)| (!d).then_some(c))
        .collect()
}

#[derive(Clone, Copy, Debug)]
struct RootEval {
    cost: f64,
    ard: f64,
    trace: u32,
    root_option: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrnet_geom::Point;
    use msrnet_rctree::{Buffer, NetBuilder, Technology, Terminal};

    /// A fixture exposing the private DP steps on a small concrete net:
    /// t0 —(len 2)— ip —(len 2)— s —(len 2)— t1, plus s —(len 2)— t2,
    /// with unit wire parasitics so every wire has R = 2, C = 2.
    struct Fix {
        net: Net,
        rooted: Rooted,
        library: Vec<Repeater>,
        term_opts: TerminalOptions,
        wire_options: Vec<WireOption>,
        options: MsriOptions,
        ip: VertexId,
        t1_v: VertexId,
        workspace: MsriWorkspace,
    }

    impl Fix {
        fn new() -> Self {
            let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
            let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(0.0, 0.0, 1.0, 3.0));
            let ip = b.insertion_point(Point::new(2.0, 0.0));
            let s = b.steiner(Point::new(4.0, 0.0));
            let t1 = b.terminal(Point::new(6.0, 0.0), Terminal::bidirectional(5.0, 7.0, 1.0, 3.0));
            let t2 = b.terminal(Point::new(4.0, 2.0), Terminal::sink_only(11.0, 1.0));
            b.wire(t0, ip);
            b.wire(ip, s);
            b.wire(s, t1);
            b.wire(s, t2);
            let net = b.build().unwrap();
            let rooted = net.rooted_at_terminal(TerminalId(0));
            let buf = Buffer::new("1X", 10.0, 4.0, 0.5, 1.0);
            let library = vec![Repeater::from_buffer_pair("rep", &buf, &buf)];
            let term_opts = TerminalOptions::defaults(&net);
            Fix {
                t1_v: net.topology.terminal_vertex(TerminalId(1)),
                net,
                rooted,
                library,
                term_opts,
                wire_options: vec![WireOption::unit()],
                options: MsriOptions::default(),
                ip,
                workspace: MsriWorkspace::new(),
            }
        }

        fn solver(&mut self) -> Solver<'_> {
            Solver {
                net: &self.net,
                rooted: &self.rooted,
                library: &self.library,
                term_opts: &self.term_opts,
                wire_options: &self.wire_options,
                options: &self.options,
                trace: Vec::new(),
                cap_bound: cap_bound(&self.net, &self.library, &self.term_opts, &self.wire_options),
                stats: MsriStats::default(),
                arena: &mut self.workspace.arena,
            }
        }
    }

    #[test]
    fn leaf_solutions_encode_fig6() {
        let mut fix = Fix::new();
        let mut s = fix.solver();
        // t1: bidirectional, AT = 5, q = 7, cap 1, drive 3 Ω.
        let set = s.leaf_solutions(TerminalId(1));
        assert_eq!(set.len(), 1);
        let c = &set[0];
        assert_eq!(c.scalars[COST], 0.0);
        assert_eq!(c.scalars[CAP], 1.0);
        assert_eq!(c.scalars[DSINKS], 7.0);
        // Y(c_E) = AT + r·(own cap + c_E) = 5 + 3·1 + 3·c_E.
        assert_eq!(c.pwls[ARR].eval(0.0), Some(8.0));
        assert_eq!(c.pwls[ARR].eval(2.0), Some(14.0));
        // No internal pairs yet.
        assert_eq!(c.pwls[DIA].eval(1.0), Some(f64::NEG_INFINITY));

        // t2: sink-only — arrival is -∞, d_sinks is its q.
        let set = s.leaf_solutions(TerminalId(2));
        let c = &set[0];
        assert_eq!(c.scalars[DSINKS], 11.0);
        assert_eq!(c.pwls[ARR].eval(0.0), Some(f64::NEG_INFINITY));
    }

    #[test]
    fn augment_applies_fig10_formulas() {
        let mut fix = Fix::new();
        let t1_v = fix.t1_v;
        let mut s = fix.solver();
        let set = s.leaf_solutions(TerminalId(1));
        // t1's parent wire has length 2: R = 2, C = 2.
        let out = s.augment(set, t1_v);
        assert_eq!(out.len(), 1);
        let c = &out[0];
        assert_eq!(c.scalars[CAP], 3.0); // 1 + 2
        // d' = R(C/2 + cap) + q = 2(1 + 1) + 7 = 11.
        assert_eq!(c.scalars[DSINKS], 11.0);
        // Y'(x) = Y(x + 2) + 2(1 + x) = [5 + 3(1 + x + 2)] + 2 + 2x
        //       = 16 + 5x.
        assert_eq!(c.pwls[ARR].eval(0.0), Some(16.0));
        assert_eq!(c.pwls[ARR].eval(1.0), Some(21.0));
    }

    #[test]
    fn join_applies_fig7_formulas() {
        let mut fix = Fix::new();
        let mut s = fix.solver();
        // Hand-crafted siblings at a junction.
        let t_left = s.push_trace(TraceNode::Empty);
        let t_right = s.push_trace(TraceNode::Empty);
        let b = s.cap_bound;
        let left = s.candidate(
            t_left, false, 1.0, 2.0, 10.0,
            Pwl::linear(4.0, 1.0, 0.0, b), // Y_l = 4 + x
            Pwl::neg_inf(0.0, b),
        );
        let right = s.candidate(
            t_right, false, 2.0, 3.0, 20.0,
            Pwl::linear(30.0, 2.0, 0.0, b), // Y_r = 30 + 2x
            Pwl::neg_inf(0.0, b),
        );
        let joined = s.join(vec![left], vec![right]);
        assert_eq!(joined.len(), 1);
        let c = &joined[0];
        assert_eq!(c.scalars[COST], 3.0);
        assert_eq!(c.scalars[CAP], 5.0);
        assert_eq!(c.scalars[DSINKS], 20.0);
        // Y(x) = max(Y_l(x + 3), Y_r(x + 2)) = max(7 + x, 34 + 2x) = 34 + 2x.
        assert_eq!(c.pwls[ARR].eval(0.0), Some(34.0));
        // D(x) = max(D_l, D_r, Y_l(x+3) + 20, Y_r(x+2) + 10)
        //      = max(27 + x, 44 + 2x) = 44 + 2x.
        assert_eq!(c.pwls[DIA].eval(0.0), Some(44.0));
        assert_eq!(c.pwls[DIA].eval(1.0), Some(46.0));
    }

    #[test]
    fn repeater_solutions_decouple_per_fig8() {
        let mut fix = Fix::new();
        let ip = fix.ip;
        let mut s = fix.solver();
        let t = s.push_trace(TraceNode::Empty);
        let b = s.cap_bound;
        let cand = s.candidate(
            t, false, 0.0, 4.0, 9.0,
            Pwl::linear(6.0, 2.0, 0.0, b),  // Y(x) = 6 + 2x
            Pwl::linear(12.0, 1.0, 0.0, b), // D(x) = 12 + x
        );
        let out = s.repeater_solutions(vec![cand], ip);
        // One unbuffered passthrough + one buffered (symmetric repeater,
        // single orientation).
        assert_eq!(out.len(), 2);
        let buffered = out
            .iter()
            .find(|c| c.scalars[COST] > 0.0)
            .expect("buffered candidate present");
        // Repeater: intrinsic 10, out res 4, side cap 0.5, cost 2.
        assert_eq!(buffered.scalars[COST], 2.0);
        assert_eq!(buffered.scalars[CAP], 0.5);
        // d' = 10 + 4·4 + 9 = 35.
        assert_eq!(buffered.scalars[DSINKS], 35.0);
        // Y' = Y(0.5) + 10 + 4x = 7 + 10 + 4x = 17 + 4x.
        assert_eq!(buffered.pwls[ARR].eval(0.0), Some(17.0));
        assert_eq!(buffered.pwls[ARR].eval(1.0), Some(21.0));
        // D' = D(0.5) = 12.5, constant — "completely determined".
        assert_eq!(buffered.pwls[DIA].eval(0.0), Some(12.5));
        assert_eq!(buffered.pwls[DIA].eval(3.0), Some(12.5));
    }

    #[test]
    fn repeater_solutions_skip_pruned_evaluation_points() {
        let mut fix = Fix::new();
        let ip = fix.ip;
        let mut s = fix.solver();
        let t = s.push_trace(TraceNode::Empty);
        let b = s.cap_bound;
        // Candidate valid only for c_E ≥ 1, but the repeater's child-side
        // cap is 0.5: the buffered version must be skipped.
        let cand = s.candidate(
            t, false, 0.0, 4.0, 9.0,
            Pwl::linear(6.0, 2.0, 1.0, b),
            Pwl::linear(12.0, 1.0, 1.0, b),
        );
        let out = s.repeater_solutions(vec![cand], ip);
        assert_eq!(out.len(), 1, "only the passthrough survives");
        assert_eq!(out[0].scalars[COST], 0.0);
    }

    #[test]
    fn cap_bound_reserves_decoupling_headroom() {
        let fix = Fix::new();
        let b = cap_bound(&fix.net, &fix.library, &fix.term_opts, &fix.wire_options);
        // Whole-net cap: wires 8 + terminals 3 = 11; repeater side 0.5.
        assert!(b >= 11.0 + 0.5);
        // Wire sizing raises the bound with the largest cap scale.
        let wide = vec![WireOption::unit(), WireOption::width("3W", 3.0, 0.0)];
        let b3 = cap_bound(&fix.net, &fix.library, &fix.term_opts, &wide);
        assert!(b3 >= 24.0 + 3.0 + 0.5);
    }
}
