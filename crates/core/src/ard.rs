//! Augmented RC-diameter (ARD) computation.
//!
//! The ARD of a topology `T` is
//! `max over source u, sink w, u ≠ w of AT(u) + PD(u→w) + q(w)`
//! (paper Definition 2.1): the worst primary-input-to-primary-output
//! delay across the net. [`ard_naive`] evaluates it by one single-source
//! Elmore traversal per source (`O(n·|sources|)`); [`ard_linear`] is the
//! paper's §III / Fig. 2 algorithm: **one** depth-first pass computing,
//! for every subtree, the worst internal arrival, the worst delay to
//! internal sinks and the worst internal diameter — `O(n)` total, proving
//! the ARD is no harder than an RC-radius.

use msrnet_rctree::elmore::Elmore;
use msrnet_rctree::{Assignment, Net, Repeater, Rooted, TerminalId, VertexKind};

/// The result of an ARD evaluation.
///
/// # Examples
///
/// ```
/// use msrnet_geom::Point;
/// use msrnet_core::ard::{ard_linear, ard_naive};
/// use msrnet_rctree::{Assignment, NetBuilder, Technology, Terminal, TerminalId};
///
/// let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
/// let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(5.0, 1.0, 1.0, 3.0));
/// let t1 = b.terminal(Point::new(2.0, 0.0), Terminal::bidirectional(0.0, 9.0, 1.0, 3.0));
/// b.wire(t0, t1);
/// let net = b.build()?;
/// let rooted = net.rooted_at_terminal(TerminalId(0));
/// let asg = Assignment::empty(net.topology.vertex_count());
/// let fast = ard_linear(&net, &rooted, &[], &asg);
/// let slow = ard_naive(&net, &rooted, &[], &asg);
/// assert!((fast.ard - slow.ard).abs() < 1e-9);
/// assert_eq!(fast.critical, Some((TerminalId(0), TerminalId(1))));
/// # Ok::<(), msrnet_rctree::BuildNetError>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ArdReport {
    /// The augmented RC-diameter, ps; `-∞` when no distinct
    /// source/sink pair exists.
    pub ard: f64,
    /// The critical (source, sink) pair attaining the maximum, if any.
    pub critical: Option<(TerminalId, TerminalId)>,
}

/// A value tagged with the terminal responsible for it, for critical-path
/// reporting.
#[derive(Clone, Copy, Debug)]
struct Tagged {
    val: f64,
    tag: Option<TerminalId>,
}

impl Tagged {
    const NEG_INF: Tagged = Tagged {
        val: f64::NEG_INFINITY,
        tag: None,
    };

    fn max(self, other: Tagged) -> Tagged {
        if other.val > self.val {
            other
        } else {
            self
        }
    }

    fn plus(self, d: f64) -> Tagged {
        Tagged {
            val: self.val + d,
            tag: self.tag,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct PairTagged {
    val: f64,
    pair: Option<(TerminalId, TerminalId)>,
}

impl PairTagged {
    const NEG_INF: PairTagged = PairTagged {
        val: f64::NEG_INFINITY,
        pair: None,
    };

    fn max(self, other: PairTagged) -> PairTagged {
        if other.val > self.val {
            other
        } else {
            self
        }
    }

    fn combine(a: Tagged, s: Tagged) -> PairTagged {
        let val = a.val + s.val;
        match (a.tag, s.tag) {
            (Some(u), Some(w)) if val > f64::NEG_INFINITY => PairTagged {
                val,
                pair: Some((u, w)),
            },
            _ => PairTagged::NEG_INF,
        }
    }
}

/// Computes the ARD with the paper's linear-time algorithm (Fig. 2).
///
/// One bottom-up sweep maintains, per subtree rooted at `v`:
/// * `arr(v)` — the worst augmented arrival time at `v`'s parent-side pin
///   from sources inside the subtree;
/// * `dts(v)` — the worst augmented delay from that pin to sinks inside;
/// * `dia(v)` — the worst augmented diameter among internal pairs.
///
/// Cross-subtree pairs are combined at each branch with a top-two trick,
/// so the whole computation is `O(n)` after the two `O(n)` capacitance
/// passes of [`Elmore`].
///
/// Terminals need not be leaves: a non-leaf terminal contributes its
/// local source/sink roles at its own vertex.
pub fn ard_linear(
    net: &Net,
    rooted: &Rooted,
    library: &[Repeater],
    assignment: &Assignment,
) -> ArdReport {
    let elmore = Elmore::new(net, rooted, library, assignment);
    ard_linear_with(&elmore, net, rooted)
}

/// Reusable buffers for the per-subtree `a`/`s`/`D` sweep of
/// [`ard_linear_in`], so repeated ARD queries (incremental sessions,
/// batch loops) allocate nothing after warm-up.
#[derive(Debug, Default)]
pub struct ArdWorkspace {
    arr: Vec<Tagged>,
    dts: Vec<Tagged>,
    dia: Vec<PairTagged>,
}

impl ArdWorkspace {
    /// Creates an empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        ArdWorkspace::default()
    }
}

/// Like [`ard_linear`], reusing an already-built [`Elmore`] engine.
pub fn ard_linear_with(elmore: &Elmore<'_>, net: &Net, rooted: &Rooted) -> ArdReport {
    ard_linear_in(elmore, net, rooted, &mut ArdWorkspace::new())
}

/// Re-entrant form of [`ard_linear_with`]: the `a`/`s`/`D` sweep runs in
/// `workspace`'s buffers, making repeated queries allocation-free.
/// Bit-identical to [`ard_linear`] (same traversal, same arithmetic).
pub fn ard_linear_in(
    elmore: &Elmore<'_>,
    net: &Net,
    rooted: &Rooted,
    workspace: &mut ArdWorkspace,
) -> ArdReport {
    let n = net.topology.vertex_count();
    let arr = &mut workspace.arr;
    let dts = &mut workspace.dts;
    let dia = &mut workspace.dia;
    arr.clear();
    arr.resize(n, Tagged::NEG_INF);
    dts.clear();
    dts.resize(n, Tagged::NEG_INF);
    dia.clear();
    dia.resize(n, PairTagged::NEG_INF);

    for v in rooted.postorder() {
        // Arrival/“delay to sinks” measured at v itself (child side of any
        // repeater at v), per incident child; plus v's own roles.
        let mut best_a = [Tagged::NEG_INF; 2]; // top-2 arrivals at v
        let mut best_s = [Tagged::NEG_INF; 2]; // top-2 sink delays from v
        let mut a_child = [usize::MAX; 2];
        let mut s_child = [usize::MAX; 2];
        let mut best_dia = PairTagged::NEG_INF;

        for (ci, &u) in rooted.children(v).iter().enumerate() {
            let a_i = arr[u.0].plus(elmore.edge_delay_up(u));
            let s_i = dts[u.0].plus(elmore.edge_delay_down(u));
            if a_i.val > best_a[0].val {
                best_a[1] = best_a[0];
                a_child[1] = a_child[0];
                best_a[0] = a_i;
                a_child[0] = ci;
            } else if a_i.val > best_a[1].val {
                best_a[1] = a_i;
                a_child[1] = ci;
            }
            if s_i.val > best_s[0].val {
                best_s[1] = best_s[0];
                s_child[1] = s_child[0];
                best_s[0] = s_i;
                s_child[0] = ci;
            } else if s_i.val > best_s[1].val {
                best_s[1] = s_i;
                s_child[1] = ci;
            }
            best_dia = best_dia.max(dia[u.0]);
        }

        // Cross-subtree pairs: best arrival with best sink delay from a
        // *different* child.
        for (ai, a) in best_a.iter().enumerate() {
            for (si, s) in best_s.iter().enumerate() {
                if a_child[ai] != usize::MAX
                    && s_child[si] != usize::MAX
                    && a_child[ai] != s_child[si]
                {
                    best_dia = best_dia.max(PairTagged::combine(*a, *s));
                }
            }
        }

        // v's own terminal roles.
        let mut local_arr = Tagged::NEG_INF;
        let mut local_dts = Tagged::NEG_INF;
        if let VertexKind::Terminal(t) = net.topology.kind(v) {
            let term = net.terminal(t);
            if term.is_source() {
                local_arr = Tagged {
                    val: term.arrival + elmore.driver_delay(t),
                    tag: Some(t),
                };
            }
            if term.is_sink() {
                local_dts = Tagged {
                    val: term.downstream,
                    tag: Some(t),
                };
            }
            // v as sink of an internal source, and v as source of an
            // internal sink.
            best_dia = best_dia.max(PairTagged::combine(best_a[0], local_dts));
            best_dia = best_dia.max(PairTagged::combine(local_arr, best_s[0]));
        }

        let at_v_arr = best_a[0].max(local_arr);
        let at_v_dts = best_s[0].max(local_dts);

        // Lift to the parent-side pin across any repeater at v.
        arr[v.0] = if at_v_arr.val > f64::NEG_INFINITY {
            at_v_arr.plus(elmore.crossing_up(v))
        } else {
            Tagged::NEG_INF
        };
        dts[v.0] = if at_v_dts.val > f64::NEG_INFINITY {
            at_v_dts.plus(elmore.crossing_down(v))
        } else {
            Tagged::NEG_INF
        };
        dia[v.0] = best_dia;
    }

    let top = dia[rooted.root().0];
    ArdReport {
        ard: top.val,
        critical: top.pair,
    }
}

/// Computes the ARD by |sources| single-source Elmore traversals
/// (`O(n·|sources|)`) — the baseline the paper's linear algorithm is
/// measured against, and the oracle for its correctness tests.
pub fn ard_naive(
    net: &Net,
    rooted: &Rooted,
    library: &[Repeater],
    assignment: &Assignment,
) -> ArdReport {
    let elmore = Elmore::new(net, rooted, library, assignment);
    let mut best = ArdReport {
        ard: f64::NEG_INFINITY,
        critical: None,
    };
    for u in net.terminal_ids() {
        if !net.terminal(u).is_source() {
            continue;
        }
        let delays = elmore.delays_from(u);
        let at = net.terminal(u).arrival;
        for w in net.terminal_ids() {
            if w == u || !net.terminal(w).is_sink() {
                continue;
            }
            let wv = net.topology.terminal_vertex(w);
            let total = at + delays[wv.0] + net.terminal(w).downstream;
            if total > best.ard {
                best = ArdReport {
                    ard: total,
                    critical: Some((u, w)),
                };
            }
        }
    }
    best
}

/// Per-terminal timing breakdown of a multisource net under a fixed
/// assignment — the reporting companion to [`ard_linear`].
///
/// For every ordered source/sink pair the augmented delay
/// `AT(u) + PD(u→w) + q(w)` is tabulated; per-terminal worst rows and
/// columns expose which agents limit the bus.
#[derive(Clone, Debug)]
pub struct ArdProfile {
    /// `delay[u][w]`: augmented delay from source `u` to sink `w`
    /// (`-∞` when `u` cannot drive, `w` cannot receive, or `u == w`).
    pub delay: Vec<Vec<f64>>,
    /// The overall ARD (the matrix maximum).
    pub ard: f64,
    /// The pair attaining it, if any.
    pub critical: Option<(TerminalId, TerminalId)>,
}

impl ArdProfile {
    /// The worst augmented delay of paths *driven by* terminal `u`, or
    /// `-∞` if `u` is not a source.
    pub fn worst_from(&self, u: TerminalId) -> f64 {
        self.delay[u.0]
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// The worst augmented delay of paths *received by* terminal `w`, or
    /// `-∞` if `w` is not a sink.
    pub fn worst_into(&self, w: TerminalId) -> f64 {
        self.delay
            .iter()
            .map(|row| row[w.0])
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Per-pair slack against a timing spec: `spec − delay[u][w]`
    /// (`+∞` for infeasible pairs). Negative entries violate the spec.
    pub fn slacks(&self, spec: f64) -> Vec<Vec<f64>> {
        self.delay
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&d| {
                        if d == f64::NEG_INFINITY {
                            f64::INFINITY
                        } else {
                            spec - d
                        }
                    })
                    .collect()
            })
            .collect()
    }
}

/// Computes the full source×sink augmented delay matrix
/// (`O(n · |sources|)`: one Elmore traversal per source) together with
/// the ARD and its critical pair.
///
/// # Examples
///
/// ```
/// use msrnet_geom::Point;
/// use msrnet_core::ard::ard_profile;
/// use msrnet_rctree::{Assignment, NetBuilder, Technology, Terminal, TerminalId};
///
/// let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
/// let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(0.0, 0.0, 1.0, 3.0));
/// let t1 = b.terminal(Point::new(2.0, 0.0), Terminal::bidirectional(9.0, 0.0, 1.0, 3.0));
/// b.wire(t0, t1);
/// let net = b.build()?;
/// let rooted = net.rooted_at_terminal(TerminalId(0));
/// let profile = ard_profile(&net, &rooted, &[], &Assignment::empty(2));
/// assert_eq!(profile.delay[1][0], 9.0 + 16.0);
/// assert_eq!(profile.worst_into(TerminalId(0)), 25.0);
/// assert!(profile.slacks(30.0)[1][0] > 0.0);
/// # Ok::<(), msrnet_rctree::BuildNetError>(())
/// ```
pub fn ard_profile(
    net: &Net,
    rooted: &Rooted,
    library: &[Repeater],
    assignment: &Assignment,
) -> ArdProfile {
    let elmore = Elmore::new(net, rooted, library, assignment);
    let n = net.terminals.len();
    let mut delay = vec![vec![f64::NEG_INFINITY; n]; n];
    let mut ard = f64::NEG_INFINITY;
    let mut critical = None;
    for u in net.terminal_ids() {
        if !net.terminal(u).is_source() {
            continue;
        }
        let delays = elmore.delays_from(u);
        let at = net.terminal(u).arrival;
        for w in net.terminal_ids() {
            if w == u || !net.terminal(w).is_sink() {
                continue;
            }
            let wv = net.topology.terminal_vertex(w);
            let d = at + delays[wv.0] + net.terminal(w).downstream;
            delay[u.0][w.0] = d;
            if d > ard {
                ard = d;
                critical = Some((u, w));
            }
        }
    }
    ArdProfile {
        delay,
        ard,
        critical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrnet_geom::Point;
    use msrnet_rctree::{Buffer, NetBuilder, Orientation, Technology, Terminal};

    fn term(at: f64, q: f64) -> Terminal {
        Terminal::bidirectional(at, q, 1.0, 3.0)
    }

    fn check_match(net: &Net, library: &[Repeater], assignment: &Assignment) -> ArdReport {
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let fast = ard_linear(net, &rooted, library, assignment);
        let slow = ard_naive(net, &rooted, library, assignment);
        assert!(
            (fast.ard - slow.ard).abs() < 1e-9,
            "linear {} != naive {}",
            fast.ard,
            slow.ard
        );
        // Ties may be broken differently; each reported pair must attain
        // the claimed maximum.
        let elmore =
            msrnet_rctree::elmore::Elmore::new(net, &rooted, library, assignment);
        for report in [&fast, &slow] {
            if let Some((u, w)) = report.critical {
                assert!(
                    (elmore.augmented_delay(u, w) - report.ard).abs() < 1e-9,
                    "critical pair does not attain the ARD"
                );
            }
        }
        fast
    }

    #[test]
    fn two_pin_symmetric() {
        let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
        let t0 = b.terminal(Point::new(0.0, 0.0), term(0.0, 0.0));
        let t1 = b.terminal(Point::new(2.0, 0.0), term(0.0, 0.0));
        b.wire(t0, t1);
        let net = b.build().unwrap();
        let asg = Assignment::empty(net.topology.vertex_count());
        let r = check_match(&net, &[], &asg);
        assert!((r.ard - 16.0).abs() < 1e-12);
    }

    #[test]
    fn arrival_times_select_the_critical_source() {
        let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
        let t0 = b.terminal(Point::new(0.0, 0.0), term(100.0, 0.0));
        let t1 = b.terminal(Point::new(2.0, 0.0), term(0.0, 0.0));
        b.wire(t0, t1);
        let net = b.build().unwrap();
        let asg = Assignment::empty(net.topology.vertex_count());
        let r = check_match(&net, &[], &asg);
        assert_eq!(r.critical, Some((TerminalId(0), TerminalId(1))));
        assert!((r.ard - 116.0).abs() < 1e-12);
    }

    #[test]
    fn downstream_delays_select_the_critical_sink() {
        let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
        let t0 = b.terminal(Point::new(0.0, 0.0), term(0.0, 500.0));
        let t1 = b.terminal(Point::new(2.0, 0.0), term(0.0, 0.0));
        b.wire(t0, t1);
        let net = b.build().unwrap();
        let asg = Assignment::empty(net.topology.vertex_count());
        let r = check_match(&net, &[], &asg);
        // The worst pair ends at t0 because of its downstream delay.
        assert_eq!(r.critical, Some((TerminalId(1), TerminalId(0))));
    }

    #[test]
    fn star_net_cross_pairs() {
        let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
        let t0 = b.terminal(Point::new(0.0, 0.0), term(0.0, 0.0));
        let s = b.steiner(Point::new(1.0, 0.0));
        let t1 = b.terminal(Point::new(2.0, 0.0), term(0.0, 0.0));
        let t2 = b.terminal(Point::new(1.0, 3.0), term(0.0, 0.0));
        b.wire(t0, s);
        b.wire(s, t1);
        b.wire(s, t2);
        let net = b.build().unwrap();
        let asg = Assignment::empty(net.topology.vertex_count());
        let r = check_match(&net, &[], &asg);
        // Longest leg is t2 (length 3): the worst pair involves t2.
        let (u, w) = r.critical.unwrap();
        assert!(u == TerminalId(2) || w == TerminalId(2));
    }

    #[test]
    fn source_only_and_sink_only_roles() {
        let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
        let t0 = b.terminal(
            Point::new(0.0, 0.0),
            Terminal::source_only(0.0, 1.0, 3.0),
        );
        let s = b.steiner(Point::new(1.0, 0.0));
        let t1 = b.terminal(Point::new(2.0, 0.0), Terminal::sink_only(0.0, 1.0));
        let t2 = b.terminal(Point::new(1.0, 3.0), Terminal::sink_only(0.0, 1.0));
        b.wire(t0, s);
        b.wire(s, t1);
        b.wire(s, t2);
        let net = b.build().unwrap();
        let asg = Assignment::empty(net.topology.vertex_count());
        let r = check_match(&net, &[], &asg);
        // Only t0 can be the source.
        assert_eq!(r.critical.unwrap().0, TerminalId(0));
    }

    #[test]
    fn repeater_changes_the_ard_consistently() {
        let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
        let t0 = b.terminal(Point::new(0.0, 0.0), term(0.0, 0.0));
        let ip = b.insertion_point(Point::new(1.0, 0.0));
        let t1 = b.terminal(Point::new(2.0, 0.0), term(0.0, 0.0));
        b.wire(t0, ip);
        b.wire(ip, t1);
        let net = b.build().unwrap();
        let buf = Buffer::new("1X", 2.0, 1.0, 0.2, 1.0);
        let lib = [Repeater::from_buffer_pair("r", &buf, &buf)];
        let mut asg = Assignment::empty(net.topology.vertex_count());
        asg.place(ip, 0, Orientation::AFacesParent);
        let with = check_match(&net, &lib, &asg);
        let without = check_match(&net, &lib, &Assignment::empty(net.topology.vertex_count()));
        assert!(with.ard.is_finite() && without.ard.is_finite());
        assert_ne!(with.ard, without.ard);
    }

    #[test]
    fn non_leaf_terminal_is_handled() {
        // A terminal in the middle of a path, without normalization.
        let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
        let t0 = b.terminal(Point::new(0.0, 0.0), term(0.0, 0.0));
        let mid = b.terminal(Point::new(1.0, 0.0), term(0.0, 0.0));
        let t2 = b.terminal(Point::new(2.0, 0.0), term(0.0, 0.0));
        b.wire(t0, mid);
        b.wire(mid, t2);
        let net = b.build().unwrap();
        let asg = Assignment::empty(net.topology.vertex_count());
        let raw = check_match(&net, &[], &asg);
        // Normalizing to leaves must not change the ARD.
        let norm = net.normalized();
        let asg2 = Assignment::empty(norm.topology.vertex_count());
        let normalized = check_match(&norm, &[], &asg2);
        assert!((raw.ard - normalized.ard).abs() < 1e-9);
    }

    #[test]
    fn profile_agrees_with_linear_ard() {
        let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
        let t0 = b.terminal(Point::new(0.0, 0.0), term(10.0, 5.0));
        let s = b.steiner(Point::new(1.0, 0.0));
        let t1 = b.terminal(Point::new(2.0, 0.0), term(0.0, 40.0));
        let t2 = b.terminal(Point::new(1.0, 3.0), Terminal::sink_only(7.0, 1.0));
        b.wire(t0, s);
        b.wire(s, t1);
        b.wire(s, t2);
        let net = b.build().unwrap();
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let asg = Assignment::empty(net.topology.vertex_count());
        let profile = ard_profile(&net, &rooted, &[], &asg);
        let linear = ard_linear(&net, &rooted, &[], &asg);
        assert!((profile.ard - linear.ard).abs() < 1e-9);
        // Matrix entries match the Elmore engine pairwise.
        let elmore = msrnet_rctree::elmore::Elmore::new(&net, &rooted, &[], &asg);
        for u in net.terminal_ids() {
            for w in net.terminal_ids() {
                if u == w {
                    assert_eq!(profile.delay[u.0][w.0], f64::NEG_INFINITY);
                    continue;
                }
                let expect = elmore.augmented_delay(u, w);
                let got = profile.delay[u.0][w.0];
                if expect == f64::NEG_INFINITY {
                    assert_eq!(got, f64::NEG_INFINITY);
                } else {
                    assert!((got - expect).abs() < 1e-9);
                }
            }
        }
        // t2 is sink-only: its source row is all -inf.
        assert_eq!(profile.worst_from(TerminalId(2)), f64::NEG_INFINITY);
        assert!(profile.worst_into(TerminalId(2)).is_finite());
        // Slack signs follow the spec.
        let slacks = profile.slacks(profile.ard);
        let (u, w) = profile.critical.unwrap();
        assert!(slacks[u.0][w.0].abs() < 1e-9);
        assert!(slacks.iter().flatten().all(|&s| s >= -1e-9));
    }

    #[test]
    fn reentrant_ard_is_bit_identical_across_reuse() {
        let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
        let t0 = b.terminal(Point::new(0.0, 0.0), term(10.0, 5.0));
        let s = b.steiner(Point::new(1.0, 0.0));
        let t1 = b.terminal(Point::new(2.0, 0.0), term(0.0, 40.0));
        let t2 = b.terminal(Point::new(1.0, 3.0), Terminal::sink_only(7.0, 1.0));
        b.wire(t0, s);
        b.wire(s, t1);
        b.wire(s, t2);
        let net = b.build().unwrap();
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let asg = Assignment::empty(net.topology.vertex_count());
        let elmore = msrnet_rctree::elmore::Elmore::new(&net, &rooted, &[], &asg);
        let fresh = ard_linear(&net, &rooted, &[], &asg);
        let mut ws = ArdWorkspace::new();
        for _ in 0..3 {
            let again = ard_linear_in(&elmore, &net, &rooted, &mut ws);
            assert_eq!(again.ard.to_bits(), fresh.ard.to_bits());
            assert_eq!(again.critical, fresh.critical);
        }
    }

    #[test]
    fn no_feasible_pair_reports_neg_inf() {
        // Single bidirectional terminal pair where only t0 is source AND
        // only t0 is sink: no distinct pair exists.
        let mut b = NetBuilder::new(Technology::new(1.0, 1.0));
        let t0 = b.terminal(Point::new(0.0, 0.0), term(0.0, 0.0));
        let t1 = b.terminal(
            Point::new(2.0, 0.0),
            Terminal {
                arrival: f64::NEG_INFINITY,
                downstream: f64::NEG_INFINITY,
                cap: 1.0,
                drive_res: 0.0,
                drive_intrinsic: 0.0,
            },
        );
        b.wire(t0, t1);
        // Build bypassing the no-sink check is impossible via builder, so
        // construct the degenerate case directly at the report level.
        let net = b.build();
        // t1 is neither source nor sink, t0 is both: builder accepts it
        // (there IS a source and a sink), but no distinct pair exists.
        let net = net.unwrap();
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let asg = Assignment::empty(net.topology.vertex_count());
        let fast = ard_linear(&net, &rooted, &[], &asg);
        assert_eq!(fast.ard, f64::NEG_INFINITY);
        assert_eq!(fast.critical, None);
        let slow = ard_naive(&net, &rooted, &[], &asg);
        assert_eq!(slow.ard, f64::NEG_INFINITY);
    }
}
