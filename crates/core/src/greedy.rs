//! Greedy repeater-insertion baseline.
//!
//! The natural heuristic a designer (or a tool without the paper's DP)
//! would try: repeatedly insert the single (repeater, insertion point,
//! orientation) move that lowers the ARD the most, until no move helps.
//! Each round costs `O(|sites| · |library| · n)` Elmore evaluations.
//!
//! This is **not optimal** — the DP explores combinations the greedy
//! cannot reach (e.g. two repeaters that only pay off together) and the
//! greedy cannot trade cost against the spec — but it is the baseline
//! that shows what Theorem 4.1 buys. See the `greedy_vs_optimal` bench
//! binary for the measured gap.

use msrnet_rctree::{Assignment, Net, Orientation, Repeater, TerminalId};

use crate::ard::ard_linear;

/// One step of the greedy trajectory.
#[derive(Clone, Debug)]
pub struct GreedyStep {
    /// Total repeater cost after this step.
    pub cost: f64,
    /// ARD after this step, ps.
    pub ard: f64,
}

/// Result of a greedy run: the final assignment and the ARD trajectory.
#[derive(Clone, Debug)]
pub struct GreedyResult {
    /// The assignment after the last improving move.
    pub assignment: Assignment,
    /// ARD/cost after each move; entry 0 is the unbuffered net.
    pub trajectory: Vec<GreedyStep>,
}

impl GreedyResult {
    /// The final (best) ARD reached.
    pub fn final_ard(&self) -> f64 {
        // msrnet-allow: panic the constructor records at least the zero-repeater step
        self.trajectory.last().expect("never empty").ard
    }

    /// The total repeater cost spent.
    pub fn final_cost(&self) -> f64 {
        // msrnet-allow: panic the constructor records at least the zero-repeater step
        self.trajectory.last().expect("never empty").cost
    }
}

/// Greedily inserts repeaters from `library` one at a time, always
/// taking the move with the largest ARD reduction, until no single move
/// improves by more than `min_gain` ps.
///
/// # Panics
///
/// Panics if the net has no feasible source/sink pair.
pub fn greedy_insertion(
    net: &Net,
    root: TerminalId,
    library: &[Repeater],
    min_gain: f64,
) -> GreedyResult {
    let rooted = net.rooted_at_terminal(root);
    let mut assignment = Assignment::empty(net.topology.vertex_count());
    let mut cost = 0.0;
    let mut current = ard_linear(net, &rooted, library, &assignment).ard;
    assert!(
        current > f64::NEG_INFINITY,
        "net must have a feasible source/sink pair"
    );
    let mut trajectory = vec![GreedyStep { cost, ard: current }];
    let sites: Vec<_> = net.topology.insertion_points().collect();
    loop {
        let mut best: Option<(f64, usize, usize, Orientation)> = None;
        for (si, &site) in sites.iter().enumerate() {
            if assignment.at(site).is_some() {
                continue;
            }
            for (ri, rep) in library.iter().enumerate() {
                let orientations: &[Orientation] = if rep.is_symmetric() {
                    &[Orientation::AFacesParent]
                } else {
                    &Orientation::BOTH
                };
                for &o in orientations {
                    assignment.place(site, ri, o);
                    let ard = ard_linear(net, &rooted, library, &assignment).ard;
                    assignment.clear(site);
                    if best.is_none_or(|(b, ..)| ard < b) {
                        best = Some((ard, si, ri, o));
                    }
                }
            }
        }
        match best {
            Some((ard, si, ri, o)) if ard < current - min_gain => {
                assignment.place(sites[si], ri, o);
                // msrnet-allow: panic ri enumerates this library's indices
                cost += library[ri].cost;
                current = ard;
                trajectory.push(GreedyStep { cost, ard });
            }
            _ => break,
        }
    }
    GreedyResult {
        assignment,
        trajectory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimize, MsriOptions, TerminalOptions};
    use msrnet_geom::Point;
    use msrnet_rctree::{Buffer, NetBuilder, Technology, Terminal};

    fn line_net(points: usize) -> Net {
        let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
        let term = || Terminal::bidirectional(0.0, 0.0, 0.05, 180.0);
        let t0 = b.terminal(Point::new(0.0, 0.0), term());
        let mut prev = t0;
        for i in 1..=points {
            let ip = b.insertion_point(Point::new(
                10_000.0 * i as f64 / (points + 1) as f64,
                0.0,
            ));
            b.wire(prev, ip);
            prev = ip;
        }
        let t1 = b.terminal(Point::new(10_000.0, 0.0), term());
        b.wire(prev, t1);
        b.build().unwrap()
    }

    fn lib() -> Vec<Repeater> {
        let b = Buffer::new("1X", 50.0, 180.0, 0.05, 1.0);
        vec![Repeater::from_buffer_pair("rep", &b, &b)]
    }

    #[test]
    fn trajectory_is_monotone() {
        let net = line_net(5);
        let result = greedy_insertion(&net, TerminalId(0), &lib(), 0.0);
        assert!(result.trajectory.len() >= 2, "long line wants repeaters");
        for w in result.trajectory.windows(2) {
            assert!(w[1].ard < w[0].ard);
            assert!(w[1].cost > w[0].cost);
        }
        assert_eq!(
            result.assignment.placed_count(),
            result.trajectory.len() - 1
        );
    }

    #[test]
    fn greedy_final_matches_its_assignment() {
        let net = line_net(4);
        let library = lib();
        let result = greedy_insertion(&net, TerminalId(0), &library, 0.0);
        let rooted = net.rooted_at_terminal(TerminalId(0));
        let check = ard_linear(&net, &rooted, &library, &result.assignment);
        assert!((check.ard - result.final_ard()).abs() < 1e-9);
        assert!((result.assignment.total_cost(&library) - result.final_cost()).abs() < 1e-12);
    }

    #[test]
    fn greedy_never_beats_the_optimum() {
        let net = line_net(5);
        let library = lib();
        let result = greedy_insertion(&net, TerminalId(0), &library, 0.0);
        let curve = optimize(
            &net,
            TerminalId(0),
            &library,
            &TerminalOptions::defaults(&net),
            &MsriOptions::default(),
        )
        .unwrap();
        // At every cost level the optimal frontier is at least as good.
        for step in &result.trajectory {
            let opt = curve
                .points()
                .iter()
                .filter(|p| p.cost <= step.cost + 1e-9)
                .map(|p| p.ard)
                .fold(f64::INFINITY, f64::min);
            assert!(opt <= step.ard + 1e-6, "greedy {} vs optimal {}", step.ard, opt);
        }
    }

    #[test]
    fn min_gain_threshold_stops_early() {
        let net = line_net(5);
        let library = lib();
        let all = greedy_insertion(&net, TerminalId(0), &library, 0.0);
        let coarse = greedy_insertion(&net, TerminalId(0), &library, 200.0);
        assert!(coarse.trajectory.len() <= all.trajectory.len());
    }
}
