//! Cost-vs-ARD trade-off curves — the optimizer's output.
//!
//! As in paper §I contribution 3, the dynamic program produces a *suite*
//! of solutions exhibiting a cost/performance trade-off; the "min cost
//! subject to a timing spec" answer (Problem 2.1) is a lookup on the
//! curve.

use std::fmt;

use msrnet_rctree::Assignment;

use crate::dp::MsriStats;

/// One Pareto-optimal solution: a concrete repeater assignment and driver
/// choice with its total cost and resulting ARD.
#[derive(Clone, Debug)]
pub struct TradeoffPoint {
    /// Total cost (drivers + repeaters), in equivalent 1X buffers.
    pub cost: f64,
    /// The augmented RC-diameter achieved, ps.
    pub ard: f64,
    /// The repeater placement achieving it.
    pub assignment: Assignment,
    /// Per-terminal driver option indices (into the menus the optimizer
    /// was given).
    pub terminal_choices: Vec<usize>,
    /// Per-edge wire-width option indices (all zero unless the optimizer
    /// ran with wire sizing via [`crate::optimize_with_wires`]).
    pub wire_choices: Vec<usize>,
}

/// The Pareto frontier of achievable (cost, ARD) pairs, sorted by
/// ascending cost and strictly descending ARD.
///
/// # Examples
///
/// ```
/// use msrnet_geom::Point;
/// use msrnet_core::{optimize, MsriOptions, TerminalOptions};
/// use msrnet_rctree::{Buffer, NetBuilder, Repeater, Technology, Terminal, TerminalId};
///
/// let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
/// let t0 = b.terminal(Point::new(0.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
/// let ip = b.insertion_point(Point::new(4000.0, 0.0));
/// let t1 = b.terminal(Point::new(8000.0, 0.0), Terminal::bidirectional(0.0, 0.0, 0.05, 180.0));
/// b.wire(t0, ip);
/// b.wire(ip, t1);
/// let net = b.build()?;
/// let buf = Buffer::new("1X", 50.0, 180.0, 0.05, 1.0);
/// let lib = [Repeater::from_buffer_pair("rep", &buf, &buf)];
/// let curve = optimize(&net, TerminalId(0), &lib,
///     &TerminalOptions::defaults(&net), &MsriOptions::default())?;
///
/// // Min-cost solution meets a loose spec; a tight spec needs hardware.
/// let loose = curve.min_cost_meeting(f64::INFINITY).expect("feasible");
/// assert_eq!(loose.cost, curve.min_cost().cost);
/// let tight = curve.min_cost_meeting(curve.best_ard().ard);
/// assert!(tight.is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug)]
pub struct TradeoffCurve {
    points: Vec<TradeoffPoint>,
    stats: MsriStats,
}

impl TradeoffCurve {
    /// Wraps a Pareto frontier (ascending cost, descending ARD).
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `points` is empty or not a strictly
    /// improving frontier.
    pub(crate) fn new(points: Vec<TradeoffPoint>, stats: MsriStats) -> Self {
        debug_assert!(!points.is_empty());
        debug_assert!(points
            .windows(2)
            .all(|w| w[0].cost <= w[1].cost && w[0].ard > w[1].ard));
        TradeoffCurve { points, stats }
    }

    /// All frontier points, cheapest first.
    pub fn points(&self) -> &[TradeoffPoint] {
        &self.points
    }

    /// The cheapest solution (typically repeater-free).
    pub fn min_cost(&self) -> &TradeoffPoint {
        &self.points[0]
    }

    /// The fastest solution (minimum ARD, maximum cost on the frontier).
    pub fn best_ard(&self) -> &TradeoffPoint {
        // msrnet-allow: panic TradeoffCurve construction rejects empty point sets
        self.points.last().expect("curve is never empty")
    }

    /// The cheapest solution with `ARD ≤ spec` — the answer to paper
    /// Problem 2.1. Returns `None` when the spec is unachievable.
    pub fn min_cost_meeting(&self, spec: f64) -> Option<&TradeoffPoint> {
        self.points.iter().find(|p| p.ard <= spec)
    }

    /// Optimizer counters (for the pruning-strategy ablation).
    pub fn stats(&self) -> MsriStats {
        self.stats
    }

    /// The knee of the frontier: the point farthest (in normalized cost ×
    /// normalized ARD space) below the straight line joining the
    /// cheapest and fastest solutions — the classic "best value"
    /// heuristic when no hard spec is given.
    ///
    /// Returns the single point when the frontier is degenerate.
    pub fn knee(&self) -> &TradeoffPoint {
        if self.points.len() <= 2 {
            return &self.points[0];
        }
        let first = &self.points[0];
        // msrnet-allow: panic the len() <= 2 guard above ensures at least three points
        let last = self.points.last().expect("nonempty");
        let dc = (last.cost - first.cost).max(1e-12);
        let da = (first.ard - last.ard).max(1e-12);
        let mut best = 0;
        let mut best_gap = f64::NEG_INFINITY;
        for (i, p) in self.points.iter().enumerate() {
            // Normalized coordinates: x goes 0→1 with cost, y 1→0 with
            // ARD; the chord is y = 1 − x, so the gap below it is
            // (1 − x) − y.
            let x = (p.cost - first.cost) / dc;
            let y = (p.ard - last.ard) / da;
            let gap = (1.0 - x) - y;
            if gap > best_gap {
                best_gap = gap;
                best = i;
            }
        }
        &self.points[best]
    }

    /// Number of frontier points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// A frontier is never empty; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over the frontier points, cheapest first.
    pub fn iter(&self) -> std::slice::Iter<'_, TradeoffPoint> {
        self.points.iter()
    }
}

impl<'a> IntoIterator for &'a TradeoffCurve {
    type Item = &'a TradeoffPoint;
    type IntoIter = std::slice::Iter<'a, TradeoffPoint>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

impl fmt::Display for TradeoffCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "cost      ARD(ps)   repeaters")?;
        for p in &self.points {
            writeln!(
                f,
                "{:<9.1} {:<9.1} {}",
                p.cost,
                p.ard,
                p.assignment.placed_count()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{optimize, MsriOptions, TerminalOptions};
    use msrnet_geom::Point;
    use msrnet_rctree::{Buffer, NetBuilder, Repeater, Technology, Terminal, TerminalId};

    fn chain_curve(points: usize) -> TradeoffCurve {
        let mut b = NetBuilder::new(Technology::new(0.03, 0.00035));
        let term = || Terminal::bidirectional(0.0, 0.0, 0.05, 180.0);
        let t0 = b.terminal(Point::new(0.0, 0.0), term());
        let mut prev = t0;
        for i in 1..=points {
            let ip = b.insertion_point(Point::new(
                12_000.0 * i as f64 / (points + 1) as f64,
                0.0,
            ));
            b.wire(prev, ip);
            prev = ip;
        }
        let t1 = b.terminal(Point::new(12_000.0, 0.0), term());
        b.wire(prev, t1);
        let net = b.build().unwrap();
        let buf = Buffer::new("1X", 50.0, 180.0, 0.05, 1.0);
        let lib = [Repeater::from_buffer_pair("rep", &buf, &buf)];
        optimize(
            &net,
            TerminalId(0),
            &lib,
            &TerminalOptions::defaults(&net),
            &MsriOptions::default(),
        )
        .unwrap()
    }

    #[test]
    fn knee_lies_strictly_inside_long_frontiers() {
        let curve = chain_curve(6);
        assert!(curve.len() >= 4, "want a real frontier");
        let knee = curve.knee();
        // The knee is neither the cheapest nor the fastest end on a
        // convex frontier of diminishing returns.
        assert!(knee.cost > curve.min_cost().cost);
        assert!(knee.cost < curve.best_ard().cost);
        // And it is an actual frontier point.
        assert!(curve
            .points()
            .iter()
            .any(|p| p.cost == knee.cost && p.ard == knee.ard));
    }

    #[test]
    fn knee_of_degenerate_frontier_is_the_point() {
        let curve = chain_curve(1);
        let knee = curve.knee();
        assert!(curve
            .points()
            .iter()
            .any(|p| p.cost == knee.cost && p.ard == knee.ard));
    }

    #[test]
    fn iteration_and_indexing() {
        let curve = chain_curve(3);
        let collected: Vec<f64> = (&curve).into_iter().map(|p| p.cost).collect();
        assert_eq!(collected.len(), curve.len());
        assert!(!curve.is_empty());
        assert!(format!("{curve}").contains("ARD"));
    }
}
