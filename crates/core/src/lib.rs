//! Timing optimization for multisource nets: the augmented RC-diameter
//! and optimal repeater insertion.
//!
//! This crate implements the primary contributions of Lillis & Cheng,
//! *"Timing Optimization for Multisource Nets: Characterization and
//! Optimal Repeater Insertion"* (DAC'97 / IEEE TCAD 18(3), 1999):
//!
//! * [`ard`] — the **augmented RC-diameter** performance measure and its
//!   linear-time computation (paper §III, Fig. 2), plus the naive
//!   per-source baseline;
//! * [`optimize`] — **optimal repeater insertion** (paper §IV): a
//!   bottom-up dynamic program over subsolutions characterized by scalars
//!   and piece-wise linear functions of the external capacitance, pruned
//!   with minimal-functional-subset dominance, returning the full
//!   cost-vs-ARD [`TradeoffCurve`] (and hence "min cost subject to
//!   ARD ≤ spec", Problem 2.1);
//! * driver sizing as a special case (paper §V): per-terminal
//!   [`TerminalOptions`] menus;
//! * [`exhaustive`] — a brute-force oracle used to verify optimality
//!   (paper Theorem 4.1) on small instances;
//! * inverting repeaters (paper §V extension) via
//!   [`MsriOptions::allow_inverting`].
//!
//! # Quick start
//!
//! ```
//! use msrnet_geom::Point;
//! use msrnet_core::{optimize, MsriOptions, TerminalOptions};
//! use msrnet_rctree::{Buffer, NetBuilder, Repeater, Technology, Terminal, TerminalId};
//!
//! // A 10 mm point-to-point bus with three candidate insertion points.
//! let tech = Technology::new(0.03, 0.00035);
//! let mut b = NetBuilder::new(tech);
//! let term = || Terminal::bidirectional(0.0, 0.0, 0.05, 180.0);
//! let t0 = b.terminal(Point::new(0.0, 0.0), term());
//! let mut prev = t0;
//! for i in 1..=3 {
//!     let ip = b.insertion_point(Point::new(2500.0 * i as f64, 0.0));
//!     b.wire(prev, ip);
//!     prev = ip;
//! }
//! let t1 = b.terminal(Point::new(10_000.0, 0.0), term());
//! b.wire(prev, t1);
//! let net = b.build()?;
//!
//! let buf = Buffer::new("1X", 50.0, 180.0, 0.05, 1.0);
//! let lib = [Repeater::from_buffer_pair("rep1x", &buf, &buf)];
//! let curve = optimize(
//!     &net,
//!     TerminalId(0),
//!     &lib,
//!     &TerminalOptions::defaults(&net),
//!     &MsriOptions::default(),
//! )?;
//! println!("{curve}");
//! assert!(curve.best_ard().ard < curve.min_cost().ard);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod ard;
mod dp;
pub mod exhaustive;
pub mod greedy;
mod options;
mod tradeoff;

pub use dp::{
    optimize, optimize_in, optimize_incremental, optimize_with_wires, optimize_with_wires_in,
    required_cap_bound, DpCache, MsriStats, MsriWorkspace, RecomputeStats, StepStats,
};
pub use options::{
    MsriError, MsriOptions, PruningStrategy, TerminalOption, TerminalOptions, WireOption,
};
pub use tradeoff::{TradeoffCurve, TradeoffPoint};
