#![deny(rustdoc::broken_intra_doc_links)]
//! Small deterministic pseudo-random number generation for `msrnet`.
//!
//! The workload generators ([`msrnet-netgen`]) and the randomized tests
//! need reproducible streams of points, sizes and booleans — nothing
//! cryptographic, nothing platform-dependent. This crate provides a
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) generator behind a
//! minimal [`Rng`] trait whose surface deliberately mirrors the subset of
//! the `rand` crate the repository uses (`gen_range`, `gen_bool`,
//! `seed_from_u64`), so the two are drop-in interchangeable at call
//! sites. Keeping the generator in-tree makes every seed reproduce the
//! exact same nets on every platform and toolchain, which the batch
//! engine's determinism guarantee builds on.
//!
//! [`msrnet-netgen`]: https://docs.rs/msrnet-netgen
//!
//! # Examples
//!
//! ```
//! use msrnet_rng::{Rng, SeedableRng, SplitMix64};
//!
//! let mut rng = SplitMix64::seed_from_u64(42);
//! let die = rng.gen_range(1..=6i64);
//! assert!((1..=6).contains(&die));
//! let p = rng.gen_range(0.0..1.0f64);
//! assert!((0.0..1.0).contains(&p));
//! // Same seed, same stream — always, on every platform.
//! let mut again = SplitMix64::seed_from_u64(42);
//! assert_eq!(again.gen_range(1..=6i64), die);
//! ```

use std::ops::{Range, RangeInclusive};

/// Construction of a generator from a 64-bit seed.
///
/// Mirrors `rand::SeedableRng::seed_from_u64` — the only constructor the
/// repository uses.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A source of pseudo-random numbers.
///
/// Only [`Rng::next_u64`] is required; everything else is derived.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from `range` (`lo..hi` or `lo..=hi` over the
    /// integer types and `f64`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.next_f64() < p
    }

    /// Uniform random permutation of `slice` (Fisher–Yates).
    fn shuffle<T>(&mut self, slice: &mut [T])
    where
        Self: Sized,
    {
        for i in (1..slice.len()).rev() {
            let j = self.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

/// A range that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

/// Unbiased-enough integer sampling on `[0, span)` via the widening
/// multiply trick; the spans used in this repository (coordinates, menu
/// sizes) are vanishingly small against 2⁶⁴, so the residual bias is far
/// below anything observable.
fn below(rng: &mut impl Rng, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_range!(i32, i64, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + (hi - lo) * rng.next_f64()
    }
}

/// The SplitMix64 generator: one 64-bit word of state, full period 2⁶⁴,
/// passes BigCrush when used as intended. More than enough statistical
/// quality for net generation and test-case sampling.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SeedableRng for SplitMix64 {
    fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Named generators, mirroring `rand::rngs` so call sites can swap the
/// crate path without further edits.
pub mod rngs {
    /// The repository's standard generator — an alias for
    /// [`SplitMix64`](crate::SplitMix64) (deterministic and in-tree,
    /// unlike `rand`'s `StdRng`, which makes no cross-version stream
    /// stability promise).
    pub type StdRng = crate::SplitMix64;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference values from the canonical splitmix64.c with seed 0.
        let mut r = SplitMix64::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SplitMix64::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(0..10i64);
            assert!((0..10).contains(&v));
            let v = r.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&v));
            let v = r.gen_range(0..3usize);
            assert!(v < 3);
            let v = r.gen_range(2.0..4.0f64);
            assert!((2.0..4.0).contains(&v));
        }
    }

    #[test]
    fn inclusive_ranges_hit_both_ends() {
        let mut r = SplitMix64::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[r.gen_range(0..=2usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = SplitMix64::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = SplitMix64::seed_from_u64(4);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SplitMix64::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn mut_ref_forwards() {
        let mut r = SplitMix64::seed_from_u64(6);
        fn takes_rng<R: Rng>(rng: &mut R) -> u64 {
            rng.next_u64()
        }
        let a = takes_rng(&mut r);
        let b = takes_rng(&mut &mut r);
        assert_ne!(a, b);
    }
}
