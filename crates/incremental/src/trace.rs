//! JSON edit traces: the on-disk interchange format for replaying edit
//! sequences through an [`IncrementalOptimizer`](crate::IncrementalOptimizer).
//!
//! A trace is a single object `{"edits": [...]}` whose array holds one
//! object per edit, discriminated by its `"op"` field:
//!
//! ```json
//! {"edits": [
//!   {"op": "set_arrival",   "terminal": 1, "value": 12.5},
//!   {"op": "set_required",  "terminal": 2, "value": 30.0},
//!   {"op": "set_sink_load", "terminal": 1, "cap": 0.8},
//!   {"op": "move_terminal", "terminal": 3, "x": 100.0, "y": -40.0},
//!   {"op": "set_wire_rc",   "edge": 3, "res_scale": 2.0, "cap_scale": 0.5},
//!   {"op": "swap_library",  "scale": 2.0},
//!   {"op": "reroot",        "terminal": 1}
//! ]}
//! ```
//!
//! The parser is a small recursive-descent JSON reader (the workspace is
//! dependency-free by design), strict about structure — unknown ops,
//! missing fields, and trailing garbage are all errors with positions —
//! but tolerant of field order and whitespace.

use std::fmt;

use msrnet_rctree::{EdgeId, TerminalId};

use crate::Edit;

/// A parse failure, with the byte offset where it was detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// Byte offset into the input at which the problem was found.
    pub at: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for TraceError {}

/// Parses a JSON edit trace (see the module docs for the format).
///
/// # Errors
///
/// Returns a [`TraceError`] on malformed JSON, an unknown `"op"`,
/// missing or mistyped fields, or trailing input after the root object.
pub fn parse_trace(input: &str) -> Result<Vec<Edit>, TraceError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let root = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input after the trace object"));
    }
    let Value::Obj(fields) = root else {
        return Err(TraceError {
            at: 0,
            message: "trace root must be an object".into(),
        });
    };
    let edits_val = get(&fields, "edits")
        .ok_or_else(|| TraceError {
            at: 0,
            message: "trace object is missing the \"edits\" array".into(),
        })?;
    let Value::Arr(items) = edits_val else {
        return Err(TraceError {
            at: 0,
            message: "\"edits\" must be an array".into(),
        });
    };
    items
        .iter()
        .enumerate()
        .map(|(i, item)| edit_from(item, i))
        .collect()
}

/// Serializes edits into the trace format accepted by [`parse_trace`].
/// Numbers use Rust's shortest round-trip formatting; non-finite values
/// (legal in [`Edit::SetArrival`] / [`Edit::SetRequired`], where `-∞`
/// disables a role) serialize as the strings `"-inf"` / `"inf"`, which
/// the parser maps back.
pub fn trace_to_json(edits: &[Edit]) -> String {
    let mut out = String::from("{\"edits\": [");
    for (i, e) in edits.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{{\"op\": \"{}\"", e.op_name()));
        match *e {
            Edit::SetArrival { terminal, value } | Edit::SetRequired { terminal, value } => {
                out.push_str(&format!(
                    ", \"terminal\": {}, \"value\": {}",
                    terminal.0,
                    num(value)
                ));
            }
            Edit::SetSinkLoad { terminal, cap } => {
                out.push_str(&format!(
                    ", \"terminal\": {}, \"cap\": {}",
                    terminal.0,
                    num(cap)
                ));
            }
            Edit::MoveTerminal { terminal, x, y } => {
                out.push_str(&format!(
                    ", \"terminal\": {}, \"x\": {}, \"y\": {}",
                    terminal.0,
                    num(x),
                    num(y)
                ));
            }
            Edit::SetWireRc {
                edge,
                res_scale,
                cap_scale,
            } => {
                out.push_str(&format!(
                    ", \"edge\": {}, \"res_scale\": {}, \"cap_scale\": {}",
                    edge.0,
                    num(res_scale),
                    num(cap_scale)
                ));
            }
            Edit::SwapLibrary { scale } => {
                out.push_str(&format!(", \"scale\": {}", num(scale)));
            }
            Edit::Reroot { terminal } => {
                out.push_str(&format!(", \"terminal\": {}", terminal.0));
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else if x == f64::NEG_INFINITY {
        "\"-inf\"".into()
    } else if x == f64::INFINITY {
        "\"inf\"".into()
    } else {
        "\"nan\"".into()
    }
}

#[derive(Clone, Debug, PartialEq)]
enum Value {
    Num(f64),
    Str(String),
    Bool(bool),
    Null,
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

fn get<'a>(fields: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn edit_from(item: &Value, index: usize) -> Result<Edit, TraceError> {
    let fail = |message: String| TraceError {
        at: 0,
        message: format!("edit #{index}: {message}"),
    };
    let Value::Obj(fields) = item else {
        return Err(fail("must be an object".into()));
    };
    let Some(Value::Str(op)) = get(fields, "op") else {
        return Err(fail("missing string field \"op\"".into()));
    };
    let id = |key: &str| -> Result<usize, TraceError> {
        match get(fields, key) {
            // msrnet-allow: float-eq fract()==0.0 is the exact integrality test for a JSON id
            Some(Value::Num(x)) if *x >= 0.0 && x.fract() == 0.0 && *x <= u32::MAX as f64 => {
                Ok(*x as usize)
            }
            Some(_) => Err(fail(format!("\"{key}\" must be a non-negative integer"))),
            None => Err(fail(format!("missing field \"{key}\""))),
        }
    };
    // Numeric field that may also be the strings "inf"/"-inf"/"nan"
    // (the emitter's encoding for non-finite values).
    let number = |key: &str| -> Result<f64, TraceError> {
        match get(fields, key) {
            Some(Value::Num(x)) => Ok(*x),
            Some(Value::Str(s)) if s == "inf" => Ok(f64::INFINITY),
            Some(Value::Str(s)) if s == "-inf" => Ok(f64::NEG_INFINITY),
            Some(Value::Str(s)) if s == "nan" => Ok(f64::NAN),
            Some(_) => Err(fail(format!("\"{key}\" must be a number"))),
            None => Err(fail(format!("missing field \"{key}\""))),
        }
    };
    match op.as_str() {
        "set_arrival" => Ok(Edit::SetArrival {
            terminal: TerminalId(id("terminal")?),
            value: number("value")?,
        }),
        "set_required" => Ok(Edit::SetRequired {
            terminal: TerminalId(id("terminal")?),
            value: number("value")?,
        }),
        "set_sink_load" => Ok(Edit::SetSinkLoad {
            terminal: TerminalId(id("terminal")?),
            cap: number("cap")?,
        }),
        "move_terminal" => Ok(Edit::MoveTerminal {
            terminal: TerminalId(id("terminal")?),
            x: number("x")?,
            y: number("y")?,
        }),
        "set_wire_rc" => Ok(Edit::SetWireRc {
            edge: EdgeId(id("edge")?),
            res_scale: number("res_scale")?,
            cap_scale: number("cap_scale")?,
        }),
        "swap_library" => Ok(Edit::SwapLibrary {
            scale: number("scale")?,
        }),
        "reroot" => Ok(Edit::Reroot {
            terminal: TerminalId(id("terminal")?),
        }),
        other => Err(fail(format!("unknown op \"{other}\""))),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> TraceError {
        TraceError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, c: u8) -> Result<(), TraceError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Value, TraceError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.numeral(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, TraceError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected \"{word}\"")))
        }
    }

    fn object(&mut self) -> Result<Value, TraceError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, TraceError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, TraceError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => {
                            return Err(
                                self.err(format!("unsupported escape '\\{}'", other as char))
                            )
                        }
                    }
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is &str, so
                    // boundaries are well-formed).
                    let rest = &self.bytes[self.pos..];
                    // msrnet-allow: panic parse input arrived as &str, so a suffix at a scalar boundary is valid UTF-8
                    let s = std::str::from_utf8(rest).expect("input came from &str");
                    // msrnet-allow: panic the Some(_) arm guarantees at least one byte remains
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn numeral(&mut self) -> Result<Value, TraceError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        // msrnet-allow: panic the numeral scanner only consumes ASCII bytes
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| TraceError {
                at: start,
                message: format!("invalid number \"{text}\""),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_ops() -> Vec<Edit> {
        vec![
            Edit::SetArrival {
                terminal: TerminalId(1),
                value: 12.5,
            },
            Edit::SetRequired {
                terminal: TerminalId(2),
                value: f64::NEG_INFINITY,
            },
            Edit::SetSinkLoad {
                terminal: TerminalId(0),
                cap: 0.875,
            },
            Edit::MoveTerminal {
                terminal: TerminalId(3),
                x: -40.25,
                y: 1e3,
            },
            Edit::SetWireRc {
                edge: EdgeId(7),
                res_scale: 2.0,
                cap_scale: 0.5,
            },
            Edit::SwapLibrary { scale: 4.0 },
            Edit::Reroot {
                terminal: TerminalId(2),
            },
        ]
    }

    #[test]
    fn round_trip_preserves_every_op_bitwise() {
        let edits = all_ops();
        let json = trace_to_json(&edits);
        let back = parse_trace(&json).unwrap();
        assert_eq!(edits, back);
    }

    #[test]
    fn empty_trace_round_trips() {
        assert_eq!(parse_trace("{\"edits\": []}").unwrap(), vec![]);
        assert_eq!(trace_to_json(&[]), "{\"edits\": []}");
    }

    #[test]
    fn field_order_and_whitespace_are_flexible() {
        let json = "{ \"edits\" : [ { \"value\" : 3 ,\n \"terminal\": 0, \"op\": \"set_arrival\" } ] }";
        assert_eq!(
            parse_trace(json).unwrap(),
            vec![Edit::SetArrival {
                terminal: TerminalId(0),
                value: 3.0
            }]
        );
    }

    #[test]
    fn malformed_inputs_fail_with_positions() {
        for (input, needle) in [
            ("", "unexpected end"),
            ("[1, 2]", "must be an object"),
            ("{\"edits\": 3}", "must be an array"),
            ("{}", "missing the \"edits\""),
            ("{\"edits\": [{}]}", "missing string field \"op\""),
            ("{\"edits\": [{\"op\": \"explode\"}]}", "unknown op"),
            (
                "{\"edits\": [{\"op\": \"set_arrival\", \"terminal\": 0}]}",
                "missing field \"value\"",
            ),
            (
                "{\"edits\": [{\"op\": \"set_arrival\", \"terminal\": 1.5, \"value\": 0}]}",
                "non-negative integer",
            ),
            (
                "{\"edits\": [{\"op\": \"set_arrival\", \"terminal\": -1, \"value\": 0}]}",
                "non-negative integer",
            ),
            ("{\"edits\": []} trailing", "trailing input"),
            ("{\"edits\": [", "unexpected end"),
            ("{\"edits\": [{\"op\": \"reroot\" \"terminal\": 1}]}", "expected ','"),
            ("{\"edits\": [{\"op\": \"reroot\", \"terminal\": 1e}]}", "invalid number"),
        ] {
            let err = parse_trace(input).unwrap_err();
            assert!(
                err.message.contains(needle),
                "for {input:?}: got {:?}, wanted substring {needle:?}",
                err.message
            );
        }
    }

    #[test]
    fn string_escapes_are_decoded() {
        // Escapes only appear in keys/ops for this format, but the
        // parser handles them uniformly.
        let err = parse_trace("{\"edits\": [{\"op\": \"set\\u0041\"}]}").unwrap_err();
        assert!(err.message.contains("unsupported escape"));
    }
}
