//! JSON edit traces: the on-disk interchange format for replaying edit
//! sequences through an [`IncrementalOptimizer`](crate::IncrementalOptimizer).
//!
//! A trace is a single object `{"edits": [...]}` whose array holds one
//! object per edit, discriminated by its `"op"` field:
//!
//! ```json
//! {"edits": [
//!   {"op": "set_arrival",   "terminal": 1, "value": 12.5},
//!   {"op": "set_required",  "terminal": 2, "value": 30.0},
//!   {"op": "set_sink_load", "terminal": 1, "cap": 0.8},
//!   {"op": "move_terminal", "terminal": 3, "x": 100.0, "y": -40.0},
//!   {"op": "set_wire_rc",   "edge": 3, "res_scale": 2.0, "cap_scale": 0.5},
//!   {"op": "swap_library",  "scale": 2.0},
//!   {"op": "reroot",        "terminal": 1},
//!   {"op": "add_terminal",  "at": 4, "x": 150.0, "y": 0.0, "arrival": 2.0,
//!    "downstream": 1.0, "cap": 0.05, "drive_res": 180.0, "drive_intrinsic": 0.0},
//!   {"op": "remove_terminal", "terminal": 3},
//!   {"op": "add_insertion_point", "edge": 2, "frac": 0.5},
//!   {"op": "remove_insertion_point", "vertex": 6}
//! ]}
//! ```
//!
//! Parsing goes through the workspace's shared JSON reader
//! ([`crate::json`]; the workspace is dependency-free by design) and is
//! strict about structure — unknown ops, missing fields, and trailing
//! garbage are all errors with positions — but tolerant of field order
//! and whitespace.

use std::fmt;

use msrnet_rctree::{EdgeId, Terminal, TerminalId, VertexId};

use crate::json::{parse_json, Json};
use crate::Edit;

/// A parse failure, with the byte offset where it was detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// Byte offset into the input at which the problem was found.
    pub at: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for TraceError {}

/// Parses a JSON edit trace (see the module docs for the format).
///
/// # Errors
///
/// Returns a [`TraceError`] on malformed JSON, an unknown `"op"`,
/// missing or mistyped fields, or trailing input after the root object.
pub fn parse_trace(input: &str) -> Result<Vec<Edit>, TraceError> {
    let root = parse_json(input).map_err(|e| TraceError {
        at: e.at,
        message: if e.message == "trailing input after the root value" {
            "trailing input after the trace object".into()
        } else {
            e.message
        },
    })?;
    let Json::Obj(fields) = root else {
        return Err(TraceError {
            at: 0,
            message: "trace root must be an object".into(),
        });
    };
    let edits_val = Json::get(&fields, "edits").ok_or_else(|| TraceError {
        at: 0,
        message: "trace object is missing the \"edits\" array".into(),
    })?;
    let Json::Arr(items) = edits_val else {
        return Err(TraceError {
            at: 0,
            message: "\"edits\" must be an array".into(),
        });
    };
    items
        .iter()
        .enumerate()
        .map(|(i, item)| edit_from(item, i))
        .collect()
}

/// Serializes edits into the trace format accepted by [`parse_trace`].
/// Numbers use Rust's shortest round-trip formatting; non-finite values
/// (legal in [`Edit::SetArrival`] / [`Edit::SetRequired`], where `-∞`
/// disables a role) serialize as the strings `"-inf"` / `"inf"`, which
/// the parser maps back.
pub fn trace_to_json(edits: &[Edit]) -> String {
    let mut out = String::from("{\"edits\": [");
    for (i, e) in edits.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{{\"op\": \"{}\"", e.op_name()));
        match *e {
            Edit::SetArrival { terminal, value } | Edit::SetRequired { terminal, value } => {
                out.push_str(&format!(
                    ", \"terminal\": {}, \"value\": {}",
                    terminal.0,
                    num(value)
                ));
            }
            Edit::SetSinkLoad { terminal, cap } => {
                out.push_str(&format!(
                    ", \"terminal\": {}, \"cap\": {}",
                    terminal.0,
                    num(cap)
                ));
            }
            Edit::MoveTerminal { terminal, x, y } => {
                out.push_str(&format!(
                    ", \"terminal\": {}, \"x\": {}, \"y\": {}",
                    terminal.0,
                    num(x),
                    num(y)
                ));
            }
            Edit::SetWireRc {
                edge,
                res_scale,
                cap_scale,
            } => {
                out.push_str(&format!(
                    ", \"edge\": {}, \"res_scale\": {}, \"cap_scale\": {}",
                    edge.0,
                    num(res_scale),
                    num(cap_scale)
                ));
            }
            Edit::SwapLibrary { scale } => {
                out.push_str(&format!(", \"scale\": {}", num(scale)));
            }
            Edit::Reroot { terminal } => {
                out.push_str(&format!(", \"terminal\": {}", terminal.0));
            }
            Edit::AddTerminal { at, x, y, terminal } => {
                out.push_str(&format!(
                    ", \"at\": {}, \"x\": {}, \"y\": {}, \"arrival\": {}, \
                     \"downstream\": {}, \"cap\": {}, \"drive_res\": {}, \
                     \"drive_intrinsic\": {}",
                    at.0,
                    num(x),
                    num(y),
                    num(terminal.arrival),
                    num(terminal.downstream),
                    num(terminal.cap),
                    num(terminal.drive_res),
                    num(terminal.drive_intrinsic)
                ));
            }
            Edit::RemoveTerminal { terminal } => {
                out.push_str(&format!(", \"terminal\": {}", terminal.0));
            }
            Edit::AddInsertionPoint { edge, frac } => {
                out.push_str(&format!(", \"edge\": {}, \"frac\": {}", edge.0, num(frac)));
            }
            Edit::RemoveInsertionPoint { vertex } => {
                out.push_str(&format!(", \"vertex\": {}", vertex.0));
            }
        }
        out.push('}');
    }
    out.push_str("]}");
    out
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else if x == f64::NEG_INFINITY {
        "\"-inf\"".into()
    } else if x == f64::INFINITY {
        "\"inf\"".into()
    } else {
        "\"nan\"".into()
    }
}

fn edit_from(item: &Json, index: usize) -> Result<Edit, TraceError> {
    let fail = |message: String| TraceError {
        at: 0,
        message: format!("edit #{index}: {message}"),
    };
    let Json::Obj(fields) = item else {
        return Err(fail("must be an object".into()));
    };
    let Some(Json::Str(op)) = Json::get(fields, "op") else {
        return Err(fail("missing string field \"op\"".into()));
    };
    let id = |key: &str| -> Result<usize, TraceError> {
        match Json::get(fields, key) {
            // msrnet-allow: float-eq fract()==0.0 is the exact integrality test for a JSON id
            Some(Json::Num(x)) if *x >= 0.0 && x.fract() == 0.0 && *x <= u32::MAX as f64 => {
                Ok(*x as usize)
            }
            Some(_) => Err(fail(format!("\"{key}\" must be a non-negative integer"))),
            None => Err(fail(format!("missing field \"{key}\""))),
        }
    };
    // Numeric field that may also be the strings "inf"/"-inf"/"nan"
    // (the emitter's encoding for non-finite values).
    let number = |key: &str| -> Result<f64, TraceError> {
        match Json::get(fields, key) {
            Some(Json::Num(x)) => Ok(*x),
            Some(Json::Str(s)) if s == "inf" => Ok(f64::INFINITY),
            Some(Json::Str(s)) if s == "-inf" => Ok(f64::NEG_INFINITY),
            Some(Json::Str(s)) if s == "nan" => Ok(f64::NAN),
            Some(_) => Err(fail(format!("\"{key}\" must be a number"))),
            None => Err(fail(format!("missing field \"{key}\""))),
        }
    };
    match op.as_str() {
        "set_arrival" => Ok(Edit::SetArrival {
            terminal: TerminalId(id("terminal")?),
            value: number("value")?,
        }),
        "set_required" => Ok(Edit::SetRequired {
            terminal: TerminalId(id("terminal")?),
            value: number("value")?,
        }),
        "set_sink_load" => Ok(Edit::SetSinkLoad {
            terminal: TerminalId(id("terminal")?),
            cap: number("cap")?,
        }),
        "move_terminal" => Ok(Edit::MoveTerminal {
            terminal: TerminalId(id("terminal")?),
            x: number("x")?,
            y: number("y")?,
        }),
        "set_wire_rc" => Ok(Edit::SetWireRc {
            edge: EdgeId(id("edge")?),
            res_scale: number("res_scale")?,
            cap_scale: number("cap_scale")?,
        }),
        "swap_library" => Ok(Edit::SwapLibrary {
            scale: number("scale")?,
        }),
        "reroot" => Ok(Edit::Reroot {
            terminal: TerminalId(id("terminal")?),
        }),
        "add_terminal" => Ok(Edit::AddTerminal {
            at: VertexId(id("at")?),
            x: number("x")?,
            y: number("y")?,
            terminal: Terminal::bidirectional(
                number("arrival")?,
                number("downstream")?,
                number("cap")?,
                number("drive_res")?,
            )
            .with_drive_intrinsic(number("drive_intrinsic")?),
        }),
        "remove_terminal" => Ok(Edit::RemoveTerminal {
            terminal: TerminalId(id("terminal")?),
        }),
        "add_insertion_point" => Ok(Edit::AddInsertionPoint {
            edge: EdgeId(id("edge")?),
            frac: number("frac")?,
        }),
        "remove_insertion_point" => Ok(Edit::RemoveInsertionPoint {
            vertex: VertexId(id("vertex")?),
        }),
        other => Err(fail(format!("unknown op \"{other}\""))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_ops() -> Vec<Edit> {
        vec![
            Edit::SetArrival {
                terminal: TerminalId(1),
                value: 12.5,
            },
            Edit::SetRequired {
                terminal: TerminalId(2),
                value: f64::NEG_INFINITY,
            },
            Edit::SetSinkLoad {
                terminal: TerminalId(0),
                cap: 0.875,
            },
            Edit::MoveTerminal {
                terminal: TerminalId(3),
                x: -40.25,
                y: 1e3,
            },
            Edit::SetWireRc {
                edge: EdgeId(7),
                res_scale: 2.0,
                cap_scale: 0.5,
            },
            Edit::SwapLibrary { scale: 4.0 },
            Edit::Reroot {
                terminal: TerminalId(2),
            },
            Edit::AddTerminal {
                at: VertexId(4),
                x: 150.5,
                y: -0.25,
                terminal: Terminal::bidirectional(2.0, f64::NEG_INFINITY, 0.055, 181.25)
                    .with_drive_intrinsic(12.5),
            },
            Edit::RemoveTerminal {
                terminal: TerminalId(5),
            },
            Edit::AddInsertionPoint {
                edge: EdgeId(2),
                frac: 0.5,
            },
            Edit::RemoveInsertionPoint {
                vertex: VertexId(6),
            },
        ]
    }

    #[test]
    fn round_trip_preserves_every_op_bitwise() {
        let edits = all_ops();
        let json = trace_to_json(&edits);
        let back = parse_trace(&json).unwrap();
        assert_eq!(edits, back);
    }

    #[test]
    fn empty_trace_round_trips() {
        assert_eq!(parse_trace("{\"edits\": []}").unwrap(), vec![]);
        assert_eq!(trace_to_json(&[]), "{\"edits\": []}");
    }

    #[test]
    fn field_order_and_whitespace_are_flexible() {
        let json = "{ \"edits\" : [ { \"value\" : 3 ,\n \"terminal\": 0, \"op\": \"set_arrival\" } ] }";
        assert_eq!(
            parse_trace(json).unwrap(),
            vec![Edit::SetArrival {
                terminal: TerminalId(0),
                value: 3.0
            }]
        );
    }

    #[test]
    fn malformed_inputs_fail_with_positions() {
        for (input, needle) in [
            ("", "unexpected end"),
            ("[1, 2]", "must be an object"),
            ("{\"edits\": 3}", "must be an array"),
            ("{}", "missing the \"edits\""),
            ("{\"edits\": [{}]}", "missing string field \"op\""),
            ("{\"edits\": [{\"op\": \"explode\"}]}", "unknown op"),
            (
                "{\"edits\": [{\"op\": \"set_arrival\", \"terminal\": 0}]}",
                "missing field \"value\"",
            ),
            (
                "{\"edits\": [{\"op\": \"set_arrival\", \"terminal\": 1.5, \"value\": 0}]}",
                "non-negative integer",
            ),
            (
                "{\"edits\": [{\"op\": \"set_arrival\", \"terminal\": -1, \"value\": 0}]}",
                "non-negative integer",
            ),
            (
                "{\"edits\": [{\"op\": \"add_terminal\", \"at\": 1, \"x\": 0, \"y\": 0}]}",
                "missing field \"arrival\"",
            ),
            (
                "{\"edits\": [{\"op\": \"add_insertion_point\", \"edge\": 0, \"frac\": \"half\"}]}",
                "\"frac\" must be a number",
            ),
            (
                "{\"edits\": [{\"op\": \"remove_insertion_point\", \"vertex\": 2.5}]}",
                "non-negative integer",
            ),
            ("{\"edits\": []} trailing", "trailing input"),
            ("{\"edits\": [", "unexpected end"),
            ("{\"edits\": [{\"op\": \"reroot\" \"terminal\": 1}]}", "expected ','"),
            ("{\"edits\": [{\"op\": \"reroot\", \"terminal\": 1e}]}", "invalid number"),
        ] {
            let err = parse_trace(input).unwrap_err();
            assert!(
                err.message.contains(needle),
                "for {input:?}: got {:?}, wanted substring {needle:?}",
                err.message
            );
        }
    }

    #[test]
    fn string_escapes_are_decoded() {
        // Escapes only appear in keys/ops for this format, but the
        // parser handles them uniformly.
        let err = parse_trace("{\"edits\": [{\"op\": \"set\\u0041\"}]}").unwrap_err();
        assert!(err.message.contains("unsupported escape"));
    }
}
