//! Topology co-optimization: DP-frontier-scored Steiner-topology search
//! driven entirely by structural session edits.
//!
//! Classical topology generation (crate `msrnet-steiner`) optimizes
//! wirelength; the repeater-insertion DP then makes the best of whatever
//! tree it is handed. But for multi-source nets the best *timing*
//! topology is often not the shortest one — a sink reattached closer to
//! the driving sources can beat a minimum-length attachment even though
//! it pays more wire, because the DP can buffer the longer geometry more
//! effectively. [`TopologySearch`] closes that gap: it perturbs the
//! net's Steiner topology through the typed structural edits of
//! [`IncrementalOptimizer`] and ranks every candidate by the *actual DP
//! frontier* via a scalar [`Objective`].
//!
//! The loop is deterministic and seeded, and single-threaded by
//! construction (one resident session, one candidate at a time), so the
//! outcome is independent of ambient thread counts. Two move kinds:
//!
//! * **Reattach** — detach a terminal ([`Edit::RemoveTerminal`]) and
//!   trial-attach it at the `k` best Steiner vertices under the
//!   cost-distance ranking of [`msrnet_steiner::rank_attachment_sites`]
//!   plus its original attachment; each trial is scored by recomputing
//!   the frontier and undone by an exact pure-pop removal. The best
//!   strictly improving site is kept, otherwise the terminal returns
//!   home.
//! * **Densify** — split the longest edges at their midpoint
//!   ([`Edit::AddInsertionPoint`] with `frac = 0.5`), giving the DP a
//!   new legal repeater site; kept only when the frontier score strictly
//!   improves, otherwise spliced back out bitwise.
//!
//! Because every trial is applied to the one session and undone by its
//! exact inverse, the accepted-edit trace in the [`SearchOutcome`]
//! replays from the initial net to the final net, and every
//! intermediate state along the way is a valid routed net.

use msrnet_core::{TerminalOption, TradeoffCurve};
use msrnet_geom::Point;
use msrnet_rctree::{EdgeId, TerminalId, VertexId, VertexKind};
use msrnet_rng::{Rng, SeedableRng, SplitMix64};
use msrnet_steiner::rank_attachment_sites;

use crate::{Edit, IncrementalOptimizer};

/// Scalar scoring of a trade-off curve — **lower is better** for every
/// variant, so the search minimizes uniformly.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Objective {
    /// Minimum cost among frontier points whose ARD meets `max_ard`
    /// (infinite when no point qualifies): "cheapest topology that
    /// closes timing".
    MinCostAtArd {
        /// The ARD requirement, ps.
        max_ard: f64,
    },
    /// The best (smallest) ARD on the frontier, ignoring cost.
    BestArd,
    /// Negated area dominated by the frontier inside the reference box
    /// `[0, cost_ref] × [0, ard_ref]` — rewards the whole curve, not a
    /// single point.
    Hypervolume {
        /// Cost reference (points at or beyond contribute nothing).
        cost_ref: f64,
        /// ARD reference, ps.
        ard_ref: f64,
    },
}

impl Objective {
    /// Scores `curve` (lower is better; never NaN for a valid curve).
    pub fn score(&self, curve: &TradeoffCurve) -> f64 {
        match *self {
            Objective::MinCostAtArd { max_ard } => curve
                .points()
                .iter()
                .filter(|p| p.ard <= max_ard)
                .map(|p| p.cost)
                .fold(f64::INFINITY, f64::min),
            Objective::BestArd => curve.best_ard().ard,
            Objective::Hypervolume { cost_ref, ard_ref } => {
                let mut pts: Vec<(f64, f64)> = curve
                    .points()
                    .iter()
                    .filter(|p| p.cost < cost_ref && p.ard < ard_ref)
                    .map(|p| (p.cost, p.ard))
                    .collect();
                pts.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
                let mut hv = 0.0;
                let mut last_ard = ard_ref;
                for (cost, ard) in pts {
                    if ard < last_ard {
                        hv += (cost_ref - cost) * (last_ard - ard);
                        last_ard = ard;
                    }
                }
                -hv
            }
        }
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Objective::MinCostAtArd { max_ard } => write!(f, "min-cost:{max_ard}"),
            Objective::BestArd => write!(f, "best-ard"),
            Objective::Hypervolume { cost_ref, ard_ref } => {
                write!(f, "hypervolume:{cost_ref}:{ard_ref}")
            }
        }
    }
}

impl std::str::FromStr for Objective {
    type Err = String;

    /// Parses `best-ard`, `min-cost:<max_ard>`, or
    /// `hypervolume:<cost_ref>:<ard_ref>`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s == "best-ard" {
            return Ok(Objective::BestArd);
        }
        let num = |x: &str, what: &str| -> Result<f64, String> {
            let v: f64 = x
                .parse()
                .map_err(|_| format!("objective: {what} must be a number, got {x:?}"))?;
            if v.is_nan() {
                return Err(format!("objective: {what} must not be NaN"));
            }
            Ok(v)
        };
        if let Some(rest) = s.strip_prefix("min-cost:") {
            return Ok(Objective::MinCostAtArd {
                max_ard: num(rest, "max ARD")?,
            });
        }
        if let Some(rest) = s.strip_prefix("hypervolume:") {
            let (c, a) = rest
                .split_once(':')
                .ok_or_else(|| "objective: hypervolume needs <cost_ref>:<ard_ref>".to_string())?;
            return Ok(Objective::Hypervolume {
                cost_ref: num(c, "cost reference")?,
                ard_ref: num(a, "ARD reference")?,
            });
        }
        Err(format!(
            "unknown objective {s:?} (expected best-ard, min-cost:<ard>, \
             or hypervolume:<cost>:<ard>)"
        ))
    }
}

/// Tuning knobs for [`TopologySearch`]. `Default` gives a small,
/// fast search; the CLI exposes every field.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SearchConfig {
    /// Full passes over the net (each pass = one reattach sweep plus
    /// one densify sweep). The search stops early when a pass accepts
    /// nothing.
    pub rounds: usize,
    /// Candidate attachment sites evaluated per detached terminal (the
    /// cost-distance top-`k`), in addition to the original site.
    pub neighbors: usize,
    /// Radius weight of the cost-distance ranking (see
    /// [`msrnet_steiner::rank_attachment_sites`]).
    pub radius_weight: f64,
    /// Longest edges considered for a midpoint split per densify sweep.
    pub densify_top: usize,
    /// Seed for the per-round terminal visiting order.
    pub seed: u64,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            rounds: 2,
            neighbors: 4,
            radius_weight: 0.5,
            densify_top: 2,
            seed: 0,
        }
    }
}

/// Move counters for one [`TopologySearch::run`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Passes actually executed (≤ `SearchConfig::rounds` on early stop).
    pub rounds_run: usize,
    /// Reattachment trials scored (one per candidate site applied).
    pub reattach_trials: usize,
    /// Reattachments kept (terminal ended at a new site).
    pub reattach_accepted: usize,
    /// Midpoint splits scored.
    pub densify_trials: usize,
    /// Midpoint splits kept.
    pub densify_accepted: usize,
    /// Structural edits the session rejected during trials (skipped
    /// moves, e.g. a terminal whose removal would break the net).
    pub rejected_edits: usize,
}

/// The result of a topology search: scores, wirelengths, move counters,
/// and the accepted-edit trace that replays the initial net into the
/// final one.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// The objective the search minimized.
    pub objective: Objective,
    /// Frontier score of the starting topology.
    pub initial_score: f64,
    /// Frontier score of the final topology (≤ `initial_score` up to
    /// float associativity of re-rooted identical geometry).
    pub final_score: f64,
    /// Total wirelength before, µm.
    pub initial_wirelength: f64,
    /// Total wirelength after, µm.
    pub final_wirelength: f64,
    /// Frontier size before.
    pub initial_points: usize,
    /// Frontier size after.
    pub final_points: usize,
    /// Move counters.
    pub stats: SearchStats,
    /// Every structural edit kept in the final topology, in application
    /// order. Replaying these on a fresh session over the initial net
    /// reproduces the final net; every prefix is a valid routed net.
    pub edits: Vec<Edit>,
}

impl SearchOutcome {
    /// Whether the search strictly improved its objective.
    pub fn improved(&self) -> bool {
        self.final_score < self.initial_score
    }
}

/// A seeded, deterministic topology-improvement loop over one resident
/// incremental session (see the module docs for the move set).
#[derive(Debug)]
pub struct TopologySearch {
    session: IncrementalOptimizer,
    objective: Objective,
    cfg: SearchConfig,
}

impl TopologySearch {
    /// Wraps a session for searching. The session should be freshly
    /// built over the topology to improve; its terminal menus, library,
    /// and options are used as-is by every trial.
    pub fn new(session: IncrementalOptimizer, objective: Objective, cfg: SearchConfig) -> Self {
        TopologySearch {
            session,
            objective,
            cfg,
        }
    }

    /// The underlying session (holding the current — after
    /// [`TopologySearch::run`], the final — topology).
    pub fn session(&self) -> &IncrementalOptimizer {
        &self.session
    }

    /// Unwraps the session, e.g. to continue editing the found topology.
    pub fn into_session(self) -> IncrementalOptimizer {
        self.session
    }

    fn score(&mut self) -> (f64, usize) {
        match self.session.recompute() {
            Ok((curve, _)) => (self.objective.score(&curve), curve.len()),
            Err(_) => (f64::INFINITY, 0),
        }
    }

    /// Runs the search to completion and reports the outcome. The
    /// session keeps the final topology.
    pub fn run(&mut self) -> SearchOutcome {
        let mut rng = SplitMix64::seed_from_u64(self.cfg.seed ^ 0x0705_0CA1_5EA2_C400);
        let initial_wirelength = self.session.net().topology.total_wirelength();
        let (initial_score, initial_points) = self.score();
        let mut cur_score = initial_score;
        let mut stats = SearchStats::default();
        let mut kept: Vec<Edit> = Vec::new();

        for _ in 0..self.cfg.rounds {
            stats.rounds_run += 1;
            let accepted_before = stats.reattach_accepted + stats.densify_accepted;

            // Reattach sweep: one seeded pick per terminal slot.
            let nterms = self.session.net().terminals.len();
            for _ in 0..nterms {
                let t = TerminalId(rng.gen_range(0..nterms));
                cur_score = self.try_reattach(t, cur_score, &mut stats, &mut kept);
            }

            // Densify sweep: longest edges first, ids break ties.
            let lengths: Vec<f64> = {
                let topo = &self.session.net().topology;
                (0..topo.edge_count())
                    .map(|e| topo.length(EdgeId(e)))
                    .collect()
            };
            let mut order: Vec<usize> = (0..lengths.len()).collect();
            order.sort_by(|&a, &b| lengths[b].total_cmp(&lengths[a]).then(a.cmp(&b)));
            for e in order.into_iter().take(self.cfg.densify_top) {
                if lengths[e] <= 1.0 {
                    continue;
                }
                cur_score = self.try_densify(EdgeId(e), cur_score, &mut stats, &mut kept);
            }

            if stats.reattach_accepted + stats.densify_accepted == accepted_before {
                break;
            }
        }

        let (final_score, final_points) = self.score();
        SearchOutcome {
            objective: self.objective,
            initial_score,
            final_score,
            initial_wirelength,
            final_wirelength: self.session.net().topology.total_wirelength(),
            initial_points,
            final_points,
            stats,
            edits: kept,
        }
    }

    /// Whether detaching `t` and re-adding it at its current neighbor
    /// reproduces the current geometry: pendant off a Steiner vertex at
    /// unit scaling, derived (L1) length, default option menu. Only
    /// such terminals are worth detaching — any other would change the
    /// net even when every candidate loses.
    fn faithful_pendant(&self, t: TerminalId) -> Option<(VertexId, Point)> {
        let net = self.session.net();
        if t == self.session.root() || t.0 >= net.terminals.len() {
            return None;
        }
        let v = net.topology.terminal_vertex(t);
        let &[(nbr, e)] = net.topology.neighbors(v) else {
            return None;
        };
        if !matches!(net.topology.kind(nbr), VertexKind::Steiner) {
            return None;
        }
        let (rs, cs) = net.topology.edge_scaling(e);
        let unit: f64 = 1.0;
        if rs.to_bits() != unit.to_bits() || cs.to_bits() != unit.to_bits() {
            return None;
        }
        let pos = net.topology.position(v);
        let derived = pos.l1_distance(net.topology.position(nbr));
        if net.topology.length(e).to_bits() != derived.to_bits() {
            return None;
        }
        let term = net.terminal(t);
        if self.session.term_opts().for_terminal(t) != [TerminalOption::from_terminal(term, 0.0)] {
            return None;
        }
        Some((nbr, pos))
    }

    /// One reattachment move for terminal `t`. Returns the session's
    /// score after the move (unchanged when the move was skipped or the
    /// terminal went home).
    fn try_reattach(
        &mut self,
        t: TerminalId,
        cur_score: f64,
        stats: &mut SearchStats,
        kept: &mut Vec<Edit>,
    ) -> f64 {
        let Some((nbr, pos)) = self.faithful_pendant(t) else {
            return cur_score;
        };
        let params = *self.session.net().terminal(t);
        let root_pos = {
            let net = self.session.net();
            net.topology
                .position(net.topology.terminal_vertex(self.session.root()))
        };
        let rm = Edit::RemoveTerminal { terminal: t };
        if self.session.apply(&rm).is_err() {
            stats.rejected_edits += 1;
            return cur_score;
        }
        let remap = self.session.last_remap().unwrap_or_default();
        let home = remap.map_vertex(nbr);

        // Candidate sites: every Steiner vertex of the detached net,
        // ranked by cost-distance; the home site is always trialed so
        // "no improvement" restores the starting geometry.
        let sites: Vec<VertexId> = {
            let topo = &self.session.net().topology;
            (0..topo.vertex_count())
                .map(VertexId)
                .filter(|&v| matches!(topo.kind(v), VertexKind::Steiner))
                .collect()
        };
        let site_points: Vec<Point> = {
            let topo = &self.session.net().topology;
            sites.iter().map(|&v| topo.position(v)).collect()
        };
        let ranked = rank_attachment_sites(
            pos,
            root_pos,
            &site_points,
            self.cfg.radius_weight,
            self.cfg.neighbors,
        );
        let mut trial_sites: Vec<VertexId> = ranked.iter().map(|r| sites[r.index]).collect();
        if !trial_sites.contains(&home) {
            trial_sites.push(home);
        }

        let mut best: Option<(f64, VertexId)> = None;
        let mut home_score = f64::INFINITY;
        for &at in &trial_sites {
            let add = Edit::AddTerminal {
                at,
                x: pos.x,
                y: pos.y,
                terminal: params,
            };
            if self.session.apply(&add).is_err() {
                stats.rejected_edits += 1;
                continue;
            }
            stats.reattach_trials += 1;
            let (score, _) = self.score();
            if at == home {
                home_score = score;
            }
            if best.is_none_or(|(s, _)| score < s) {
                best = Some((score, at));
            }
            // Exact pure-pop undo: the trial terminal is last in every
            // id space it touched.
            let undo = Edit::RemoveTerminal {
                terminal: TerminalId(self.session.net().terminals.len() - 1),
            };
            self.session
                .apply(&undo)
                // msrnet-allow: panic undoing a trial attach of a leaf just appended cannot be rejected
                .expect("pure-pop undo of a trial attachment");
        }

        // Keep the winner only on strict improvement over both the
        // running score and the home re-add; otherwise go home.
        let (to, new_score) = match best {
            Some((score, at)) if at != home && score < cur_score && score < home_score => {
                stats.reattach_accepted += 1;
                (at, score)
            }
            _ => (home, if home_score.is_finite() { home_score } else { cur_score }),
        };
        let add_final = Edit::AddTerminal {
            at: to,
            x: pos.x,
            y: pos.y,
            terminal: params,
        };
        self.session
            .apply(&add_final)
            // msrnet-allow: panic the chosen site was validated by its trial application above
            .expect("re-adding the detached terminal at a trialed site");
        kept.push(rm);
        kept.push(add_final);
        new_score
    }

    /// One densify move: midpoint-split edge `e`, keep on strict score
    /// improvement, otherwise splice back bitwise.
    fn try_densify(
        &mut self,
        e: EdgeId,
        cur_score: f64,
        stats: &mut SearchStats,
        kept: &mut Vec<Edit>,
    ) -> f64 {
        let split = Edit::AddInsertionPoint { edge: e, frac: 0.5 };
        if self.session.apply(&split).is_err() {
            stats.rejected_edits += 1;
            return cur_score;
        }
        stats.densify_trials += 1;
        let (score, _) = self.score();
        if score < cur_score {
            stats.densify_accepted += 1;
            kept.push(split);
            return score;
        }
        let undo = Edit::RemoveInsertionPoint {
            vertex: VertexId(self.session.net().topology.vertex_count() - 1),
        };
        self.session
            .apply(&undo)
            // msrnet-allow: panic a frac-0.5 midpoint split always splices back bitwise
            .expect("splicing back a trial midpoint split");
        cur_score
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msrnet_core::{MsriOptions, TerminalOptions, WireOption};
    use msrnet_netgen::{table1, ExperimentNet};

    /// A session over a raw Steiner-routed net (no pre-seeded insertion
    /// points — the search's densify moves add their own), sized so
    /// terminals hang off Steiner hubs.
    fn search_session(seed: u64, n: usize) -> IncrementalOptimizer {
        let params = table1();
        let mut rng = SplitMix64::seed_from_u64(seed);
        let exp = ExperimentNet::random(&mut rng, n, &params).unwrap();
        let net = exp.net.clone();
        let library = vec![params.repeater(1.0), params.repeater(2.0)];
        let term_opts = TerminalOptions::defaults(&net);
        IncrementalOptimizer::new(
            net,
            TerminalId(0),
            library,
            term_opts,
            vec![WireOption::unit()],
            MsriOptions::default(),
        )
    }

    /// References derived from the starting frontier, so every objective
    /// variant is satisfiable on the instance under test.
    fn probe(session: &mut IncrementalOptimizer) -> (f64, f64) {
        let (curve, _) = session.recompute().unwrap();
        (curve.min_cost().cost, curve.best_ard().ard)
    }

    #[test]
    fn objective_strings_round_trip() {
        for obj in [
            Objective::BestArd,
            Objective::MinCostAtArd { max_ard: 350.5 },
            Objective::Hypervolume {
                cost_ref: 40.0,
                ard_ref: 900.0,
            },
        ] {
            let s = obj.to_string();
            assert_eq!(s.parse::<Objective>().unwrap(), obj, "via {s:?}");
        }
        assert!("".parse::<Objective>().is_err());
        assert!("min-cost".parse::<Objective>().is_err());
        assert!("min-cost:NaN".parse::<Objective>().is_err());
        assert!("hypervolume:3".parse::<Objective>().is_err());
        assert!("shortest".parse::<Objective>().is_err());
    }

    #[test]
    fn search_never_worsens_any_objective() {
        let mut probe_session = search_session(41, 8);
        let (min_cost, best_ard) = probe(&mut probe_session);
        let objectives = [
            Objective::BestArd,
            Objective::MinCostAtArd {
                max_ard: best_ard * 1.25,
            },
            Objective::Hypervolume {
                cost_ref: min_cost * 4.0 + 10.0,
                ard_ref: best_ard * 2.0,
            },
        ];
        for obj in objectives {
            let mut search = TopologySearch::new(
                search_session(41, 8),
                obj,
                SearchConfig {
                    rounds: 2,
                    ..SearchConfig::default()
                },
            );
            let out = search.run();
            assert!(out.initial_score.is_finite(), "{obj}: infeasible start");
            // Equality up to float associativity: a terminal re-added at
            // its home site joins in a different child order, which can
            // shift the score by ulps without changing the topology.
            let tol = 1e-9 * out.initial_score.abs().max(1.0);
            assert!(
                out.final_score <= out.initial_score + tol,
                "{obj}: worsened {} -> {}",
                out.initial_score,
                out.final_score
            );
            assert_eq!(out.improved(), out.final_score < out.initial_score);
        }
    }

    #[test]
    fn search_is_deterministic_across_thread_counts() {
        let run_in_thread = || {
            std::thread::spawn(|| {
                let mut search = TopologySearch::new(
                    search_session(77, 7),
                    Objective::BestArd,
                    SearchConfig::default(),
                );
                search.run()
            })
            .join()
            .unwrap()
        };
        let a = run_in_thread();
        // Second run shares the process with the finished first thread
        // plus this test harness's own pool — ambient parallelism has no
        // channel into the single-session loop.
        let b = run_in_thread();
        assert_eq!(a.initial_score.to_bits(), b.initial_score.to_bits());
        assert_eq!(a.final_score.to_bits(), b.final_score.to_bits());
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.edits, b.edits);
        assert_eq!(
            a.final_wirelength.to_bits(),
            b.final_wirelength.to_bits()
        );
    }

    #[test]
    fn accepted_trace_replays_to_the_final_net_through_valid_states() {
        let mut search = TopologySearch::new(
            search_session(13, 8),
            Objective::BestArd,
            SearchConfig {
                rounds: 3,
                densify_top: 3,
                ..SearchConfig::default()
            },
        );
        let out = search.run();
        assert!(!out.edits.is_empty(), "search took no moves at all");

        let mut replay = search_session(13, 8);
        for edit in &out.edits {
            replay.apply(edit).unwrap();
            // Every intermediate topology is a valid routed net.
            replay.net().check().unwrap();
            replay.recompute().unwrap();
        }
        let found = search.session().net();
        let replayed = replay.net();
        assert_eq!(
            replayed.topology.vertex_count(),
            found.topology.vertex_count()
        );
        assert_eq!(replayed.topology.edge_count(), found.topology.edge_count());
        assert_eq!(
            replayed.topology.total_wirelength().to_bits(),
            found.topology.total_wirelength().to_bits()
        );
        assert_eq!(
            out.final_wirelength.to_bits(),
            found.topology.total_wirelength().to_bits()
        );
        let (replayed_curve, _) = replay.recompute().unwrap();
        assert_eq!(
            Objective::BestArd.score(&replayed_curve).to_bits(),
            out.final_score.to_bits(),
            "replayed final frontier diverges from the search's"
        );
    }

    /// The pinned chip-scale-regime instance of the acceptance criteria:
    /// the search must strictly improve its objective over the initial
    /// Steiner route.
    #[test]
    fn search_strictly_improves_a_pinned_instance() {
        let mut search = TopologySearch::new(
            search_session(7, 10),
            Objective::BestArd,
            SearchConfig {
                rounds: 3,
                densify_top: 4,
                ..SearchConfig::default()
            },
        );
        let out = search.run();
        assert!(
            out.improved(),
            "pinned instance did not improve: {} -> {}",
            out.initial_score,
            out.final_score
        );
        assert!(out.stats.densify_accepted + out.stats.reattach_accepted > 0);
        assert_eq!(out.stats.rounds_run.min(3), out.stats.rounds_run);
    }
}
