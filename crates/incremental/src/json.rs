//! A minimal, dependency-free JSON reader shared across the workspace.
//!
//! Grown out of the edit-trace format (see [`crate::parse_trace`]) and
//! promoted to a public module so other consumers of small JSON request
//! bodies — notably the `msrnet-service` session server's `batch`
//! payloads — parse through one implementation. It is a strict subset
//! reader: numbers, strings (with the mandatory escapes plus `\/`),
//! booleans, `null`, arrays and objects; duplicate keys are preserved in
//! order; `\uXXXX` escapes are deliberately unsupported (the workspace
//! formats never emit them) and fail loudly.
//!
//! # Examples
//!
//! ```
//! use msrnet_incremental::json::{parse_json, Json};
//!
//! let v = parse_json("{\"threads\": 2, \"nets\": [\"a\", \"b\"]}")?;
//! let Json::Obj(fields) = &v else { unreachable!() };
//! assert!(matches!(Json::get(fields, "threads"), Some(Json::Num(n)) if *n == 2.0));
//! # Ok::<(), msrnet_incremental::json::JsonError>(())
//! ```

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// A number (JSON has only doubles).
    Num(f64),
    /// A string, escapes decoded.
    Str(String),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in source order (duplicates preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The first field named `key` in an object's field list.
    pub fn get<'a>(fields: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
        fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// A parse failure, with the byte offset where it was detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input at which the problem was found.
    pub at: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value spanning the whole input (trailing garbage is
/// an error).
///
/// # Errors
///
/// Returns a [`JsonError`] with a byte offset on any structural
/// problem; the parser never panics, whatever the input.
pub fn parse_json(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let root = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input after the root value"));
    }
    Ok(root)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.numeral(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected \"{word}\"")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        other => {
                            return Err(
                                self.err(format!("unsupported escape '\\{}'", other as char))
                            )
                        }
                    }
                }
                Some(_) => {
                    // Advance over one UTF-8 scalar (input is &str, so
                    // boundaries are well-formed).
                    let rest = &self.bytes[self.pos..];
                    // msrnet-allow: panic parse input arrived as &str, so a suffix at a scalar boundary is valid UTF-8
                    let s = std::str::from_utf8(rest).expect("input came from &str");
                    // msrnet-allow: panic the Some(_) arm guarantees at least one byte remains
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn numeral(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        // msrnet-allow: panic the numeral scanner only consumes ASCII bytes
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            at: start,
            message: format!("invalid number \"{text}\""),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_structurally() {
        let v = parse_json(
            "{\"a\": [1, -2.5, 1e3], \"b\": \"x\\ny\", \"c\": true, \"d\": null}",
        )
        .unwrap();
        let Json::Obj(fields) = v else { panic!("object") };
        assert_eq!(
            Json::get(&fields, "a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(-2.5),
                Json::Num(1000.0)
            ]))
        );
        assert_eq!(Json::get(&fields, "b"), Some(&Json::Str("x\ny".into())));
        assert_eq!(Json::get(&fields, "c"), Some(&Json::Bool(true)));
        assert_eq!(Json::get(&fields, "d"), Some(&Json::Null));
        assert_eq!(Json::get(&fields, "missing"), None);
    }

    #[test]
    fn structural_errors_carry_positions() {
        for (input, needle) in [
            ("", "unexpected end"),
            ("[1,", "unexpected end"),
            ("{\"a\" 1}", "expected ':'"),
            ("[1 2]", "expected ','"),
            ("\"abc", "unterminated string"),
            ("truth", "expected \"true\""),
            ("1e", "invalid number"),
            ("{} trailing", "trailing input"),
            ("\"\\u0041\"", "unsupported escape"),
        ] {
            let err = parse_json(input).unwrap_err();
            assert!(
                err.message.contains(needle),
                "for {input:?}: got {:?}, wanted {needle:?}",
                err.message
            );
        }
    }

    #[test]
    fn duplicate_keys_are_preserved_and_get_returns_the_first() {
        let v = parse_json("{\"k\": 1, \"k\": 2}").unwrap();
        let Json::Obj(fields) = v else { panic!("object") };
        assert_eq!(fields.len(), 2);
        assert_eq!(Json::get(&fields, "k"), Some(&Json::Num(1.0)));
    }
}
